//! # fluxcomp
//!
//! Umbrella crate for the *fluxcomp* workspace — a from-scratch Rust
//! reproduction of the smart-sensor system described in
//! R. J. W. T. Tangelder, G. Diemel and H. G. Kerkhoff,
//! *"Smart Sensor System Application: An Integrated Compass"* (ED&TC/DATE
//! 1997): a fully integrable electronic compass built from micro-machined
//! fluxgate sensors, a pulse-position analogue front-end and a digital
//! back-end (up/down counter + CORDIC arctangent + watch logic), mapped
//! onto a Sea-of-Gates array and combined with the sensors on an MCM.
//!
//! This crate simply re-exports the workspace members under stable names:
//!
//! * [`units`] — physical quantities, angles, fixed-point formats
//! * [`obs`] — the observability layer (spans, counters, gauges,
//!   histograms; zero-cost no-op unless a recorder is installed)
//! * [`exec`] — the deterministic parallel sweep engine (scoped worker
//!   pool, per-task seed derivation, streaming statistics)
//! * [`msim`] — the mixed-signal (analogue + event-driven digital)
//!   simulation kernel standing in for Anacad ELDO
//! * [`fluxgate`] — sensor physics (saturable core, pickup EMF, earth field)
//! * [`afe`] — analogue front-end (oscillator, V-I converters, detector,
//!   second-harmonic baseline)
//! * [`rtl`] — digital back-end (counter, CORDIC of Fig. 8, watch, LCD,
//!   gate-level netlist simulator)
//! * [`sog`] — the fishbone Sea-of-Gates fabric model
//! * [`mcm`] — multi-chip module with boundary scan
//! * [`compass`] — the integrated system of Fig. 1 (the paper's
//!   contribution)
//! * [`faults`] — seeded deterministic fault injection (open pickup,
//!   stuck comparator, drift, dropout, noise bursts) feeding the
//!   degraded-mode machinery in [`compass`] and [`serve`]
//! * [`serve`] — the fix server: TCP service with batching, fix cache,
//!   deadlines, fault-aware fix quality and a load-generator harness
//!
//! ## Quickstart
//!
//! ```
//! use fluxcomp::prelude::*;
//!
//! # fn main() -> Result<(), fluxcomp::compass::BuildError> {
//! let mut compass = Compass::new(CompassConfig::default())?;
//! let reading = compass.measure_heading(Degrees::new(123.0));
//! assert!(reading.heading.angular_distance(Degrees::new(123.0)).value() <= 1.0);
//!
//! // Sweeps take an ExecPolicy: serial and parallel are the same
//! // computation, bit for bit.
//! let design = CompassDesign::new(CompassConfig::default())?;
//! let stats = fluxcomp::compass::sweep_headings(&design, 12, &ExecPolicy::serial());
//! assert!(stats.meets_one_degree_spec());
//! # Ok(())
//! # }
//! ```

pub use fluxcomp_afe as afe;
pub use fluxcomp_compass as compass;
pub use fluxcomp_exec as exec;
pub use fluxcomp_faults as faults;
pub use fluxcomp_fluxgate as fluxgate;
pub use fluxcomp_mcm as mcm;
pub use fluxcomp_msim as msim;
pub use fluxcomp_obs as obs;
pub use fluxcomp_rtl as rtl;
pub use fluxcomp_serve as serve;
pub use fluxcomp_sog as sog;
pub use fluxcomp_units as units;

/// The one-line import for application code: the compass types, the
/// execution policy and the observability surface most programs touch.
///
/// ```
/// use fluxcomp::prelude::*;
///
/// let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
/// let reading = design.measure_heading(Degrees::new(45.0));
/// assert!(reading.heading.angular_distance(Degrees::new(45.0)).value() <= 1.0);
/// ```
pub mod prelude {
    pub use fluxcomp_compass::{Compass, CompassConfig, CompassDesign};
    pub use fluxcomp_exec::ExecPolicy;
    pub use fluxcomp_obs::Recorder;
    pub use fluxcomp_units::angle::Degrees;
}
