//! The determinism contract of the sweep engine: every unified entry
//! point must produce results that are **bit-for-bit identical** under
//! `ExecPolicy::Serial` and `ExecPolicy::Parallel` at any worker count.
//! This is what makes regression artefacts diffable across machines and
//! CI runners.
//!
//! Strategy: run each workload with the serial policy, then with 1, 2
//! and N workers, and compare through `f64::to_bits` — no epsilon
//! anywhere. A final test repeats a sweep with an observability
//! recorder installed: recording is write-only, so it must not move a
//! single bit either.

use fluxcomp::compass::evaluate::{repeat_heading, sweep_headings, sweep_headings_traced};
use fluxcomp::compass::tilt::{worst_tilt_error, Attitude};
use fluxcomp::compass::{AccuracyStats, CompassConfig, CompassDesign, MeasureScratch};
use fluxcomp::exec::ExecPolicy;
use fluxcomp::fluxgate::earth::{EarthField, Location};
use fluxcomp::msim::montecarlo::{run_monte_carlo, Tolerance};
use fluxcomp::units::Degrees;

fn policies() -> Vec<ExecPolicy> {
    vec![
        ExecPolicy::serial(),
        ExecPolicy::with_threads(1),
        ExecPolicy::with_threads(2),
        ExecPolicy::with_threads(3).with_chunk(1),
        ExecPolicy::auto(),
    ]
}

fn assert_stats_bitwise(a: &AccuracyStats, b: &AccuracyStats, what: &str) {
    assert_eq!(
        a.max_error.value().to_bits(),
        b.max_error.value().to_bits(),
        "{what}: max_error differs"
    );
    assert_eq!(
        a.mean_error.value().to_bits(),
        b.mean_error.value().to_bits(),
        "{what}: mean_error differs"
    );
    assert_eq!(
        a.rms_error.value().to_bits(),
        b.rms_error.value().to_bits(),
        "{what}: rms_error differs"
    );
    assert_eq!(
        a.bias.value().to_bits(),
        b.bias.value().to_bits(),
        "{what}: bias differs"
    );
}

#[test]
fn heading_sweep_is_bit_identical_at_any_worker_count() {
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let reference = sweep_headings(&design, 48, &ExecPolicy::serial());
    for policy in policies() {
        let got = sweep_headings(&design, 48, &policy);
        assert_stats_bitwise(
            &got,
            &reference,
            &format!("sweep with {} threads", policy.threads()),
        );
    }
}

#[test]
fn noisy_repeat_fixes_are_bit_identical_at_any_worker_count() {
    let mut cfg = CompassConfig::paper_design();
    cfg.frontend.pickup_noise_rms = 2e-3;
    let design = CompassDesign::new(cfg).expect("valid design");
    let truth = Degrees::new(123.0);
    let reference = repeat_heading(&design, truth, 24, &ExecPolicy::serial());
    for policy in policies() {
        let got = repeat_heading(&design, truth, 24, &policy);
        assert_eq!(got.len(), reference.len());
        for (k, (a, b)) in got.iter().zip(reference.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "fix {k} with {} threads differs",
                policy.threads()
            );
        }
    }
}

#[test]
fn tilt_scan_is_bit_identical_at_any_worker_count() {
    let field = EarthField::at(Location::Enschede);
    let att = Attitude::new(Degrees::new(10.0), Degrees::new(-5.0));
    let reference = worst_tilt_error(&field, att, 360, &ExecPolicy::serial());
    for policy in policies() {
        let got = worst_tilt_error(&field, att, 360, &policy);
        assert_eq!(
            got.value().to_bits(),
            reference.value().to_bits(),
            "tilt scan with {} threads differs",
            policy.threads()
        );
    }
}

#[test]
fn monte_carlo_is_bit_identical_at_any_worker_count() {
    let tolerances = [
        Tolerance::Gaussian { rel_sigma: 0.05 },
        Tolerance::Uniform { tol: 0.02 },
        Tolerance::Gaussian { rel_sigma: 0.01 },
    ];
    let evaluate = |s: &Vec<f64>| s.iter().map(|x| (x - 1.0).abs()).sum::<f64>();
    let reference = run_monte_carlo(
        &tolerances,
        64,
        0xD1CE,
        &ExecPolicy::serial(),
        evaluate,
        |m| m < 0.08,
    );
    for policy in policies() {
        let got = run_monte_carlo(&tolerances, 64, 0xD1CE, &policy, evaluate, |m| m < 0.08);
        assert_eq!(got.trials, reference.trials);
        assert_eq!(
            got.passes,
            reference.passes,
            "pass count with {} threads differs",
            policy.threads()
        );
        for (k, (a, b)) in got.metrics.iter().zip(reference.metrics.iter()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "metric {k} with {} threads differs",
                policy.threads()
            );
        }
        assert_eq!(got.mean().to_bits(), reference.mean().to_bits());
        assert_eq!(got.std_dev().to_bits(), reference.std_dev().to_bits());
        assert_eq!(
            got.quantile(0.9).to_bits(),
            reference.quantile(0.9).to_bits()
        );
    }
}

#[test]
fn fast_path_matches_traced_path_bitwise() {
    // The duty-only fast path and the full-waveform diagnostic tier are
    // the same computation: every statistic of a sweep must agree bit
    // for bit, serial and parallel.
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let reference = sweep_headings_traced(&design, 24, &ExecPolicy::serial());
    for policy in [ExecPolicy::serial(), ExecPolicy::with_threads(2)] {
        let fast = sweep_headings(&design, 24, &policy);
        assert_stats_bitwise(
            &fast,
            &reference,
            &format!("fast vs traced with {} threads", policy.threads()),
        );
    }
}

#[test]
fn reused_scratch_is_bit_identical_across_100_fixes() {
    // One worker's MeasureScratch carried across 100 fixes (with noise,
    // so the detector and counter really churn) must reproduce the
    // fresh-state entry point on every single fix.
    let mut cfg = CompassConfig::paper_design();
    cfg.frontend.pickup_noise_rms = 2e-3;
    let design = CompassDesign::new(cfg).expect("valid design");
    let base = design.config().frontend.noise_seed;
    let mut scratch = MeasureScratch::for_design(&design);
    for k in 0..100u64 {
        let truth = Degrees::new(k as f64 * 3.6);
        let seed = fluxcomp::exec::derive_seed(base, k);
        let reused = design.measure_heading_scratch(truth, seed, &mut scratch);
        let fresh = design.measure_heading_seeded(truth, seed);
        assert_eq!(
            reused.heading.value().to_bits(),
            fresh.heading.value().to_bits(),
            "fix {k}: heading differs"
        );
        assert_eq!(reused.x.count, fresh.x.count, "fix {k}: x count differs");
        assert_eq!(reused.y.count, fresh.y.count, "fix {k}: y count differs");
        assert_eq!(
            reused.x.duty.to_bits(),
            fresh.x.duty.to_bits(),
            "fix {k}: x duty differs"
        );
    }
}

#[test]
fn env_thread_override_does_not_change_results() {
    // FLUXCOMP_THREADS only changes *how many* workers auto() uses; the
    // fold order is fixed, so results cannot move. Exercise a handful of
    // explicit counts standing in for the env override.
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let reference = sweep_headings(&design, 24, &ExecPolicy::serial());
    for threads in [1, 2, 4, 7, 16] {
        let got = sweep_headings(&design, 24, &ExecPolicy::with_threads(threads));
        assert_stats_bitwise(&got, &reference, &format!("{threads} explicit threads"));
    }
}

#[test]
fn recording_does_not_perturb_results() {
    // Observability is write-only: running the same sweep with a
    // recorder installed must reproduce every bit, serial and parallel —
    // and the recorder must actually have seen the work.
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let quiet_serial = sweep_headings(&design, 24, &ExecPolicy::serial());
    let quiet_par = sweep_headings(&design, 24, &ExecPolicy::with_threads(4));

    let session = fluxcomp::obs::init_for_test();
    let loud_serial = sweep_headings(&design, 24, &ExecPolicy::serial());
    let loud_par = sweep_headings(&design, 24, &ExecPolicy::with_threads(4));
    let profile = session.profile().expect("recorder installed");
    fluxcomp::obs::uninstall();

    assert_stats_bitwise(&loud_serial, &quiet_serial, "recorded serial sweep");
    assert_stats_bitwise(&loud_par, &quiet_par, "recorded parallel sweep");
    assert_eq!(profile.counter("exec.tasks"), Some(48));
    assert!(profile.span("compass.sweep").is_some());
}

#[test]
fn zero_fault_plan_is_bit_identical_to_the_clean_path() {
    // A FaultPlan with no specs must not perturb the no-fault bitstream:
    // the faulted entry points delegate to the clean fast path, so every
    // duty, count and heading agrees bit for bit.
    use fluxcomp::faults::FaultPlan;
    let mut cfg = CompassConfig::paper_design();
    cfg.frontend.pickup_noise_rms = 2e-3;
    let design = CompassDesign::new(cfg).expect("valid design");
    let plan = FaultPlan::none();
    let mut clean_scratch = MeasureScratch::for_design(&design);
    let mut fault_scratch = MeasureScratch::for_design(&design);
    for k in 0..24u64 {
        let truth = Degrees::new(k as f64 * 15.0);
        let seed = fluxcomp::exec::derive_seed(0xFA17, k);
        let clean = design.measure_heading_scratch(truth, seed, &mut clean_scratch);
        let faulted =
            design.measure_heading_scratch_faulted(truth, seed, &mut fault_scratch, &plan);
        assert_eq!(
            clean.heading.value().to_bits(),
            faulted.heading.value().to_bits(),
            "fix {k}: heading differs under a zero fault plan"
        );
        assert_eq!(clean.x.count, faulted.x.count, "fix {k}: x count differs");
        assert_eq!(clean.y.count, faulted.y.count, "fix {k}: y count differs");
        assert_eq!(
            clean.x.duty.to_bits(),
            faulted.x.duty.to_bits(),
            "fix {k}: x duty differs"
        );
        assert_eq!(
            clean.y.duty.to_bits(),
            faulted.y.duty.to_bits(),
            "fix {k}: y duty differs"
        );
    }
}

#[test]
fn faulted_fixes_are_a_pure_function_of_the_fix_seed() {
    // Fault activation derives from (plan seed, fix seed, axis, spec
    // index) alone — no shared RNG stream — so the same fix seed gives
    // the same faulted measurement no matter what was measured before
    // it, in what order, or on which worker's scratch.
    use fluxcomp::faults::{AxisSel, FaultKind, FaultPlan, FaultSpec};
    let mut cfg = CompassConfig::paper_design();
    cfg.frontend.pickup_noise_rms = 2e-3;
    let design = CompassDesign::new(cfg).expect("valid design");
    let plan = FaultPlan::new(0xDE7E12)
        .with(FaultSpec {
            kind: FaultKind::OpenPickup,
            axis: AxisSel::X,
            rate: 0.3,
        })
        .with(FaultSpec {
            kind: FaultKind::NoiseBurst {
                rms: 0.05,
                from: 0.2,
                until: 0.6,
            },
            axis: AxisSel::Both,
            rate: 0.5,
        });
    let fixes = 32u64;
    let truth_of = |k: u64| Degrees::new(k as f64 * 11.25);
    let seed_of = |k: u64| fluxcomp::exec::derive_seed(0xBEEF, k);

    let mut forward_scratch = MeasureScratch::for_design(&design);
    let forward: Vec<_> = (0..fixes)
        .map(|k| {
            design.measure_heading_scratch_faulted(
                truth_of(k),
                seed_of(k),
                &mut forward_scratch,
                &plan,
            )
        })
        .collect();

    // Same fixes, reversed order, a different worker's scratch.
    let mut reverse_scratch = MeasureScratch::for_design(&design);
    let mut reverse: Vec<_> = (0..fixes)
        .rev()
        .map(|k| {
            design.measure_heading_scratch_faulted(
                truth_of(k),
                seed_of(k),
                &mut reverse_scratch,
                &plan,
            )
        })
        .collect();
    reverse.reverse();

    let mut faulted_any = false;
    for (k, (a, b)) in forward.iter().zip(reverse.iter()).enumerate() {
        assert_eq!(
            a.heading.value().to_bits(),
            b.heading.value().to_bits(),
            "fix {k}: faulted heading depends on measurement order"
        );
        assert_eq!(a.x.count, b.x.count, "fix {k}: x count differs");
        assert_eq!(a.y.count, b.y.count, "fix {k}: y count differs");
        // An open X pickup at 30% must actually fire somewhere in 32
        // draws; detect it through the collapsed duty.
        if (a.x.duty - 0.5).abs() > 0.4 {
            faulted_any = true;
        }
    }
    assert!(
        faulted_any,
        "no fault ever activated at rate 0.3 over 32 fixes"
    );
}
