//! Chip-level integration: the synthesised netlists, the Sea-of-Gates
//! mapping and the gate-level simulator agree with the behavioural RTL.

use fluxcomp::compass::chip::paper_chip;
use fluxcomp::rtl::cordic::CordicArctan;
use fluxcomp::rtl::netsim::GateSim;
use fluxcomp::rtl::synth::{cordic_step, updown_counter};
use fluxcomp::sog::fabric::PowerDomain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The gate-level CORDIC micro-rotation tracks the Fig. 8 arithmetic for
/// a random vector soup — the equivalence check a synthesis flow would
/// run between RTL and netlist.
#[test]
fn gate_level_cordic_step_equivalence() {
    let mut rng = StdRng::seed_from_u64(42);
    for i in [0u32, 1, 2, 4, 7] {
        let (nl, x_in, y_in, x_out, y_out, rotate) = cordic_step(28, i);
        let mut sim = GateSim::new(nl);
        for _ in 0..200 {
            let x: i64 = rng.gen_range(0..1 << 26);
            let y: i64 = rng.gen_range(0..1 << 26);
            sim.set_bus(&x_in, x);
            sim.set_bus(&y_in, y);
            sim.settle();
            let (bx, by, brot) = if y >= (x >> i) {
                (x + (y >> i), y - (x >> i), true)
            } else {
                (x, y, false)
            };
            assert_eq!(sim.bus_value_signed(&x_out), bx, "x mismatch at i={i}");
            assert_eq!(sim.bus_value_signed(&y_out), by, "y mismatch at i={i}");
            assert_eq!(sim.value(rotate), brot, "rotate mismatch at i={i}");
        }
    }
}

/// Chaining gate-level micro-rotations end to end reproduces the
/// behavioural CORDIC's first-quadrant kernel exactly (the shifts
/// operate on the prescaled registers, as in Fig. 8).
#[test]
fn chained_gate_level_stages_match_behavioral_kernel() {
    let cordic = CordicArctan::paper();
    let mut rng = StdRng::seed_from_u64(7);
    // Build one simulator per iteration index.
    let stages: Vec<_> = (0..8)
        .map(|i| {
            let (nl, x_in, y_in, x_out, y_out, rotate) = cordic_step(32, i);
            (GateSim::new(nl), x_in, y_in, x_out, y_out, rotate)
        })
        .collect();
    for _ in 0..50 {
        let x0: i64 = rng.gen_range(1..4_000);
        let y0: i64 = rng.gen_range(0..4_000);
        // Gate level: walk the prescaled registers through the stages and
        // accumulate the ROM angle for every asserted `rotate`.
        let mut x = x0 << 7;
        let mut y = y0 << 7;
        let mut angle_q8 = 0i64;
        let mut sims = stages.clone();
        for (i, (sim, x_in, y_in, x_out, y_out, rotate)) in sims.iter_mut().enumerate() {
            sim.set_bus(x_in, x);
            sim.set_bus(y_in, y);
            sim.settle();
            x = sim.bus_value_signed(x_out);
            y = sim.bus_value_signed(y_out);
            if sim.value(*rotate) {
                angle_q8 += cordic.rom().entry(i as u32);
            }
        }
        let behavioral = cordic.first_quadrant_q8(x0, y0);
        assert_eq!(angle_q8, behavioral, "kernel mismatch for ({x0},{y0})");
    }
}

/// The synthesised counter equals the behavioural counter over long
/// random stimulus with direction changes.
#[test]
fn gate_level_counter_long_equivalence() {
    let (nl, up, state) = updown_counter(12);
    let mut sim = GateSim::new(nl);
    let mut behavioral = fluxcomp::rtl::counter::UpDownCounter::new(12);
    let mut rng = StdRng::seed_from_u64(99);
    let mut balance = 0i64;
    for _ in 0..3_000 {
        // Bias the stream to stay well inside the 12-bit range so the
        // saturating behavioural model and wrapping netlist agree.
        let dir = if balance > 1_000 {
            false
        } else if balance < -1_000 {
            true
        } else {
            rng.gen()
        };
        balance += if dir { 1 } else { -1 };
        sim.set_input(up, dir);
        sim.settle();
        sim.clock_edge();
        behavioral.clock(dir);
        assert_eq!(sim.bus_value_signed(&state), behavioral.value());
    }
}

/// The full chip fits the paper's array and reproduces the shape of the
/// occupancy claim: digital spans multiple quarters, analogue under
/// 15 % of one, supplies separated.
#[test]
fn chip_fits_and_matches_occupancy_shape() {
    let report = paper_chip().expect("fits the fishbone array");
    assert!(report.digital_quarters > 1.5 && report.digital_quarters <= 3.0);
    assert!(report.analog_occupancy < 0.15);
    let array = report.floorplan.array();
    assert!(array.quarters_in_domain(PowerDomain::Digital) >= 2);
    assert_eq!(array.quarters_in_domain(PowerDomain::Analog), 1);
    // No quarter hosts both supplies (checked structurally: every
    // placement's quarter has the block's domain).
    for p in report.floorplan.placements() {
        assert_eq!(
            array.quarters()[p.quarter].domain,
            Some(p.block.domain),
            "block {} crossed supplies",
            p.block.name
        );
    }
    // The whole thing is inside the 200k-transistor budget.
    assert!(array.used_sites() <= 100_000);
}

/// Transistor accounting is conserved through the mapping: the digital
/// sites committed equal the inventory divided by 2·utilisation (within
/// per-block ceiling effects).
#[test]
fn site_accounting_conserved() {
    let report = paper_chip().unwrap();
    let digital_sites: u32 = report
        .floorplan
        .placements()
        .iter()
        .filter(|p| p.block.domain == PowerDomain::Digital)
        .map(|p| p.block.sites)
        .sum();
    let expected = report.digital_transistors as f64 / 2.0 / report.utilization;
    let slack = report.floorplan.placements().len() as f64; // ceil() per block
    assert!(
        (digital_sites as f64 - expected).abs() <= slack + 16.0,
        "sites {digital_sites} vs expected {expected}"
    );
}
