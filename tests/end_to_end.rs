//! End-to-end integration tests: the whole signal chain of Fig. 1,
//! exercised across crate boundaries.

use fluxcomp::compass::evaluate::sweep_headings;
use fluxcomp::compass::CompassDesign;
use fluxcomp::compass::{Compass, CompassConfig, SecondHarmonicCompass};
use fluxcomp::exec::ExecPolicy;
use fluxcomp::fluxgate::earth::{EarthField, Location};
use fluxcomp::rtl::lcd::{DisplayMode, SegmentPattern};
use fluxcomp::units::{Degrees, Tesla};

/// The paper's headline claim, end to end: sensor physics → analogue
/// front-end → counter → CORDIC, within 1° over the circle.
#[test]
fn headline_one_degree_accuracy() {
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid config");
    let stats = sweep_headings(&design, 36, &ExecPolicy::serial());
    assert!(
        stats.meets_one_degree_spec(),
        "max error {} over 36 headings",
        stats.max_error
    );
    // Zero systematic bias: the trailing-edge detector symmetry works.
    assert!(stats.bias.value().abs() < 0.2, "bias {}", stats.bias);
}

/// C9: the heading survives the paper's 25–65 µT magnitude range.
#[test]
fn magnitude_insensitivity_25_to_65_microtesla() {
    for ut in [25.0, 45.0, 65.0] {
        let mut cfg = CompassConfig::paper_design();
        cfg.field = EarthField::horizontal(Tesla::from_microtesla(ut));
        let design = CompassDesign::new(cfg).expect("valid");
        let stats = sweep_headings(&design, 12, &ExecPolicy::serial());
        assert!(
            stats.meets_one_degree_spec(),
            "at {ut} µT: max error {}",
            stats.max_error
        );
    }
}

/// The measured counts match the analytic transfer function
/// `count = f_clk · T_window · H/H_peak` within quantisation.
#[test]
fn counter_transfer_function_matches_theory() {
    let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
    let reading = compass.measure_heading(Degrees::new(0.0));
    let h = compass.config().field.horizontal_magnitude().value() / fluxcomp::units::MU_0;
    let h_peak = compass.peak_excitation_field().value();
    let window = 8.0 / 8_000.0;
    let expected = 4_194_304.0 * window * h / h_peak;
    let got = (-reading.x.count) as f64;
    assert!(
        (got - expected).abs() < 0.02 * expected + 4.0,
        "count {got} vs theory {expected}"
    );
}

/// Multiplexing: the X and Y measurements are independent runs of the
/// single shared channel, and swapping the platform by 90° swaps them.
#[test]
fn ninety_degree_rotation_swaps_axes() {
    let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
    let r0 = compass.measure_heading(Degrees::new(0.0));
    let r90 = compass.measure_heading(Degrees::new(90.0));
    assert_eq!(r0.x.count, r90.y.count, "X at north == Y at east");
    assert!(r0.y.count.abs() < 6);
    assert!(r90.x.count.abs() < 6);
}

/// The second-harmonic baseline agrees with pulse-position at high ADC
/// resolution — they measure the same physics.
#[test]
fn baselines_agree_on_the_field_direction() {
    let mut pp = Compass::new(CompassConfig::paper_design()).expect("valid");
    let sh = SecondHarmonicCompass::new(CompassConfig::paper_design(), 12).expect("valid");
    for deg in [40.0, 130.0, 220.0, 310.0] {
        let t = Degrees::new(deg);
        let a = pp.measure_heading(t).heading;
        let b = sh.measure_heading(t);
        assert!(
            a.angular_distance(b).value() < 4.0,
            "at {deg}: pulse-position {a} vs second-harmonic {b}"
        );
    }
}

/// The watch + compass share one chip: display switches between modes
/// and renders the heading the pipeline produced.
#[test]
fn display_integration() {
    let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
    compass.measure_heading(Degrees::new(270.0));
    let frame = compass.display().frame();
    assert_eq!(frame.digits[0], SegmentPattern::digit(2));
    assert_eq!(frame.digits[1], SegmentPattern::digit(7));
    assert_eq!(frame.digits[2], SegmentPattern::digit(0));
    // 270° shows W (rendered as U).
    assert_eq!(frame.digits[4], SegmentPattern::letter('W').unwrap());

    compass
        .display_mut()
        .latch_time(fluxcomp::rtl::watch::TimeOfDay::new(12, 0, 0));
    compass.display_mut().set_mode(DisplayMode::Time);
    assert!(compass.display().frame().colons);
}

/// Steep-inclination stress: near the pole only ~5.7 µT horizontal
/// remains. The compass still produces a *usable* heading (the paper's
/// spec is about normal latitudes; we document the degradation).
#[test]
fn south_pole_degrades_gracefully() {
    let design =
        CompassDesign::new(CompassConfig::at_location(Location::SouthPole)).expect("valid");
    let stats = sweep_headings(&design, 8, &ExecPolicy::serial());
    assert!(
        stats.max_error.value() < 5.0,
        "polar error should stay bounded: {}",
        stats.max_error
    );
}

/// Determinism: the whole mixed-signal pipeline is bit-reproducible.
#[test]
fn pipeline_is_deterministic() {
    let mut a = Compass::new(CompassConfig::paper_design()).expect("valid");
    let mut b = Compass::new(CompassConfig::paper_design()).expect("valid");
    for deg in [11.0, 97.0, 203.0] {
        let ra = a.measure_heading(Degrees::new(deg));
        let rb = b.measure_heading(Degrees::new(deg));
        assert_eq!(ra.heading, rb.heading);
        assert_eq!(ra.x.count, rb.x.count);
        assert_eq!(ra.y.count, rb.y.count);
    }
}
