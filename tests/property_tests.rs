//! Property-based tests on the workspace's core data structures and
//! invariants, spanning crates.

use fluxcomp::mcm::substrate::{Fault, McmAssembly};
use fluxcomp::mcm::{BoundaryScanChain, InterconnectTester};
use fluxcomp::msim::scheduler::EventQueue;
use fluxcomp::msim::time::SimTime;
use fluxcomp::rtl::adc::SarAdc;
use fluxcomp::rtl::cordic::CordicArctan;
use fluxcomp::rtl::counter::UpDownCounter;
use fluxcomp::units::fixed::Q;
use fluxcomp::units::{Degrees, Volt};
use proptest::prelude::*;

proptest! {
    /// Q7 round-trips any value expressible in 1/128 steps.
    #[test]
    fn q7_round_trip(n in -1_000_000i64..1_000_000) {
        let v = n as f64 / 128.0;
        prop_assert_eq!(Q::<7>::from_f64(v).to_f64(), v);
    }

    /// Fixed-point addition agrees with float addition on exact values.
    #[test]
    fn q7_addition_homomorphic(a in -100_000i64..100_000, b in -100_000i64..100_000) {
        let qa = Q::<7>::from_bits(a);
        let qb = Q::<7>::from_bits(b);
        prop_assert_eq!((qa + qb).to_bits(), a + b);
        prop_assert_eq!((qa - qb).to_bits(), a - b);
    }

    /// Angle normalisation always lands in [0, 360) and preserves the
    /// angle modulo 360.
    #[test]
    fn normalization_invariants(raw in -100_000.0f64..100_000.0) {
        let d = Degrees::new(raw).normalized();
        prop_assert!((0.0..360.0).contains(&d.value()));
        let delta = (d.value() - raw).rem_euclid(360.0);
        prop_assert!(delta.abs() < 1e-6 || (delta - 360.0).abs() < 1e-6);
    }

    /// Angular distance is a metric: symmetric, bounded by 180,
    /// zero iff equal (mod 360).
    #[test]
    fn angular_distance_metric(a in 0.0f64..720.0, b in 0.0f64..720.0) {
        let da = Degrees::new(a);
        let db = Degrees::new(b);
        let d1 = da.angular_distance(db).value();
        let d2 = db.angular_distance(da).value();
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=180.0).contains(&d1));
        prop_assert!(da.angular_distance(da).value() < 1e-12);
    }

    /// The event queue pops in nondecreasing time order, FIFO at ties.
    #[test]
    fn event_queue_ordering(times in prop::collection::vec(0i64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (seq, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), seq);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, seq)) = q.pop() {
            if let Some((lt, lseq)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(seq > lseq, "FIFO violated at equal times");
                }
            }
            last = Some((t, seq));
        }
    }

    /// The 8-iteration CORDIC is always within its analytic error bound
    /// of f64 atan2, for any representative counter outputs.
    #[test]
    fn cordic_within_error_bound(x in -4_000i64..4_000, y in -4_000i64..4_000) {
        prop_assume!(x != 0 || y != 0);
        prop_assume!(x.abs().max(y.abs()) >= 16); // tiny vectors carry no angle info
        let cordic = CordicArctan::paper();
        let got = cordic.heading(x, y).unwrap().heading;
        let reference = Degrees::atan2(y as f64, x as f64).normalized();
        let bound = cordic.error_bound().value() + 4.0 / x.abs().max(y.abs()) as f64 * 57.3;
        prop_assert!(
            got.angular_distance(reference).value() <= bound,
            "({x},{y}): {} vs {} (bound {bound})", got, reference
        );
    }

    /// CORDIC magnitude invariance: scaling the input vector leaves the
    /// heading (nearly) unchanged — claim C9 at the unit level.
    #[test]
    fn cordic_scale_invariance(x in 100i64..2_000, y in 100i64..2_000, k in 2i64..8) {
        let cordic = CordicArctan::paper();
        let a = cordic.heading(x, y).unwrap().heading;
        let b = cordic.heading(x * k, y * k).unwrap().heading;
        prop_assert!(a.angular_distance(b).value() < 0.75, "{a} vs {b}");
    }

    /// The up/down counter's final value equals ups − downs (within
    /// saturation limits).
    #[test]
    fn counter_counts(stream in prop::collection::vec(any::<bool>(), 0..2_000)) {
        let mut counter = UpDownCounter::new(16);
        let ups = stream.iter().filter(|&&b| b).count() as i64;
        let downs = stream.len() as i64 - ups;
        let got = counter.run(stream.iter().copied());
        prop_assert_eq!(got, ups - downs);
    }

    /// SAR ADC is monotonic and within 1 LSB of the ideal transfer.
    #[test]
    fn adc_monotone_and_accurate(v1 in -1.0f64..1.0, v2 in -1.0f64..1.0) {
        let adc = SarAdc::new(10, Volt::new(1.0));
        let (lo, hi) = if v1 <= v2 { (v1, v2) } else { (v2, v1) };
        let c_lo = adc.convert(Volt::new(lo));
        let c_hi = adc.convert(Volt::new(hi));
        prop_assert!(c_lo <= c_hi);
        let back = adc.reconstruct(c_lo).value();
        prop_assert!((back - lo).abs() <= adc.lsb().value());
    }

    /// A boundary-scan chain is a faithful shift register: whatever is
    /// captured comes out unchanged and in order.
    #[test]
    fn boundary_chain_round_trip(bits in prop::collection::vec(any::<bool>(), 1..64)) {
        let mut chain = BoundaryScanChain::new(bits.len());
        chain.capture(&bits);
        let out = chain.shift_pattern(&vec![false; bits.len()]);
        prop_assert_eq!(out, bits);
    }

    /// Any single open or adjacent short on the paper's MCM is caught by
    /// the EXTEST counting-sequence test.
    #[test]
    fn any_single_fault_detected(pick in 0usize..17) {
        let module = McmAssembly::paper_module();
        let faults = module.all_single_faults();
        let fault = faults[pick % faults.len()];
        let mut dut = module.clone();
        dut.inject(fault);
        let tester = InterconnectTester::new(module.nets().len());
        prop_assert!(!tester.run(&dut).passed(), "{fault:?} escaped");
    }

    /// Shorting two arbitrary distinct nets is also detected (beyond the
    /// adjacent-pair universe used for the coverage figure).
    #[test]
    fn arbitrary_shorts_detected(a in 0usize..9, b in 0usize..9) {
        prop_assume!(a != b);
        let module = McmAssembly::paper_module();
        let mut dut = module.clone();
        dut.inject(Fault::Short { a, b });
        let tester = InterconnectTester::new(module.nets().len());
        prop_assert!(!tester.run(&dut).passed());
    }
}

/// Slow whole-pipeline property: keep case counts small — every case
/// runs two transient front-end simulations.
mod pipeline_props {
    use fluxcomp::compass::{Compass, CompassConfig};
    use fluxcomp::fluxgate::earth::EarthField;
    use fluxcomp::units::{Degrees, Tesla};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
        /// Any heading, any horizontal field in the paper's range: the
        /// full mixed-signal pipeline stays within the 1° spec (plus the
        /// counter's ±1-count wobble at the weakest field).
        #[test]
        fn end_to_end_accuracy_holds_everywhere(
            heading in 0.0f64..360.0,
            ut in 12.0f64..70.0,
        ) {
            let mut cfg = CompassConfig::paper_design();
            cfg.field = EarthField::horizontal(Tesla::from_microtesla(ut));
            let mut compass = Compass::new(cfg).expect("valid config");
            let truth = Degrees::new(heading);
            let got = compass.measure_heading(truth).heading;
            let err = got.angular_distance(truth).value();
            prop_assert!(err <= 1.05, "at {heading}° / {ut} µT: err {err}");
        }
    }
}
