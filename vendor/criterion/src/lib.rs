//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's bench targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] and
//! [`black_box`] — backed by a simple median-of-samples wall-clock
//! timer instead of criterion's full statistical machinery.
//!
//! Each benchmark prints one line:
//!
//! ```text
//! bench  e4_field_magnitude/full_compass_fix      1.234 ms/iter  (11 samples)
//! ```
//!
//! Environment knobs: `FLUXCOMP_BENCH_TARGET_MS` (per-sample target
//! time, default 20 ms) keeps total runtime bounded for CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing state handed to the bench closure.
pub struct Bencher {
    /// Median per-iteration time of the collected samples.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, collecting `sample_size` samples of an adaptively
    /// chosen batch size.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let target = target_sample_time();
        // Warm-up + batch sizing: run once, then pick a batch count that
        // brings one sample near the target time.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort();
        Some(s[s.len() / 2])
    }
}

fn target_sample_time() -> Duration {
    std::env::var("FLUXCOMP_BENCH_TARGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(20))
}

fn report(id: &str, bencher: &Bencher) {
    let Some(med) = bencher.median() else {
        eprintln!("bench  {id:<44} (no samples)");
        return;
    };
    let ns = med.as_nanos() as f64;
    let (value, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    eprintln!(
        "bench  {id:<44} {value:>10.3} {unit}/iter  ({} samples)",
        bencher.samples.len()
    );
}

/// The top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.effective_sample_size(),
        };
        f(&mut b);
        report(id, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: None,
            parent: self,
        }
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            11
        } else {
            self.sample_size
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: Option<usize>,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(3));
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self
                .sample_size
                .unwrap_or_else(|| self.parent.effective_sample_size()),
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group (formatting parity with real criterion).
    pub fn finish(self) {}
}

/// Declares the function `criterion_main!` calls.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        std::env::set_var("FLUXCOMP_BENCH_TARGET_MS", "1");
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("unit/counter", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_sample_size_and_finish() {
        std::env::set_var("FLUXCOMP_BENCH_TARGET_MS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("work", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert!(runs >= 3);
    }
}
