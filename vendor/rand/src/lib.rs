//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`] over the integer and float range types that appear
//! in the simulators and tests.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — not the
//! ChaCha12 of the real `StdRng`, but statistically strong, fast, and
//! fully deterministic for a given seed, which is the property every
//! caller in this workspace actually relies on.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full range
/// (the stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be drawn uniformly from.
///
/// Generic over the element type (rather than an associated type) so the
/// caller's target type drives literal inference, as in the real crate:
/// `let x: i64 = rng.gen_range(0..4_000);` makes the range an
/// `ops::Range<i64>`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::draw(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample(rng) as f32
    }
}

/// High-level drawing interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // A xoshiro state of all zeros is a fixed point; splitmix64
            // cannot produce four zero outputs in a row, but keep the
            // guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_inside() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_inside_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_draws_bools_and_ints() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut trues = 0;
        for _ in 0..1_000 {
            if rng.gen::<bool>() {
                trues += 1;
            }
        }
        assert!((300..700).contains(&trues), "{trues}");
        let _: u64 = rng.gen();
        let _: u32 = rng.gen();
        let _: f64 = rng.gen();
    }
}
