//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), numeric range strategies,
//! `prop::collection::vec`, `any::<T>()` for primitives and small
//! tuples, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, deliberate for an offline test
//! vendoring:
//!
//! * **no shrinking** — a failing case panics with the generated inputs
//!   in the message instead of a minimised counterexample;
//! * **derived seeding** — each test function draws its cases from a
//!   generator seeded from the test's name (FNV-1a), so runs are fully
//!   deterministic and `*.proptest-regressions` files are ignored;
//! * the default case count is 256.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; unused.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            failure_persistence: None,
        }
    }
}

/// Why a single generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// A source of random values of one type.
///
/// Strategies here are direct samplers — no value tree, no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.gen_range(-300.0f64..300.0);
        let v: f64 = rng.gen_range(1.0f64..10.0);
        let s = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        s * v * 10f64.powf(mag / 10.0)
    }
}

macro_rules! arbitrary_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arbitrary_tuple!(A);
arbitrary_tuple!(A, B);
arbitrary_tuple!(A, B, C);
arbitrary_tuple!(A, B, C, D);

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Anything of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

strategy_tuple!(A: 0);
strategy_tuple!(A: 0, B: 1);
strategy_tuple!(A: 0, B: 1, C: 2);
strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

/// The `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Acceptable length specifications for [`vec`]: an exact
        /// `usize`, a `Range<usize>`, or a `RangeInclusive<usize>`.
        pub trait IntoSizeRange {
            /// Draws a length.
            fn draw_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn draw_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn draw_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn draw_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// A `Vec` of `element` values with a length drawn from `size`.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// Strategy produced by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.draw_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy, TestCaseError,
    };
}

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// FNV-1a of the test name: the per-test deterministic seed.
#[doc(hidden)]
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                lhs
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The property-test block macro.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]
///
///     /// Doc comment.
///     #[test]
///     fn name(x in 0i64..100, v in prop::collection::vec(0.0f64..1.0, 2..40)) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng: $crate::TestRng = <$crate::TestRng as $crate::__SeedableRng>::seed_from_u64(
                $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).max(1000) {
                    panic!("proptest: too many prop_assume! rejections");
                }
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {msg}\n  inputs: {inputs}");
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 0i64..100, f in -1.0f64..1.0) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(0u8..3, 2..40)) {
            prop_assert!(v.len() >= 2 && v.len() < 40);
            prop_assert!(v.iter().all(|&b| b < 3));
        }

        #[test]
        fn any_tuples(pair in prop::collection::vec(any::<(bool, bool)>(), 1..5), b in any::<bool>()) {
            prop_assert!(!pair.is_empty());
            let _ = b;
        }

        #[test]
        fn assume_skips(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_honoured(x in 0i64..1000) {
            prop_assert!(x >= 0);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "proptest case failed")]
        fn failures_panic_with_inputs(x in 5i64..6) {
            prop_assert_eq!(x, 0, "x should never be {}", x);
        }
    }
}
