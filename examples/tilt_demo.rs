//! Tilt sensitivity of the two-axis compass and the three-axis remedy —
//! extension experiment X2 as an interactive-style walkthrough.
//!
//! ```text
//! cargo run --example tilt_demo
//! ```

use fluxcomp::compass::tilt::{body_field, tilt_compensated_heading, two_axis_heading, Attitude};
use fluxcomp::fluxgate::earth::{EarthField, Location};
use fluxcomp::units::Degrees;

fn main() {
    let _obs = fluxcomp::obs::init_from_env();
    let field = EarthField::at(Location::Enschede);
    println!(
        "Enschede: {:.0} µT total, {:.0}° dip -> only {:.1} µT horizontal\n",
        field.total().as_microtesla(),
        field.inclination().value(),
        field.horizontal_magnitude().as_microtesla()
    );

    let truth = Degrees::new(60.0);
    println!("true heading {truth}, walking with the watch tilted:\n");
    println!(
        "{:>7} {:>6} {:>16} {:>18}",
        "pitch", "roll", "2-axis reading", "3-axis compensated"
    );
    for (p, r) in [
        (0.0, 0.0),
        (5.0, 0.0),
        (10.0, 0.0),
        (10.0, 10.0),
        (20.0, -15.0),
    ] {
        let att = Attitude::new(Degrees::new(p), Degrees::new(r));
        let naive = two_axis_heading(&field, truth, att);
        let (bx, by, bz) = body_field(&field, truth, att);
        let compensated = tilt_compensated_heading(bx, by, bz, att);
        println!(
            "{:>6.0}° {:>5.0}° {:>13.1}° ({:>+6.1}°) {:>12.2}° ({:>+5.2}°)",
            p,
            r,
            naive.value(),
            naive.signed_error_from(truth).value(),
            compensated.value(),
            compensated.signed_error_from(truth).value(),
        );
    }
    println!(
        "\nAt 67° dip the vertical field is {:.1} µT — 2.4x the horizontal\n\
         part — so every degree of tilt leaks ~2.4° worth of field into\n\
         the sensing plane. The fix is a third fluxgate (the same element,\n\
         mounted vertically on the MCM) plus the de-rotation above.",
        field.vertical_component().as_microtesla()
    );
}
