//! The digital implementation flow, end to end: synthesise the Fig. 8
//! CORDIC kernel to gates, simulate it event-driven, equivalence-check
//! it against the behavioural RTL, and floor-plan the result — the
//! software rendition of the paper's Compass-Design-Automation + Ocean
//! flow.
//!
//! ```text
//! cargo run --release --example gate_level_flow
//! ```

use fluxcomp::rtl::cordic::CordicArctan;
use fluxcomp::rtl::cordic_netlist::cordic_kernel_netlist;
use fluxcomp::rtl::netsim::GateSim;
use fluxcomp::sog::fabric::PowerDomain;
use fluxcomp::sog::floorplan::{Block, Floorplan};
use fluxcomp::units::Degrees;

fn main() {
    let _obs = fluxcomp::obs::init_from_env();
    println!("1. synthesis: unrolled 8-iteration CORDIC kernel, 24-bit datapath");
    let nets = cordic_kernel_netlist(24, 18, 8);
    let stats = nets.netlist.stats();
    println!(
        "   {} gates, {} flip-flops, {} transistors\n",
        stats.combinational, stats.flip_flops, stats.transistors
    );

    println!("2. gate-level simulation + equivalence vs the behavioural RTL:");
    let mut sim = GateSim::new(nets.netlist.clone());
    let cordic = CordicArctan::paper();
    let mut checked = 0;
    let mut worst = 0.0f64;
    for k in (0..900).step_by(45) {
        let truth = k as f64 / 10.0;
        let x = (20_000.0 * Degrees::new(truth).cos()).round() as i64;
        let y = (20_000.0 * Degrees::new(truth).sin()).round() as i64;
        if x <= 0 || y < 0 {
            continue;
        }
        sim.set_bus(&nets.x_in, x);
        sim.set_bus(&nets.y_in, y);
        sim.settle();
        let gate_angle = sim.bus_value_signed(&nets.angle_out);
        let rtl_angle = cordic.first_quadrant_q8(x, y);
        assert_eq!(gate_angle, rtl_angle, "equivalence failure at {truth}°");
        let err = (gate_angle as f64 / 256.0 - truth).abs();
        worst = worst.max(err);
        checked += 1;
        println!(
            "   {truth:>5.1}° -> gate {:>8.3}°  rtl {:>8.3}°  (match)",
            gate_angle as f64 / 256.0,
            rtl_angle as f64 / 256.0
        );
    }
    println!("   {checked} vectors checked, worst angle residual {worst:.3}°\n");

    println!("3. activity: {} evaluation events so far\n", sim.events());

    println!("4. floorplan the kernel onto a Sea-of-Gates quarter:");
    let mut fp = Floorplan::fishbone();
    // Regular datapaths route far better than random logic; 0.55 is a
    // fair utilisation for a bit-sliced CORDIC (vs 0.30 chip average).
    let block = Block::from_transistors(
        "cordic_kernel",
        stats.transistors,
        0.55,
        PowerDomain::Digital,
    );
    match fp.place(block) {
        Ok(q) => println!(
            "   placed in quarter {q}; occupancy {:.1} %",
            fp.array().quarters()[q].occupancy() * 100.0
        ),
        Err(e) => println!("   does not fit: {e}"),
    }
}
