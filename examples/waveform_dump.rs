//! Regenerates the paper's waveform figures as ASCII scope shots and
//! data files:
//!
//! * **Fig. 3** — the pulse-position principle: excitation current, core
//!   pickup pulses, detector output, with and without an external field;
//! * **Fig. 4** — the "real sensor data" view: excitation-coil voltage
//!   showing the impedance change at saturation.
//!
//! Writes `fig3_no_field.csv`, `fig3_with_field.csv` and a combined
//! `waveforms.vcd` next to the binary, and renders the traces to the
//! terminal.
//!
//! ```text
//! cargo run --example waveform_dump
//! ```

use fluxcomp::afe::frontend::{FrontEnd, FrontEndConfig};
use fluxcomp::units::{AmperePerMeter, Tesla, MU_0};
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = fluxcomp::obs::init_from_env();
    let mut config = FrontEndConfig::paper_design();
    config.settle_periods = 0;
    config.measure_periods = 2; // two scope periods, like Fig. 4
    let fe = FrontEnd::new(config)?;

    let h_earth = AmperePerMeter::new(Tesla::from_microtesla(15.0).value() / MU_0);

    let no_field = fe.run(AmperePerMeter::ZERO);
    let with_field = fe.run(h_earth);

    println!("=== Fig. 3 / Fig. 4 reproduction: no external field ===\n");
    for name in ["i_exc", "v_pickup", "v_exc", "detector"] {
        if let Some(art) = no_field.traces.to_ascii(name, 100, 10) {
            println!("{art}");
        }
    }
    println!("=== with a 15 µT external field (pulses shift!) ===\n");
    for name in ["v_pickup", "detector"] {
        if let Some(art) = with_field.traces.to_ascii(name, 100, 10) {
            println!("{art}");
        }
    }
    println!(
        "duty cycle: {:.4} (no field) -> {:.4} (15 µT): the pulse-position shift",
        no_field.duty, with_field.duty
    );

    fs::write("fig3_no_field.csv", no_field.traces.to_csv())?;
    fs::write("fig3_with_field.csv", with_field.traces.to_csv())?;
    fs::write("waveforms.vcd", with_field.traces.to_vcd())?;
    println!("\nwrote fig3_no_field.csv, fig3_with_field.csv, waveforms.vcd");
    Ok(())
}
