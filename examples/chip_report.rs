//! The Sea-of-Gates occupancy report (paper §2 / experiment E6):
//! maps the synthesised digital inventory and the analogue macros onto
//! the 200k-transistor fishbone array and prints the floorplan —
//! the reproduction of "the digital part occupies 3 quarters fully and
//! the analogue part 1 quarter for less than 15 %".
//!
//! ```text
//! cargo run --example chip_report
//! ```

use fluxcomp::compass::chip::paper_chip;
use fluxcomp::rtl::synth::{full_compass_inventory, inventory_total};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = fluxcomp::obs::init_from_env();
    println!("digital-section transistor inventory (synthesised + estimated):\n");
    let inventory = full_compass_inventory();
    for entry in &inventory {
        println!(
            "  {:<28} {:>7} transistors {}",
            entry.name,
            entry.transistors,
            if entry.synthesized {
                "(netlist)"
            } else {
                "(estimate)"
            }
        );
    }
    println!(
        "  {:<28} {:>7} transistors\n",
        "TOTAL",
        inventory_total(&inventory)
    );

    let report = paper_chip()?;
    println!("{}", report.render());
    Ok(())
}
