//! Quickstart: build the paper's compass and take a fix.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fluxcomp::compass::{Compass, CompassConfig};
use fluxcomp::units::Degrees;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = fluxcomp::obs::init_from_env();
    // The paper's design point: 12 mA p-p @ 8 kHz excitation, adapted
    // fluxgate sensors, pulse-position detector, 4.194304 MHz counter,
    // 8-iteration CORDIC.
    let mut compass = Compass::new(CompassConfig::paper_design())?;

    println!("fluxcomp — the 1997 integrated fluxgate compass, in software\n");
    println!(
        "peak excitation field: {:.0} A/m (2x the core's saturation field)",
        compass.peak_excitation_field().value()
    );
    println!(
        "counter clock: {} Hz, CORDIC iterations: {}\n",
        compass.config().clock.master().value(),
        compass.config().cordic_iterations
    );

    println!(
        "{:>12} {:>12} {:>8} {:>8} {:>8}",
        "true", "measured", "err", "x_cnt", "y_cnt"
    );
    for deg in [0.0, 45.0, 123.0, 200.0, 300.0, 359.0] {
        let truth = Degrees::new(deg);
        let reading = compass.measure_heading(truth);
        let err = reading.heading.signed_error_from(truth);
        println!(
            "{:>11}° {:>11.2}° {:>7.2}° {:>8} {:>8}",
            deg,
            reading.heading.value(),
            err.value(),
            -reading.x.count,
            -reading.y.count,
        );
    }

    // The display driver shows the last fix like the watch LCD would.
    println!("\nLCD after the last fix:");
    print!("{}", compass.display().frame().to_ascii());
    Ok(())
}
