//! MCM boundary-scan interconnect test (paper §2 / [Oli96] /
//! experiment E10): assemble the module, read its IDCODE through the
//! TAP, run the EXTEST counting-sequence test, then break a trace and a
//! pair of traces and watch the test find them.
//!
//! ```text
//! cargo run --example boundary_scan_demo
//! ```

use fluxcomp::mcm::interconnect_test::InterconnectTester;
use fluxcomp::mcm::substrate::{Fault, McmAssembly};
use fluxcomp::mcm::TapController;

fn main() {
    let _obs = fluxcomp::obs::init_from_env();
    let module = McmAssembly::paper_module();
    println!(
        "MCM: SoG die + 2 fluxgate sensor dies, {} substrate nets",
        module.nets().len()
    );
    for (i, net) in module.nets().iter().enumerate() {
        println!(
            "  net {i}: {:<10} {:?} -> {:?}",
            net.name, net.driver, net.receivers
        );
    }
    for (name, p) in module.passives() {
        println!("  substrate passive: {name} = {p:?}");
    }

    // Read the IDCODE through the TAP like a tester would.
    let mut tap = TapController::new(module.nets().len());
    tap.reset();
    let obs = vec![false; module.nets().len()];
    tap.clock(false, false, &obs);
    tap.clock(true, false, &obs);
    tap.clock(false, false, &obs);
    tap.clock(false, false, &obs);
    let mut idcode: u32 = 0;
    for bit in 0..32 {
        if let Some(tdo) = tap.clock(false, false, &obs) {
            idcode |= (tdo as u32) << bit;
        }
    }
    println!("\nIDCODE read through TAP: 0x{idcode:08X}");

    let tester = InterconnectTester::new(module.nets().len());
    let report = tester.run(&module);
    println!(
        "\nfault-free module: {} patterns, result: {}",
        report.pattern_count(),
        if report.passed() { "PASS" } else { "FAIL" }
    );

    let mut broken = module.clone();
    broken.inject(Fault::Open { net: 2 });
    let report = tester.run(&broken);
    println!(
        "open on net 2 ({}): result {}, failing nets {:?}",
        broken.nets()[2].name,
        if report.passed() { "PASS" } else { "FAIL" },
        report.failing_nets
    );

    let mut shorted = module.clone();
    shorted.inject(Fault::Short { a: 4, b: 5 });
    let report = tester.run(&shorted);
    println!(
        "short between nets 4 and 5: result {}, failing nets {:?}",
        if report.passed() { "PASS" } else { "FAIL" },
        report.failing_nets
    );

    let coverage = tester.coverage(&module);
    println!(
        "\nsingle-fault coverage over all opens + adjacent shorts: {:.0} %",
        coverage * 100.0
    );
}
