//! The field-magnitude insensitivity claim (paper §4 / experiment E4):
//! "the calculation method is insensitive to local variations of the
//! magnitude of the earth's magnetic field, which is necessary since the
//! magnitude varies between 25 µT in South America and 65 µT near the
//! south pole."
//!
//! This example carries the compass to every predefined location and
//! sweeps headings at each — the accuracy should stay within the 1° spec
//! wherever enough *horizontal* field remains.
//!
//! ```text
//! cargo run --release --example world_tour
//! FLUXCOMP_OBS=json cargo run --release --example world_tour   # + profile on stderr
//! ```

use fluxcomp::compass::{evaluate::sweep_headings, CompassConfig, CompassDesign};
use fluxcomp::exec::ExecPolicy;
use fluxcomp::fluxgate::earth::Location;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // FLUXCOMP_OBS=json|text dumps the recorded profile (per-stage
    // compass spans, msim/exec counters) to stderr when `_obs` drops.
    let _obs = fluxcomp::obs::init_from_env();
    // One worker per core (override with FLUXCOMP_THREADS); the sweep
    // statistics are bit-identical to a serial run either way.
    let policy = ExecPolicy::auto();
    println!(
        "world tour: heading accuracy vs local field magnitude ({} sweep workers)\n",
        policy.threads()
    );
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>6}",
        "location", "B_total", "B_horiz", "max err", "rms err", "spec"
    );
    for location in Location::ALL {
        let design = CompassDesign::new(CompassConfig::at_location(location))?;
        let stats = sweep_headings(&design, 16, &policy);
        let field = design.config().field;
        println!(
            "{:<14} {:>6.0}µT {:>8.1}µT {:>9.2}° {:>9.2}° {:>6}",
            format!("{location:?}"),
            field.total().as_microtesla(),
            field.horizontal_magnitude().as_microtesla(),
            stats.max_error.value(),
            stats.rms_error.value(),
            if stats.meets_one_degree_spec() {
                "OK"
            } else {
                "MISS"
            }
        );
    }
    println!(
        "\nNote: near the magnetic pole the dip angle leaves only ~5.7 µT of\n\
         horizontal field — counter quantisation grows accordingly; everywhere\n\
         else the ratio-based CORDIC keeps the heading inside the paper's 1°."
    );
    Ok(())
}
