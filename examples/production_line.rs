//! A production line for compass modules: manufacture a batch with
//! sampled process variation plus occasional assembly defects, push
//! every unit through the three-stage test flow, and print the yield
//! Pareto — the manufacturing view of the paper's "broad
//! specifications" design philosophy.
//!
//! ```text
//! cargo run --release --example production_line
//! ```

use fluxcomp::compass::production::{production_test, RejectReason};
use fluxcomp::compass::CompassConfig;
use fluxcomp::exec::ExecPolicy;
use fluxcomp::fluxgate::core_model::CoreModel;
use fluxcomp::mcm::substrate::{Fault, McmAssembly};
use fluxcomp::msim::montecarlo::{run_monte_carlo, Tolerance};
use fluxcomp::units::{eng, Ampere, Degrees};

fn main() {
    let _obs = fluxcomp::obs::init_from_env();
    const BATCH: usize = 40;
    println!("manufacturing a batch of {BATCH} compass modules…\n");

    // Process variation per unit: H_K, drive amplitude, comparator
    // offset, gain mismatch, misalignment — the X3 tolerance set.
    let tolerances = [
        Tolerance::Gaussian { rel_sigma: 0.05 },
        Tolerance::Gaussian { rel_sigma: 0.02 },
        Tolerance::Gaussian { rel_sigma: 0.04 },
        Tolerance::Gaussian { rel_sigma: 0.01 },
        Tolerance::Gaussian { rel_sigma: 0.01 },
    ];

    let mut shipped = 0usize;
    let mut rej_interconnect = 0usize;
    let mut rej_bist = 0usize;
    let mut rej_functional = 0usize;

    // Drive the batch through the Monte-Carlo sampler so each unit's
    // process corner is reproducible; the metric we record is the test
    // outcome encoded as a small integer. Per-unit seeding means the
    // pooled run below is bit-identical to a serial one.
    let result = run_monte_carlo(
        &tolerances,
        BATCH,
        0xFAB,
        &ExecPolicy::auto(),
        |factors: &Vec<f64>| {
            // Build the unit.
            let mut cfg = CompassConfig::paper_design();
            cfg.pair.element.core = CoreModel::anhysteretic(
                cfg.pair.element.core.bsat(),
                cfg.pair.element.core.hk() * factors[0],
            );
            cfg.frontend.excitation = cfg
                .frontend
                .excitation
                .with_amplitude_pp(Ampere::new(12e-3 * factors[1]));
            cfg.frontend.detector.offset = fluxcomp::units::Volt::new((factors[2] - 1.0) * 0.05);
            cfg.pair.gain_mismatch = factors[3];
            cfg.pair.misalignment = Degrees::new((factors[4] - 1.0) * 20.0);
            cfg.frontend.sensor = cfg.pair.element;

            // Occasional assembly defects (roughly a fifth of modules
            // get an open or a short), deterministically derived from
            // the sampled factors so the run is reproducible.
            let defect_dice = (factors[0] * 1e6) as u64 % 10;
            let mut module = McmAssembly::paper_module();
            if defect_dice == 3 {
                module.inject(Fault::Open {
                    net: (factors[1] * 1e6) as usize % 9,
                });
            } else if defect_dice == 7 {
                let a = (factors[2] * 1e6) as usize % 8;
                module.inject(Fault::Short { a, b: a + 1 });
            }

            let outcome = production_test(&module, &cfg);
            match outcome.reject {
                None => 0.0,
                Some(RejectReason::Interconnect { .. }) => 1.0,
                Some(RejectReason::SelfTest { .. }) => 2.0,
                Some(RejectReason::Functional { .. }) => 3.0,
            }
        },
        |m| m == 0.0,
    );

    for &m in &result.metrics {
        match m as u32 {
            0 => shipped += 1,
            1 => rej_interconnect += 1,
            2 => rej_bist += 1,
            _ => rej_functional += 1,
        }
    }

    println!("test-flow Pareto over {BATCH} units:");
    println!(
        "  shipped:               {shipped:>3}  ({:.0} %)",
        100.0 * shipped as f64 / BATCH as f64
    );
    println!("  rejected, interconnect: {rej_interconnect:>2}  (assembly opens/shorts, diagnosed)");
    println!("  rejected, self-test:    {rej_bist:>2}  (drive/detector faults)");
    println!("  rejected, functional:   {rej_functional:>2}  (out-of-spec accuracy)");
    println!();
    println!(
        "context: excitation {} at {}, counter clock {}, spec 1° of heading",
        eng(12e-3, "A", 2),
        eng(8_000.0, "Hz", 2),
        eng(4_194_304.0, "Hz", 7),
    );
}
