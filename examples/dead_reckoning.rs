//! Dead reckoning with the compass watch: walk a planned route steering
//! by the compass and see where you actually end up — the navigation
//! use case the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example dead_reckoning
//! ```

use fluxcomp::compass::mission::{square_route, walk_route, Leg};
use fluxcomp::compass::{Compass, CompassConfig};
use fluxcomp::fluxgate::earth::MagneticDisturbance;
use fluxcomp::units::{Degrees, Tesla};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = fluxcomp::obs::init_from_env();
    println!("dead reckoning: 4 km square route (1 km per side)\n");

    let mut compass = Compass::new(CompassConfig::paper_design())?;
    let result = walk_route(&mut compass, &square_route(1_000.0));
    println!("clean compass:");
    println!(
        "  closing error: {:.1} m ({:.3} % of distance)",
        result.position_error(),
        result.relative_error() * 100.0
    );

    let mut cfg = CompassConfig::paper_design();
    cfg.pair.disturbance =
        MagneticDisturbance::hard(Tesla::from_microtesla(4.0), Tesla::from_microtesla(-2.0));
    let mut disturbed = Compass::new(cfg)?;
    let result = walk_route(&mut disturbed, &square_route(1_000.0));
    println!("\nwith 4 µT of hard iron on the platform (no calibration):");
    println!(
        "  closing error: {:.1} m ({:.2} % of distance)",
        result.position_error(),
        result.relative_error() * 100.0
    );
    println!(
        "  indicated headings on the four legs: {}",
        result
            .indicated_headings
            .iter()
            .map(|h| format!("{:.1}°", h.value()))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // A longer expedition: 10 random-ish legs.
    println!("\nexpedition: ten legs, 12.3 km total");
    let route: Vec<Leg> = [
        (37.0, 1500.0),
        (85.0, 900.0),
        (152.0, 2000.0),
        (200.0, 800.0),
        (231.0, 1100.0),
        (270.0, 1700.0),
        (305.0, 1300.0),
        (340.0, 600.0),
        (20.0, 1400.0),
        (65.0, 1000.0),
    ]
    .into_iter()
    .map(|(h, d)| Leg::new(Degrees::new(h), d))
    .collect();
    let mut compass = Compass::new(CompassConfig::paper_design())?;
    let result = walk_route(&mut compass, &route);
    println!(
        "  intended endpoint: ({:+.0} m N, {:+.0} m E)",
        result.intended.north, result.intended.east
    );
    println!(
        "  reached endpoint:  ({:+.0} m N, {:+.0} m E)",
        result.reached.north, result.reached.east
    );
    println!(
        "  error {:.1} m over {:.1} km — the paper's 1° target keeps dead\n  reckoning useful over a day's hike.",
        result.position_error(),
        result.total_distance / 1000.0
    );
    Ok(())
}
