//! The compass-watch scenario ([Hol94], the project the paper grew out
//! of): a wristwatch that alternates between showing the time and the
//! heading, taking one compass fix per simulated second and living off
//! the shared 4.194304 MHz = 2²² Hz clock tree.
//!
//! ```text
//! cargo run --example compass_watch
//! ```

use fluxcomp::afe::power::{PowerModel, Schedule};
use fluxcomp::compass::{Compass, CompassConfig};
use fluxcomp::rtl::lcd::DisplayMode;
use fluxcomp::rtl::watch::{TimeOfDay, Watch};
use fluxcomp::rtl::watch_extras::{Alarm, CalendarDate, Stopwatch};
use fluxcomp::units::Degrees;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _obs = fluxcomp::obs::init_from_env();
    let mut compass = Compass::new(CompassConfig::paper_design())?;
    let mut watch = Watch::new();
    watch.set_time(TimeOfDay::new(9, 41, 57));
    let mut date = CalendarDate::new(1997, 3, 17); // ED&TC week
    let mut alarm = Alarm::new();
    alarm.arm(TimeOfDay::new(9, 42, 0));
    let mut stopwatch = Stopwatch::new();
    stopwatch.start();

    // The wearer slowly turns while walking.
    let mut heading = 72.0;

    println!("compass-watch demo: one fix per second, display alternates\n");
    for second in 0..6 {
        watch.tick_second();
        heading = (heading + 14.0) % 360.0;
        let reading = compass.measure_heading(Degrees::new(heading));

        compass.display_mut().latch_time(watch.time());
        compass.display_mut().set_mode(if second % 2 == 0 {
            DisplayMode::Time
        } else {
            DisplayMode::Direction
        });

        if alarm.tick(watch.time()) {
            println!("  *** BEEP BEEP — {} alarm ***", watch.time());
            alarm.silence();
        }
        for _ in 0..128 {
            stopwatch.tick_128hz();
        }
        println!(
            "{} {}   true heading {:>6.1}°   measured {:>6.1}°   lap {:>4.1} s",
            date,
            watch.time(),
            heading,
            reading.heading.value(),
            stopwatch.elapsed_seconds()
        );
        print!("{}", compass.display().frame().to_ascii());
        println!();
    }

    date.advance_day();
    println!("(next day on the calendar: {date})\n");

    // The power story (paper §2/§4): the sequencer's duty-cycled
    // schedule vs always-on.
    let pm = PowerModel::at_5v();
    let fix_duty = compass.sequencer().analog_duty_per_fix(8_000.0); // one fix per second at 8 kHz
    let always = pm.average_power(&Schedule::paper_multiplexed());
    let pulsed = pm.average_power(&Schedule::duty_cycled(fix_duty));
    println!(
        "average power, measuring continuously: {:.2} mW",
        always.value() * 1e3
    );
    println!(
        "average power, one fix per second:     {:.3} mW  ({:.0}x less)",
        pulsed.value() * 1e3,
        always.value() / pulsed.value()
    );
    Ok(())
}
