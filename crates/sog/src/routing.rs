//! Global-routing feasibility estimation.
//!
//! The fishbone SoG routes in two metal layers, one of which also forms
//! the capacitor plates and the power fishbone — horizontal track supply
//! is the scarce resource. This module estimates routing demand from a
//! [`DetailedPlacement`]'s net bounding boxes and checks it against a
//! per-row track capacity: the quantitative backbone of the ~30 %
//! utilisation figure the floorplan uses (experiment E6's sweep shows
//! what happens when you assume better).

use crate::placement::DetailedPlacement;

/// The routing resource model of the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingModel {
    /// Horizontal routing tracks available over each cell row.
    pub tracks_per_row: u32,
}

impl RoutingModel {
    /// A two-metal mid-90s SoG: roughly a dozen usable horizontal
    /// tracks per row once power and capacitor shadows are taken out.
    pub fn two_metal_sog() -> Self {
        Self { tracks_per_row: 12 }
    }
}

impl Default for RoutingModel {
    fn default() -> Self {
        Self::two_metal_sog()
    }
}

/// The outcome of a routability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingReport {
    /// Estimated track demand per row (nets whose bounding box spans
    /// the row).
    pub demand_per_row: Vec<u32>,
    /// The capacity each row offers.
    pub capacity: u32,
    /// Rows whose demand exceeds capacity.
    pub overflowed_rows: Vec<u32>,
}

impl RoutingReport {
    /// `true` when every row fits its demand.
    pub fn routable(&self) -> bool {
        self.overflowed_rows.is_empty()
    }

    /// Peak demand over all rows.
    pub fn peak_demand(&self) -> u32 {
        self.demand_per_row.iter().copied().max().unwrap_or(0)
    }

    /// Worst overflow ratio (peak demand / capacity).
    pub fn congestion_ratio(&self) -> f64 {
        self.peak_demand() as f64 / self.capacity as f64
    }
}

impl RoutingModel {
    /// Analyses a placement: per-row demand vs capacity.
    pub fn analyze(&self, placement: &DetailedPlacement) -> RoutingReport {
        // Reuse the placement's per-row congestion counting, but keep a
        // full vector rather than the maximum.
        let rows = placement_row_count(placement);
        let mut demand = vec![0u32; rows as usize];
        for net in placement_nets(placement) {
            if net.len() < 2 {
                continue;
            }
            let min_y = net.iter().map(|&c| placement.site(c).row).min().unwrap();
            let max_y = net.iter().map(|&c| placement.site(c).row).max().unwrap();
            for r in min_y..=max_y {
                demand[r as usize] += 1;
            }
        }
        let overflowed_rows = demand
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d > self.tracks_per_row)
            .map(|(r, _)| r as u32)
            .collect();
        RoutingReport {
            demand_per_row: demand,
            capacity: self.tracks_per_row,
            overflowed_rows,
        }
    }
}

// -- placement introspection helpers -----------------------------------------
// (kept here so the placement type stays free of routing concepts)

fn placement_row_count(p: &DetailedPlacement) -> u32 {
    (0..p.cells().len())
        .map(|i| p.site(i).row)
        .max()
        .map(|r| r + 1)
        .unwrap_or(0)
}

fn placement_nets(p: &DetailedPlacement) -> Vec<Vec<usize>> {
    p.net_cell_lists()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{DetailedPlacement, PlaceCell, PlaceNet};

    fn local_nets(n: usize) -> (Vec<PlaceCell>, Vec<PlaceNet>) {
        let cells = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let nets = (0..n - 1)
            .map(|k| PlaceNet {
                cells: vec![k, k + 1],
            })
            .collect();
        (cells, nets)
    }

    #[test]
    fn local_placement_is_routable() {
        let (cells, nets) = local_nets(16);
        let p = DetailedPlacement::initial(4, 4, cells, nets);
        let report = RoutingModel::two_metal_sog().analyze(&p);
        assert!(report.routable(), "demand {:?}", report.demand_per_row);
        assert!(report.congestion_ratio() <= 1.0);
    }

    #[test]
    fn dense_crossing_nets_overflow() {
        // Every cell in row 0 talks to every cell in the last row: the
        // middle rows carry all of it.
        let n = 32;
        let cells: Vec<PlaceCell> = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let mut nets = Vec::new();
        for a in 0..8 {
            for b in 24..32 {
                nets.push(PlaceNet { cells: vec![a, b] });
            }
        }
        let p = DetailedPlacement::initial(4, 8, cells, nets);
        let model = RoutingModel::two_metal_sog();
        let report = model.analyze(&p);
        assert!(!report.routable());
        assert!(report.peak_demand() > model.tracks_per_row);
        assert!(report.congestion_ratio() > 1.0);
        // The middle rows are the congested ones.
        assert!(report.overflowed_rows.contains(&1) || report.overflowed_rows.contains(&2));
    }

    #[test]
    fn improvement_reduces_demand() {
        // Scrambled connectivity: nets connect k and (k+7)%n.
        let n = 24;
        let cells: Vec<PlaceCell> = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let nets: Vec<PlaceNet> = (0..n)
            .map(|k| PlaceNet {
                cells: vec![k, (k + 7) % n],
            })
            .collect();
        let mut p = DetailedPlacement::initial(6, 4, cells, nets);
        let model = RoutingModel::two_metal_sog();
        let before = model.analyze(&p).demand_per_row.iter().sum::<u32>();
        p.improve(10);
        let after = model.analyze(&p).demand_per_row.iter().sum::<u32>();
        assert!(after <= before, "demand grew: {before} -> {after}");
    }

    #[test]
    fn more_tracks_make_dense_designs_routable() {
        let n = 32;
        let cells: Vec<PlaceCell> = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let mut nets = Vec::new();
        for a in 0..8 {
            for b in 24..32 {
                nets.push(PlaceNet { cells: vec![a, b] });
            }
        }
        let p = DetailedPlacement::initial(4, 8, cells, nets);
        assert!(!RoutingModel { tracks_per_row: 12 }.analyze(&p).routable());
        assert!(RoutingModel { tracks_per_row: 80 }.analyze(&p).routable());
    }
}
