//! Cell-level cost library for mapping the compass onto the array.
//!
//! Digital blocks arrive as exact transistor counts from the `rtl`
//! crate's synthesised netlists. The **analogue** blocks (\[Haa95\]/\[Don94\]
//! style analogue-on-digital-SoG design) are standard-cell estimates:
//! mid-90s SoG analogue blocks are small in transistor count but commit
//! extra sites for matching, guard rings and the metal-metal capacitors.

use crate::fabric::{CapacitorPlan, PowerDomain};
use crate::floorplan::Block;
use fluxcomp_units::si::Farad;

/// An analogue macro with its site cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalogMacro {
    /// The triangular waveform generator of Fig. 7 — including its
    /// visually dominant 10 pF metal capacitor.
    TriangleOscillator,
    /// One balanced-differential V-I converter channel.
    ViConverter,
    /// The two-comparator pulse-position detector.
    PulseDetector,
    /// The dc-offset measurement/correction servo.
    OffsetCorrection,
    /// Bias generation shared by the analogue section.
    BiasGenerator,
}

impl AnalogMacro {
    /// All macros of the paper's analogue section: one oscillator (the
    /// multiplexing argument), two V-I channels, one detector, offset
    /// correction and bias.
    pub fn paper_analog_section() -> Vec<AnalogMacro> {
        vec![
            AnalogMacro::TriangleOscillator,
            AnalogMacro::ViConverter,
            AnalogMacro::ViConverter,
            AnalogMacro::PulseDetector,
            AnalogMacro::OffsetCorrection,
            AnalogMacro::BiasGenerator,
        ]
    }

    /// Active-device site cost (transistor pairs committed for devices,
    /// matching and guard rings — not counting plate capacitors).
    pub fn active_sites(self) -> u32 {
        match self {
            AnalogMacro::TriangleOscillator => 300,
            AnalogMacro::ViConverter => 350,
            AnalogMacro::PulseDetector => 250,
            AnalogMacro::OffsetCorrection => 200,
            AnalogMacro::BiasGenerator => 150,
        }
    }

    /// On-chip capacitor the macro carries, if any.
    pub fn capacitor(self) -> Option<Farad> {
        match self {
            AnalogMacro::TriangleOscillator => Some(Farad::new(10e-12)),
            AnalogMacro::OffsetCorrection => Some(Farad::new(5e-12)),
            _ => None,
        }
    }

    /// Total committed sites: active devices plus capacitor shadow.
    pub fn total_sites(self) -> u32 {
        let cap_sites = self
            .capacitor()
            .map(|c| CapacitorPlan::for_value(c).sites())
            .unwrap_or(0);
        self.active_sites() + cap_sites
    }

    /// The macro as a placeable block.
    pub fn to_block(self) -> Block {
        let name = match self {
            AnalogMacro::TriangleOscillator => "osc_triangle",
            AnalogMacro::ViConverter => "vi_converter",
            AnalogMacro::PulseDetector => "pulse_detector",
            AnalogMacro::OffsetCorrection => "offset_correction",
            AnalogMacro::BiasGenerator => "bias_generator",
        };
        Block::new(name, self.total_sites(), PowerDomain::Analog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oscillator_is_dominated_by_its_capacitor() {
        // Fig. 7: the 10 pF capacitor is "clearly visible in the upper
        // half of the picture" — i.e. it is comparable to or larger than
        // the active area.
        let osc = AnalogMacro::TriangleOscillator;
        let cap_sites = CapacitorPlan::for_value(osc.capacitor().unwrap()).sites();
        assert!(cap_sites >= osc.active_sites());
        assert_eq!(osc.total_sites(), osc.active_sites() + cap_sites);
    }

    #[test]
    fn paper_section_has_one_oscillator_two_vi() {
        let section = AnalogMacro::paper_analog_section();
        let oscs = section
            .iter()
            .filter(|m| **m == AnalogMacro::TriangleOscillator)
            .count();
        let vis = section
            .iter()
            .filter(|m| **m == AnalogMacro::ViConverter)
            .count();
        assert_eq!(oscs, 1, "multiplexing means one oscillator");
        assert_eq!(vis, 2, "one V-I per sensor");
    }

    #[test]
    fn whole_analog_section_under_15_percent_of_a_quarter() {
        // The paper's claim (C10, analogue half).
        let total: u32 = AnalogMacro::paper_analog_section()
            .iter()
            .map(|m| m.total_sites())
            .sum();
        assert!(
            (total as f64) < 0.15 * crate::fabric::SITES_PER_QUARTER as f64,
            "analog section {total} sites ≥ 15 % of a quarter"
        );
        // …but not trivially small either (sanity against under-modelling).
        assert!(total > 2_500);
    }

    #[test]
    fn blocks_are_analog_domain() {
        for m in AnalogMacro::paper_analog_section() {
            let b = m.to_block();
            assert_eq!(b.domain, PowerDomain::Analog);
            assert_eq!(b.sites, m.total_sites());
        }
    }
}
