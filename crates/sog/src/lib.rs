//! # fluxcomp-sog
//!
//! A model of the **fishbone Sea-of-Gates array** the compass is mapped
//! onto (paper §2, Fig. 2, \[Fre94\]): 4 quarters × ~50k pmos/nmos pairs
//! (200k transistors), two metal layers, per-quarter power supplies,
//! metal2-over-metal1 capacitors with the > 400 pF components banished to
//! the MCM substrate.
//!
//! * [`fabric`] — the array geometry, power domains and the capacitor
//!   placement rule;
//! * [`floorplan`] — transistor-count → site conversion (with a
//!   routing-utilisation factor) and greedy quarter placement, producing
//!   the occupancy report of experiment E6;
//! * [`library`] — site costs of the analogue macros (\[Haa95\]/\[Don94\]
//!   style analogue-on-SoG design);
//! * [`placement`] — row-based detailed placement with HPWL wirelength
//!   and greedy refinement, the Ocean-system \[Gro93\] step that grounds
//!   the routing-utilisation factor;
//! * [`routing`] — per-row track-demand estimation against the 2-metal
//!   array's capacity;
//! * [`anneal`](mod@anneal) — TimberWolf-style simulated-annealing refinement on top
//!   of the greedy pass;
//! * [`power_grid`] — supply-spine IR droop, quantifying why the paper
//!   gives the analogue section its own supply quarter.
//!
//! ## Example
//!
//! ```
//! use fluxcomp_sog::floorplan::{Block, Floorplan};
//! use fluxcomp_sog::fabric::PowerDomain;
//!
//! # fn main() -> Result<(), fluxcomp_sog::floorplan::PlaceBlockError> {
//! let mut fp = Floorplan::fishbone();
//! fp.place(Block::from_transistors(
//!     "cordic", 12_000, 0.30, PowerDomain::Digital,
//! ))?;
//! assert_eq!(fp.quarters_touched(PowerDomain::Digital), 1);
//! # Ok(())
//! # }
//! ```

pub mod anneal;
pub mod fabric;
pub mod floorplan;
pub mod library;
pub mod placement;
pub mod power_grid;
pub mod routing;

pub use anneal::{anneal, AnnealSchedule, AnnealStats};
pub use fabric::{CapacitorPlan, PowerDomain, Quarter, SogArray};
pub use floorplan::{Block, Floorplan, PlaceBlockError, Placement};
pub use library::AnalogMacro;
pub use placement::{CellSite, DetailedPlacement, PlaceCell, PlaceNet};
pub use power_grid::{isolation_report, IsolationReport, SupplySpine};
pub use routing::{RoutingModel, RoutingReport};
