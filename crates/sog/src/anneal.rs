//! Simulated-annealing placement refinement.
//!
//! The greedy swap pass in [`crate::placement`] stops at the first local
//! minimum; TimberWolf-style simulated annealing — the placement
//! algorithm of the paper's era — escapes them by accepting uphill swaps
//! with temperature-controlled probability. Fully deterministic given
//! the seed, like everything else in the workspace.

use crate::placement::DetailedPlacement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealSchedule {
    /// Starting temperature, in HPWL units.
    pub t_start: f64,
    /// Geometric cooling factor per sweep (e.g. 0.9).
    pub cooling: f64,
    /// Sweeps (each sweep attempts `moves_per_sweep` swaps).
    pub sweeps: u32,
    /// Random swap attempts per sweep.
    pub moves_per_sweep: u32,
}

impl AnnealSchedule {
    /// A quick schedule good for the block sizes in this workspace.
    pub fn quick() -> Self {
        Self {
            t_start: 10.0,
            cooling: 0.85,
            sweeps: 40,
            moves_per_sweep: 200,
        }
    }

    /// Validates the schedule.
    ///
    /// # Panics
    ///
    /// Panics on non-positive temperature, cooling outside (0, 1), or
    /// zero sweeps/moves.
    fn validate(&self) {
        assert!(self.t_start > 0.0, "start temperature must be positive");
        assert!(
            self.cooling > 0.0 && self.cooling < 1.0,
            "cooling must be in (0, 1)"
        );
        assert!(
            self.sweeps > 0 && self.moves_per_sweep > 0,
            "empty schedule"
        );
    }
}

impl Default for AnnealSchedule {
    fn default() -> Self {
        Self::quick()
    }
}

/// Statistics of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealStats {
    /// HPWL before.
    pub initial_hpwl: f64,
    /// HPWL after.
    pub final_hpwl: f64,
    /// Accepted moves.
    pub accepted: u64,
    /// Attempted moves.
    pub attempted: u64,
}

impl AnnealStats {
    /// Relative improvement (positive = better).
    pub fn improvement(&self) -> f64 {
        if self.initial_hpwl == 0.0 {
            return 0.0;
        }
        1.0 - self.final_hpwl / self.initial_hpwl
    }
}

/// Anneals a placement in place. Only equal-width cell pairs are
/// swapped (legality by construction, as in the greedy pass).
pub fn anneal(
    placement: &mut DetailedPlacement,
    schedule: &AnnealSchedule,
    seed: u64,
) -> AnnealStats {
    schedule.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let n = placement.cells().len();
    let initial_hpwl = placement.hpwl();
    let mut current = initial_hpwl;
    let mut best = current;
    let mut accepted = 0u64;
    let mut attempted = 0u64;
    if n < 2 {
        return AnnealStats {
            initial_hpwl,
            final_hpwl: current,
            accepted,
            attempted,
        };
    }
    let mut temp = schedule.t_start;
    for _ in 0..schedule.sweeps {
        for _ in 0..schedule.moves_per_sweep {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b || placement.cells()[a].width != placement.cells()[b].width {
                continue;
            }
            attempted += 1;
            placement.swap_sites(a, b);
            let new = placement.hpwl();
            let delta = new - current;
            let accept = delta <= 0.0 || {
                let p = (-delta / temp).exp();
                rng.gen_range(0.0..1.0) < p
            };
            if accept {
                current = new;
                accepted += 1;
                best = best.min(current);
            } else {
                placement.swap_sites(a, b);
            }
        }
        temp *= schedule.cooling;
    }
    // Finish with a greedy pass to settle into the local minimum.
    let final_hpwl = placement.improve(4);
    AnnealStats {
        initial_hpwl,
        final_hpwl,
        accepted,
        attempted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{PlaceCell, PlaceNet};

    /// A placement where greedy pairwise swapping gets stuck: two rings
    /// interleaved so that single swaps rarely pay until several happen.
    fn hard_case() -> DetailedPlacement {
        let n = 24;
        let cells: Vec<PlaceCell> = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let nets: Vec<PlaceNet> = (0..n)
            .map(|k| PlaceNet {
                cells: vec![k, (k + 11) % n],
            })
            .collect();
        DetailedPlacement::initial(6, 4, cells, nets)
    }

    #[test]
    fn annealing_beats_or_matches_greedy() {
        let mut greedy = hard_case();
        let greedy_hpwl = greedy.improve(20);

        let mut annealed = hard_case();
        let stats = anneal(&mut annealed, &AnnealSchedule::quick(), 1234);
        assert!(
            stats.final_hpwl <= greedy_hpwl + 1e-9,
            "anneal {} vs greedy {greedy_hpwl}",
            stats.final_hpwl
        );
        assert!(stats.improvement() >= 0.0);
        assert!(stats.accepted > 0 && stats.attempted >= stats.accepted);
    }

    #[test]
    fn annealing_is_deterministic() {
        let run = |seed| {
            let mut p = hard_case();
            anneal(&mut p, &AnnealSchedule::quick(), seed).final_hpwl
        };
        assert_eq!(run(7), run(7));
        // Different seeds explore differently (almost surely).
        let a = run(7);
        let b = run(8);
        // Both must still be at-least-greedy quality.
        let mut g = hard_case();
        let greedy = g.improve(20);
        assert!(a <= greedy + 1e-9 && b <= greedy + 1e-9);
    }

    #[test]
    fn result_is_a_permutation_of_sites() {
        let before = hard_case();
        let mut after = hard_case();
        anneal(&mut after, &AnnealSchedule::quick(), 99);
        let mut sites_before: Vec<_> = (0..before.cells().len())
            .map(|i| (before.site(i).row, before.site(i).col))
            .collect();
        let mut sites_after: Vec<_> = (0..after.cells().len())
            .map(|i| (after.site(i).row, after.site(i).col))
            .collect();
        sites_before.sort_unstable();
        sites_after.sort_unstable();
        assert_eq!(
            sites_before, sites_after,
            "sites must be permuted, not invented"
        );
    }

    #[test]
    fn single_cell_is_a_no_op() {
        let cells = vec![PlaceCell::new("only", 1)];
        let mut p = DetailedPlacement::initial(1, 2, cells, vec![]);
        let stats = anneal(&mut p, &AnnealSchedule::quick(), 1);
        assert_eq!(stats.attempted, 0);
        assert_eq!(stats.initial_hpwl, stats.final_hpwl);
    }

    #[test]
    #[should_panic(expected = "cooling")]
    fn bad_schedule_rejected() {
        let mut p = hard_case();
        let mut s = AnnealSchedule::quick();
        s.cooling = 1.5;
        let _ = anneal(&mut p, &s, 0);
    }
}
