//! Block placement on the Sea-of-Gates array.
//!
//! Gate arrays never use raw transistor pairs 1:1 — with only two metal
//! layers (one of which also builds the capacitors), routing consumes
//! most sites. [`Block::from_transistors`] converts a netlist transistor
//! count into committed array sites through a **utilisation factor**
//! (default 0.30: a mid-90s channelless SoG with 2 metal layers routes at
//! roughly 25–35 % site utilisation; \[Fre94\]-era practice).
//!
//! [`Floorplan`] then assigns blocks to quarters greedily, keeping power
//! domains apart (the paper wires separate supplies to the digital and
//! analogue quarters), and reports per-quarter occupancy — the numbers
//! behind the paper's claim that "the digital part … occupies 3 quarters
//! fully and the analogue part 1 quarter for less than 15 %".

use crate::fabric::{PowerDomain, SogArray};
use std::error::Error;
use std::fmt;

/// Default routing-limited utilisation of a 2-metal SoG.
pub const DEFAULT_UTILIZATION: f64 = 0.30;

/// A block to be placed.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Block name (for the report).
    pub name: String,
    /// Array sites the block commits (logic + routing shadow).
    pub sites: u32,
    /// Which supply the block must sit on.
    pub domain: PowerDomain,
}

impl Block {
    /// A block from a raw site count.
    pub fn new(name: impl Into<String>, sites: u32, domain: PowerDomain) -> Self {
        Self {
            name: name.into(),
            sites,
            domain,
        }
    }

    /// Converts a transistor count to committed sites:
    /// `sites = ceil(transistors / 2 / utilization)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < utilization ≤ 1`.
    pub fn from_transistors(
        name: impl Into<String>,
        transistors: u32,
        utilization: f64,
        domain: PowerDomain,
    ) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        let sites = ((transistors as f64 / 2.0) / utilization).ceil() as u32;
        Self::new(name, sites, domain)
    }
}

/// Placement failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlaceBlockError {
    /// A single block exceeds a whole quarter.
    BlockTooLarge {
        /// The offending block.
        block: String,
        /// Its site demand.
        sites: u32,
    },
    /// The array ran out of quarters for a domain.
    OutOfCapacity {
        /// The domain that could not be extended.
        domain: PowerDomain,
    },
}

impl fmt::Display for PlaceBlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceBlockError::BlockTooLarge { block, sites } => {
                write!(
                    f,
                    "block `{block}` needs {sites} sites, more than a quarter"
                )
            }
            PlaceBlockError::OutOfCapacity { domain } => {
                write!(f, "no remaining quarter for the {domain} domain")
            }
        }
    }
}

impl Error for PlaceBlockError {}

/// One placed block.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The block.
    pub block: Block,
    /// Quarter it landed in.
    pub quarter: usize,
}

/// The floorplan: an array plus the placements made on it.
///
/// Digital blocks fill quarters from index 0 upward; analogue blocks
/// fill from index 3 downward — mirroring the paper's arrangement and
/// guaranteeing the two supplies never share a quarter.
#[derive(Debug, Clone)]
pub struct Floorplan {
    array: SogArray,
    placements: Vec<Placement>,
}

impl Floorplan {
    /// An empty floorplan on the given array.
    pub fn new(array: SogArray) -> Self {
        Self {
            array,
            placements: Vec::new(),
        }
    }

    /// The paper's array, empty.
    pub fn fishbone() -> Self {
        Self::new(SogArray::fishbone())
    }

    /// The array with current occupancy.
    pub fn array(&self) -> &SogArray {
        &self.array
    }

    /// All placements so far.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Places one block (first-fit within its domain's quarters).
    ///
    /// # Errors
    ///
    /// See [`PlaceBlockError`].
    pub fn place(&mut self, block: Block) -> Result<usize, PlaceBlockError> {
        let n = self.array.quarters().len();
        let cap = self.array.quarters()[0].capacity_sites;
        if block.sites > cap {
            return Err(PlaceBlockError::BlockTooLarge {
                block: block.name.clone(),
                sites: block.sites,
            });
        }
        let order: Vec<usize> = match block.domain {
            PowerDomain::Digital => (0..n).collect(),
            PowerDomain::Analog => (0..n).rev().collect(),
        };
        for qi in order {
            let q = &self.array.quarters()[qi];
            // A quarter is eligible if unassigned or already in the right
            // domain, and has room.
            let eligible = match q.domain {
                None => true,
                Some(d) => d == block.domain,
            };
            if eligible && q.free_sites() >= block.sites {
                let quarters = self.array.quarters_mut();
                quarters[qi].used_sites += block.sites;
                quarters[qi].domain = Some(block.domain);
                self.placements.push(Placement { block, quarter: qi });
                return Ok(qi);
            }
        }
        Err(PlaceBlockError::OutOfCapacity {
            domain: block.domain,
        })
    }

    /// Places a whole inventory; stops at the first failure.
    ///
    /// # Errors
    ///
    /// Returns the first [`PlaceBlockError`] encountered.
    pub fn place_all(
        &mut self,
        blocks: impl IntoIterator<Item = Block>,
    ) -> Result<(), PlaceBlockError> {
        for b in blocks {
            self.place(b)?;
        }
        Ok(())
    }

    /// Number of quarters a domain *touches* (has any block in).
    pub fn quarters_touched(&self, domain: PowerDomain) -> usize {
        self.array.quarters_in_domain(domain)
    }

    /// Equivalent quarters a domain *fills*: committed sites / quarter
    /// capacity — the paper's "occupies 3 quarters fully" metric.
    pub fn quarters_filled(&self, domain: PowerDomain) -> f64 {
        let cap = self.array.quarters()[0].capacity_sites as f64;
        let used: u32 = self
            .placements
            .iter()
            .filter(|p| p.block.domain == domain)
            .map(|p| p.block.sites)
            .sum();
        used as f64 / cap
    }

    /// Occupancy of the *most analogue* quarter, as a fraction — the
    /// paper's "less than 15 %" figure.
    pub fn analog_quarter_occupancy(&self) -> f64 {
        self.array
            .quarters()
            .iter()
            .filter(|q| q.domain == Some(PowerDomain::Analog))
            .map(|q| q.occupancy())
            .fold(0.0, f64::max)
    }

    /// A plain-text occupancy report.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Sea-of-Gates floorplan ({} quarters)",
            self.array.quarters().len()
        );
        for q in self.array.quarters() {
            let domain = q
                .domain
                .map(|d| d.to_string())
                .unwrap_or_else(|| "unused".into());
            let _ = writeln!(
                out,
                "  quarter {}: {:>6}/{} sites ({:>5.1} %) [{}]",
                q.index,
                q.used_sites,
                q.capacity_sites,
                q.occupancy() * 100.0,
                domain
            );
        }
        for p in &self.placements {
            let _ = writeln!(
                out,
                "    {:<28} {:>6} sites -> quarter {}",
                p.block.name, p.block.sites, p.quarter
            );
        }
        out
    }
}

impl Default for Floorplan {
    fn default() -> Self {
        Self::fishbone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digital_fills_from_front_analog_from_back() {
        let mut fp = Floorplan::fishbone();
        let d = fp
            .place(Block::new("digital", 10_000, PowerDomain::Digital))
            .unwrap();
        let a = fp
            .place(Block::new("analog", 1_000, PowerDomain::Analog))
            .unwrap();
        assert_eq!(d, 0);
        assert_eq!(a, 3);
    }

    #[test]
    fn domains_never_share_a_quarter() {
        let mut fp = Floorplan::fishbone();
        // Fill three quarters with digital.
        for k in 0..3 {
            fp.place(Block::new(format!("d{k}"), 25_000, PowerDomain::Digital))
                .unwrap();
        }
        // Analogue still lands in quarter 3.
        assert_eq!(
            fp.place(Block::new("a", 100, PowerDomain::Analog)).unwrap(),
            3
        );
        // A further digital block cannot enter the analogue quarter.
        assert_eq!(
            fp.place(Block::new("d3", 100, PowerDomain::Digital)),
            Err(PlaceBlockError::OutOfCapacity {
                domain: PowerDomain::Digital
            })
        );
    }

    #[test]
    fn first_fit_spills_into_next_quarter() {
        let mut fp = Floorplan::fishbone();
        fp.place(Block::new("d0", 20_000, PowerDomain::Digital))
            .unwrap();
        let q = fp
            .place(Block::new("d1", 10_000, PowerDomain::Digital))
            .unwrap();
        assert_eq!(q, 1, "second block cannot fit in quarter 0");
        // A small block still backfills quarter 0.
        let q = fp
            .place(Block::new("d2", 2_500, PowerDomain::Digital))
            .unwrap();
        assert_eq!(q, 0);
    }

    #[test]
    fn utilization_conversion() {
        let b = Block::from_transistors("x", 15_000, 0.30, PowerDomain::Digital);
        assert_eq!(b.sites, 25_000);
        let b = Block::from_transistors("y", 30_000, 1.0, PowerDomain::Digital);
        assert_eq!(b.sites, 15_000);
    }

    #[test]
    fn quarters_filled_metric() {
        let mut fp = Floorplan::fishbone();
        fp.place(Block::new("d", 25_000, PowerDomain::Digital))
            .unwrap();
        fp.place(Block::new("d2", 12_500, PowerDomain::Digital))
            .unwrap();
        assert!((fp.quarters_filled(PowerDomain::Digital) - 1.5).abs() < 1e-12);
        assert_eq!(fp.quarters_touched(PowerDomain::Digital), 2);
    }

    #[test]
    fn analog_occupancy_metric() {
        let mut fp = Floorplan::fishbone();
        fp.place(Block::new("a", 3_000, PowerDomain::Analog))
            .unwrap();
        assert!((fp.analog_quarter_occupancy() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn oversized_block_rejected() {
        let mut fp = Floorplan::fishbone();
        let err = fp
            .place(Block::new("huge", 25_001, PowerDomain::Digital))
            .unwrap_err();
        assert!(matches!(err, PlaceBlockError::BlockTooLarge { .. }));
        assert!(err.to_string().contains("huge"));
    }

    #[test]
    fn place_all_propagates_errors() {
        let mut fp = Floorplan::fishbone();
        let blocks = vec![
            Block::new("ok", 1_000, PowerDomain::Digital),
            Block::new("huge", 30_000, PowerDomain::Digital),
        ];
        assert!(fp.place_all(blocks).is_err());
        assert_eq!(fp.placements().len(), 1);
    }

    #[test]
    fn report_contains_quarters_and_blocks() {
        let mut fp = Floorplan::fishbone();
        fp.place(Block::new("cordic", 9_000, PowerDomain::Digital))
            .unwrap();
        let report = fp.report();
        assert!(report.contains("quarter 0"));
        assert!(report.contains("cordic"));
        assert!(report.contains("digital"));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn bad_utilization_rejected() {
        let _ = Block::from_transistors("x", 100, 0.0, PowerDomain::Digital);
    }
}
