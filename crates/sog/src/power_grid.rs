//! Supply-grid IR drop — why the paper gives each quarter its own
//! supply.
//!
//! "Since each quarter has a separate power supply, we have used two
//! different power supplies for both the digital and analogue parts."
//! The engineering reason is noise/droop isolation: the digital
//! section's switching current develops an IR drop across the fishbone's
//! supply spine, and a shared rail would inject that droop straight into
//! the analogue comparators' thresholds. This module models the spine as
//! a ladder of sheet-resistance segments and quantifies the droop — and
//! the isolation the paper's choice buys.

use fluxcomp_units::si::{Ampere, Ohm, Volt};

/// The supply spine of one quarter, as a uniform resistive ladder from
/// the pad to the far end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplySpine {
    /// Total spine resistance pad→far-end.
    pub resistance: Ohm,
    /// Number of ladder segments (tap points) the current is spread
    /// over.
    pub segments: u32,
}

impl SupplySpine {
    /// The fishbone's quarter spine: a couple of ohms of metal end to
    /// end (mid-90s 2-metal aluminium), 10 tap points.
    pub fn fishbone_quarter() -> Self {
        Self {
            resistance: Ohm::new(2.0),
            segments: 10,
        }
    }

    /// Worst-case (far-end) droop when `total_current` is drawn
    /// uniformly along the spine: `V = I·R/2` for a uniform load (the
    /// triangular current profile integrates to half the lumped drop).
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0`.
    pub fn far_end_droop(&self, total_current: Ampere) -> Volt {
        assert!(self.segments > 0, "spine needs segments");
        // Discrete ladder: segment k (1-based from pad) carries the
        // current of segments k..=N, each N-th of the total.
        let n = self.segments as f64;
        let r_seg = self.resistance.value() / n;
        let i_seg = total_current.value() / n;
        let mut v = 0.0;
        for k in 1..=self.segments {
            let downstream = (self.segments - k + 1) as f64;
            v += r_seg * i_seg * downstream;
        }
        Volt::new(v)
    }

    /// Droop at the far end when the whole current is drawn there
    /// (worst placement): the full `I·R`.
    pub fn far_end_droop_lumped(&self, total_current: Ampere) -> Volt {
        Volt::new(total_current.value() * self.resistance.value())
    }
}

/// The supply-sharing comparison of the paper's floorplan decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsolationReport {
    /// Droop the digital load causes on its own quarter's rail.
    pub digital_droop: Volt,
    /// Droop the analogue blocks see on a **separate** supply (their own
    /// tiny current only).
    pub analog_droop_separate: Volt,
    /// Droop the analogue blocks would see on a **shared** rail (digital
    /// + analogue current on one spine).
    pub analog_droop_shared: Volt,
}

impl IsolationReport {
    /// How much supply disturbance the separate-supply choice removes
    /// from the analogue section.
    pub fn isolation_factor(&self) -> f64 {
        self.analog_droop_shared.value() / self.analog_droop_separate.value().max(1e-12)
    }
}

/// Evaluates the paper's separate-supply decision for given digital and
/// analogue supply currents.
pub fn isolation_report(
    spine: &SupplySpine,
    digital_current: Ampere,
    analog_current: Ampere,
) -> IsolationReport {
    IsolationReport {
        digital_droop: spine.far_end_droop(digital_current),
        analog_droop_separate: spine.far_end_droop(analog_current),
        analog_droop_shared: spine.far_end_droop(digital_current + analog_current),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_load_droop_approaches_half_lumped() {
        let spine = SupplySpine {
            resistance: Ohm::new(2.0),
            segments: 1000,
        };
        let i = Ampere::new(2e-3);
        let uniform = spine.far_end_droop(i).value();
        let lumped = spine.far_end_droop_lumped(i).value();
        assert!(
            (uniform / lumped - 0.5).abs() < 0.01,
            "{uniform} vs {lumped}"
        );
    }

    #[test]
    fn coarse_ladder_still_bounded_by_lumped() {
        let spine = SupplySpine::fishbone_quarter();
        let i = Ampere::new(2e-3);
        let droop = spine.far_end_droop(i);
        assert!(droop.value() < spine.far_end_droop_lumped(i).value());
        assert!(droop.value() > 0.0);
    }

    #[test]
    fn digital_droop_is_millivolts_not_microvolts() {
        // ~2 mA of counter/logic current on a 2 Ω spine: ≈2 mV of
        // droop — harmless to logic, poisonous to a 20 mV comparator
        // threshold if shared.
        let spine = SupplySpine::fishbone_quarter();
        let report = isolation_report(&spine, Ampere::new(2e-3), Ampere::new(150e-6));
        assert!(
            (1e-3..5e-3).contains(&report.digital_droop.value()),
            "digital droop {}",
            report.digital_droop
        );
    }

    #[test]
    fn separate_supplies_buy_an_order_of_magnitude() {
        // The paper's decision quantified: the analogue rail sees ~14x
        // less droop on its own supply than shared with the digital
        // section.
        let spine = SupplySpine::fishbone_quarter();
        let report = isolation_report(&spine, Ampere::new(2e-3), Ampere::new(150e-6));
        assert!(
            report.isolation_factor() > 10.0,
            "isolation {}",
            report.isolation_factor()
        );
        assert!(report.analog_droop_separate < report.analog_droop_shared);
    }

    #[test]
    fn droop_scales_linearly_with_current() {
        let spine = SupplySpine::fishbone_quarter();
        let d1 = spine.far_end_droop(Ampere::new(1e-3)).value();
        let d2 = spine.far_end_droop(Ampere::new(2e-3)).value();
        assert!((d2 - 2.0 * d1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "segments")]
    fn zero_segments_rejected() {
        let spine = SupplySpine {
            resistance: Ohm::new(1.0),
            segments: 0,
        };
        let _ = spine.far_end_droop(Ampere::new(1e-3));
    }
}
