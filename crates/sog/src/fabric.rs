//! The fishbone Sea-of-Gates array (paper §2, Fig. 2, \[Fre94\]).
//!
//! "The fishbone SoG consists of 4 quarters, each with circa 50k
//! pmos/nmos pairs. … Since each quarter has a separate power supply, we
//! have used two different power supplies for both the digital and
//! analogue parts."
//!
//! [`SogArray`] models that: four [`Quarter`]s of 25 000 transistor-pair
//! sites each (see [`SITES_PER_QUARTER`] for how the paper's ambiguous
//! headcount is resolved), each quarter assignable to one power domain.
//! Analogue design on this digital array follows \[Haa95\]/\[Don94\];
//! on-chip capacitors are built "by putting the second metal layer above
//! the first one", with very large capacitors (> 400 pF) and resistors
//! banished to the MCM substrate — the rule [`CapacitorPlan`] encodes.

use fluxcomp_units::si::Farad;
use std::fmt;

/// Power domain of a quarter (the paper uses separate analogue and
/// digital supplies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerDomain {
    /// The digital supply.
    Digital,
    /// The analogue supply.
    Analog,
}

impl fmt::Display for PowerDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerDomain::Digital => write!(f, "digital"),
            PowerDomain::Analog => write!(f, "analog"),
        }
    }
}

/// One quarter of the fishbone array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quarter {
    /// Quarter index, 0..4.
    pub index: usize,
    /// Total transistor-pair sites.
    pub capacity_sites: u32,
    /// Sites committed to placed blocks.
    pub used_sites: u32,
    /// The supply this quarter is wired to (set by the floorplan).
    pub domain: Option<PowerDomain>,
}

impl Quarter {
    /// Free sites remaining.
    pub fn free_sites(&self) -> u32 {
        self.capacity_sites - self.used_sites
    }

    /// Occupancy as a fraction of capacity.
    pub fn occupancy(&self) -> f64 {
        self.used_sites as f64 / self.capacity_sites as f64
    }
}

/// The four-quarter fishbone array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SogArray {
    quarters: Vec<Quarter>,
}

/// Sites (transistor pairs) per quarter.
///
/// The paper's headline is a "Sea-of-Gates array of 200k transistors";
/// §2 says "4 quarters, each with circa 50k pmos/nmos pairs", which would
/// be 400k transistors — the two statements are inconsistent in the
/// original text. We follow the headline (and the abstract): 200k
/// transistors total = 100k pairs = 25k pair-sites per quarter, reading
/// §2's "50k" as counting transistors per quarter rather than pairs.
pub const SITES_PER_QUARTER: u32 = 25_000;

impl SogArray {
    /// The paper's fishbone array: 4 quarters totalling 200k transistors.
    pub fn fishbone() -> Self {
        Self::with_quarters(4, SITES_PER_QUARTER)
    }

    /// An array with arbitrary geometry (for what-if floorplans).
    ///
    /// # Panics
    ///
    /// Panics if `quarters` or `sites_per_quarter` is zero.
    pub fn with_quarters(quarters: usize, sites_per_quarter: u32) -> Self {
        assert!(quarters > 0, "need at least one quarter");
        assert!(sites_per_quarter > 0, "quarters need capacity");
        Self {
            quarters: (0..quarters)
                .map(|index| Quarter {
                    index,
                    capacity_sites: sites_per_quarter,
                    used_sites: 0,
                    domain: None,
                })
                .collect(),
        }
    }

    /// The quarters.
    pub fn quarters(&self) -> &[Quarter] {
        &self.quarters
    }

    /// Mutable access for the floorplanner.
    pub(crate) fn quarters_mut(&mut self) -> &mut [Quarter] {
        &mut self.quarters
    }

    /// Total transistor count of the array (2 per pair site).
    pub fn total_transistors(&self) -> u64 {
        self.quarters
            .iter()
            .map(|q| q.capacity_sites as u64 * 2)
            .sum()
    }

    /// Total committed sites across quarters.
    pub fn used_sites(&self) -> u32 {
        self.quarters.iter().map(|q| q.used_sites).sum()
    }

    /// Quarters assigned to a domain.
    pub fn quarters_in_domain(&self, domain: PowerDomain) -> usize {
        self.quarters
            .iter()
            .filter(|q| q.domain == Some(domain))
            .count()
    }
}

impl Default for SogArray {
    fn default() -> Self {
        Self::fishbone()
    }
}

/// Where a capacitor of a given value can be realised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapacitorPlan {
    /// Metal2-over-metal1 on-chip capacitor occupying array sites.
    OnChip {
        /// Sites shadowed by the capacitor plates.
        sites: u32,
    },
    /// Too large for on-chip plates: realised on the MCM substrate
    /// (paper: "very large capacitors (> 400 pF) and resistors should be
    /// realised … on the substrate of the MCM").
    McmSubstrate,
}

/// The paper's on-chip limit.
pub const ON_CHIP_CAP_LIMIT: Farad = Farad::new(400e-12);

/// Sites shadowed per picofarad of metal-metal capacitance.
///
/// Estimate: metal2/metal1 plate capacitance ≈ 0.05 fF/µm² in a mid-90s
/// 2-metal process, one SoG pair site ≈ 170 µm² → ≈ 8.5 fF/site →
/// ≈ 120 sites/pF. The Fig. 7 oscillator layout — where the 10 pF
/// capacitor visibly dominates the block — is consistent with this
/// order of magnitude.
pub const SITES_PER_PICOFARAD: f64 = 120.0;

impl CapacitorPlan {
    /// Plans a capacitor of the given value.
    ///
    /// # Panics
    ///
    /// Panics if the value is not strictly positive.
    pub fn for_value(c: Farad) -> Self {
        assert!(c.value() > 0.0, "capacitance must be positive");
        if c > ON_CHIP_CAP_LIMIT {
            CapacitorPlan::McmSubstrate
        } else {
            let pf = c.value() * 1e12;
            CapacitorPlan::OnChip {
                sites: (pf * SITES_PER_PICOFARAD).ceil() as u32,
            }
        }
    }

    /// Sites consumed on the array (zero when on the MCM).
    pub fn sites(&self) -> u32 {
        match *self {
            CapacitorPlan::OnChip { sites } => sites,
            CapacitorPlan::McmSubstrate => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fishbone_is_200k_transistors() {
        let array = SogArray::fishbone();
        assert_eq!(array.quarters().len(), 4);
        assert_eq!(array.total_transistors(), 200_000);
    }

    #[test]
    fn quarter_accounting() {
        let mut array = SogArray::fishbone();
        array.quarters_mut()[0].used_sites = 12_500;
        let q = array.quarters()[0];
        assert_eq!(q.free_sites(), 12_500);
        assert!((q.occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(array.used_sites(), 12_500);
    }

    #[test]
    fn domain_assignment_counts() {
        let mut array = SogArray::fishbone();
        array.quarters_mut()[0].domain = Some(PowerDomain::Digital);
        array.quarters_mut()[1].domain = Some(PowerDomain::Digital);
        array.quarters_mut()[3].domain = Some(PowerDomain::Analog);
        assert_eq!(array.quarters_in_domain(PowerDomain::Digital), 2);
        assert_eq!(array.quarters_in_domain(PowerDomain::Analog), 1);
    }

    #[test]
    fn paper_10pf_capacitor_fits_on_chip() {
        let plan = CapacitorPlan::for_value(Farad::new(10e-12));
        match plan {
            CapacitorPlan::OnChip { sites } => {
                assert_eq!(sites, 1_200);
                // A visible chunk of an oscillator block but tiny vs a
                // 50k-site quarter.
                assert!(sites < SITES_PER_QUARTER / 10);
            }
            CapacitorPlan::McmSubstrate => panic!("10 pF must be on-chip"),
        }
    }

    #[test]
    fn large_capacitors_go_to_mcm() {
        assert_eq!(
            CapacitorPlan::for_value(Farad::new(500e-12)),
            CapacitorPlan::McmSubstrate
        );
        assert_eq!(CapacitorPlan::for_value(Farad::new(500e-12)).sites(), 0);
        // Exactly at the limit: still on chip.
        assert!(matches!(
            CapacitorPlan::for_value(Farad::new(400e-12)),
            CapacitorPlan::OnChip { .. }
        ));
    }

    #[test]
    fn domain_display() {
        assert_eq!(PowerDomain::Digital.to_string(), "digital");
        assert_eq!(PowerDomain::Analog.to_string(), "analog");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = SogArray::with_quarters(4, 0);
    }
}
