//! Detailed placement within a quarter.
//!
//! The Ocean design system \[Gro93\] the paper used performs cell
//! placement and routing on the Sea-of-Gates image. This module
//! reproduces the placement step at the customary abstraction: cells on
//! a row/column site grid, connectivity as nets, quality measured as
//! **half-perimeter wirelength** (HPWL), improved by deterministic
//! greedy pairwise swaps. It grounds the routing-utilisation factor used
//! by the occupancy experiment: congested placements are exactly what
//! eats the array's sites.

use std::collections::HashMap;

/// A cell to be placed (one or more adjacent sites wide, one row tall —
/// the standard row-based gate-array abstraction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceCell {
    /// Cell name.
    pub name: String,
    /// Width in sites.
    pub width: u32,
}

impl PlaceCell {
    /// Creates a cell.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(name: impl Into<String>, width: u32) -> Self {
        assert!(width > 0, "cell width must be nonzero");
        Self {
            name: name.into(),
            width,
        }
    }
}

/// A net connecting cells (by index into the cell list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaceNet {
    /// Connected cell indices.
    pub cells: Vec<usize>,
}

/// A placed cell's location: row and leftmost column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSite {
    /// Row index.
    pub row: u32,
    /// Leftmost column.
    pub col: u32,
}

/// A detailed placement of cells on a `rows × cols` site grid.
#[derive(Debug, Clone)]
pub struct DetailedPlacement {
    rows: u32,
    cols: u32,
    cells: Vec<PlaceCell>,
    nets: Vec<PlaceNet>,
    sites: Vec<CellSite>,
}

impl DetailedPlacement {
    /// Places `cells` row-major in declaration order (the deterministic
    /// initial placement), validating capacity and net indices.
    ///
    /// # Panics
    ///
    /// Panics if a cell is wider than a row, the grid capacity is
    /// exceeded, or a net references a nonexistent cell.
    pub fn initial(rows: u32, cols: u32, cells: Vec<PlaceCell>, nets: Vec<PlaceNet>) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be nonempty");
        for net in &nets {
            for &c in &net.cells {
                assert!(c < cells.len(), "net references cell {c} out of range");
            }
        }
        let mut sites = Vec::with_capacity(cells.len());
        let mut row = 0u32;
        let mut col = 0u32;
        for cell in &cells {
            assert!(cell.width <= cols, "cell `{}` wider than a row", cell.name);
            if col + cell.width > cols {
                row += 1;
                col = 0;
            }
            assert!(row < rows, "placement exceeds the grid capacity");
            sites.push(CellSite { row, col });
            col += cell.width;
        }
        Self {
            rows,
            cols,
            cells,
            nets,
            sites,
        }
    }

    /// The cells.
    pub fn cells(&self) -> &[PlaceCell] {
        &self.cells
    }

    /// Current site of cell `i`.
    pub fn site(&self, i: usize) -> CellSite {
        self.sites[i]
    }

    /// The cell-index lists of every net (for routing analysis).
    pub fn net_cell_lists(&self) -> Vec<Vec<usize>> {
        self.nets.iter().map(|n| n.cells.clone()).collect()
    }

    /// Swaps the sites of two cells. Legal only for equal-width cells —
    /// the annealer and the greedy pass both respect this.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn swap_sites(&mut self, a: usize, b: usize) {
        assert_eq!(
            self.cells[a].width, self.cells[b].width,
            "only equal-width cells can swap sites"
        );
        self.sites.swap(a, b);
    }

    /// Site utilisation: occupied sites / grid sites.
    pub fn utilization(&self) -> f64 {
        let used: u64 = self.cells.iter().map(|c| c.width as u64).sum();
        used as f64 / (self.rows as u64 * self.cols as u64) as f64
    }

    /// The centre x-coordinate of cell `i` (in sites).
    fn center_x(&self, i: usize) -> f64 {
        self.sites[i].col as f64 + self.cells[i].width as f64 / 2.0
    }

    /// Half-perimeter wirelength of one net.
    fn net_hpwl(&self, net: &PlaceNet) -> f64 {
        if net.cells.len() < 2 {
            return 0.0;
        }
        let mut min_x = f64::MAX;
        let mut max_x = f64::MIN;
        let mut min_y = u32::MAX;
        let mut max_y = 0u32;
        for &c in &net.cells {
            let x = self.center_x(c);
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            let y = self.sites[c].row;
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        (max_x - min_x) + (max_y - min_y) as f64
    }

    /// Total half-perimeter wirelength — the placement quality metric.
    pub fn hpwl(&self) -> f64 {
        self.nets.iter().map(|n| self.net_hpwl(n)).sum()
    }

    /// Greedy improvement: deterministically enumerates pairs of
    /// equal-width cells, swaps a pair whenever that lowers total HPWL,
    /// and repeats for `passes` sweeps. Returns the final HPWL.
    ///
    /// Equal-width swapping keeps the row packing legal without a
    /// re-legalisation step — the standard "cell flipping" refinement.
    pub fn improve(&mut self, passes: u32) -> f64 {
        // Index nets per cell once.
        let mut nets_of: HashMap<usize, Vec<usize>> = HashMap::new();
        for (ni, net) in self.nets.iter().enumerate() {
            for &c in &net.cells {
                nets_of.entry(c).or_default().push(ni);
            }
        }
        let affected_hpwl = |placement: &Self, a: usize, b: usize| -> f64 {
            let mut seen = Vec::new();
            let mut total = 0.0;
            for &cell in &[a, b] {
                if let Some(nets) = nets_of.get(&cell) {
                    for &ni in nets {
                        if !seen.contains(&ni) {
                            seen.push(ni);
                            total += placement.net_hpwl(&placement.nets[ni]);
                        }
                    }
                }
            }
            total
        };
        for _ in 0..passes {
            let mut improved = false;
            for a in 0..self.cells.len() {
                for b in a + 1..self.cells.len() {
                    if self.cells[a].width != self.cells[b].width {
                        continue;
                    }
                    let before = affected_hpwl(self, a, b);
                    self.sites.swap(a, b);
                    let after = affected_hpwl(self, a, b);
                    if after + 1e-12 < before {
                        improved = true;
                    } else {
                        self.sites.swap(a, b); // revert
                    }
                }
            }
            if !improved {
                break;
            }
        }
        self.hpwl()
    }

    /// A congestion proxy: the maximum, over rows, of the number of nets
    /// whose bounding box spans that row — an estimate of horizontal
    /// routing demand.
    pub fn max_row_congestion(&self) -> u32 {
        let mut per_row = vec![0u32; self.rows as usize];
        for net in &self.nets {
            if net.cells.len() < 2 {
                continue;
            }
            let min_y = net.cells.iter().map(|&c| self.sites[c].row).min().unwrap();
            let max_y = net.cells.iter().map(|&c| self.sites[c].row).max().unwrap();
            for r in min_y..=max_y {
                per_row[r as usize] += 1;
            }
        }
        per_row.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A chain of cells: net k connects cells k and k+1 — the pathology
    /// where initial row-major order is already near-optimal, then a
    /// scrambled variant where improvement must help.
    fn chain(n: usize) -> (Vec<PlaceCell>, Vec<PlaceNet>) {
        let cells = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 2)).collect();
        let nets = (0..n - 1)
            .map(|k| PlaceNet {
                cells: vec![k, k + 1],
            })
            .collect();
        (cells, nets)
    }

    #[test]
    fn initial_placement_is_legal_row_major() {
        let (cells, nets) = chain(10);
        let p = DetailedPlacement::initial(4, 8, cells, nets);
        // 10 cells × width 2 on 8-wide rows: 4 per row.
        assert_eq!(p.site(0), CellSite { row: 0, col: 0 });
        assert_eq!(p.site(3), CellSite { row: 0, col: 6 });
        assert_eq!(p.site(4), CellSite { row: 1, col: 0 });
        assert!((p.utilization() - 20.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn hpwl_of_a_chain() {
        let (cells, nets) = chain(4);
        let p = DetailedPlacement::initial(1, 8, cells, nets);
        // Neighbouring centres are 2 apart; 3 nets × 2 = 6.
        assert!((p.hpwl() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn improvement_fixes_a_scrambled_chain() {
        // Scramble the chain by connecting distant cells: net k joins
        // cells k and (k + 5) mod n — the greedy pass should reduce HPWL.
        let n = 16;
        let cells: Vec<PlaceCell> = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let nets: Vec<PlaceNet> = (0..n)
            .map(|k| PlaceNet {
                cells: vec![k, (k + 5) % n],
            })
            .collect();
        let mut p = DetailedPlacement::initial(4, 4, cells, nets);
        let before = p.hpwl();
        let after = p.improve(20);
        assert!(after < before, "no improvement: {before} -> {after}");
        assert!((p.hpwl() - after).abs() < 1e-12);
    }

    #[test]
    fn improvement_is_deterministic() {
        let build = || {
            let n = 12;
            let cells: Vec<PlaceCell> =
                (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
            let nets: Vec<PlaceNet> = (0..n)
                .map(|k| PlaceNet {
                    cells: vec![k, (k * 7 + 3) % n],
                })
                .collect();
            let mut p = DetailedPlacement::initial(3, 4, cells, nets);
            p.improve(10)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn single_cell_nets_cost_nothing() {
        let cells = vec![PlaceCell::new("a", 1), PlaceCell::new("b", 1)];
        let nets = vec![PlaceNet { cells: vec![0] }];
        let p = DetailedPlacement::initial(1, 4, cells, nets);
        assert_eq!(p.hpwl(), 0.0);
    }

    #[test]
    fn congestion_counts_spanning_nets() {
        let (cells, _) = chain(8);
        // One net spanning all cells (rows 0..=1) plus one local net.
        let nets = vec![
            PlaceNet {
                cells: (0..8).collect(),
            },
            PlaceNet { cells: vec![0, 1] },
        ];
        let p = DetailedPlacement::initial(2, 8, cells, nets);
        assert_eq!(p.max_row_congestion(), 2); // both nets touch row 0
    }

    #[test]
    #[should_panic(expected = "exceeds the grid")]
    fn overfull_grid_rejected() {
        let (cells, nets) = chain(10);
        let _ = DetailedPlacement::initial(1, 8, cells, nets);
    }

    #[test]
    #[should_panic(expected = "wider than a row")]
    fn oversize_cell_rejected() {
        let cells = vec![PlaceCell::new("wide", 9)];
        let _ = DetailedPlacement::initial(1, 8, cells, vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_net_rejected() {
        let cells = vec![PlaceCell::new("a", 1)];
        let nets = vec![PlaceNet { cells: vec![5] }];
        let _ = DetailedPlacement::initial(1, 8, cells, nets);
    }
}
