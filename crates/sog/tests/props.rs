//! Property tests for the Sea-of-Gates models.

use fluxcomp_sog::fabric::{CapacitorPlan, PowerDomain, SogArray, ON_CHIP_CAP_LIMIT};
use fluxcomp_sog::floorplan::{Block, Floorplan};
use fluxcomp_sog::placement::{DetailedPlacement, PlaceCell, PlaceNet};
use fluxcomp_units::si::Farad;
use proptest::prelude::*;

proptest! {
    /// No quarter is ever overfilled, whatever blocks are thrown at the
    /// placer; failures are reported, not silently absorbed.
    #[test]
    fn quarters_never_overfill(sizes in prop::collection::vec(1u32..30_000, 1..20)) {
        let mut fp = Floorplan::fishbone();
        for (k, s) in sizes.iter().enumerate() {
            let domain = if k % 3 == 0 { PowerDomain::Analog } else { PowerDomain::Digital };
            let _ = fp.place(Block::new(format!("b{k}"), *s, domain));
        }
        for q in fp.array().quarters() {
            prop_assert!(q.used_sites <= q.capacity_sites);
        }
        // Conservation: placed sites equal the sum of accepted blocks.
        let placed: u32 = fp.placements().iter().map(|p| p.block.sites).sum();
        prop_assert_eq!(placed, fp.array().used_sites());
    }

    /// Domains never share a quarter, for any placement order.
    #[test]
    fn domains_stay_separated(sizes in prop::collection::vec(1u32..20_000, 1..16), seed in any::<u64>()) {
        let mut fp = Floorplan::fishbone();
        for (k, s) in sizes.iter().enumerate() {
            let domain = if (seed >> (k % 60)) & 1 == 1 {
                PowerDomain::Analog
            } else {
                PowerDomain::Digital
            };
            let _ = fp.place(Block::new(format!("b{k}"), *s, domain));
        }
        for p in fp.placements() {
            prop_assert_eq!(
                fp.array().quarters()[p.quarter].domain,
                Some(p.block.domain)
            );
        }
    }

    /// The capacitor rule is a clean threshold at 400 pF and on-chip
    /// area grows monotonically with value.
    #[test]
    fn capacitor_rule_threshold(pf in 0.1f64..1000.0) {
        let plan = CapacitorPlan::for_value(Farad::new(pf * 1e-12));
        if pf * 1e-12 > ON_CHIP_CAP_LIMIT.value() {
            prop_assert_eq!(plan, CapacitorPlan::McmSubstrate);
        } else {
            match plan {
                CapacitorPlan::OnChip { sites } => {
                    let smaller = CapacitorPlan::for_value(Farad::new(pf * 0.5e-12));
                    if let CapacitorPlan::OnChip { sites: s2 } = smaller {
                        prop_assert!(s2 <= sites);
                    }
                }
                CapacitorPlan::McmSubstrate => prop_assert!(false, "should be on-chip"),
            }
        }
    }

    /// Utilisation conversion: sites ≥ transistors/2 always (utilisation
    /// ≤ 1 can only inflate).
    #[test]
    fn sites_at_least_raw_pairs(t in 1u32..1_000_000, util_pct in 1u32..100) {
        let b = Block::from_transistors("x", t, util_pct as f64 / 100.0, PowerDomain::Digital);
        prop_assert!(b.sites as u64 >= (t as u64).div_ceil(2));
    }

    /// `improve` never increases HPWL and is idempotent at a fixed point.
    #[test]
    fn placement_improvement_monotone(n in 4usize..20, seed in any::<u32>()) {
        let cells: Vec<PlaceCell> = (0..n).map(|k| PlaceCell::new(format!("c{k}"), 1)).collect();
        let nets: Vec<PlaceNet> = (0..n)
            .map(|k| PlaceNet {
                cells: vec![k, (k + 1 + (seed as usize % (n - 1))) % n],
            })
            .collect();
        let cols = (n as u32).div_ceil(4).max(2);
        let mut p = DetailedPlacement::initial(4, cols, cells, nets);
        let before = p.hpwl();
        let after = p.improve(5);
        prop_assert!(after <= before + 1e-9);
        let again = p.improve(5);
        prop_assert!(again <= after + 1e-9);
    }

    /// Array accounting: total transistors is twice the site count.
    #[test]
    fn array_transistor_accounting(quarters in 1usize..8, sites in 1u32..100_000) {
        let array = SogArray::with_quarters(quarters, sites);
        prop_assert_eq!(array.total_transistors(), quarters as u64 * sites as u64 * 2);
    }
}
