//! Hard-iron calibration.
//!
//! The paper's system has no calibration step (an ideal MCM carries no
//! magnetic material), but any *worn* compass — the compass-watch use
//! case of \[Hol94\] — picks up hard-iron offsets from the strap buckle
//! and case. The classic remedy is a rotation calibration: turn the
//! platform through a full circle, record the (x, y) counter outputs,
//! and take the centre of the traced circle as the offset to subtract.
//!
//! This module implements that procedure on top of the full pipeline and
//! is exercised by the calibration ablation in the E4 bench.

use crate::system::Compass;
use fluxcomp_units::angle::Degrees;

/// A hard-iron offset in counter LSBs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CountOffset {
    /// X offset.
    pub x: f64,
    /// Y offset.
    pub y: f64,
}

/// Result of a rotation calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// The estimated offset.
    pub offset: CountOffset,
    /// The raw `(x, y)` counter pairs recorded during the rotation
    /// (sign-corrected so they are ∝ field).
    pub samples: Vec<(i64, i64)>,
}

impl Calibration {
    /// Runs a rotation calibration: `n` equally spaced headings.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` (the min/max centre estimate needs all four
    /// cardinal regions).
    pub fn rotate(compass: &mut Compass, n: usize) -> Self {
        assert!(n >= 4, "rotation calibration needs at least 4 points");
        let mut samples = Vec::with_capacity(n);
        for k in 0..n {
            let heading = Degrees::new(k as f64 * 360.0 / n as f64);
            let r = compass.measure_heading(heading);
            samples.push((-r.x.count, -r.y.count));
        }
        let (min_x, max_x) = samples
            .iter()
            .fold((i64::MAX, i64::MIN), |(lo, hi), &(x, _)| {
                (lo.min(x), hi.max(x))
            });
        let (min_y, max_y) = samples
            .iter()
            .fold((i64::MAX, i64::MIN), |(lo, hi), &(_, y)| {
                (lo.min(y), hi.max(y))
            });
        Self {
            offset: CountOffset {
                x: (min_x + max_x) as f64 / 2.0,
                y: (min_y + max_y) as f64 / 2.0,
            },
            samples,
        }
    }

    /// Applies the calibration to a raw (sign-corrected) counter pair.
    pub fn apply(&self, x: i64, y: i64) -> (i64, i64) {
        (
            x - self.offset.x.round() as i64,
            y - self.offset.y.round() as i64,
        )
    }

    /// A corrected heading measurement: one fix, offset-compensated,
    /// recomputed through the same CORDIC.
    pub fn corrected_heading(&self, compass: &mut Compass, truth: Degrees) -> Degrees {
        let r = compass.measure_heading(truth);
        let (cx, cy) = self.apply(-r.x.count, -r.y.count);
        fluxcomp_rtl::cordic::CordicArctan::new(compass.config().cordic_iterations)
            .heading(cx, cy)
            .map(|h| h.heading)
            .unwrap_or(Degrees::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompassConfig;
    use fluxcomp_fluxgate::earth::MagneticDisturbance;
    use fluxcomp_units::Tesla;

    fn disturbed_compass(offset_ut: f64) -> Compass {
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.disturbance = MagneticDisturbance::hard(
            Tesla::from_microtesla(offset_ut),
            Tesla::from_microtesla(-offset_ut / 2.0),
        );
        Compass::new(cfg).unwrap()
    }

    #[test]
    fn clean_compass_calibrates_to_zero_offset() {
        let mut c = Compass::new(CompassConfig::paper_design()).unwrap();
        let cal = Calibration::rotate(&mut c, 8);
        assert!(cal.offset.x.abs() < 3.0, "x offset {}", cal.offset.x);
        assert!(cal.offset.y.abs() < 3.0, "y offset {}", cal.offset.y);
        assert_eq!(cal.samples.len(), 8);
    }

    #[test]
    fn hard_iron_shows_up_as_circle_center() {
        let mut c = disturbed_compass(4.0);
        let cal = Calibration::rotate(&mut c, 16);
        // 4 µT on a 15 µT field ≈ 27 % of the radius — clearly nonzero.
        assert!(cal.offset.x > 10.0, "x offset {}", cal.offset.x);
        assert!(cal.offset.y < -5.0, "y offset {}", cal.offset.y);
    }

    #[test]
    fn calibration_recovers_accuracy_under_hard_iron() {
        let mut c = disturbed_compass(4.0);
        let cal = Calibration::rotate(&mut c, 16);
        let mut worst_raw = 0.0f64;
        let mut worst_cal = 0.0f64;
        for deg in [20.0, 110.0, 200.0, 290.0] {
            let truth = Degrees::new(deg);
            let raw = c.measure_heading(truth).heading;
            let corrected = cal.corrected_heading(&mut c, truth);
            worst_raw = worst_raw.max(raw.angular_distance(truth).value());
            worst_cal = worst_cal.max(corrected.angular_distance(truth).value());
        }
        assert!(
            worst_raw > 5.0,
            "hard iron should break the raw compass: {worst_raw}"
        );
        assert!(
            worst_cal < 2.0,
            "calibration should restore accuracy: {worst_cal}"
        );
        assert!(worst_cal < worst_raw / 3.0);
    }

    #[test]
    fn apply_subtracts_offset() {
        let cal = Calibration {
            offset: CountOffset { x: 10.0, y: -5.0 },
            samples: vec![],
        };
        assert_eq!(cal.apply(110, 10), (100, 15));
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn too_few_points_rejected() {
        let mut c = Compass::new(CompassConfig::paper_design()).unwrap();
        let _ = Calibration::rotate(&mut c, 3);
    }
}
