//! Degraded-mode fixes: per-axis health scoring, single-axis fallback
//! and hold-last-heading, surfaced through a typed [`FixQuality`].
//!
//! The paper's smart-sensor argument (§5–6) is that an integrated
//! sensor system must stay *usable* — visibly degraded, never silently
//! wrong — when part of the signal chain fails. `selftest` *detects*
//! faults offline; this module keeps the fix path alive online:
//!
//! 1. **Per-axis health scoring** ([`HealthPolicy::score`]): every
//!    [`AxisMeasurement`] is checked against two plausibility
//!    invariants that need no extra hardware, only the duty-cycle
//!    physics the compass is built on —
//!    * *duty plausibility*: `duty = 1/2 − H/(2·H_peak)` bounds the
//!      legitimate duty to a narrow band around ½ (the earth field is
//!      tiny against `H_peak`); an open pickup or stuck comparator
//!      pins the duty at 0 or 1, far outside the band;
//!    * *count/duty consistency*: the counter integrates the same
//!      detector stream the duty is computed from, so
//!      `count ≈ full_scale·(2·duty − 1)`; a corrupted counter or
//!      torn scratch breaks the identity.
//! 2. **Single-axis fallback**: with one healthy axis the heading is
//!    recovered from that axis alone — `H_x = H_h·cos θ` (or
//!    `H_y = H_h·sin θ`) gives two candidate headings; the one nearest
//!    the last good heading wins. Quality: [`FixQuality::Degraded`].
//! 3. **Hold-last-heading**: with no healthy axis the last good heading
//!    is held (0° before any good fix, like the hardware's cleared
//!    result register). Quality: [`FixQuality::Invalid`], confidence 0.
//!
//! [`DegradedTracker`] carries the cross-fix state (last good heading);
//! one lives per serve worker next to its `MeasureScratch`. Scoring
//! itself is stateless and pure, so health verdicts are deterministic
//! under any worker count.

use crate::system::{AxisMeasurement, CompassDesign, Reading};
use fluxcomp_fluxgate::pair::Axis;
use fluxcomp_units::angle::Degrees;
use std::fmt;

/// The trust level of a fix, in decreasing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixQuality {
    /// Both axes passed their health checks; the heading is the full
    /// two-axis CORDIC fix.
    Good,
    /// Exactly one axis passed; the heading is the single-axis
    /// fallback anchored to the last good heading.
    Degraded,
    /// Neither axis passed; the heading is the held last good heading
    /// and must not be trusted for navigation.
    Invalid,
}

impl FixQuality {
    /// Stable lowercase name (used by obs counters and reports).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FixQuality::Good => "good",
            FixQuality::Degraded => "degraded",
            FixQuality::Invalid => "invalid",
        }
    }
}

impl fmt::Display for FixQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The health verdict for one axis measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisHealth {
    /// `|duty − ½|` — distance from the null-field duty.
    pub duty_deviation: f64,
    /// `|count − full_scale·(2·duty − 1)|` in counter LSBs.
    pub count_residual: f64,
    /// Duty within the band a real earth field can produce.
    pub plausible_duty: bool,
    /// Count consistent with the duty it was integrated alongside.
    pub consistent_count: bool,
    /// Scalar summary in `[0, 1]`: 1.0 healthy, 0.5 one check failed,
    /// 0.0 both failed.
    pub score: f64,
}

impl AxisHealth {
    /// Both invariants hold.
    #[must_use]
    pub fn healthy(&self) -> bool {
        self.plausible_duty && self.consistent_count
    }
}

/// Thresholds for [`AxisHealth`], derived from a design's physics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthPolicy {
    /// Maximum plausible `|duty − ½|`.
    pub max_duty_deviation: f64,
    /// Maximum count-vs-duty residual in counter LSBs.
    pub max_count_residual: f64,
    /// Counter full scale (edges per measurement window).
    pub full_scale: f64,
    /// Peak excitation field `H_peak` in A/m.
    pub h_peak: f64,
    /// Horizontal earth-field magnitude in A/m.
    pub h_horizontal: f64,
}

impl HealthPolicy {
    /// Thresholds for `design`.
    ///
    /// The duty band is the widest legitimate deviation — the full
    /// horizontal field on one axis, `H_h/(2·H_peak)` — with 2.5×
    /// headroom for noise, hard-iron offsets and calibration drift,
    /// plus a 1 % quantisation floor. The count residual allows the
    /// edge-granularity error of the clock schedule (a few edges per
    /// detector pulse boundary) as 2 % of full scale plus 8 LSBs.
    #[must_use]
    pub fn for_design(design: &CompassDesign) -> Self {
        let h_peak = design.peak_excitation_field().value();
        let h_horizontal = design
            .config()
            .field
            .horizontal_magnitude()
            .to_ampere_per_meter_in_air()
            .value();
        let full_scale = design.counter_full_scale() as f64;
        Self {
            max_duty_deviation: h_horizontal / (2.0 * h_peak) * 2.5 + 0.01,
            max_count_residual: 0.02 * full_scale + 8.0,
            full_scale,
            h_peak,
            h_horizontal,
        }
    }

    /// Scores one axis measurement against the policy.
    #[must_use]
    pub fn score(&self, m: &AxisMeasurement) -> AxisHealth {
        let duty_deviation = (m.duty - 0.5).abs();
        let plausible_duty =
            duty_deviation.is_finite() && duty_deviation <= self.max_duty_deviation;
        let expected = self.full_scale * (2.0 * m.duty - 1.0);
        let count_residual = (m.count as f64 - expected).abs();
        let consistent_count =
            count_residual.is_finite() && count_residual <= self.max_count_residual;
        let score = match (plausible_duty, consistent_count) {
            (true, true) => 1.0,
            (true, false) | (false, true) => 0.5,
            (false, false) => 0.0,
        };
        AxisHealth {
            duty_deviation,
            count_residual,
            plausible_duty,
            consistent_count,
            score,
        }
    }
}

/// A [`Reading`] plus its health verdict.
///
/// `reading.heading` is already the *published* heading: the two-axis
/// fix when `Good`, the single-axis fallback when `Degraded`, the held
/// last good heading when `Invalid`.
#[derive(Debug, Clone)]
pub struct CheckedReading {
    /// The fix, with `heading` replaced by the fallback/held value for
    /// non-`Good` qualities.
    pub reading: Reading,
    /// The typed trust level.
    pub quality: FixQuality,
    /// X-axis verdict.
    pub x_health: AxisHealth,
    /// Y-axis verdict.
    pub y_health: AxisHealth,
    /// Heading confidence in `[0, 1]`: 1.0 for `Good`, 0.5 for a
    /// `Degraded` fix anchored to a known-good heading (0.25 without an
    /// anchor), 0.0 for `Invalid`.
    pub confidence: f64,
    /// `true` when the heading is a held value, not derived from this
    /// fix's measurements at all.
    pub held: bool,
}

/// Cross-fix degraded-mode state: the health policy plus the last
/// heading that passed both axis checks.
///
/// One tracker lives wherever fixes are sequential — per serve worker,
/// per mission leg. It is deliberately *not* shared across workers:
/// the fallback anchor is advisory, and sharing it would make degraded
/// headings depend on worker interleaving.
#[derive(Debug, Clone)]
pub struct DegradedTracker {
    policy: HealthPolicy,
    last_good: Option<Degrees>,
    held_fixes: u64,
}

impl DegradedTracker {
    /// A fresh tracker with an explicit policy.
    #[must_use]
    pub fn new(policy: HealthPolicy) -> Self {
        Self {
            policy,
            last_good: None,
            held_fixes: 0,
        }
    }

    /// A fresh tracker with [`HealthPolicy::for_design`].
    #[must_use]
    pub fn for_design(design: &CompassDesign) -> Self {
        Self::new(HealthPolicy::for_design(design))
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// The last heading that passed both axis checks, if any.
    #[must_use]
    pub fn last_good(&self) -> Option<Degrees> {
        self.last_good
    }

    /// Consecutive fixes since the last good one (0 while healthy).
    #[must_use]
    pub fn held_fixes(&self) -> u64 {
        self.held_fixes
    }

    /// Clears the anchor (e.g. after a worker scratch rebuild).
    pub fn reset(&mut self) {
        self.last_good = None;
        self.held_fixes = 0;
    }

    /// Scores both axes of `reading` and produces the published fix.
    ///
    /// See the module docs for the three-way policy. The verdict for a
    /// given reading is pure; only the fallback anchor is stateful.
    pub fn assess(&mut self, reading: Reading) -> CheckedReading {
        let x_health = self.policy.score(&reading.x);
        let y_health = self.policy.score(&reading.y);
        let mut reading = reading;
        let (quality, confidence, held) = match (x_health.healthy(), y_health.healthy()) {
            (true, true) => {
                self.last_good = Some(reading.heading);
                self.held_fixes = 0;
                (FixQuality::Good, 1.0, false)
            }
            (true, false) | (false, true) => {
                self.held_fixes += 1;
                let (axis, count) = if x_health.healthy() {
                    (Axis::X, reading.x.count)
                } else {
                    (Axis::Y, reading.y.count)
                };
                let anchor = self.last_good.unwrap_or(reading.heading);
                reading.heading = single_axis_heading(&self.policy, axis, count, anchor);
                let confidence = if self.last_good.is_some() { 0.5 } else { 0.25 };
                (FixQuality::Degraded, confidence, false)
            }
            (false, false) => {
                self.held_fixes += 1;
                reading.heading = self.last_good.unwrap_or(Degrees::ZERO);
                (FixQuality::Invalid, 0.0, true)
            }
        };
        fluxcomp_obs::counter_add(
            match quality {
                FixQuality::Good => "compass.fix_good",
                FixQuality::Degraded => "compass.fix_degraded",
                FixQuality::Invalid => "compass.fix_invalid",
            },
            1,
        );
        CheckedReading {
            reading,
            quality,
            x_health,
            y_health,
            confidence,
            held,
        }
    }
}

/// Recovers a heading from one healthy axis.
///
/// `count → H_axis` inverts the counter transfer
/// (`count = −full_scale·H/H_peak`); `H_x = H_h·cos θ` (resp.
/// `H_y = H_h·sin θ`) then admits two candidate headings, and the one
/// with the smaller angular distance to `anchor` is returned.
fn single_axis_heading(policy: &HealthPolicy, axis: Axis, count: i64, anchor: Degrees) -> Degrees {
    let h_axis = -(count as f64) * policy.h_peak / policy.full_scale;
    let ratio = (h_axis / policy.h_horizontal).clamp(-1.0, 1.0);
    let (a, b) = match axis {
        Axis::X => {
            let t = ratio.acos().to_degrees();
            (t, 360.0 - t)
        }
        Axis::Y => {
            let t = ratio.asin().to_degrees();
            (t, 180.0 - t)
        }
    };
    let (a, b) = (Degrees::new(a).normalized(), Degrees::new(b).normalized());
    if a.angular_distance(anchor).value() <= b.angular_distance(anchor).value() {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompassConfig;
    use crate::system::MeasureScratch;
    use fluxcomp_faults::{AxisSel, FaultKind, FaultPlan, FaultSpec};

    fn design() -> CompassDesign {
        CompassDesign::new(CompassConfig::paper_design()).unwrap()
    }

    fn open_pickup(axis: AxisSel) -> FaultPlan {
        FaultPlan::new(5).with(FaultSpec {
            kind: FaultKind::OpenPickup,
            axis,
            rate: 1.0,
        })
    }

    #[test]
    fn clean_fixes_are_good_with_full_confidence() {
        let design = design();
        let mut scratch = MeasureScratch::for_design(&design);
        let mut tracker = DegradedTracker::for_design(&design);
        for truth in [0.0, 45.0, 123.0, 359.0] {
            let checked = design.measure_heading_checked(
                Degrees::new(truth),
                7,
                &mut scratch,
                None,
                &mut tracker,
            );
            assert_eq!(checked.quality, FixQuality::Good, "at {truth}°");
            assert_eq!(checked.confidence, 1.0);
            assert!(!checked.held);
            assert!(checked.x_health.healthy() && checked.y_health.healthy());
            // The published heading is the untouched two-axis fix.
            let direct = design.measure_heading_scratch(Degrees::new(truth), 7, &mut scratch);
            assert_eq!(
                checked.reading.heading.value().to_bits(),
                direct.heading.value().to_bits()
            );
        }
        assert!(tracker.last_good().is_some());
    }

    #[test]
    fn zero_plan_checked_fix_is_bit_identical_to_unchecked() {
        let design = design();
        let mut scratch = MeasureScratch::for_design(&design);
        let mut tracker = DegradedTracker::for_design(&design);
        let plan = FaultPlan::none();
        for truth in [10.0, 200.0] {
            let direct = design.measure_heading_scratch(Degrees::new(truth), 3, &mut scratch);
            let checked = design.measure_heading_checked(
                Degrees::new(truth),
                3,
                &mut scratch,
                Some(&plan),
                &mut tracker,
            );
            assert_eq!(
                checked.reading.heading.value().to_bits(),
                direct.heading.value().to_bits()
            );
            assert_eq!(checked.reading.x.count, direct.x.count);
            assert_eq!(checked.reading.y.count, direct.y.count);
            assert_eq!(checked.reading.x.duty.to_bits(), direct.x.duty.to_bits());
        }
    }

    #[test]
    fn single_axis_open_pickup_degrades_with_bounded_heading_error() {
        let design = design();
        let mut scratch = MeasureScratch::for_design(&design);
        let mut tracker = DegradedTracker::for_design(&design);
        // Anchor the tracker with a good fix near the truth we'll lose
        // an axis at.
        let good = design.measure_heading_checked(
            Degrees::new(120.0),
            1,
            &mut scratch,
            None,
            &mut tracker,
        );
        assert_eq!(good.quality, FixQuality::Good);
        let plan = open_pickup(AxisSel::Y);
        let checked = design.measure_heading_checked(
            Degrees::new(123.0),
            2,
            &mut scratch,
            Some(&plan),
            &mut tracker,
        );
        assert_eq!(checked.quality, FixQuality::Degraded);
        assert!(checked.x_health.healthy());
        assert!(!checked.y_health.healthy());
        assert_eq!(checked.confidence, 0.5);
        // Single-axis fallback from the healthy X axis: the heading
        // error stays within a few degrees of the truth.
        let err = checked
            .reading
            .heading
            .angular_distance(Degrees::new(123.0))
            .value();
        assert!(err < 5.0, "degraded heading error {err}° too large");
    }

    #[test]
    fn both_axes_dead_holds_last_good_heading() {
        let design = design();
        let mut scratch = MeasureScratch::for_design(&design);
        let mut tracker = DegradedTracker::for_design(&design);
        let good =
            design.measure_heading_checked(Degrees::new(77.0), 1, &mut scratch, None, &mut tracker);
        let anchor = good.reading.heading;
        let plan = open_pickup(AxisSel::Both);
        let checked = design.measure_heading_checked(
            Degrees::new(200.0),
            2,
            &mut scratch,
            Some(&plan),
            &mut tracker,
        );
        assert_eq!(checked.quality, FixQuality::Invalid);
        assert!(checked.held);
        assert_eq!(checked.confidence, 0.0);
        assert_eq!(
            checked.reading.heading.value().to_bits(),
            anchor.value().to_bits(),
            "invalid fix must hold the last good heading"
        );
        assert_eq!(tracker.held_fixes(), 1);
        // With no anchor at all, the held heading is 0°.
        let mut fresh = DegradedTracker::for_design(&design);
        let held = design.measure_heading_checked(
            Degrees::new(200.0),
            2,
            &mut scratch,
            Some(&plan),
            &mut fresh,
        );
        assert_eq!(held.quality, FixQuality::Invalid);
        assert_eq!(held.reading.heading.value(), 0.0);
    }

    #[test]
    fn stuck_comparator_is_flagged_not_trusted() {
        let design = design();
        let mut scratch = MeasureScratch::for_design(&design);
        let mut tracker = DegradedTracker::for_design(&design);
        let plan = FaultPlan::new(9).with(FaultSpec {
            kind: FaultKind::StuckComparator { output: true },
            axis: AxisSel::X,
            rate: 1.0,
        });
        let checked = design.measure_heading_checked(
            Degrees::new(10.0),
            4,
            &mut scratch,
            Some(&plan),
            &mut tracker,
        );
        // A welded-high comparator pins the duty at 1.0 — far outside
        // the plausible band — so the fix can never be Good.
        assert_ne!(checked.quality, FixQuality::Good);
        assert!(!checked.x_health.plausible_duty);
    }

    #[test]
    fn faulted_fixes_are_deterministic_across_tracker_instances() {
        let design = design();
        let plan = FaultPlan::new(33)
            .with(FaultSpec {
                kind: FaultKind::OpenPickup,
                axis: AxisSel::Both,
                rate: 0.4,
            })
            .with(FaultSpec {
                kind: FaultKind::HkDriftRamp { h_end: 120.0 },
                axis: AxisSel::Both,
                rate: 0.3,
            });
        let run = || {
            let mut scratch = MeasureScratch::for_design(&design);
            let mut tracker = DegradedTracker::for_design(&design);
            (0..24u64)
                .map(|i| {
                    let c = design.measure_heading_checked(
                        Degrees::new(15.0 * i as f64),
                        i,
                        &mut scratch,
                        Some(&plan),
                        &mut tracker,
                    );
                    (c.quality, c.reading.heading.value().to_bits())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn health_policy_thresholds_are_physical() {
        let design = design();
        let policy = HealthPolicy::for_design(&design);
        // Earth field ≈ 11.94 A/m, H_peak = 240 A/m: the duty band is
        // narrow but clears the legitimate deviation with headroom.
        let legit = policy.h_horizontal / (2.0 * policy.h_peak);
        assert!(policy.max_duty_deviation > legit);
        assert!(policy.max_duty_deviation < 0.25);
        assert!(policy.full_scale > 0.0);
    }
}
