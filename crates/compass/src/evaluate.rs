//! Accuracy evaluation — the harness behind the paper's headline
//! "accuracy of one degree" (C1) and the field-magnitude insensitivity
//! claim (C9).
//!
//! The sweeps run on the `fluxcomp-exec` engine: each heading is an
//! independent pure measurement of a shared [`CompassDesign`], so
//! [`sweep_headings`] distributes them over the worker pool its
//! [`ExecPolicy`] argument selects and folds the ordered per-heading
//! errors into [`AccuracyStats`] on the calling thread. The fold order
//! never depends on scheduling, which makes the statistics bit-identical
//! at any thread count — `ExecPolicy::Serial` and
//! `ExecPolicy::Parallel { .. }` are the same computation at different
//! speeds.

use crate::system::{CompassDesign, MeasureScratch};
use fluxcomp_exec::{derive_seed, par_map_range, par_map_range_scratch, ExecPolicy, StreamStats};
use fluxcomp_units::angle::Degrees;

/// Error statistics over a heading sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyStats {
    /// Number of headings evaluated.
    pub samples: usize,
    /// Worst-case absolute angular error.
    pub max_error: Degrees,
    /// Mean absolute angular error.
    pub mean_error: Degrees,
    /// Root-mean-square angular error.
    pub rms_error: Degrees,
    /// Mean signed error (systematic bias).
    pub bias: Degrees,
}

impl AccuracyStats {
    /// Folds a sequence of signed errors (degrees) into the summary
    /// statistics. The fold is a single left-to-right pass, so callers
    /// that need bit-reproducible results must present the errors in a
    /// deterministic order (sweep index order, here).
    pub fn from_signed_errors<I: IntoIterator<Item = f64>>(errors: I) -> Self {
        let s = StreamStats::from_samples(errors);
        Self {
            samples: s.count(),
            max_error: Degrees::new(s.max_abs()),
            mean_error: Degrees::new(s.mean_abs()),
            rms_error: Degrees::new(s.rms()),
            bias: Degrees::new(s.mean()),
        }
    }

    /// `true` when the worst case meets the paper's 1° specification.
    pub fn meets_one_degree_spec(&self) -> bool {
        self.max_error.value() <= 1.0
    }
}

/// The signed heading error (degrees) of one fix at sweep point `k` of
/// `n`: truth is `k·360/n`.
fn sweep_error(design: &CompassDesign, scratch: &mut MeasureScratch, k: usize, n: usize) -> f64 {
    let truth = Degrees::new(k as f64 * 360.0 / n as f64);
    design
        .measure_heading_scratch(truth, design.config().frontend.noise_seed, scratch)
        .heading
        .signed_error_from(truth)
        .value()
}

/// Evaluates the compass over `n` equally spaced headings in `[0, 360)`.
///
/// The `n` fixes are distributed according to `policy` — run them on the
/// calling thread with [`ExecPolicy::serial`] or on a worker pool with
/// [`ExecPolicy::parallel`] — and the statistics are folded in sweep
/// order, so the result is bit-identical at any worker count.
///
/// Every fix runs on the duty-only fast path through one
/// [`MeasureScratch`] per worker, so the whole sweep performs no
/// per-heading allocation. The result is nonetheless bit-identical to
/// [`sweep_headings_traced`], which replays the sweep on the diagnostic
/// full-waveform tier.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sweep_headings(design: &CompassDesign, n: usize, policy: &ExecPolicy) -> AccuracyStats {
    assert!(n > 0, "need at least one heading");
    let _sweep = fluxcomp_obs::span("compass.sweep");
    let errors = par_map_range_scratch(
        policy,
        n,
        || MeasureScratch::for_design(design),
        |scratch, k| sweep_error(design, scratch, k, n),
    );
    AccuracyStats::from_signed_errors(errors)
}

/// [`sweep_headings`] on the diagnostic tier: every fix records the full
/// waveform set before integrating the counter. Same statistics, bit for
/// bit — this is the cross-check the determinism suite and the `e11`
/// benchmark run against the fast path.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sweep_headings_traced(
    design: &CompassDesign,
    n: usize,
    policy: &ExecPolicy,
) -> AccuracyStats {
    assert!(n > 0, "need at least one heading");
    let _sweep = fluxcomp_obs::span("compass.sweep");
    let seed = design.config().frontend.noise_seed;
    let errors = par_map_range(policy, n, |k| {
        let truth = Degrees::new(k as f64 * 360.0 / n as f64);
        design
            .measure_heading_traced(truth, seed)
            .heading
            .signed_error_from(truth)
            .value()
    });
    AccuracyStats::from_signed_errors(errors)
}

/// Evaluates a single heading `repeats` times (for noise studies) and
/// returns the per-trial errors in degrees.
///
/// Every repeat uses a distinct noise seed derived from the design's
/// configured seed and the repeat index, so the trials are independent
/// noise realisations yet the whole study is reproducible — and, like
/// [`sweep_headings`], bit-identical under any `policy`. Fixes run on
/// the fast path with one reused [`MeasureScratch`] per worker.
pub fn repeat_heading(
    design: &CompassDesign,
    heading: Degrees,
    repeats: usize,
    policy: &ExecPolicy,
) -> Vec<f64> {
    let base = design.config().frontend.noise_seed;
    par_map_range_scratch(
        policy,
        repeats,
        || MeasureScratch::for_design(design),
        |scratch, k| {
            design
                .measure_heading_scratch(heading, derive_seed(base, k as u64), scratch)
                .heading
                .signed_error_from(heading)
                .value()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompassConfig;

    #[test]
    fn paper_design_meets_one_degree_over_sweep() {
        // The headline reproduction: a 24-point sweep of the full
        // circle through the complete mixed-signal pipeline.
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let stats = sweep_headings(&design, 24, &ExecPolicy::serial());
        assert!(
            stats.meets_one_degree_spec(),
            "max error {} exceeds 1°",
            stats.max_error
        );
        assert!(stats.mean_error <= stats.max_error);
        assert!(stats.rms_error <= stats.max_error);
        assert!(stats.bias.value().abs() <= stats.mean_error.value() + 1e-12);
        assert_eq!(stats.samples, 24);
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let serial = sweep_headings(&design, 24, &ExecPolicy::serial());
        for threads in [2, 4, 8] {
            let par = sweep_headings(&design, 24, &ExecPolicy::with_threads(threads));
            assert_eq!(serial, par, "at {threads} threads");
            assert_eq!(
                serial.rms_error.value().to_bits(),
                par.rms_error.value().to_bits()
            );
        }
    }

    #[test]
    fn traced_sweep_matches_fast_sweep_bitwise() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        for policy in [ExecPolicy::serial(), ExecPolicy::with_threads(2)] {
            let fast = sweep_headings(&design, 16, &policy);
            let traced = sweep_headings_traced(&design, 16, &policy);
            assert_eq!(fast.samples, traced.samples);
            for (f, t) in [
                (fast.max_error, traced.max_error),
                (fast.mean_error, traced.mean_error),
                (fast.rms_error, traced.rms_error),
                (fast.bias, traced.bias),
            ] {
                assert_eq!(f.value().to_bits(), t.value().to_bits(), "{policy:?}");
            }
        }
    }

    #[test]
    fn fewer_cordic_iterations_lose_the_spec() {
        let mut cfg = CompassConfig::paper_design();
        cfg.cordic_iterations = 3;
        let design = CompassDesign::new(cfg).unwrap();
        let stats = sweep_headings(&design, 16, &ExecPolicy::serial());
        assert!(
            !stats.meets_one_degree_spec(),
            "3 iterations should miss 1°: max {}",
            stats.max_error
        );
    }

    #[test]
    fn repeat_heading_is_deterministic_without_noise() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let errs = repeat_heading(&design, Degrees::new(77.0), 3, &ExecPolicy::serial());
        assert_eq!(errs.len(), 3);
        assert!(errs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn repeat_heading_varies_under_noise_but_reproduces() {
        let mut cfg = CompassConfig::paper_design();
        cfg.frontend.pickup_noise_rms = 2e-3;
        cfg.frontend.detector.hysteresis = fluxcomp_units::Volt::new(0.016);
        let design = CompassDesign::new(cfg).unwrap();
        let policy = ExecPolicy::serial();
        let errs = repeat_heading(&design, Degrees::new(30.0), 8, &policy);
        // Distinct per-repeat seeds: the noise realisations differ.
        assert!(
            errs.windows(2).any(|w| w[0] != w[1]),
            "noise repeats should differ: {errs:?}"
        );
        // ... yet the whole study is reproducible, serial or parallel.
        let again = repeat_heading(&design, Degrees::new(30.0), 8, &policy);
        assert_eq!(errs, again);
        let par = repeat_heading(&design, Degrees::new(30.0), 8, &ExecPolicy::with_threads(4));
        assert_eq!(errs, par);
    }

    #[test]
    fn stats_fold_matches_direct_formulas() {
        let errs = [0.5, -0.25, 1.0, -0.75];
        let s = AccuracyStats::from_signed_errors(errs);
        assert_eq!(s.samples, 4);
        assert_eq!(s.max_error.value(), 1.0);
        assert!((s.mean_error.value() - 0.625).abs() < 1e-12);
        assert!((s.bias.value() - 0.125).abs() < 1e-12);
        let rms = (errs.iter().map(|e| e * e).sum::<f64>() / 4.0).sqrt();
        assert!((s.rms_error.value() - rms).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one heading")]
    fn empty_sweep_rejected() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let _ = sweep_headings(&design, 0, &ExecPolicy::serial());
    }
}
