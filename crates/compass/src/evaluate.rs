//! Accuracy evaluation — the harness behind the paper's headline
//! "accuracy of one degree" (C1) and the field-magnitude insensitivity
//! claim (C9).

use crate::system::Compass;
use fluxcomp_units::angle::Degrees;

/// Error statistics over a heading sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyStats {
    /// Number of headings evaluated.
    pub samples: usize,
    /// Worst-case absolute angular error.
    pub max_error: Degrees,
    /// Mean absolute angular error.
    pub mean_error: Degrees,
    /// Root-mean-square angular error.
    pub rms_error: Degrees,
    /// Mean signed error (systematic bias).
    pub bias: Degrees,
}

impl AccuracyStats {
    /// `true` when the worst case meets the paper's 1° specification.
    pub fn meets_one_degree_spec(&self) -> bool {
        self.max_error.value() <= 1.0
    }
}

/// Evaluates the compass over `n` equally spaced headings in `[0, 360)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn sweep_headings(compass: &mut Compass, n: usize) -> AccuracyStats {
    assert!(n > 0, "need at least one heading");
    let mut max_err = 0.0f64;
    let mut sum_abs = 0.0;
    let mut sum_sq = 0.0;
    let mut sum_signed = 0.0;
    for k in 0..n {
        let truth = Degrees::new(k as f64 * 360.0 / n as f64);
        let reading = compass.measure_heading(truth);
        let signed = reading.heading.signed_error_from(truth).value();
        let abs = signed.abs();
        max_err = max_err.max(abs);
        sum_abs += abs;
        sum_sq += signed * signed;
        sum_signed += signed;
    }
    AccuracyStats {
        samples: n,
        max_error: Degrees::new(max_err),
        mean_error: Degrees::new(sum_abs / n as f64),
        rms_error: Degrees::new((sum_sq / n as f64).sqrt()),
        bias: Degrees::new(sum_signed / n as f64),
    }
}

/// Evaluates a single heading `repeats` times (for noise studies) and
/// returns the per-trial errors in degrees.
pub fn repeat_heading(compass: &mut Compass, heading: Degrees, repeats: usize) -> Vec<f64> {
    (0..repeats)
        .map(|_| {
            compass
                .measure_heading(heading)
                .heading
                .signed_error_from(heading)
                .value()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompassConfig;

    #[test]
    fn paper_design_meets_one_degree_over_sweep() {
        // The headline reproduction: a 24-point sweep of the full
        // circle through the complete mixed-signal pipeline.
        let mut c = Compass::new(CompassConfig::paper_design()).unwrap();
        let stats = sweep_headings(&mut c, 24);
        assert!(
            stats.meets_one_degree_spec(),
            "max error {} exceeds 1°",
            stats.max_error
        );
        assert!(stats.mean_error <= stats.max_error);
        assert!(stats.rms_error <= stats.max_error);
        assert!(stats.bias.value().abs() <= stats.mean_error.value() + 1e-12);
        assert_eq!(stats.samples, 24);
    }

    #[test]
    fn fewer_cordic_iterations_lose_the_spec() {
        let mut cfg = CompassConfig::paper_design();
        cfg.cordic_iterations = 3;
        let mut c = Compass::new(cfg).unwrap();
        let stats = sweep_headings(&mut c, 16);
        assert!(
            !stats.meets_one_degree_spec(),
            "3 iterations should miss 1°: max {}",
            stats.max_error
        );
    }

    #[test]
    fn repeat_heading_is_deterministic_without_noise() {
        let mut c = Compass::new(CompassConfig::paper_design()).unwrap();
        let errs = repeat_heading(&mut c, Degrees::new(77.0), 3);
        assert_eq!(errs.len(), 3);
        assert!(errs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "at least one heading")]
    fn empty_sweep_rejected() {
        let mut c = Compass::new(CompassConfig::paper_design()).unwrap();
        let _ = sweep_headings(&mut c, 0);
    }
}
