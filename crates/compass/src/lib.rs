//! # fluxcomp-compass
//!
//! **The paper's contribution**: the fully integrated electronic compass
//! of Fig. 1, assembled from the workspace's substrates —
//!
//! fluxgate sensor pair → triangular excitation + V-I converter →
//! pulse-position detector → 4.194304 MHz up/down counter → Fig. 8
//! CORDIC → LCD, under the multiplexing/power-gating sequencer, mapped
//! onto the Sea-of-Gates array and MCM.
//!
//! * [`config`] — system configuration ([`CompassConfig::paper_design`]);
//! * [`system`] — [`Compass`], the end-to-end mixed-signal pipeline;
//! * [`evaluate`] — heading sweeps and accuracy statistics (the 1°
//!   claim);
//! * [`calibration`] — rotation calibration against hard-iron
//!   disturbances;
//! * [`baseline`] — the second-harmonic + ADC readout the paper argues
//!   against (experiment E8);
//! * [`chip`] — the Sea-of-Gates occupancy report (experiment E6);
//! * [`tilt`] — the two-axis compass's tilt error and the three-axis
//!   tilt-compensated extension (experiment X2);
//! * [`filter`] — circular statistics and heading smoothing for
//!   repeated fixes;
//! * [`energy`] — coin-cell battery-life estimates showing what the
//!   paper's power gating buys;
//! * [`mission`] — dead-reckoning routes: the navigation use case the
//!   paper's intro motivates, quantifying what 1° of heading buys;
//! * [`selftest`] — built-in self-test by dc-offset injection through
//!   the whole signal chain;
//! * [`production`] — the three-stage manufacturing test flow
//!   (interconnect → BIST → functional) with fault diagnosis;
//! * [`gate_level`] — the fix computed through the synthesised counter
//!   and CORDIC netlists, bit-identical to the behavioural pipeline.
//!
//! ## Quickstart
//!
//! ```
//! use fluxcomp_compass::{Compass, CompassConfig};
//! use fluxcomp_units::Degrees;
//!
//! # fn main() -> Result<(), fluxcomp_compass::BuildError> {
//! let mut compass = Compass::new(CompassConfig::paper_design())?;
//! let reading = compass.measure_heading(Degrees::new(123.0));
//! assert!(reading.heading.angular_distance(Degrees::new(123.0)).value() <= 1.0);
//! assert_eq!(reading.cordic_cycles, 8); // the paper's 8-cycle arctan
//! # Ok(())
//! # }
//! ```

pub mod baseline;
pub mod calibration;
pub mod chip;
pub mod config;
pub mod degraded;
pub mod energy;
pub mod evaluate;
pub mod filter;
pub mod gate_level;
pub mod mission;
pub mod production;
pub mod selftest;
pub mod system;
pub mod tilt;

pub use baseline::SecondHarmonicCompass;
pub use calibration::Calibration;
pub use chip::{build_chip, paper_chip, ChipReport};
pub use config::{BuildError, CompassConfig};
pub use degraded::{AxisHealth, CheckedReading, DegradedTracker, FixQuality, HealthPolicy};
pub use energy::{battery_life_days, Battery, UsageProfile};
pub use evaluate::{repeat_heading, sweep_headings, sweep_headings_traced, AccuracyStats};
pub use filter::{circular_mean, circular_std, HeadingSmoother};
pub use gate_level::{GateLevelCompass, GateLevelReading};
pub use mission::{square_route, walk_route, Leg, MissionResult, Position};
pub use production::{production_test, production_test_batch, ProductionResult, RejectReason};
pub use selftest::{run_self_test, SelfTestReport};
pub use system::{AxisMeasurement, Compass, CompassDesign, MeasureScratch, Reading};
pub use tilt::{tilt_compensated_heading, two_axis_heading, worst_tilt_error, Attitude};
