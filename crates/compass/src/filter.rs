//! Heading filters.
//!
//! A watch compass takes repeated fixes; under pickup noise or magnetic
//! clutter the displayed heading should be steadied without lagging a
//! real turn too much. Angles live on a circle, so naive averaging fails
//! catastrophically around north (the mean of 359° and 1° is *not*
//! 180°). Both filters here work on unit vectors, the standard circular
//! statistics approach.

use fluxcomp_units::angle::Degrees;

/// Circular mean of a set of headings. Returns `None` for an empty set
/// or when the vectors cancel (no meaningful mean).
pub fn circular_mean(headings: &[Degrees]) -> Option<Degrees> {
    if headings.is_empty() {
        return None;
    }
    let (sx, sy) = headings
        .iter()
        .fold((0.0, 0.0), |(x, y), h| (x + h.cos(), y + h.sin()));
    let r = (sx * sx + sy * sy).sqrt() / headings.len() as f64;
    if r < 1e-9 {
        return None;
    }
    Some(Degrees::atan2(sy, sx).normalized())
}

/// The circular standard deviation `√(−2·ln R)` in degrees — the spread
/// metric for repeated-fix noise studies.
pub fn circular_std(headings: &[Degrees]) -> Option<Degrees> {
    if headings.is_empty() {
        return None;
    }
    let (sx, sy) = headings
        .iter()
        .fold((0.0, 0.0), |(x, y), h| (x + h.cos(), y + h.sin()));
    let r = ((sx * sx + sy * sy).sqrt() / headings.len() as f64).clamp(1e-12, 1.0);
    Some(Degrees::new((-2.0 * r.ln()).sqrt().to_degrees()))
}

/// An exponential smoother on the unit circle: each update blends the
/// new fix's unit vector into the state with weight `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadingSmoother {
    alpha: f64,
    state: Option<(f64, f64)>,
}

impl HeadingSmoother {
    /// Creates a smoother; `alpha` in `(0, 1]` (1.0 = no smoothing).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is out of range.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, state: None }
    }

    /// The smoothing weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds a new fix; returns the smoothed heading.
    pub fn update(&mut self, fix: Degrees) -> Degrees {
        let v = (fix.cos(), fix.sin());
        let s = match self.state {
            None => v,
            Some((x, y)) => (x + self.alpha * (v.0 - x), y + self.alpha * (v.1 - y)),
        };
        self.state = Some(s);
        Degrees::atan2(s.1, s.0).normalized()
    }

    /// The current smoothed heading, if any fix has been seen.
    pub fn current(&self) -> Option<Degrees> {
        self.state.map(|(x, y)| Degrees::atan2(y, x).normalized())
    }

    /// Forgets all history.
    pub fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_across_north_is_north() {
        let headings = [Degrees::new(359.0), Degrees::new(1.0), Degrees::new(0.5)];
        let mean = circular_mean(&headings).unwrap();
        assert!(
            mean.angular_distance(Degrees::new(0.17)).value() < 0.2,
            "{mean}"
        );
    }

    #[test]
    fn mean_of_identical_headings() {
        let headings = [Degrees::new(123.0); 5];
        let mean = circular_mean(&headings).unwrap();
        assert!(mean.angular_distance(Degrees::new(123.0)).value() < 1e-9);
    }

    #[test]
    fn degenerate_means() {
        assert_eq!(circular_mean(&[]), None);
        // Perfectly opposed headings cancel.
        assert_eq!(
            circular_mean(&[Degrees::new(0.0), Degrees::new(180.0)]),
            None
        );
    }

    #[test]
    fn std_of_tight_cluster_is_small() {
        let tight: Vec<Degrees> = (0..10)
            .map(|k| Degrees::new(90.0 + 0.1 * k as f64))
            .collect();
        let loose: Vec<Degrees> = (0..10)
            .map(|k| Degrees::new(90.0 + 10.0 * k as f64))
            .collect();
        let s_tight = circular_std(&tight).unwrap().value();
        let s_loose = circular_std(&loose).unwrap().value();
        assert!(s_tight < 1.0, "{s_tight}");
        assert!(s_loose > 5.0 * s_tight);
        assert_eq!(circular_std(&[]), None);
    }

    #[test]
    fn smoother_converges_to_constant_input() {
        let mut f = HeadingSmoother::new(0.3);
        assert_eq!(f.current(), None);
        let mut out = Degrees::ZERO;
        for _ in 0..50 {
            out = f.update(Degrees::new(200.0));
        }
        assert!(out.angular_distance(Degrees::new(200.0)).value() < 1e-6);
        assert_eq!(f.alpha(), 0.3);
    }

    #[test]
    fn smoother_attenuates_jitter() {
        let mut f = HeadingSmoother::new(0.2);
        // Alternate ±4° around 90°: the output must stay much tighter.
        let mut worst = 0.0f64;
        for k in 0..200 {
            let jitter = if k % 2 == 0 { 4.0 } else { -4.0 };
            let out = f.update(Degrees::new(90.0 + jitter));
            if k > 20 {
                worst = worst.max(out.angular_distance(Degrees::new(90.0)).value());
            }
        }
        assert!(worst < 1.5, "smoothed jitter {worst}");
    }

    #[test]
    fn smoother_tracks_across_north() {
        let mut f = HeadingSmoother::new(0.5);
        // Rotate steadily through north: 350 → 10.
        for deg in [350.0, 354.0, 358.0, 2.0, 6.0, 10.0] {
            f.update(Degrees::new(deg));
        }
        let out = f.current().unwrap();
        // The smoothed heading lags but must be near north, NOT near 180°.
        assert!(
            out.angular_distance(Degrees::new(5.0)).value() < 10.0,
            "{out}"
        );
    }

    #[test]
    fn smoother_reset() {
        let mut f = HeadingSmoother::new(1.0);
        f.update(Degrees::new(10.0));
        f.reset();
        assert_eq!(f.current(), None);
        // alpha = 1: output equals input immediately.
        assert_eq!(f.update(Degrees::new(77.0)).value().round(), 77.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = HeadingSmoother::new(0.0);
    }
}
