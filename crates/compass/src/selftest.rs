//! Built-in self-test (BIST).
//!
//! A fielded compass watch needs a way to verify its own signal chain
//! without a calibrated field source. The architecture offers one for
//! free: the oscillator's **dc-offset trim** can be deliberately
//! mis-set. A dc offset in the excitation current is indistinguishable
//! from an external axial field of `H = N·I_offset/l` — so injecting a
//! known offset must move the counter output by a predictable number of
//! counts. Checking that the response (a) appears, (b) has the right
//! gain within tolerance and (c) disappears again when the offset is
//! removed exercises the oscillator, V-I converter, detector and
//! counter in one pass, and catches severe sensor faults (open pickup,
//! non-saturating core).
//!
//! Coverage note: because the injected quantity is a *current*, the
//! test's gain is the current ratio `I_offset/I_peak` — it cannot see a
//! current-starved drive whose pulses still form (see the blind-spot
//! test). That fault class is covered by the MCM interconnect test and
//! the functional field check.

use crate::config::CompassConfig;
use fluxcomp_afe::detector::PulsePositionDetector;
use fluxcomp_afe::frontend::{FrontEnd, FrontEndConfig};
use fluxcomp_fluxgate::transducer::Fluxgate;
use fluxcomp_rtl::counter::{ClockSchedule, UpDownCounter};
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::Ampere;

/// The self-test verdict for one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTestReport {
    /// Counter output with no stimulus (ambient only; the test assumes
    /// a magnetically quiet environment or uses the delta).
    pub baseline_count: i64,
    /// Counter output with the test offset injected.
    pub stimulated_count: i64,
    /// The count change the injected offset should produce.
    pub expected_delta: f64,
    /// Relative gain error of the measured delta.
    pub gain_error: f64,
    /// The verdict.
    pub passed: bool,
}

/// Gain tolerance of the pass criterion.
pub const GAIN_TOLERANCE: f64 = 0.10;

/// Runs the dc-injection self-test on one front-end channel.
///
/// `test_offset` is the deliberate excitation-current offset (the
/// paper's offset-correction DAC run open-loop); 0.5 mA is a good
/// stimulus: ≈20 A/m of equivalent field, well inside the linear range.
pub fn run_self_test(config: &CompassConfig, test_offset: Ampere) -> SelfTestReport {
    let mut fe_config: FrontEndConfig = config.frontend.clone();
    fe_config.sensor = config.pair.element;
    let sensor = Fluxgate::new(fe_config.sensor);

    let window = fe_config.measure_periods as f64 / fe_config.excitation.frequency().value();
    // Both runs share the measurement grid, so one precomputed clock
    // schedule serves baseline and stimulated counts alike.
    let schedule = ClockSchedule::new(
        fe_config.measure_periods * fe_config.samples_per_period,
        window,
        config.clock.master(),
    );
    let count_of = |cfg: FrontEndConfig| {
        let fe = FrontEnd::new(cfg).expect("self-test front-end config is valid");
        let mut detector = PulsePositionDetector::new(fe.config().detector);
        let mut counter = UpDownCounter::paper_design();
        let seed = fe.config().noise_seed;
        fe.measure_into(AmperePerMeter::ZERO, seed, &mut detector, |index, up| {
            counter.clock_n(up, schedule.edges_at(index));
        });
        counter.value()
    };

    let baseline_count = count_of(fe_config.clone());
    let mut stimulated = fe_config.clone();
    stimulated.excitation = stimulated.excitation.with_dc_offset(test_offset);
    let stimulated_count = count_of(stimulated);

    // Expected: the offset looks like H = N·I/l; counts = −f_clk·T·H/H_peak.
    // The expectation is the *factory-programmed* constant, computed from
    // the design point — NOT from the unit under test, or a unit with a
    // drifted drive would happily validate itself.
    let design = CompassConfig::paper_design();
    let design_sensor = Fluxgate::new(design.pair.element);
    let h_equiv = design_sensor.h_from_current(test_offset);
    let h_peak = {
        let mut design_fe = design.frontend.clone();
        design_fe.sensor = design.pair.element;
        FrontEnd::new(design_fe)
            .expect("paper design is valid")
            .peak_excitation_field()
    };
    let _ = sensor;
    let expected_delta = -config.clock.master().value() * window * h_equiv.value() / h_peak.value();
    let measured_delta = (stimulated_count - baseline_count) as f64;
    let gain_error = if expected_delta.abs() < 1.0 {
        f64::INFINITY
    } else {
        (measured_delta - expected_delta).abs() / expected_delta.abs()
    };
    SelfTestReport {
        baseline_count,
        stimulated_count,
        expected_delta,
        gain_error,
        passed: gain_error <= GAIN_TOLERANCE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_units::si::Ohm;

    #[test]
    fn healthy_channel_passes() {
        let report = run_self_test(&CompassConfig::paper_design(), Ampere::new(0.5e-3));
        assert!(report.passed, "gain error {}", report.gain_error);
        assert_eq!(report.baseline_count, 0, "quiet environment, no field");
        // 0.5 mA → 20 A/m → −4194·20/240 ≈ −350 counts.
        assert!(
            (report.stimulated_count + 350).abs() < 25,
            "stimulated {}",
            report.stimulated_count
        );
    }

    #[test]
    fn open_pickup_fails() {
        // A broken pickup path (cracked coil / open MCM trace) modelled
        // as a collapsed coupling area: the EMF drops to microvolts, the
        // detector never fires, the counter rails — caught immediately.
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.core_area = 1e-12;
        cfg.frontend.sensor = cfg.pair.element;
        let report = run_self_test(&cfg, Ampere::new(0.5e-3));
        assert!(!report.passed, "open pickup must fail: {report:?}");
    }

    #[test]
    fn current_starved_drive_is_a_known_blind_spot() {
        // Instructive negative result: a huge series resistance clips
        // the drive to microamps, yet the self-test PASSES — because the
        // dc-injection gain is the *current ratio* I_offset/I_peak and
        // the pulse positions still shift by I_offset/(dI/dt), both
        // independent of how much field actually reaches the core. Such
        // a unit fails in the field (the earth's ~12 A/m dwarfs its
        // 0.2 A/m sweep), which is why production test also runs the
        // boundary-scan interconnect test (E10) and a functional check
        // in a known field.
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.r_excitation = Ohm::new(1e6);
        cfg.frontend.sensor = cfg.pair.element;
        let report = run_self_test(&cfg, Ampere::new(0.5e-3));
        assert!(report.passed, "documented blind spot: {report:?}");
    }

    #[test]
    fn weak_drive_fails_the_gain_check() {
        // A drifted oscillator delivering only 70 % of the excitation
        // amplitude: H_peak drops, the duty shift per injected ampere
        // grows by 1/0.7, and the factory-programmed expectation catches
        // the ~43 % gain error.
        let mut cfg = CompassConfig::paper_design();
        cfg.frontend.excitation = cfg
            .frontend
            .excitation
            .with_amplitude_pp(Ampere::new(12e-3 * 0.7));
        let report = run_self_test(&cfg, Ampere::new(0.5e-3));
        assert!(
            !report.passed,
            "weak drive must fail: err {}",
            report.gain_error
        );
    }

    #[test]
    fn moderate_hk_drift_is_invisible_to_the_gain() {
        // Doubling H_K halves the core's sensitivity margin but NOT the
        // self-test gain: the duty transfer is set by the *drive* field
        // H_peak, not by the film — the same ratio argument as claim C9.
        // (At 2x H_K the drive still saturates the core, so pulses exist
        // and the test passes; see the next test for the breakdown.)
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.core = fluxcomp_fluxgate::core_model::CoreModel::anhysteretic(
            cfg.pair.element.core.bsat(),
            cfg.pair.element.core.hk() * 2.0,
        );
        cfg.frontend.sensor = cfg.pair.element;
        let report = run_self_test(&cfg, Ampere::new(0.5e-3));
        assert!(report.passed, "2x H_K should still pass: {report:?}");
    }

    #[test]
    fn severe_hk_drift_fails() {
        // 4x H_K: the 12 mA drive no longer saturates the core — the
        // pulses vanish and the self-test reports the dead channel.
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.core = fluxcomp_fluxgate::core_model::CoreModel::anhysteretic(
            cfg.pair.element.core.bsat(),
            cfg.pair.element.core.hk() * 4.0,
        );
        cfg.frontend.sensor = cfg.pair.element;
        let report = run_self_test(&cfg, Ampere::new(0.5e-3));
        assert!(!report.passed, "4x H_K must fail: {report:?}");
    }

    #[test]
    fn stimulus_polarity_matters() {
        let pos = run_self_test(&CompassConfig::paper_design(), Ampere::new(0.5e-3));
        let neg = run_self_test(&CompassConfig::paper_design(), Ampere::new(-0.5e-3));
        assert!(pos.passed && neg.passed);
        assert!(pos.stimulated_count < 0 && neg.stimulated_count > 0);
        // Symmetric up to the detector's edge quantisation (±2 counts).
        assert!(
            (pos.stimulated_count + neg.stimulated_count).abs() <= 4,
            "{} vs {}",
            pos.stimulated_count,
            neg.stimulated_count
        );
    }

    #[test]
    fn tiny_stimulus_is_rejected_as_inconclusive() {
        // A stimulus below one count of effect cannot judge gain.
        let report = run_self_test(&CompassConfig::paper_design(), Ampere::new(1e-9));
        assert!(!report.passed);
        assert!(report.gain_error.is_infinite());
    }
}
