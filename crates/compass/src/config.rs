//! System configuration and construction errors.

use fluxcomp_afe::frontend::{FrontEndConfig, FrontEndError};
use fluxcomp_fluxgate::earth::{EarthField, Location};
use fluxcomp_fluxgate::pair::SensorPairParams;
use fluxcomp_rtl::clock::ClockTree;
use std::error::Error;
use std::fmt;

/// Full configuration of the integrated compass.
#[derive(Debug, Clone)]
pub struct CompassConfig {
    /// The analogue front-end channel (shared by both sensors via the
    /// multiplexer).
    pub frontend: FrontEndConfig,
    /// The orthogonal sensor pair.
    pub pair: SensorPairParams,
    /// The digital clock tree (counter clock).
    pub clock: ClockTree,
    /// CORDIC iterations (8 in the paper).
    pub cordic_iterations: u32,
    /// The magnetic environment the compass operates in.
    pub field: EarthField,
}

impl CompassConfig {
    /// The paper's design point: paper front-end, ideal pair, 4.194304
    /// MHz clock, 8 CORDIC iterations, a purely horizontal 15 µT field
    /// (≈ the horizontal component at the authors' latitude), and 8
    /// measurement periods per axis for comfortable counter resolution.
    pub fn paper_design() -> Self {
        let mut frontend = FrontEndConfig::paper_design();
        frontend.measure_periods = 8;
        Self {
            frontend,
            pair: SensorPairParams::ideal(),
            clock: ClockTree::paper(),
            cordic_iterations: 8,
            field: EarthField::horizontal(fluxcomp_units::Tesla::from_microtesla(15.0)),
        }
    }

    /// The paper design relocated to one of the predefined locations
    /// (experiment E4's world tour).
    pub fn at_location(location: Location) -> Self {
        Self {
            field: EarthField::at(location),
            ..Self::paper_design()
        }
    }

    /// Validates every field combination the system construction depends
    /// on, returning the first problem as a [`BuildError`].
    ///
    /// [`crate::CompassDesign::new`] and [`crate::Compass::new`] route
    /// through this, so an invalid configuration — including ones that
    /// used to panic deep inside the sensor or front-end constructors —
    /// is reported as an `Err` instead of a panic.
    pub fn validate(&self) -> Result<(), BuildError> {
        if !(1..=16).contains(&self.cordic_iterations) {
            return Err(BuildError::BadCordicIterations {
                got: self.cordic_iterations,
            });
        }
        let sample_rate =
            self.frontend.samples_per_period as f64 * self.frontend.excitation.frequency().value();
        let clock = self.clock.master().value();
        if sample_rate < clock {
            return Err(BuildError::SamplingTooCoarse { sample_rate, clock });
        }
        // The design substitutes the pair's element into the front-end
        // channel, so check the channel as it will actually be built.
        let mut fe_config = self.frontend.clone();
        fe_config.sensor = self.pair.element;
        fe_config
            .check()
            .map_err(|reason| BuildError::BadFrontEnd { reason })?;
        self.pair
            .check()
            .map_err(|reason| BuildError::BadSensorPair { reason })?;
        Ok(())
    }
}

impl Default for CompassConfig {
    fn default() -> Self {
        Self::paper_design()
    }
}

/// Errors constructing a [`crate::Compass`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BuildError {
    /// CORDIC iteration count outside the ROM's 1..=16 range.
    BadCordicIterations {
        /// The rejected value.
        got: u32,
    },
    /// The front-end sampling grid is coarser than the counter clock —
    /// the zero-order hold would alias the detector stream.
    SamplingTooCoarse {
        /// Effective analogue sample rate (Hz).
        sample_rate: f64,
        /// Counter clock (Hz).
        clock: f64,
    },
    /// The front-end channel configuration (including the sensor element
    /// substituted from the pair) is invalid.
    BadFrontEnd {
        /// The typed cause from [`FrontEndConfig::check`], so callers —
        /// the serve layer's wire statuses in particular — can match on
        /// the structural constraint that failed instead of a message.
        reason: FrontEndError,
    },
    /// The sensor-pair parameters are invalid.
    BadSensorPair {
        /// What the pair constructor would have panicked with.
        reason: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::BadCordicIterations { got } => {
                write!(f, "cordic iterations must be in 1..=16, got {got}")
            }
            BuildError::SamplingTooCoarse { sample_rate, clock } => write!(
                f,
                "front-end sample rate {sample_rate:.0} Hz below counter clock {clock:.0} Hz"
            ),
            BuildError::BadFrontEnd { reason } => write!(f, "front-end config invalid: {reason}"),
            BuildError::BadSensorPair { reason } => write!(f, "sensor pair invalid: {reason}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::BadFrontEnd { reason } => Some(reason),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_values() {
        let c = CompassConfig::paper_design();
        assert_eq!(c.cordic_iterations, 8);
        assert!((c.clock.master().value() - 4_194_304.0).abs() < 1e-6);
        assert_eq!(c.frontend.measure_periods, 8);
        assert!((c.field.horizontal_magnitude().as_microtesla() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn location_config_changes_field_only() {
        let c = CompassConfig::at_location(Location::SouthPole);
        assert!((c.field.total().as_microtesla() - 65.0).abs() < 1e-9);
        assert_eq!(c.cordic_iterations, 8);
    }

    #[test]
    fn errors_display() {
        let e = BuildError::BadCordicIterations { got: 99 };
        assert!(e.to_string().contains("99"));
        let e = BuildError::SamplingTooCoarse {
            sample_rate: 1e6,
            clock: 4e6,
        };
        assert!(e.to_string().contains("4194304") || e.to_string().contains("4000000"));
        let e = BuildError::BadFrontEnd {
            reason: FrontEndError::TooFewSamplesPerPeriod { got: 8 },
        };
        assert!(e.to_string().contains("16 samples"));
        // The typed cause is reachable through the error chain.
        assert!(Error::source(&e).is_some());
        let e = BuildError::BadSensorPair {
            reason: "gain mismatch must be positive and finite",
        };
        assert!(e.to_string().contains("gain mismatch"));
    }

    #[test]
    fn paper_design_validates() {
        assert_eq!(CompassConfig::paper_design().validate(), Ok(()));
    }

    #[test]
    fn invalid_sensor_element_is_an_error_not_a_panic() {
        // Used to panic inside Fluxgate::new deep in construction.
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.turns_pickup = 0;
        assert_eq!(
            cfg.validate(),
            Err(BuildError::BadFrontEnd {
                reason: FrontEndError::BadSensor {
                    reason: "pickup coil needs turns"
                }
            })
        );
    }

    #[test]
    fn invalid_gain_mismatch_is_an_error_not_a_panic() {
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.gain_mismatch = 0.0;
        assert_eq!(
            cfg.validate(),
            Err(BuildError::BadSensorPair {
                reason: "gain mismatch must be positive and finite"
            })
        );
    }

    #[test]
    fn zero_measure_periods_is_an_error_not_a_panic() {
        let mut cfg = CompassConfig::paper_design();
        cfg.frontend.measure_periods = 0;
        assert_eq!(
            cfg.validate(),
            Err(BuildError::BadFrontEnd {
                reason: FrontEndError::NoMeasurePeriods
            })
        );
    }

    #[test]
    fn validation_order_reports_cordic_first() {
        let mut cfg = CompassConfig::paper_design();
        cfg.cordic_iterations = 0;
        cfg.frontend.measure_periods = 0;
        assert_eq!(
            cfg.validate(),
            Err(BuildError::BadCordicIterations { got: 0 })
        );
    }
}
