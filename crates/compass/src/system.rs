//! The integrated compass system — the paper's contribution (Fig. 1).
//!
//! [`Compass`] wires the whole signal chain together and runs one compass
//! fix exactly the way the silicon would:
//!
//! 1. the **sequencer** multiplexes the X sensor onto the single
//!    excitation channel; the analogue front-end runs for the configured
//!    number of 8 kHz periods;
//! 2. the **pulse-position detector**'s digital output is sampled at the
//!    4.194304 MHz counter clock and integrated by the **up/down
//!    counter** into the integer `x`;
//! 3. the same happens for the Y sensor (`y`);
//! 4. the **CORDIC** computes `atan` of the pair in 8 cycles and the
//!    heading is latched to the display driver.
//!
//! Every stage is the actual substrate model — transient sensor physics,
//! behavioural analogue blocks, cycle-level digital — so the end-to-end
//! accuracy measured here *is* the reproduction of the paper's
//! "accuracy of one degree" claim.
//!
//! The measurement core lives in [`CompassDesign`]: the immutable
//! configuration-plus-derived-blocks bundle whose
//! [`measure_heading`](CompassDesign::measure_heading) is a pure
//! function of the design and the true heading. That purity is what the
//! parallel sweep engine (`fluxcomp-exec`) exploits — many worker
//! threads can share one `&CompassDesign` and the results are
//! bit-identical to a serial loop. [`Compass`] wraps a design together
//! with the *stateful* silicon (sequencer walk, LCD latch) for the
//! watch-level examples and the power schedule.

use crate::config::{BuildError, CompassConfig};
use fluxcomp_afe::detector::PulsePositionDetector;
use fluxcomp_afe::frontend::{FrontEnd, FrontEndResult};
use fluxcomp_fluxgate::pair::{Axis, SensorPair};
use fluxcomp_rtl::cordic::CordicArctan;
use fluxcomp_rtl::counter::{sample_at_clock, ClockSchedule, UpDownCounter};
use fluxcomp_rtl::lcd::DisplayDriver;
use fluxcomp_rtl::sequencer::{Sequencer, SequencerState};
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::AmperePerMeter;

/// The result of measuring one axis.
#[derive(Debug, Clone)]
pub struct AxisMeasurement {
    /// Which axis.
    pub axis: Axis,
    /// Detector duty cycle over the measurement window.
    pub duty: f64,
    /// The up/down counter's integer output.
    pub count: i64,
    /// `true` if the V-I converter clipped.
    pub clipped: bool,
}

/// One complete compass fix.
#[derive(Debug, Clone)]
pub struct Reading {
    /// The computed heading, `[0, 360)`.
    pub heading: Degrees,
    /// The X-axis measurement.
    pub x: AxisMeasurement,
    /// The Y-axis measurement.
    pub y: AxisMeasurement,
    /// CORDIC cycles spent (8 in the paper).
    pub cordic_cycles: u32,
}

/// The immutable measurement core: configuration plus the derived
/// analogue/digital blocks, with no per-fix state.
///
/// Every measurement method takes `&self` and is a pure function of the
/// design and its arguments (noise is re-seeded from the configuration —
/// or an explicit seed — on every run), so a design can be shared across
/// threads (`Sync`) and swept in parallel with deterministic results.
#[derive(Debug, Clone)]
pub struct CompassDesign {
    config: CompassConfig,
    frontend: FrontEnd,
    pair: SensorPair,
    cordic: CordicArctan,
    /// Counter edges per analogue sample — precomputed once so the fast
    /// path never re-derives the clock/grid alignment per fix.
    schedule: ClockSchedule,
}

/// Reusable per-worker state for the duty-only fast path: one detector
/// and one up/down counter, both fully reset at the start of every fix.
///
/// Build one per worker with [`MeasureScratch::for_design`] and pass it
/// to [`CompassDesign::measure_axis_scratch`] /
/// [`CompassDesign::measure_heading_scratch`]; results are bit-identical
/// to the fresh-state entry points, so the sweep engine can keep a
/// scratch alive across thousands of fixes without allocating.
#[derive(Debug, Clone)]
pub struct MeasureScratch {
    detector: PulsePositionDetector,
    counter: UpDownCounter,
}

impl MeasureScratch {
    /// Scratch blocks matching `design`'s detector configuration and the
    /// paper's counter width.
    pub fn for_design(design: &CompassDesign) -> Self {
        Self {
            detector: PulsePositionDetector::new(design.config.frontend.detector),
            counter: UpDownCounter::paper_design(),
        }
    }
}

impl CompassDesign {
    /// Validates and builds the measurement core.
    ///
    /// # Errors
    ///
    /// Any [`BuildError`] from [`CompassConfig::validate`] — bad CORDIC
    /// iteration counts, an analogue grid slower than the counter clock,
    /// or invalid front-end/sensor-pair parameters (which used to panic
    /// inside the block constructors).
    pub fn new(config: CompassConfig) -> Result<Self, BuildError> {
        config.validate()?;
        let mut fe_config = config.frontend.clone();
        fe_config.sensor = config.pair.element;
        let window =
            config.frontend.measure_periods as f64 / config.frontend.excitation.frequency().value();
        let schedule = ClockSchedule::new(
            config.frontend.measure_periods * config.frontend.samples_per_period,
            window,
            config.clock.master(),
        );
        Ok(Self {
            frontend: FrontEnd::new(fe_config)
                .map_err(|reason| BuildError::BadFrontEnd { reason })?,
            pair: SensorPair::new(config.pair),
            cordic: CordicArctan::new(config.cordic_iterations),
            schedule,
            config,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &CompassConfig {
        &self.config
    }

    /// The peak excitation field of the front-end — the `H_peak` of the
    /// duty-cycle equation.
    pub fn peak_excitation_field(&self) -> AmperePerMeter {
        self.frontend.peak_excitation_field()
    }

    /// Measures a single axis with the platform at `true_heading` on the
    /// duty-only fast path. Noise (if configured) is seeded from the
    /// configuration's `noise_seed`.
    pub fn measure_axis(&self, axis: Axis, true_heading: Degrees) -> AxisMeasurement {
        self.measure_axis_seeded(axis, true_heading, self.config.frontend.noise_seed)
    }

    /// Like [`measure_axis`](Self::measure_axis) with an explicit noise
    /// seed — the entry point for repeat studies that need a different
    /// noise realisation per fix while staying deterministic.
    pub fn measure_axis_seeded(
        &self,
        axis: Axis,
        true_heading: Degrees,
        noise_seed: u64,
    ) -> AxisMeasurement {
        let mut scratch = MeasureScratch::for_design(self);
        self.measure_axis_scratch(axis, true_heading, noise_seed, &mut scratch)
    }

    /// The allocation-free fast path: duty-only front-end measurement
    /// fused with counter integration through a caller-owned
    /// [`MeasureScratch`].
    ///
    /// The detector output is fed straight into the up/down counter via
    /// the precomputed [`ClockSchedule`] — no waveform traces, no
    /// detector-sample buffer, no clock-domain resampling pass. Output is
    /// bit-identical to [`measure_axis_traced`](Self::measure_axis_traced).
    pub fn measure_axis_scratch(
        &self,
        axis: Axis,
        true_heading: Degrees,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
    ) -> AxisMeasurement {
        let h_ext = self
            .pair
            .axial_field(axis, &self.config.field, true_heading);
        self.measure_axis_field_scratch(axis, h_ext, noise_seed, scratch)
    }

    /// The fast path from an **explicit axial field** instead of a true
    /// heading: what a networked client that already knows the field at
    /// its own sensor sends to the fix service. Identical fusion of
    /// excitation→detector→counter as
    /// [`measure_axis_scratch`](Self::measure_axis_scratch), which is a
    /// thin wrapper projecting the configured earth field first.
    pub fn measure_axis_field_scratch(
        &self,
        axis: Axis,
        h_ext: AmperePerMeter,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
    ) -> AxisMeasurement {
        // One span covers the fused excitation→detector→counter pass;
        // the traced tier keeps the three per-stage spans.
        let _excitation = fluxcomp_obs::span("compass.stage.excitation");
        let MeasureScratch { detector, counter } = scratch;
        counter.reset();
        let schedule = &self.schedule;
        let outcome = self
            .frontend
            .measure_into(h_ext, noise_seed, detector, |index, up| {
                counter.clock_n(up, schedule.edges_at(index));
            });
        AxisMeasurement {
            axis,
            duty: outcome.duty,
            count: counter.value(),
            clipped: outcome.clipped,
        }
    }

    /// The diagnostic tier: full transient front-end run (all waveform
    /// traces recorded) + clock-domain resampling + counter integration.
    ///
    /// Bit-identical duty/count/clipped to the fast path — enforced by
    /// the workspace determinism suite — but allocates the complete
    /// `i_exc`/`v_exc`/`v_pickup`/`detector` trace set per fix. Use it
    /// when the waveforms matter (Fig. 3 / Fig. 4 regeneration, debug).
    pub fn measure_axis_traced(
        &self,
        axis: Axis,
        true_heading: Degrees,
        noise_seed: u64,
    ) -> AxisMeasurement {
        let h_ext = self
            .pair
            .axial_field(axis, &self.config.field, true_heading);
        let excitation = fluxcomp_obs::span("compass.stage.excitation");
        let result: FrontEndResult = self.frontend.run_with_seed(h_ext, noise_seed);
        drop(excitation);
        let window = self.config.frontend.measure_periods as f64
            / self.config.frontend.excitation.frequency().value();
        let detector = fluxcomp_obs::span("compass.stage.detector");
        let stream = sample_at_clock(&result.detector_samples, window, self.config.clock.master());
        drop(detector);
        let _counter_stage = fluxcomp_obs::span("compass.stage.counter");
        let mut counter = UpDownCounter::paper_design();
        let count = counter.run(stream);
        AxisMeasurement {
            axis,
            duty: result.duty,
            count,
            clipped: result.clipped,
        }
    }

    /// Runs one full fix with the platform at `true_heading`.
    ///
    /// The duty-cycle equation is `duty = 1/2 − H/(2·H_peak)`, so the
    /// counter output is **−count ∝ H**; the sign flip below is the
    /// "and vice versa" wiring the paper mentions for the detector
    /// polarity.
    pub fn measure_heading(&self, true_heading: Degrees) -> Reading {
        self.measure_heading_seeded(true_heading, self.config.frontend.noise_seed)
    }

    /// Like [`measure_heading`](Self::measure_heading) with an explicit
    /// noise seed applied to both axis measurements.
    pub fn measure_heading_seeded(&self, true_heading: Degrees, noise_seed: u64) -> Reading {
        let mut scratch = MeasureScratch::for_design(self);
        self.measure_heading_scratch(true_heading, noise_seed, &mut scratch)
    }

    /// One full fix on the fast path through a caller-owned scratch —
    /// the sweep engine's per-worker entry point. Bit-identical to
    /// [`measure_heading_seeded`](Self::measure_heading_seeded).
    pub fn measure_heading_scratch(
        &self,
        true_heading: Degrees,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
    ) -> Reading {
        let x = self.measure_axis_scratch(Axis::X, true_heading, noise_seed, scratch);
        let y = self.measure_axis_scratch(Axis::Y, true_heading, noise_seed, scratch);
        self.fold_heading(x, y)
    }

    /// One full fix from an explicit field vector `(hx, hy)` — the two
    /// axial field components in A/m — through a caller-owned scratch.
    ///
    /// This is the serve layer's field-vector request path: the client
    /// ships the field its platform sees and the design measures both
    /// axes plus the CORDIC fold exactly as
    /// [`measure_heading_scratch`](Self::measure_heading_scratch) would
    /// for a heading whose projection equals that vector.
    pub fn measure_field_scratch(
        &self,
        hx: AmperePerMeter,
        hy: AmperePerMeter,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
    ) -> Reading {
        let x = self.measure_axis_field_scratch(Axis::X, hx, noise_seed, scratch);
        let y = self.measure_axis_field_scratch(Axis::Y, hy, noise_seed, scratch);
        self.fold_heading(x, y)
    }

    /// One full fix on the diagnostic (traced) tier — both axes via
    /// [`measure_axis_traced`](Self::measure_axis_traced).
    pub fn measure_heading_traced(&self, true_heading: Degrees, noise_seed: u64) -> Reading {
        let x = self.measure_axis_traced(Axis::X, true_heading, noise_seed);
        let y = self.measure_axis_traced(Axis::Y, true_heading, noise_seed);
        self.fold_heading(x, y)
    }

    /// CORDIC + polarity fold shared by every fix entry point, so the
    /// fast, traced and watch-level paths cannot drift apart.
    fn fold_heading(&self, x: AxisMeasurement, y: AxisMeasurement) -> Reading {
        let _cordic_stage = fluxcomp_obs::span("compass.stage.cordic");
        let (heading, cycles) = match self.cordic.heading(-x.count, -y.count) {
            Ok(r) => (r.heading, r.cycles),
            // A fully null field (shielded sensor) or a datapath
            // overflow: hold 0° like the hardware's result register
            // would.
            Err(_) => (Degrees::ZERO, self.cordic.iterations()),
        };
        Reading {
            heading,
            x,
            y,
            cordic_cycles: cycles,
        }
    }

    /// The axial field components `(hx, hy)` the sensor pair sees with
    /// the platform at `true_heading` in the configured earth field —
    /// the field vector a [`measure_field_scratch`](Self::measure_field_scratch)
    /// call must receive to reproduce
    /// [`measure_heading_scratch`](Self::measure_heading_scratch) bit
    /// for bit.
    pub fn axial_fields(&self, true_heading: Degrees) -> (AmperePerMeter, AmperePerMeter) {
        self.pair.axial_fields(&self.config.field, true_heading)
    }

    /// The floating-point reference heading for the current field and a
    /// true heading — the oracle the digital pipeline is compared
    /// against.
    pub fn reference_heading(&self, true_heading: Degrees) -> Degrees {
        let (hx, hy) = self.pair.axial_fields(&self.config.field, true_heading);
        Degrees::atan2(hy.value(), hx.value()).normalized()
    }

    /// Total counter clock edges in one axis's measurement window — the
    /// full-scale `|count|` reached when the axial field equals
    /// `±H_peak` (`count ≈ full_scale · (2·duty − 1)`), and the scale
    /// factor the degraded-mode health checks use to cross-validate a
    /// count against its duty.
    pub fn counter_full_scale(&self) -> i64 {
        self.schedule.total_edges() as i64
    }

    /// [`measure_axis_field_scratch`](Self::measure_axis_field_scratch)
    /// under a [`FaultPlan`](fluxcomp_faults::FaultPlan).
    ///
    /// Which faults strike is a pure function of `(plan, axis,
    /// noise_seed)` — see the `fluxcomp-faults` determinism contract —
    /// and when nothing strikes this delegates to the plain fast path,
    /// so a zero plan leaves the bitstream untouched by construction.
    pub fn measure_axis_field_scratch_faulted(
        &self,
        axis: Axis,
        h_ext: AmperePerMeter,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
        plan: &fluxcomp_faults::FaultPlan,
    ) -> AxisMeasurement {
        let faults = plan.compile(fault_axis_index(axis), noise_seed);
        if faults.is_none() {
            return self.measure_axis_field_scratch(axis, h_ext, noise_seed, scratch);
        }
        let _excitation = fluxcomp_obs::span("compass.stage.excitation");
        let MeasureScratch { detector, counter } = scratch;
        counter.reset();
        let schedule = &self.schedule;
        let outcome = self.frontend.measure_into_faulted(
            h_ext,
            noise_seed,
            detector,
            &faults,
            |index, up| {
                counter.clock_n(up, schedule.edges_at(index));
            },
        );
        AxisMeasurement {
            axis,
            duty: outcome.duty,
            count: counter.value(),
            clipped: outcome.clipped,
        }
    }

    /// [`measure_heading_scratch`](Self::measure_heading_scratch) under
    /// a fault plan: both axes measured through
    /// [`measure_axis_field_scratch_faulted`](Self::measure_axis_field_scratch_faulted),
    /// then the shared CORDIC fold.
    pub fn measure_heading_scratch_faulted(
        &self,
        true_heading: Degrees,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
        plan: &fluxcomp_faults::FaultPlan,
    ) -> Reading {
        let h_x = self
            .pair
            .axial_field(Axis::X, &self.config.field, true_heading);
        let h_y = self
            .pair
            .axial_field(Axis::Y, &self.config.field, true_heading);
        let x = self.measure_axis_field_scratch_faulted(Axis::X, h_x, noise_seed, scratch, plan);
        let y = self.measure_axis_field_scratch_faulted(Axis::Y, h_y, noise_seed, scratch, plan);
        self.fold_heading(x, y)
    }

    /// [`measure_field_scratch`](Self::measure_field_scratch) under a
    /// fault plan.
    pub fn measure_field_scratch_faulted(
        &self,
        hx: AmperePerMeter,
        hy: AmperePerMeter,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
        plan: &fluxcomp_faults::FaultPlan,
    ) -> Reading {
        let x = self.measure_axis_field_scratch_faulted(Axis::X, hx, noise_seed, scratch, plan);
        let y = self.measure_axis_field_scratch_faulted(Axis::Y, hy, noise_seed, scratch, plan);
        self.fold_heading(x, y)
    }

    /// One health-checked fix from a true heading: measure (under
    /// `plan`, if any), score both axes, and fold the result into a
    /// [`CheckedReading`](crate::degraded::CheckedReading) with a typed
    /// [`FixQuality`](crate::degraded::FixQuality) — `Good` when both
    /// axes pass, `Degraded` (single-axis fallback) when one fails,
    /// `Invalid` (hold last good heading) when both fail.
    pub fn measure_heading_checked(
        &self,
        true_heading: Degrees,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
        plan: Option<&fluxcomp_faults::FaultPlan>,
        tracker: &mut crate::degraded::DegradedTracker,
    ) -> crate::degraded::CheckedReading {
        let reading = match plan {
            Some(p) => self.measure_heading_scratch_faulted(true_heading, noise_seed, scratch, p),
            None => self.measure_heading_scratch(true_heading, noise_seed, scratch),
        };
        tracker.assess(reading)
    }

    /// One health-checked fix from an explicit field vector — the serve
    /// layer's entry point. See
    /// [`measure_heading_checked`](Self::measure_heading_checked).
    pub fn measure_field_checked(
        &self,
        hx: AmperePerMeter,
        hy: AmperePerMeter,
        noise_seed: u64,
        scratch: &mut MeasureScratch,
        plan: Option<&fluxcomp_faults::FaultPlan>,
        tracker: &mut crate::degraded::DegradedTracker,
    ) -> crate::degraded::CheckedReading {
        let reading = match plan {
            Some(p) => self.measure_field_scratch_faulted(hx, hy, noise_seed, scratch, p),
            None => self.measure_field_scratch(hx, hy, noise_seed, scratch),
        };
        tracker.assess(reading)
    }
}

/// The activation-draw axis index of the fault subsystem (0 = X, 1 = Y).
fn fault_axis_index(axis: Axis) -> u32 {
    match axis {
        Axis::X => 0,
        Axis::Y => 1,
    }
}

/// The integrated compass: an immutable [`CompassDesign`] plus the
/// stateful silicon around it — the multiplexing/power-gating sequencer
/// and the LCD driver.
#[derive(Debug, Clone)]
pub struct Compass {
    design: CompassDesign,
    sequencer: Sequencer,
    display: DisplayDriver,
}

impl Compass {
    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Same as [`CompassDesign::new`].
    pub fn new(config: CompassConfig) -> Result<Self, BuildError> {
        Ok(Self::from_design(CompassDesign::new(config)?))
    }

    /// Wraps an already-validated design with fresh sequencer/display
    /// state.
    pub fn from_design(design: CompassDesign) -> Self {
        let periods = design.config().frontend.measure_periods as u32;
        Self {
            sequencer: Sequencer::new(periods, 8),
            display: DisplayDriver::new(),
            design,
        }
    }

    /// The immutable measurement core — share this with the parallel
    /// sweep engine.
    pub fn design(&self) -> &CompassDesign {
        &self.design
    }

    /// The configuration.
    pub fn config(&self) -> &CompassConfig {
        self.design.config()
    }

    /// The display driver (latched with the last heading after each fix).
    pub fn display(&self) -> &DisplayDriver {
        &self.display
    }

    /// Mutable display access (mode switching in the watch example).
    pub fn display_mut(&mut self) -> &mut DisplayDriver {
        &mut self.display
    }

    /// The sequencer (for power-schedule inspection).
    pub fn sequencer(&self) -> &Sequencer {
        &self.sequencer
    }

    /// The peak excitation field of the front-end — the `H_peak` of the
    /// duty-cycle equation.
    pub fn peak_excitation_field(&self) -> AmperePerMeter {
        self.design.peak_excitation_field()
    }

    /// Measures a single axis with the platform at `true_heading`:
    /// transient front-end run + counter integration.
    pub fn measure_axis(&mut self, axis: Axis, true_heading: Degrees) -> AxisMeasurement {
        self.design.measure_axis(axis, true_heading)
    }

    /// Runs one full multiplexed fix with the platform at `true_heading`
    /// and latches the result onto the display.
    pub fn measure_heading(&mut self, true_heading: Degrees) -> Reading {
        self.sequencer.start_fix();
        let x = self.design.measure_axis(Axis::X, true_heading);
        for _ in 0..self.sequencer.periods_per_axis() {
            self.sequencer.advance();
        }
        let y = self.design.measure_axis(Axis::Y, true_heading);
        for _ in 0..self.sequencer.periods_per_axis() {
            self.sequencer.advance();
        }
        debug_assert_eq!(self.sequencer.state(), SequencerState::Compute);

        let reading = self.design.fold_heading(x, y);
        let _display_stage = fluxcomp_obs::span("compass.stage.display");
        for _ in 0..8 {
            self.sequencer.advance();
        }
        self.display.latch_heading(reading.heading);
        reading
    }

    /// The floating-point reference heading for the current field and a
    /// true heading — the oracle the digital pipeline is compared
    /// against.
    pub fn reference_heading(&self, true_heading: Degrees) -> Degrees {
        self.design.reference_heading(true_heading)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompassConfig;

    fn compass() -> Compass {
        Compass::new(CompassConfig::paper_design()).expect("valid config")
    }

    #[test]
    fn cardinal_headings_within_one_degree() {
        let mut c = compass();
        for deg in [0.0, 90.0, 180.0, 270.0] {
            let r = c.measure_heading(Degrees::new(deg));
            let err = r.heading.angular_distance(Degrees::new(deg)).value();
            assert!(err <= 1.0, "heading {deg}: got {}, err {err}", r.heading);
            assert_eq!(r.cordic_cycles, 8);
        }
    }

    #[test]
    fn oblique_headings_within_one_degree() {
        let mut c = compass();
        for deg in [33.0, 123.0, 201.5, 287.25, 359.0] {
            let r = c.measure_heading(Degrees::new(deg));
            let err = r.heading.angular_distance(Degrees::new(deg)).value();
            assert!(err <= 1.0, "heading {deg}: got {}, err {err}", r.heading);
        }
    }

    #[test]
    fn design_and_wrapper_agree_bitwise() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let mut c = Compass::from_design(design.clone());
        for deg in [0.0, 45.0, 123.0, 359.0] {
            let truth = Degrees::new(deg);
            let from_design = design.measure_heading(truth);
            let from_compass = c.measure_heading(truth);
            assert_eq!(
                from_design.heading.value().to_bits(),
                from_compass.heading.value().to_bits(),
                "at {deg}"
            );
            assert_eq!(from_design.x.count, from_compass.x.count);
            assert_eq!(from_design.y.count, from_compass.y.count);
        }
    }

    #[test]
    fn fast_path_matches_traced_path_bitwise() {
        let mut cfg = CompassConfig::paper_design();
        cfg.frontend.pickup_noise_rms = 2e-3;
        cfg.frontend.detector.hysteresis = fluxcomp_units::Volt::new(0.016);
        let design = CompassDesign::new(cfg).unwrap();
        let seed = design.config().frontend.noise_seed;
        for deg in [0.0, 45.0, 123.0, 287.25, 359.0] {
            let truth = Degrees::new(deg);
            let fast = design.measure_heading_seeded(truth, seed);
            let traced = design.measure_heading_traced(truth, seed);
            assert_eq!(
                fast.heading.value().to_bits(),
                traced.heading.value().to_bits(),
                "heading at {deg}"
            );
            for (f, t) in [(&fast.x, &traced.x), (&fast.y, &traced.y)] {
                assert_eq!(f.count, t.count, "count at {deg}");
                assert_eq!(f.duty.to_bits(), t.duty.to_bits(), "duty at {deg}");
                assert_eq!(f.clipped, t.clipped, "clipped at {deg}");
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_state() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let seed = design.config().frontend.noise_seed;
        let mut scratch = MeasureScratch::for_design(&design);
        for deg in [10.0, 200.0, 355.5, 10.0] {
            let truth = Degrees::new(deg);
            let reused = design.measure_heading_scratch(truth, seed, &mut scratch);
            let fresh = design.measure_heading_seeded(truth, seed);
            assert_eq!(
                reused.heading.value().to_bits(),
                fresh.heading.value().to_bits(),
                "at {deg}"
            );
            assert_eq!(reused.x.count, fresh.x.count);
            assert_eq!(reused.y.count, fresh.y.count);
        }
    }

    #[test]
    fn field_vector_fix_matches_heading_fix_bitwise() {
        // A fix from the explicit field vector the pair would project is
        // the same computation as a fix from the heading itself.
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let seed = design.config().frontend.noise_seed;
        let mut scratch = MeasureScratch::for_design(&design);
        for deg in [0.0, 33.0, 123.0, 287.25, 359.0] {
            let truth = Degrees::new(deg);
            let (hx, hy) = design.axial_fields(truth);
            let from_field = design.measure_field_scratch(hx, hy, seed, &mut scratch);
            let from_heading = design.measure_heading_scratch(truth, seed, &mut scratch);
            assert_eq!(
                from_field.heading.value().to_bits(),
                from_heading.heading.value().to_bits(),
                "at {deg}"
            );
            assert_eq!(from_field.x.count, from_heading.x.count);
            assert_eq!(from_field.y.count, from_heading.y.count);
            assert_eq!(
                from_field.x.duty.to_bits(),
                from_heading.x.duty.to_bits(),
                "at {deg}"
            );
        }
    }

    #[test]
    fn design_is_shareable_across_threads() {
        let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
        let r = std::thread::scope(|s| {
            let h = s.spawn(|| design.measure_heading(Degrees::new(90.0)));
            h.join().expect("no panic")
        });
        assert!(r.heading.angular_distance(Degrees::new(90.0)).value() <= 1.0);
    }

    #[test]
    fn counts_have_expected_magnitude_and_sign() {
        let mut c = compass();
        // North: full field on X, none on Y.
        let r = c.measure_heading(Degrees::new(0.0));
        assert!(-r.x.count > 0, "x count should be positive: {}", r.x.count);
        assert!(r.y.count.abs() < 6, "y count should be ≈0: {}", r.y.count);
        // Expected |x|: f_clk·T_window·H/H_peak ≈ 4194·(11.94/240) ≈ 209.
        let expect = 4194.0 * (11.936_621 / 240.0);
        assert!(
            ((-r.x.count) as f64 - expect).abs() < 12.0,
            "x = {} vs expected {expect}",
            -r.x.count
        );
        assert!(!r.x.clipped && !r.y.clipped);
    }

    #[test]
    fn display_latches_fix() {
        let mut c = compass();
        c.measure_heading(Degrees::new(90.0));
        let frame = c.display().frame();
        // "090 E" on the LCD.
        use fluxcomp_rtl::lcd::SegmentPattern;
        assert_eq!(frame.digits[0], SegmentPattern::digit(0));
        assert_eq!(frame.digits[1], SegmentPattern::digit(9));
        assert_eq!(frame.digits[2], SegmentPattern::digit(0));
    }

    #[test]
    fn zero_field_reads_zero_heading_without_panic() {
        let mut cfg = CompassConfig::paper_design();
        cfg.field = fluxcomp_fluxgate::earth::EarthField::horizontal(
            fluxcomp_units::Tesla::from_microtesla(0.0),
        );
        let mut c = Compass::new(cfg).unwrap();
        let r = c.measure_heading(Degrees::new(45.0));
        assert_eq!(r.heading, Degrees::ZERO);
    }

    #[test]
    fn reference_heading_matches_truth_for_ideal_pair() {
        let c = compass();
        for deg in [0.0, 45.0, 123.0, 359.5] {
            let reference = c.reference_heading(Degrees::new(deg));
            assert!(reference.angular_distance(Degrees::new(deg)).value() < 1e-9);
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let mut cfg = CompassConfig::paper_design();
        cfg.cordic_iterations = 0;
        assert_eq!(
            Compass::new(cfg).unwrap_err(),
            BuildError::BadCordicIterations { got: 0 }
        );
        let mut cfg = CompassConfig::paper_design();
        cfg.frontend.samples_per_period = 16; // 128 kHz ≪ 4.19 MHz
        assert!(matches!(
            Compass::new(cfg).unwrap_err(),
            BuildError::SamplingTooCoarse { .. }
        ));
        // Field combos that used to panic inside the block constructors
        // now come back as errors through the same path.
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.magnetic_length = 0.0;
        assert!(matches!(
            Compass::new(cfg).unwrap_err(),
            BuildError::BadFrontEnd { .. }
        ));
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.gain_mismatch = f64::NAN;
        assert!(matches!(
            CompassDesign::new(cfg).unwrap_err(),
            BuildError::BadSensorPair { .. }
        ));
    }

    #[test]
    fn sequencer_walks_through_fix() {
        let mut c = compass();
        c.measure_heading(Degrees::new(10.0));
        assert_eq!(c.sequencer().state(), SequencerState::Display);
        assert_eq!(c.sequencer().fixes(), 1);
        c.measure_heading(Degrees::new(20.0));
        assert_eq!(c.sequencer().fixes(), 2);
    }
}
