//! The production test flow — what the manufacturing line runs on every
//! assembled module before it ships in a watch.
//!
//! Three stages, cheapest first, mirroring real MCM test practice and
//! combining the workspace's test machinery end to end:
//!
//! 1. **Interconnect** — boundary-scan EXTEST over the substrate
//!    (\[Oli96\]); catches assembly defects (opens/shorts) and diagnoses
//!    them via the fault dictionary;
//! 2. **Self-test** — the dc-injection BIST through the whole analogue
//!    chain; catches drive/detector/counter faults;
//! 3. **Functional** — a heading check in the test fixture's known
//!    field; the final arbiter (and the only stage that sees the
//!    sensor-gain blind spot of the BIST).

use crate::config::CompassConfig;
use crate::selftest::{run_self_test, SelfTestReport};
use crate::system::CompassDesign;
use fluxcomp_exec::{par_map, ExecPolicy};
use fluxcomp_mcm::diagnosis::diagnose_module;
use fluxcomp_mcm::interconnect_test::InterconnectTester;
use fluxcomp_mcm::substrate::{Fault, McmAssembly};
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::si::Ampere;

/// Why a module was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum RejectReason {
    /// The EXTEST interconnect test failed; candidate defects attached.
    Interconnect {
        /// Fault candidates from the dictionary.
        candidates: Vec<Fault>,
    },
    /// The dc-injection self-test failed.
    SelfTest {
        /// The failing report.
        report: SelfTestReport,
    },
    /// The functional heading check exceeded the limit.
    Functional {
        /// Worst heading error observed, degrees.
        worst_error: f64,
    },
}

/// The flow's outcome for one module.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionResult {
    /// `None` = shipped; `Some` = rejected at the named stage.
    pub reject: Option<RejectReason>,
    /// Which stages actually ran (earlier rejects skip later stages).
    pub stages_run: u32,
}

impl ProductionResult {
    /// `true` when the module ships.
    pub fn shipped(&self) -> bool {
        self.reject.is_none()
    }
}

/// The functional limit: the paper's specification plus a test-fixture
/// guard band.
pub const FUNCTIONAL_LIMIT_DEGREES: f64 = 1.2;

/// Runs the full flow on one module: `assembly` is the physical MCM
/// (possibly with injected defects), `config` the electrical
/// configuration of the unit under test.
pub fn production_test(assembly: &McmAssembly, config: &CompassConfig) -> ProductionResult {
    // Stage 1: interconnect.
    let golden = McmAssembly::paper_module();
    let tester = InterconnectTester::new(golden.nets().len());
    if !tester.run(assembly).passed() {
        let candidates = diagnose_module(&golden, assembly);
        return ProductionResult {
            reject: Some(RejectReason::Interconnect { candidates }),
            stages_run: 1,
        };
    }

    // Stage 2: BIST.
    let report = run_self_test(config, Ampere::new(0.5e-3));
    if !report.passed {
        return ProductionResult {
            reject: Some(RejectReason::SelfTest { report }),
            stages_run: 2,
        };
    }

    // Stage 3: functional check in the fixture's field. The design's
    // measurement path is immutable, so the check needs no per-module
    // mutable state — modules on a parallel line share nothing.
    let design = match CompassDesign::new(config.clone()) {
        Ok(d) => d,
        Err(_) => {
            return ProductionResult {
                reject: Some(RejectReason::Functional {
                    worst_error: f64::INFINITY,
                }),
                stages_run: 3,
            }
        }
    };
    let mut worst = 0.0f64;
    for deg in [0.0, 90.0, 180.0, 270.0, 45.0] {
        let t = Degrees::new(deg);
        let got = design.measure_heading(t).heading;
        worst = worst.max(got.angular_distance(t).value());
    }
    if worst > FUNCTIONAL_LIMIT_DEGREES {
        return ProductionResult {
            reject: Some(RejectReason::Functional { worst_error: worst }),
            stages_run: 3,
        };
    }
    ProductionResult {
        reject: None,
        stages_run: 3,
    }
}

/// Runs the full flow on a whole batch of modules, one worker-pool task
/// per module. Each module's flow is independent, so the verdict vector
/// is identical — stage by stage, error bit by error bit — to testing
/// the batch serially.
pub fn production_test_batch(
    modules: &[(McmAssembly, CompassConfig)],
    policy: &ExecPolicy,
) -> Vec<ProductionResult> {
    par_map(policy, modules, |_, (assembly, config)| {
        production_test(assembly, config)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_units::si::Ohm;

    #[test]
    fn good_module_ships() {
        let result = production_test(&McmAssembly::paper_module(), &CompassConfig::paper_design());
        assert!(result.shipped(), "{result:?}");
        assert_eq!(result.stages_run, 3);
    }

    #[test]
    fn assembly_defect_caught_at_stage_one_with_diagnosis() {
        let mut module = McmAssembly::paper_module();
        module.inject(Fault::Open { net: 3 });
        let result = production_test(&module, &CompassConfig::paper_design());
        assert!(!result.shipped());
        assert_eq!(result.stages_run, 1, "must stop at the cheap stage");
        match result.reject.unwrap() {
            RejectReason::Interconnect { candidates } => {
                assert!(candidates.contains(&Fault::Open { net: 3 }));
            }
            other => panic!("wrong stage: {other:?}"),
        }
    }

    #[test]
    fn drive_fault_caught_at_stage_two() {
        let mut cfg = CompassConfig::paper_design();
        cfg.frontend.excitation = cfg
            .frontend
            .excitation
            .with_amplitude_pp(Ampere::new(12e-3 * 0.7));
        let result = production_test(&McmAssembly::paper_module(), &cfg);
        assert!(!result.shipped());
        assert_eq!(result.stages_run, 2);
        assert!(matches!(result.reject, Some(RejectReason::SelfTest { .. })));
    }

    #[test]
    fn bist_blind_spot_caught_at_stage_three() {
        // The current-starved drive that fools the BIST (see
        // `selftest::current_starved_drive_is_a_known_blind_spot`) must
        // be caught functionally.
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.element.r_excitation = Ohm::new(1e6);
        cfg.frontend.sensor = cfg.pair.element;
        let result = production_test(&McmAssembly::paper_module(), &cfg);
        assert!(!result.shipped(), "{result:?}");
        assert_eq!(
            result.stages_run, 3,
            "the BIST passes; functional must catch it"
        );
        assert!(matches!(
            result.reject,
            Some(RejectReason::Functional { .. })
        ));
    }

    #[test]
    fn batch_matches_serial_flow() {
        let mut bad_cfg = CompassConfig::paper_design();
        bad_cfg.pair.misalignment = fluxcomp_units::Degrees::new(4.0);
        let mut open_module = McmAssembly::paper_module();
        open_module.inject(Fault::Open { net: 3 });
        let batch = vec![
            (McmAssembly::paper_module(), CompassConfig::paper_design()),
            (open_module, CompassConfig::paper_design()),
            (McmAssembly::paper_module(), bad_cfg),
        ];
        let serial: Vec<ProductionResult> =
            batch.iter().map(|(a, c)| production_test(a, c)).collect();
        for threads in [1, 4] {
            let par = production_test_batch(&batch, &ExecPolicy::with_threads(threads));
            assert_eq!(serial, par, "at {threads} threads");
        }
        assert!(serial[0].shipped());
        assert!(!serial[1].shipped() && serial[1].stages_run == 1);
        assert!(!serial[2].shipped() && serial[2].stages_run == 3);
    }

    #[test]
    fn misalignment_out_of_spec_caught_functionally() {
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.misalignment = fluxcomp_units::Degrees::new(4.0);
        let result = production_test(&McmAssembly::paper_module(), &cfg);
        assert!(!result.shipped());
        assert!(matches!(
            result.reject,
            Some(RejectReason::Functional { worst_error }) if worst_error > 1.2
        ));
    }
}
