//! Tilt behaviour — the two-axis compass's real-world Achilles heel,
//! and the three-axis "future work" extension.
//!
//! The paper's compass "functions by measuring the magnetic field in a
//! horizontal plane" — i.e. it assumes the watch is held level. When the
//! platform pitches or rolls, the earth's **vertical** field component
//! (large at the paper's latitude: tan(67°) ≈ 2.36× the horizontal
//! part) leaks into the sensor plane and corrupts the heading. This
//! module quantifies that error and implements the standard remedy the
//! paper's architecture could grow into: a third orthogonal fluxgate and
//! tilt compensation from a (simulated) inclinometer.
//!
//! Frames and conventions: navigation frame N/E/D (down positive),
//! heading ψ (clockwise from north), pitch θ (nose up positive), roll φ
//! (right side down positive), body axes x (forward), y (right),
//! z (down). The field in the body frame is
//! `B_b = R_x(φ)·R_y(θ)·R_z(ψ)·B_n`.

use fluxcomp_fluxgate::earth::EarthField;
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::Tesla;

/// The platform attitude.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Attitude {
    /// Pitch (nose up positive).
    pub pitch: Degrees,
    /// Roll (right side down positive).
    pub roll: Degrees,
}

impl Attitude {
    /// A level platform.
    pub fn level() -> Self {
        Self::default()
    }

    /// Creates an attitude.
    pub fn new(pitch: Degrees, roll: Degrees) -> Self {
        Self { pitch, roll }
    }
}

/// The field vector the three body-frame sensors see for a platform at
/// `heading` with `attitude` in `field`. Returns `(bx, by, bz)`.
pub fn body_field(
    field: &EarthField,
    heading: Degrees,
    attitude: Attitude,
) -> (Tesla, Tesla, Tesla) {
    let bh = field.horizontal_magnitude().value();
    let bv = field.vertical_component().value();
    let psi = heading.to_radians().value();
    // Navigation-frame field with x toward magnetic north.
    let bn = [bh, 0.0, bv];
    // Yaw: the workspace's heading convention (see
    // `EarthField::body_components`) has `B_y = +B_h·sin(ψ)` on a level
    // platform, so the body-from-nav yaw rotation is R_z(−ψ).
    let (s, c) = psi.sin_cos();
    let after_yaw = [c * bn[0] - s * bn[1], s * bn[0] + c * bn[1], bn[2]];
    // R_y(θ): pitch.
    let (sp, cp) = attitude.pitch.to_radians().value().sin_cos();
    let after_pitch = [
        cp * after_yaw[0] - sp * after_yaw[2],
        after_yaw[1],
        sp * after_yaw[0] + cp * after_yaw[2],
    ];
    // R_x(φ): roll.
    let (sr, cr) = attitude.roll.to_radians().value().sin_cos();
    let body = [
        after_pitch[0],
        cr * after_pitch[1] + sr * after_pitch[2],
        -sr * after_pitch[1] + cr * after_pitch[2],
    ];
    (
        Tesla::new(body[0]),
        Tesla::new(body[1]),
        Tesla::new(body[2]),
    )
}

/// The heading a naive two-axis compass (the paper's) indicates for a
/// tilted platform: `atan2(by, bx)` of the in-plane components, no
/// compensation.
pub fn two_axis_heading(field: &EarthField, heading: Degrees, attitude: Attitude) -> Degrees {
    let (bx, by, _) = body_field(field, heading, attitude);
    Degrees::atan2(by.value(), bx.value()).normalized()
}

/// The tilt-compensated heading from all three body components plus the
/// known attitude — the standard de-rotation:
///
/// ```text
/// Bx' = Bx·cosθ + Bz·sinθ ... (undo pitch/roll, then atan2)
/// ```
pub fn tilt_compensated_heading(bx: Tesla, by: Tesla, bz: Tesla, attitude: Attitude) -> Degrees {
    let (sp, cp) = attitude.pitch.to_radians().value().sin_cos();
    let (sr, cr) = attitude.roll.to_radians().value().sin_cos();
    // Undo roll on (y, z).
    let y1 = cr * by.value() - sr * bz.value();
    let z1 = sr * by.value() + cr * bz.value();
    // Undo pitch on (x, z).
    let x2 = cp * bx.value() + sp * z1;
    Degrees::atan2(y1, x2).normalized()
}

/// Worst-case two-axis heading error over the full circle for a given
/// tilt, sampled at `n` headings.
///
/// The headings are evaluated according to `policy` and the maximum
/// folded in sweep order, so the result is bit-identical at any worker
/// count.
pub fn worst_tilt_error(
    field: &EarthField,
    attitude: Attitude,
    n: usize,
    policy: &fluxcomp_exec::ExecPolicy,
) -> Degrees {
    assert!(n > 0, "need at least one heading");
    let errors = fluxcomp_exec::par_map_range(policy, n, |k| {
        let truth = Degrees::new(k as f64 * 360.0 / n as f64);
        let indicated = two_axis_heading(field, truth, attitude);
        indicated.angular_distance(truth).value()
    });
    Degrees::new(errors.into_iter().fold(0.0f64, f64::max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_fluxgate::earth::Location;

    fn enschede() -> EarthField {
        EarthField::at(Location::Enschede)
    }

    #[test]
    fn level_platform_has_no_tilt_error() {
        let f = enschede();
        for deg in [0.0, 77.0, 191.0, 333.0] {
            let h = Degrees::new(deg);
            let indicated = two_axis_heading(&f, h, Attitude::level());
            assert!(indicated.angular_distance(h).value() < 1e-9);
        }
    }

    #[test]
    fn body_field_magnitude_is_invariant() {
        // Rotations preserve |B|.
        let f = enschede();
        let total = f.total().value();
        for (p, r) in [(0.0, 0.0), (10.0, -5.0), (-30.0, 45.0)] {
            let (bx, by, bz) = body_field(
                &f,
                Degrees::new(123.0),
                Attitude::new(Degrees::new(p), Degrees::new(r)),
            );
            let mag = (bx.value().powi(2) + by.value().powi(2) + bz.value().powi(2)).sqrt();
            assert!((mag - total).abs() < 1e-12 * total.max(1.0), "at ({p},{r})");
        }
    }

    #[test]
    fn tilt_error_grows_with_inclination_and_tilt() {
        // At the paper's latitude (67° dip), 10° of pitch is disastrous
        // for a two-axis compass; at the equator (no vertical field)
        // pitch only compresses the x component — a far smaller effect.
        let serial = fluxcomp_exec::ExecPolicy::serial();
        let tilt = Attitude::new(Degrees::new(10.0), Degrees::ZERO);
        let err_nl = worst_tilt_error(&enschede(), tilt, 36, &serial).value();
        let err_eq =
            worst_tilt_error(&EarthField::at(Location::Equator), tilt, 36, &serial).value();
        assert!(err_nl > 10.0, "Enschede 10° pitch: {err_nl}°");
        assert!(err_eq < 1.0, "equator 10° pitch: {err_eq}°");
        // More tilt, more error.
        let err_nl_20 = worst_tilt_error(
            &enschede(),
            Attitude::new(Degrees::new(20.0), Degrees::ZERO),
            36,
            &serial,
        )
        .value();
        assert!(err_nl_20 > err_nl);
    }

    #[test]
    fn compensation_recovers_the_heading_exactly() {
        let f = enschede();
        for (p, r) in [(10.0, 0.0), (0.0, 15.0), (20.0, -25.0), (-35.0, 40.0)] {
            let att = Attitude::new(Degrees::new(p), Degrees::new(r));
            for deg in [0.0, 45.0, 123.0, 200.0, 300.0] {
                let truth = Degrees::new(deg);
                let (bx, by, bz) = body_field(&f, truth, att);
                let comp = tilt_compensated_heading(bx, by, bz, att);
                assert!(
                    comp.angular_distance(truth).value() < 1e-9,
                    "({p},{r}) at {deg}: {comp}"
                );
            }
        }
    }

    #[test]
    fn compensation_without_z_would_fail() {
        // Sanity that the third sensor genuinely matters: compensating
        // with bz forced to zero leaves a large residual at steep dip.
        let f = enschede();
        let att = Attitude::new(Degrees::new(15.0), Degrees::new(10.0));
        let truth = Degrees::new(60.0);
        let (bx, by, _) = body_field(&f, truth, att);
        let bad = tilt_compensated_heading(bx, by, Tesla::ZERO, att);
        assert!(bad.angular_distance(truth).value() > 3.0);
    }

    #[test]
    fn roll_couples_vertical_into_y() {
        let f = enschede();
        // Facing north, rolled right: the down component leaks into +y…
        let (_, by_level, _) = body_field(&f, Degrees::ZERO, Attitude::level());
        let (_, by_rolled, _) = body_field(
            &f,
            Degrees::ZERO,
            Attitude::new(Degrees::ZERO, Degrees::new(10.0)),
        );
        assert!(by_level.value().abs() < 1e-15);
        assert!(by_rolled.value() > 1e-6, "vertical leakage expected");
    }

    #[test]
    fn parallel_scan_matches_serial_bitwise() {
        let tilt = Attitude::new(Degrees::new(12.0), Degrees::new(-7.0));
        let serial = worst_tilt_error(&enschede(), tilt, 360, &fluxcomp_exec::ExecPolicy::serial());
        for threads in [2, 4, 8] {
            let par = worst_tilt_error(
                &enschede(),
                tilt,
                360,
                &fluxcomp_exec::ExecPolicy::with_threads(threads),
            );
            assert_eq!(serial.value().to_bits(), par.value().to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least one heading")]
    fn empty_sweep_rejected() {
        let _ = worst_tilt_error(
            &enschede(),
            Attitude::level(),
            0,
            &fluxcomp_exec::ExecPolicy::serial(),
        );
    }
}
