//! The **second-harmonic baseline compass** (experiment E8).
//!
//! Same sensors, same excitation — but read out the classical way the
//! paper argues against: synchronous demodulation of the pickup voltage
//! at `2·f_exc`, followed by the A/D converter that method cannot avoid.
//! The comparison against the pulse-position pipeline covers both
//! accuracy (as a function of ADC resolution) and hardware cost.

use crate::config::{BuildError, CompassConfig};
use fluxcomp_afe::frontend::FrontEnd;
use fluxcomp_afe::second_harmonic::SecondHarmonicDemodulator;
use fluxcomp_fluxgate::pair::{Axis, SensorPair};
use fluxcomp_rtl::adc::SarAdc;
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::Volt;

/// A compass built on second-harmonic readout + SAR ADC.
#[derive(Debug, Clone)]
pub struct SecondHarmonicCompass {
    config: CompassConfig,
    frontend: FrontEnd,
    pair: SensorPair,
    demod: SecondHarmonicDemodulator,
    adc: SarAdc,
    /// Demodulator phase reference from calibration.
    reference: (f64, f64),
}

impl SecondHarmonicCompass {
    /// Builds the baseline with an `adc_bits`-bit converter.
    ///
    /// The ADC reference is auto-ranged during construction by
    /// demodulating a full-scale calibration field, exactly as a real
    /// design would set its gain.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::BadCordicIterations`] never, but shares the
    /// config validation of the main system for the sampling grid.
    pub fn new(config: CompassConfig, adc_bits: u32) -> Result<Self, BuildError> {
        let sample_rate = config.frontend.samples_per_period as f64
            * config.frontend.excitation.frequency().value();
        if sample_rate < config.clock.master().value() {
            return Err(BuildError::SamplingTooCoarse {
                sample_rate,
                clock: config.clock.master().value(),
            });
        }
        let mut fe_config = config.frontend.clone();
        fe_config.sensor = config.pair.element;
        let frontend =
            FrontEnd::new(fe_config).map_err(|reason| BuildError::BadFrontEnd { reason })?;
        let demod = SecondHarmonicDemodulator::new(config.frontend.excitation.frequency());
        // Calibration run: a known positive full-scale field.
        let h_cal = AmperePerMeter::new(
            config.field.horizontal_magnitude().value() / fluxcomp_units::magnetics::MU_0,
        );
        let (samples, dt) = pickup_samples(&frontend, h_cal, &config);
        let reference = demod.demodulate_iq(&samples, dt);
        let s_max = (reference.0 * reference.0 + reference.1 * reference.1).sqrt();
        let adc = SarAdc::new(adc_bits, Volt::new((1.2 * s_max).max(1e-9)));
        Ok(Self {
            pair: SensorPair::new(config.pair),
            frontend,
            demod,
            adc,
            reference,
            config,
        })
    }

    /// The ADC in use.
    pub fn adc(&self) -> &SarAdc {
        &self.adc
    }

    /// Measures one axis: demodulated second harmonic, digitised.
    pub fn measure_axis(&self, axis: Axis, true_heading: Degrees) -> i64 {
        let h_ext = self
            .pair
            .axial_field(axis, &self.config.field, true_heading);
        let (samples, dt) = pickup_samples(&self.frontend, h_ext, &self.config);
        let s = self.demod.signed_output(&samples, dt, self.reference);
        self.adc.convert(Volt::new(s))
    }

    /// A full fix: both axes + floating-point atan2 on the codes (the
    /// baseline is allowed the easy part; its weakness is the readout).
    pub fn measure_heading(&self, true_heading: Degrees) -> Degrees {
        let x = self.measure_axis(Axis::X, true_heading);
        let y = self.measure_axis(Axis::Y, true_heading);
        if x == 0 && y == 0 {
            return Degrees::ZERO;
        }
        Degrees::atan2(y as f64, x as f64).normalized()
    }

    /// Extra transistors this method needs versus pulse-position: the
    /// ADC plus demodulator/filter estimates, minus the detector's two
    /// comparators it replaces.
    pub fn extra_hardware_transistors(&self) -> u32 {
        const DEMOD_FILTER: u32 = 700; // mixer + gm-C filter + S/H
        const PULSE_DETECTOR: u32 = 160; // two comparators + latch
        self.adc.transistor_estimate() + DEMOD_FILTER - PULSE_DETECTOR
    }
}

/// Runs the front-end and extracts the pickup waveform over the
/// measurement window.
fn pickup_samples(
    frontend: &FrontEnd,
    h_ext: AmperePerMeter,
    config: &CompassConfig,
) -> (Vec<f64>, f64) {
    let result = frontend.run(h_ext);
    let n = config.frontend.samples_per_period;
    let settle = config.frontend.settle_periods;
    let trace = result
        .traces
        .by_name("v_pickup")
        .expect("front-end records v_pickup");
    let samples: Vec<f64> = trace
        .samples()
        .iter()
        .skip(settle * n)
        .map(|&(_, v)| v)
        .collect();
    let dt = 1.0 / (config.frontend.excitation.frequency().value() * n as f64);
    (samples, dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline(bits: u32) -> SecondHarmonicCompass {
        SecondHarmonicCompass::new(CompassConfig::paper_design(), bits).unwrap()
    }

    #[test]
    fn axis_codes_are_monotone_in_heading_projection() {
        let b = baseline(12);
        let north = b.measure_axis(Axis::X, Degrees::new(0.0));
        let east = b.measure_axis(Axis::X, Degrees::new(90.0));
        let south = b.measure_axis(Axis::X, Degrees::new(180.0));
        assert!(north > 0, "north x code {north}");
        assert!(east.abs() < north / 4, "east x code {east}");
        assert!(south < 0, "south x code {south}");
    }

    #[test]
    fn twelve_bit_baseline_reads_headings() {
        let b = baseline(12);
        for deg in [0.0, 45.0, 135.0, 225.0, 315.0] {
            let got = b.measure_heading(Degrees::new(deg));
            let err = got.angular_distance(Degrees::new(deg)).value();
            assert!(err < 5.0, "heading {deg}: got {got} (err {err})");
        }
    }

    #[test]
    fn accuracy_improves_with_adc_bits() {
        let coarse = baseline(5);
        let fine = baseline(12);
        let mut worst_coarse = 0.0f64;
        let mut worst_fine = 0.0f64;
        for deg in [30.0, 120.0, 210.0, 300.0] {
            let t = Degrees::new(deg);
            worst_coarse = worst_coarse.max(coarse.measure_heading(t).angular_distance(t).value());
            worst_fine = worst_fine.max(fine.measure_heading(t).angular_distance(t).value());
        }
        assert!(
            worst_fine < worst_coarse,
            "12-bit ({worst_fine}) should beat 5-bit ({worst_coarse})"
        );
    }

    #[test]
    fn needs_more_hardware_than_pulse_position() {
        let b = baseline(8);
        // The E8 cost argument: hundreds of extra transistors, entirely
        // attributable to the ADC + demodulator.
        let extra = b.extra_hardware_transistors();
        assert!(extra > 500, "extra hardware {extra}");
        assert!(baseline(12).extra_hardware_transistors() > extra);
    }

    #[test]
    fn adc_reference_is_auto_ranged() {
        let b = baseline(10);
        // Full-scale field must not rail the converter.
        let code = b.measure_axis(Axis::X, Degrees::new(0.0));
        assert!(code < (1i64 << b.adc().bits()) - 1);
        assert!(code > (1 << 8), "code {code} suspiciously small");
    }
}
