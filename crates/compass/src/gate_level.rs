//! The compass fix computed through the **gate-level** digital section —
//! RTL-in-the-loop, the reproduction's strongest equivalence statement.
//!
//! [`GateLevelCompass`] replaces the behavioural counter and CORDIC with
//! the synthesised netlists running on the event-driven gate simulator:
//! the detector stream clocks the real up/down-counter netlist edge by
//! edge, and the two integers go through the unrolled Fig. 8 kernel
//! netlist plus a software quadrant fold. A test asserts the result is
//! **bit-identical** to [`crate::Compass`] — the digital section's
//! implementation is the specification.

use crate::config::{BuildError, CompassConfig};
use crate::system::Compass;
use fluxcomp_afe::frontend::FrontEnd;
use fluxcomp_fluxgate::pair::{Axis, SensorPair};
use fluxcomp_rtl::atan_rom::{AtanRom, ANGLE_SCALE};
use fluxcomp_rtl::cordic_netlist::{cordic_kernel_netlist, CordicKernelNets};
use fluxcomp_rtl::counter::sample_at_clock;
use fluxcomp_rtl::netsim::GateSim;
use fluxcomp_rtl::synth::updown_counter;
use fluxcomp_rtl::NetId;
use fluxcomp_units::angle::Degrees;

/// A compass whose digital section runs at gate level.
#[derive(Debug, Clone)]
pub struct GateLevelCompass {
    config: CompassConfig,
    frontend: FrontEnd,
    pair: SensorPair,
    counter_sim: GateSim,
    counter_up: NetId,
    counter_bus: Vec<NetId>,
    cordic_sim: GateSim,
    cordic_nets: CordicKernelNets,
}

/// One gate-level fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateLevelReading {
    /// The heading.
    pub heading: Degrees,
    /// Gate-level counter outputs (sign-corrected, ∝ field).
    pub x: i64,
    /// Gate-level counter outputs (sign-corrected, ∝ field).
    pub y: i64,
    /// Gate-evaluation events spent on this fix (activity proxy).
    pub gate_events: u64,
}

impl GateLevelCompass {
    /// Builds the gate-level system from the same configuration as the
    /// behavioural [`Compass`].
    ///
    /// # Errors
    ///
    /// Same validation as [`Compass::new`]. The CORDIC iteration count
    /// is fixed at the paper's 8 (the kernel netlist is built for it).
    pub fn new(config: CompassConfig) -> Result<Self, BuildError> {
        if config.cordic_iterations != 8 {
            return Err(BuildError::BadCordicIterations {
                got: config.cordic_iterations,
            });
        }
        // Reuse the behavioural constructor's validation.
        let _ = Compass::new(config.clone())?;
        let mut fe_config = config.frontend.clone();
        fe_config.sensor = config.pair.element;
        let (counter_nl, up, bus) = updown_counter(16);
        let cordic_nets = cordic_kernel_netlist(24, 18, 8);
        Ok(Self {
            // The config was validated by the behavioural constructor above.
            frontend: FrontEnd::new(fe_config).expect("validated"),
            pair: SensorPair::new(config.pair),
            counter_sim: GateSim::new(counter_nl),
            counter_up: up,
            counter_bus: bus,
            cordic_sim: GateSim::new(cordic_nets.netlist.clone()),
            cordic_nets,
            config,
        })
    }

    /// Runs one axis through the front-end and the gate-level counter.
    fn measure_axis_gate_level(&mut self, axis: Axis, true_heading: Degrees) -> i64 {
        let h_ext = self
            .pair
            .axial_field(axis, &self.config.field, true_heading);
        let result = self.frontend.run(h_ext);
        let window = self.config.frontend.measure_periods as f64
            / self.config.frontend.excitation.frequency().value();
        let stream = sample_at_clock(&result.detector_samples, window, self.config.clock.master());
        // Reset the counter netlist by loading zero through… there is no
        // reset pin (matching the paper-era minimal counter): rebuild the
        // simulator, which powers up at zero like silicon after POR.
        let (counter_nl, up, bus) = updown_counter(16);
        self.counter_sim = GateSim::new(counter_nl);
        self.counter_up = up;
        self.counter_bus = bus;
        for bit in stream {
            self.counter_sim.set_input(self.counter_up, bit);
            self.counter_sim.settle();
            self.counter_sim.clock_edge();
        }
        self.counter_sim.bus_value_signed(&self.counter_bus)
    }

    /// One full fix through the gate-level digital section.
    pub fn measure_heading(&mut self, true_heading: Degrees) -> GateLevelReading {
        let events_before = self.counter_sim.events() + self.cordic_sim.events();
        let x = -self.measure_axis_gate_level(Axis::X, true_heading);
        let ev_x = self.counter_sim.events();
        let y = -self.measure_axis_gate_level(Axis::Y, true_heading);
        let ev_y = self.counter_sim.events();

        // Quadrant fold in "hardware-trivial" logic (sign decode), then
        // the gate-level first-quadrant kernel.
        let heading = if x == 0 && y == 0 {
            Degrees::ZERO
        } else {
            self.cordic_sim.set_bus(&self.cordic_nets.x_in, x.abs());
            self.cordic_sim.set_bus(&self.cordic_nets.y_in, y.abs());
            self.cordic_sim.settle();
            let q8 = self
                .cordic_sim
                .bus_value_signed(&self.cordic_nets.angle_out);
            let folded = match (x >= 0, y >= 0) {
                (true, true) => q8,
                (false, true) => 180 * ANGLE_SCALE - q8,
                (false, false) => 180 * ANGLE_SCALE + q8,
                (true, false) => 360 * ANGLE_SCALE - q8,
            }
            .rem_euclid(360 * ANGLE_SCALE);
            Degrees::new(AtanRom::to_degrees(folded)).normalized()
        };
        GateLevelReading {
            heading,
            x,
            y,
            gate_events: ev_x + ev_y + self.cordic_sim.events() - events_before,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_level_fix_is_bit_identical_to_behavioral() {
        let mut behavioral = Compass::new(CompassConfig::paper_design()).expect("valid");
        let mut gate_level = GateLevelCompass::new(CompassConfig::paper_design()).expect("valid");
        for deg in [0.0, 33.0, 123.0, 200.0, 300.0, 359.0] {
            let truth = Degrees::new(deg);
            let b = behavioral.measure_heading(truth);
            let g = gate_level.measure_heading(truth);
            assert_eq!(g.x, -b.x.count, "x at {deg}");
            assert_eq!(g.y, -b.y.count, "y at {deg}");
            // x == 0 cases take the behavioural 90°-shortcut vs. the
            // netlist's iterated value; both are within the residual —
            // everywhere else the heading must match exactly.
            if g.x != 0 && g.y != 0 {
                assert_eq!(g.heading, b.heading, "heading at {deg}");
            } else {
                assert!(
                    g.heading.angular_distance(b.heading).value() < 0.5,
                    "degenerate axis at {deg}: {} vs {}",
                    g.heading,
                    b.heading
                );
            }
        }
    }

    #[test]
    fn gate_level_meets_the_one_degree_claim_alone() {
        let mut c = GateLevelCompass::new(CompassConfig::paper_design()).expect("valid");
        for deg in [45.0, 137.0, 222.0, 313.0] {
            let truth = Degrees::new(deg);
            let got = c.measure_heading(truth);
            assert!(
                got.heading.angular_distance(truth).value() <= 1.0,
                "at {deg}: {}",
                got.heading
            );
        }
    }

    #[test]
    fn activity_is_reported() {
        let mut c = GateLevelCompass::new(CompassConfig::paper_design()).expect("valid");
        let r = c.measure_heading(Degrees::new(77.0));
        // Thousands of clocked counter evaluations plus the kernel.
        assert!(r.gate_events > 10_000, "events {}", r.gate_events);
    }

    #[test]
    fn non_paper_iteration_count_rejected() {
        let mut cfg = CompassConfig::paper_design();
        cfg.cordic_iterations = 12;
        assert!(matches!(
            GateLevelCompass::new(cfg),
            Err(BuildError::BadCordicIterations { got: 12 })
        ));
    }
}
