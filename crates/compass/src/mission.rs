//! Dead-reckoning missions — the compass in its application.
//!
//! The paper's intro motivates navigation; this module closes that loop:
//! walk a planned path of legs (heading + distance), navigate each leg
//! by compass, and measure where you actually end up. The position
//! error after a long walk is the *integrated* form of the heading
//! error — a 1° systematic error displaces you by ~1.7 % of the distance
//! walked, which is why the paper's accuracy target is what it is.

use crate::system::Compass;
use fluxcomp_units::angle::Degrees;

/// One leg of a planned route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Leg {
    /// The intended heading.
    pub heading: Degrees,
    /// Distance walked on the leg, metres.
    pub distance: f64,
}

impl Leg {
    /// Creates a leg.
    ///
    /// # Panics
    ///
    /// Panics if the distance is negative or not finite.
    pub fn new(heading: Degrees, distance: f64) -> Self {
        assert!(
            distance >= 0.0 && distance.is_finite(),
            "distance must be finite and non-negative"
        );
        Self { heading, distance }
    }
}

/// A 2-D position (north, east) in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Northing.
    pub north: f64,
    /// Easting.
    pub east: f64,
}

impl Position {
    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: &Position) -> f64 {
        (self.north - other.north).hypot(self.east - other.east)
    }

    /// Advances along a heading by a distance.
    fn advance(&self, heading: Degrees, distance: f64) -> Position {
        Position {
            north: self.north + distance * heading.cos(),
            east: self.east + distance * heading.sin(),
        }
    }
}

/// The outcome of walking a route by compass.
#[derive(Debug, Clone, PartialEq)]
pub struct MissionResult {
    /// The position the route was supposed to reach.
    pub intended: Position,
    /// The position dead reckoning by compass actually reached.
    pub reached: Position,
    /// Total distance walked.
    pub total_distance: f64,
    /// The per-leg headings the compass indicated.
    pub indicated_headings: Vec<Degrees>,
}

impl MissionResult {
    /// The closing error: distance between intended and reached points.
    pub fn position_error(&self) -> f64 {
        self.intended.distance_to(&self.reached)
    }

    /// The closing error as a fraction of the distance walked.
    pub fn relative_error(&self) -> f64 {
        if self.total_distance == 0.0 {
            0.0
        } else {
            self.position_error() / self.total_distance
        }
    }
}

/// Walks a route by compass: on each leg the walker *intends* the leg's
/// heading, but steers by the compass — so the walked direction is off
/// by the compass's heading error on that leg (the standard
/// dead-reckoning model: you turn until the needle reads the planned
/// value, so your true heading carries the negated instrument error).
pub fn walk_route(compass: &mut Compass, route: &[Leg]) -> MissionResult {
    let mut intended = Position::default();
    let mut reached = Position::default();
    let mut total = 0.0;
    let mut indicated = Vec::with_capacity(route.len());
    for leg in route {
        intended = intended.advance(leg.heading, leg.distance);
        // The walker rotates until the display shows `leg.heading`;
        // solve one step of that servo: measure at the planned heading,
        // take the error, and walk along `heading − error`.
        let reading = compass.measure_heading(leg.heading).heading;
        let error = reading.signed_error_from(leg.heading);
        let walked_heading = (leg.heading - error).normalized();
        reached = reached.advance(walked_heading, leg.distance);
        total += leg.distance;
        indicated.push(reading);
    }
    MissionResult {
        intended,
        reached,
        total_distance: total,
        indicated_headings: indicated,
    }
}

/// A square test route of the given side length: N, E, S, W — ideally
/// it closes exactly, so the closing error is pure instrument error.
pub fn square_route(side: f64) -> Vec<Leg> {
    [0.0, 90.0, 180.0, 270.0]
        .into_iter()
        .map(|h| Leg::new(Degrees::new(h), side))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompassConfig;
    use fluxcomp_fluxgate::earth::MagneticDisturbance;
    use fluxcomp_units::Tesla;

    #[test]
    fn square_route_nearly_closes_with_paper_compass() {
        let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
        let result = walk_route(&mut compass, &square_route(1_000.0));
        // 4 km walked; sub-degree headings → closing error well under
        // 2 % of distance (1° ≈ 1.75 %, and errors partly cancel).
        assert!(result.intended.distance_to(&Position::default()) < 1e-9);
        let rel = result.relative_error();
        assert!(
            rel < 0.02,
            "closing error {:.1} m ({rel:.4})",
            result.position_error()
        );
        assert_eq!(result.total_distance, 4_000.0);
        assert_eq!(result.indicated_headings.len(), 4);
    }

    #[test]
    fn hard_iron_ruins_dead_reckoning() {
        let mut cfg = CompassConfig::paper_design();
        cfg.pair.disturbance =
            MagneticDisturbance::hard(Tesla::from_microtesla(4.0), Tesla::from_microtesla(-2.0));
        let mut bad = Compass::new(cfg).expect("valid");
        let mut good = Compass::new(CompassConfig::paper_design()).expect("valid");
        let route = square_route(1_000.0);
        let bad_err = walk_route(&mut bad, &route).position_error();
        let good_err = walk_route(&mut good, &route).position_error();
        assert!(
            bad_err > 10.0 * good_err.max(1.0),
            "hard iron {bad_err} m vs clean {good_err} m"
        );
    }

    #[test]
    fn zero_length_route() {
        let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
        let result = walk_route(&mut compass, &[]);
        assert_eq!(result.position_error(), 0.0);
        assert_eq!(result.relative_error(), 0.0);
    }

    #[test]
    fn single_leg_error_matches_heading_error() {
        let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
        let leg = Leg::new(Degrees::new(123.0), 1_000.0);
        let result = walk_route(&mut compass, &[leg]);
        // Position error ≈ distance × heading error in radians.
        let heading_err = result.indicated_headings[0]
            .angular_distance(Degrees::new(123.0))
            .to_radians()
            .value();
        let expect = 2.0 * 1_000.0 * (heading_err / 2.0).sin();
        assert!(
            (result.position_error() - expect).abs() < 0.01 * expect.max(0.1),
            "{} vs {}",
            result.position_error(),
            expect
        );
    }

    #[test]
    fn position_geometry() {
        let p = Position::default().advance(Degrees::new(0.0), 3.0);
        assert!((p.north - 3.0).abs() < 1e-12 && p.east.abs() < 1e-12);
        let p = p.advance(Degrees::new(90.0), 4.0);
        assert!((p.east - 4.0).abs() < 1e-12);
        assert!((p.distance_to(&Position::default()) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distance")]
    fn negative_leg_rejected() {
        let _ = Leg::new(Degrees::ZERO, -5.0);
    }
}
