//! Battery-life estimation for the compass watch.
//!
//! The paper's power levers (multiplexing, enable gating, supply
//! scaling) exist because the target is a *watch*: a CR2025-class coin
//! cell. This module turns the `afe` power model plus a fix schedule
//! into the number a product manager would ask for — years of battery
//! life — and quantifies what each lever buys.

use fluxcomp_afe::power::{PowerModel, Schedule};
use fluxcomp_units::si::Seconds;

/// A coin cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    /// Capacity in milliamp-hours.
    pub capacity_mah: f64,
    /// Nominal voltage.
    pub voltage: f64,
}

impl Battery {
    /// A CR2025 lithium coin cell: 160 mAh at 3 V.
    pub fn cr2025() -> Self {
        Self {
            capacity_mah: 160.0,
            voltage: 3.0,
        }
    }

    /// A CR2477 (the big one): 1000 mAh at 3 V.
    pub fn cr2477() -> Self {
        Self {
            capacity_mah: 1000.0,
            voltage: 3.0,
        }
    }

    /// The stored energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.capacity_mah * 1e-3 * 3600.0 * self.voltage
    }
}

/// The watch's usage profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsageProfile {
    /// Compass fixes per day.
    pub fixes_per_day: f64,
    /// Excitation periods per fix per axis.
    pub periods_per_axis: u32,
    /// Excitation frequency (Hz).
    pub excitation_hz: f64,
}

impl UsageProfile {
    /// A hiker's day: a fix every 10 seconds for 2 hours, plus
    /// occasional glances — ~1000 fixes/day.
    pub fn hiker() -> Self {
        Self {
            fixes_per_day: 1_000.0,
            periods_per_axis: 8,
            excitation_hz: 8_000.0,
        }
    }

    /// Continuous compass mode: one fix per second, all day.
    pub fn continuous() -> Self {
        Self {
            fixes_per_day: 86_400.0,
            ..Self::hiker()
        }
    }

    /// The fraction of each day the measurement chain is active.
    pub fn measurement_duty(&self) -> f64 {
        let fix_seconds = 2.0 * self.periods_per_axis as f64 / self.excitation_hz;
        (self.fixes_per_day * fix_seconds / 86_400.0).min(1.0)
    }
}

/// Estimated battery life for a power model, schedule template and
/// usage profile.
///
/// Returns the life in days.
pub fn battery_life_days(power: &PowerModel, profile: &UsageProfile, battery: &Battery) -> f64 {
    let schedule = Schedule::duty_cycled(profile.measurement_duty());
    let avg_watts = power.average_power(&schedule).value();
    let seconds = battery.energy_joules() / avg_watts;
    Seconds::new(seconds).value() / 86_400.0
}

/// Battery life without the paper's enable gating (analogue section and
/// counter always on) — the ablation that shows why §4's power gating
/// exists.
pub fn battery_life_days_always_on(power: &PowerModel, battery: &Battery) -> f64 {
    let avg_watts = power.average_power(&Schedule::paper_multiplexed()).value();
    battery.energy_joules() / avg_watts / 86_400.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_energy() {
        // 160 mAh × 3 V = 1728 J.
        let e = Battery::cr2025().energy_joules();
        assert!((e - 1_728.0).abs() < 1e-9);
        assert!(Battery::cr2477().energy_joules() > 6.0 * e);
    }

    #[test]
    fn hiker_profile_duty_is_tiny() {
        let duty = UsageProfile::hiker().measurement_duty();
        // 1000 fixes × 2 ms / 86400 s ≈ 2.3e-5.
        assert!((duty - 1_000.0 * 2e-3 / 86_400.0).abs() < 1e-9);
        assert!(duty < 1e-4);
    }

    #[test]
    fn gated_hiker_watch_lasts_months_to_years() {
        // The headline the paper's power story buys: with enable gating
        // the life is set by the always-on watch/LCD floor (~80 µW at
        // 5 V), not by the compass — months on a small cell, years on a
        // CR2477. Without gating it would be *under a day* (next test).
        let pm = PowerModel::at_5v();
        let small = battery_life_days(&pm, &UsageProfile::hiker(), &Battery::cr2025());
        assert!(small > 180.0, "hiker life {small} days on CR2025");
        let big = battery_life_days(&pm, &UsageProfile::hiker(), &Battery::cr2477());
        assert!(big > 3.0 * 365.0, "hiker life {big} days on CR2477");
    }

    #[test]
    fn always_on_drains_in_days() {
        // Without gating, ~26 mW kills a 1728 J cell in under a day —
        // the quantitative version of §4's justification.
        let days = battery_life_days_always_on(&PowerModel::at_5v(), &Battery::cr2025());
        assert!(days < 2.0, "always-on life {days} days");
    }

    #[test]
    fn continuous_mode_sits_in_between() {
        let pm = PowerModel::at_5v();
        let battery = Battery::cr2025();
        let hiker = battery_life_days(&pm, &UsageProfile::hiker(), &battery);
        let continuous = battery_life_days(&pm, &UsageProfile::continuous(), &battery);
        let always = battery_life_days_always_on(&pm, &battery);
        assert!(continuous < hiker);
        assert!(continuous > always);
    }

    #[test]
    fn low_voltage_supply_extends_life() {
        let battery = Battery::cr2025();
        let profile = UsageProfile::continuous();
        let life_5v = battery_life_days(&PowerModel::at_5v(), &profile, &battery);
        let life_35 = battery_life_days(&PowerModel::at_3v5(), &profile, &battery);
        assert!(life_35 > life_5v, "{life_35} vs {life_5v}");
    }

    #[test]
    fn duty_clamps_at_continuous_measurement() {
        let mut p = UsageProfile::continuous();
        p.fixes_per_day = 1e9; // absurd
        assert_eq!(p.measurement_duty(), 1.0);
    }
}
