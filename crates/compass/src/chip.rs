//! The chip-level mapping (experiment E6, paper §2 / Fig. 2).
//!
//! Bridges the `rtl` crate's synthesised transistor inventory and the
//! `sog` crate's array model: converts every digital block to committed
//! sites through the routing-utilisation factor, splits blocks larger
//! than a quarter (a synthesis flow would partition them the same way),
//! places everything, and reports the quantities the paper claims:
//! digital quarters filled, analogue quarter occupancy, and the fit into
//! the 200k-transistor array.

use fluxcomp_rtl::synth::{full_compass_inventory, inventory_total, BlockInventory};
use fluxcomp_sog::fabric::PowerDomain;
use fluxcomp_sog::floorplan::{Block, Floorplan, PlaceBlockError, DEFAULT_UTILIZATION};
use fluxcomp_sog::library::AnalogMacro;

/// The assembled chip report.
#[derive(Debug, Clone)]
pub struct ChipReport {
    /// The populated floorplan.
    pub floorplan: Floorplan,
    /// Digital transistor total (from the synthesised inventory).
    pub digital_transistors: u32,
    /// Equivalent quarters the digital section fills.
    pub digital_quarters: f64,
    /// Occupancy of the analogue quarter (fraction).
    pub analog_occupancy: f64,
    /// The routing utilisation used for the mapping.
    pub utilization: f64,
}

impl ChipReport {
    /// Renders the report, including the per-quarter floorplan.
    pub fn render(&self) -> String {
        format!(
            "Integrated compass on the fishbone SoG (utilization {:.0} %)\n\
             digital: {} transistors -> {:.2} quarters (paper: 3 quarters)\n\
             analog:  {:.1} % of one quarter (paper: < 15 %)\n\n{}",
            self.utilization * 100.0,
            self.digital_transistors,
            self.digital_quarters,
            self.analog_occupancy * 100.0,
            self.floorplan.report()
        )
    }
}

/// Splits an inventory entry into quarter-sized placeable chunks.
fn to_blocks(entry: &BlockInventory, utilization: f64, quarter_sites: u32) -> Vec<Block> {
    let block = Block::from_transistors(
        entry.name.clone(),
        entry.transistors,
        utilization,
        PowerDomain::Digital,
    );
    if block.sites <= quarter_sites {
        return vec![block];
    }
    let parts = block.sites.div_ceil(quarter_sites);
    let per_part = entry.transistors.div_ceil(parts);
    (0..parts)
        .map(|k| {
            let t = per_part.min(entry.transistors - k * per_part);
            Block::from_transistors(
                format!("{}_part{}", entry.name, k),
                t,
                utilization,
                PowerDomain::Digital,
            )
        })
        .collect()
}

/// Builds the full-chip floorplan at a given routing utilisation.
///
/// # Errors
///
/// Returns a [`PlaceBlockError`] if the design no longer fits the array
/// (it does at the default utilisation; lowering it far enough
/// reproduces the "array full" failure mode).
pub fn build_chip(utilization: f64) -> Result<ChipReport, PlaceBlockError> {
    let mut fp = Floorplan::fishbone();
    let quarter_sites = fp.array().quarters()[0].capacity_sites;
    let inventory = full_compass_inventory();
    let digital_transistors = inventory_total(&inventory);

    // Analogue first: it claims the last quarter, mirroring the paper's
    // fixed supply partition.
    for m in AnalogMacro::paper_analog_section() {
        fp.place(m.to_block())?;
    }
    for entry in &inventory {
        for block in to_blocks(entry, utilization, quarter_sites) {
            fp.place(block)?;
        }
    }
    let digital_quarters = fp.quarters_filled(PowerDomain::Digital);
    let analog_occupancy = fp.analog_quarter_occupancy();
    Ok(ChipReport {
        floorplan: fp,
        digital_transistors,
        digital_quarters,
        analog_occupancy,
        utilization,
    })
}

/// The default chip report at the standard utilisation.
///
/// # Errors
///
/// See [`build_chip`].
pub fn paper_chip() -> Result<ChipReport, PlaceBlockError> {
    build_chip(DEFAULT_UTILIZATION)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_fits_the_array() {
        let report = paper_chip().expect("the compass fits the fishbone array");
        // Paper shape: the digital section dominates by more than an
        // order of magnitude and spans multiple quarters; the analogue
        // section stays below 15 % of one quarter.
        assert!(
            report.digital_quarters > 1.5,
            "digital fills {:.2} quarters",
            report.digital_quarters
        );
        assert!(report.digital_quarters <= 3.0);
        assert!(
            report.analog_occupancy < 0.15,
            "analog occupancy {:.3}",
            report.analog_occupancy
        );
        assert!(report.analog_occupancy > 0.05);
    }

    #[test]
    fn digital_to_analog_ratio_matches_paper_shape() {
        let report = paper_chip().unwrap();
        // Paper: 3 full quarters vs < 0.15 of one → ratio ≥ 20.
        let ratio = report.digital_quarters / report.analog_occupancy;
        assert!(ratio > 10.0, "ratio {ratio}");
    }

    #[test]
    fn lower_utilization_needs_more_quarters() {
        let a = build_chip(0.30).unwrap();
        let b = build_chip(0.25).unwrap();
        assert!(b.digital_quarters > a.digital_quarters);
    }

    #[test]
    fn hopeless_utilization_fails_to_fit() {
        // At 5 % utilisation three quarters cannot hold the digital
        // section — the placer must say so rather than lie.
        let result = build_chip(0.05);
        assert!(result.is_err());
    }

    #[test]
    fn oversized_blocks_are_split() {
        let report = paper_chip().unwrap();
        let parts = report
            .floorplan
            .placements()
            .iter()
            .filter(|p| p.block.name.contains("_part"))
            .count();
        assert!(parts >= 2, "the CORDIC datapath should be partitioned");
    }

    #[test]
    fn render_mentions_key_figures() {
        let report = paper_chip().unwrap();
        let text = report.render();
        assert!(text.contains("quarters"));
        assert!(text.contains("analog"));
        assert!(text.contains("cordic"));
    }
}
