//! Property tests for the compass-level algorithms that don't need the
//! (expensive) transient pipeline.

use fluxcomp_compass::filter::{circular_mean, HeadingSmoother};
use fluxcomp_compass::mission::{Leg, Position};
use fluxcomp_compass::tilt::{body_field, tilt_compensated_heading, Attitude};
use fluxcomp_fluxgate::earth::EarthField;
use fluxcomp_units::{Degrees, Tesla};
use proptest::prelude::*;

proptest! {
    /// Tilt compensation exactly inverts the body rotation for any
    /// attitude and heading (up to angle wrap-around).
    #[test]
    fn tilt_compensation_inverts_rotation(
        heading in 0.0f64..360.0,
        pitch in -60.0f64..60.0,
        roll in -60.0f64..60.0,
        ut in 10.0f64..70.0,
        dip in -80.0f64..80.0,
    ) {
        let field = EarthField::with_magnitude(
            Tesla::from_microtesla(ut),
            Degrees::new(dip),
        );
        // Degenerate horizontal field (|dip|→90°) makes the heading
        // unobservable; keep a usable horizontal component.
        prop_assume!(field.horizontal_magnitude().as_microtesla() > 1.0);
        let att = Attitude::new(Degrees::new(pitch), Degrees::new(roll));
        let (bx, by, bz) = body_field(&field, Degrees::new(heading), att);
        let got = tilt_compensated_heading(bx, by, bz, att);
        prop_assert!(
            got.angular_distance(Degrees::new(heading)).value() < 1e-6,
            "({pitch},{roll}) at {heading}: {got}"
        );
    }

    /// The rotation preserves |B| for any attitude.
    #[test]
    fn body_rotation_is_an_isometry(
        heading in 0.0f64..360.0,
        pitch in -89.0f64..89.0,
        roll in -89.0f64..89.0,
    ) {
        let field = EarthField::with_magnitude(
            Tesla::from_microtesla(48.0),
            Degrees::new(60.0),
        );
        let att = Attitude::new(Degrees::new(pitch), Degrees::new(roll));
        let (bx, by, bz) = body_field(&field, Degrees::new(heading), att);
        let mag = (bx.value().powi(2) + by.value().powi(2) + bz.value().powi(2)).sqrt();
        prop_assert!((mag - field.total().value()).abs() < 1e-15 + 1e-9 * mag);
    }

    /// The circular mean of a tight cluster lies inside the cluster's
    /// angular span.
    #[test]
    fn circular_mean_inside_cluster(center in 0.0f64..360.0, spread in 0.1f64..30.0, n in 2usize..20) {
        let headings: Vec<Degrees> = (0..n)
            .map(|k| {
                let frac = k as f64 / (n - 1).max(1) as f64 - 0.5;
                Degrees::new(center + spread * frac)
            })
            .collect();
        let mean = circular_mean(&headings).expect("non-degenerate");
        prop_assert!(
            mean.angular_distance(Degrees::new(center)).value() <= spread / 2.0 + 1e-6,
            "mean {mean} outside ±{}", spread / 2.0
        );
    }

    /// The smoother is a contraction toward a constant input from any
    /// start.
    #[test]
    fn smoother_contracts(start in 0.0f64..360.0, target in 0.0f64..360.0, alpha_pct in 5u32..100) {
        let mut f = HeadingSmoother::new(alpha_pct as f64 / 100.0);
        f.update(Degrees::new(start));
        let mut prev = f.current().unwrap().angular_distance(Degrees::new(target)).value();
        // Opposed vectors can cancel exactly; skip the measure-zero case.
        prop_assume!((prev - 180.0).abs() > 1.0);
        // Enough steps for the slowest alpha to converge: the state
        // vector approaches the target as (1-alpha)^n along the chord.
        let steps = ((1e-4f64).ln() / (1.0 - alpha_pct as f64 / 100.0).ln()).ceil() as usize + 10;
        for _ in 0..steps {
            let out = f.update(Degrees::new(target));
            let dist = out.angular_distance(Degrees::new(target)).value();
            prop_assert!(dist <= prev + 1e-9, "{dist} > {prev}");
            prev = dist;
        }
        prop_assert!(prev < 1.0, "should converge: {prev}");
    }

    /// Walking out and exactly back returns to the start.
    #[test]
    fn out_and_back_closes(heading in 0.0f64..360.0, dist in 1.0f64..10_000.0) {
        let there = Leg::new(Degrees::new(heading), dist);
        let back = Leg::new(Degrees::new(heading + 180.0), dist);
        let mut p = Position::default();
        for leg in [there, back] {
            p = Position {
                north: p.north + leg.distance * leg.heading.cos(),
                east: p.east + leg.distance * leg.heading.sin(),
            };
        }
        prop_assert!(p.distance_to(&Position::default()) < 1e-6 * dist.max(1.0));
    }
}
