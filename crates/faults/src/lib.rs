//! # fluxcomp-faults
//!
//! Seeded, deterministic fault injection for the compass stack.
//!
//! The paper's smart-sensor argument (§5–6) leans on built-in
//! testability: a sensor system must keep working — visibly degraded,
//! never silently wrong — when a pickup coil opens, a comparator
//! sticks, or a core drifts. This crate provides the *injection* side
//! of that story: a [`FaultPlan`] describes which physical faults can
//! strike and how often, and [`FaultPlan::compile`] turns the plan into
//! the concrete per-fix, per-axis [`FixFaults`] effects the analogue
//! front-end applies while measuring.
//!
//! ## Determinism contract
//!
//! Whether a fault strikes a given fix is a **pure function** of
//! `(plan seed, fix seed, axis, spec index)`, drawn through
//! [`fluxcomp_exec::derive_seed`] + [`fluxcomp_exec::unit_f64`]. No
//! global RNG, no call-order dependence: the same request produces the
//! same faults on any worker, under any thread count, in any
//! interleaving — which is what lets the determinism suite assert
//! bit-identical faulted runs at `workers = 1` and `workers = N`.
//!
//! A zero-fault plan ([`FaultPlan::none`], or any plan whose rates are
//! all zero) compiles to [`FixFaults::none`] for every fix, and the
//! front-end's faulted entry point delegates to the plain fast path in
//! that case — the no-fault bitstream is untouched *by construction*,
//! not merely by tolerance.
//!
//! ## Fault taxonomy
//!
//! | fault | physics | observable signature |
//! |---|---|---|
//! | [`FaultKind::OpenPickup`] | pickup coil open / detached: EMF collapses to leakage level | detector never fires → duty ≈ 0, implausible |
//! | [`FaultKind::StuckComparator`] | comparator output welded high or low | duty pinned at 0 or 1, count inconsistent |
//! | [`FaultKind::HkDriftRamp`] | anisotropy-field drift (thermal ramp) adds a growing field offset | duty offset beyond the earth-field band |
//! | [`FaultKind::ExcitationDropout`] | excitation drive drops out for part of the window | missing pulse edges, duty/count mismatch |
//! | [`FaultKind::NoiseBurst`] | EMI burst adds noise during part of the window | jittered edges, count-vs-duty residual |
//!
//! ## Environment grammar
//!
//! Plans can come from `FLUXCOMP_FAULT_PLAN` (see [`FaultPlan::from_env`]):
//!
//! ```text
//! seed=19;open_pickup@y:0.3;stuck@x=low:0.1;hk_ramp@both=8.0:0.05;
//! dropout@x=0.2..0.6:0.1;burst@y=0.005,0.1..0.9:0.2
//! ```
//!
//! Entries are `;`-separated. `seed=N` sets the plan seed (default
//! `0xFA0175`); every other entry is `name@axis[=params]:rate` where
//! `axis` is `x`, `y` or `both` and `rate` is the per-fix activation
//! probability in `[0, 1]`.

use fluxcomp_exec::{derive_seed, unit_f64};
use std::error::Error;
use std::fmt;

/// Default plan seed when `FLUXCOMP_FAULT_PLAN` does not set one.
pub const DEFAULT_PLAN_SEED: u64 = 0xFA_0175;

/// Residual pickup gain of an open coil: the EMF does not vanish
/// exactly (capacitive leakage across the break) but collapses six
/// orders of magnitude, far below any comparator threshold.
pub const OPEN_PICKUP_GAIN: f64 = 1e-6;

/// Which sensor axes a [`FaultSpec`] can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisSel {
    /// The X (cosine) axis only.
    X,
    /// The Y (sine) axis only.
    Y,
    /// Either axis, drawn independently per axis.
    Both,
}

impl AxisSel {
    /// Does this selector cover axis `axis_index` (0 = X, 1 = Y)?
    #[must_use]
    pub fn applies_to(self, axis_index: u32) -> bool {
        match self {
            AxisSel::X => axis_index == 0,
            AxisSel::Y => axis_index == 1,
            AxisSel::Both => true,
        }
    }
}

/// One physical fault mode (see the crate-level taxonomy table).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Pickup coil open: EMF scaled by [`OPEN_PICKUP_GAIN`].
    OpenPickup,
    /// Comparator output welded to `output` for the whole window.
    StuckComparator {
        /// The welded level (`true` = stuck high).
        output: bool,
    },
    /// Anisotropy-field drift: a field offset ramping linearly from
    /// zero to `h_end` A/m across the measurement window.
    HkDriftRamp {
        /// Offset reached at the end of the window, in A/m.
        h_end: f64,
    },
    /// Excitation drive drops out over `[from, until)` (fractions of
    /// the full settle+measure window).
    ExcitationDropout {
        /// Window fraction where the dropout starts.
        from: f64,
        /// Window fraction where the drive returns.
        until: f64,
    },
    /// Additional Gaussian noise of `rms` volts over `[from, until)`.
    NoiseBurst {
        /// RMS of the burst, in volts at the pickup.
        rms: f64,
        /// Window fraction where the burst starts.
        from: f64,
        /// Window fraction where the burst ends.
        until: f64,
    },
}

/// One entry of a [`FaultPlan`]: a fault mode, the axes it can strike,
/// and its per-fix activation probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// The fault mode.
    pub kind: FaultKind,
    /// Which axes the fault can strike.
    pub axis: AxisSel,
    /// Per-fix activation probability in `[0, 1]`.
    pub rate: f64,
}

/// A seeded set of [`FaultSpec`]s; the deterministic source of every
/// injected fault in the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// The canonical zero-fault plan.
    #[must_use]
    pub fn none() -> Self {
        Self::new(DEFAULT_PLAN_SEED)
    }

    /// Builder: adds a spec.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// True when the plan can never inject anything (no specs, or all
    /// rates zero).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.specs.iter().all(|s| s.rate <= 0.0)
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The specs, in activation-draw order.
    #[must_use]
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Compiles the plan into the concrete effects striking one axis of
    /// one fix.
    ///
    /// `axis_index` is 0 for X, 1 for Y; `fix_seed` is the fix's noise
    /// seed. The activation draw for spec `i` is
    /// `unit_f64(derive_seed(derive_seed(plan_seed, fix_seed), axis << 32 | i))`,
    /// so the result is a pure function of those four values — see the
    /// crate-level determinism contract.
    #[must_use]
    pub fn compile(&self, axis_index: u32, fix_seed: u64) -> FixFaults {
        let mut out = FixFaults::none();
        if self.specs.is_empty() {
            return out;
        }
        let stream = derive_seed(self.seed, fix_seed);
        for (i, spec) in self.specs.iter().enumerate() {
            if !spec.axis.applies_to(axis_index) {
                continue;
            }
            let draw = derive_seed(stream, (u64::from(axis_index) << 32) | i as u64);
            if unit_f64(draw) >= spec.rate {
                continue;
            }
            out.injected += 1;
            fluxcomp_obs::counter_add("faults.injected", 1);
            match spec.kind {
                FaultKind::OpenPickup => {
                    out.pickup_gain = OPEN_PICKUP_GAIN;
                    fluxcomp_obs::counter_add("faults.open_pickup", 1);
                }
                FaultKind::StuckComparator { output } => {
                    out.stuck_output = Some(output);
                    fluxcomp_obs::counter_add("faults.stuck_comparator", 1);
                }
                FaultKind::HkDriftRamp { h_end } => {
                    out.hk_ramp += h_end;
                    fluxcomp_obs::counter_add("faults.hk_ramp", 1);
                }
                FaultKind::ExcitationDropout { from, until } => {
                    out.dropout = Some((from, until));
                    fluxcomp_obs::counter_add("faults.dropout", 1);
                }
                FaultKind::NoiseBurst { rms, from, until } => {
                    out.burst = Some(BurstFault {
                        rms,
                        from,
                        until,
                        // A fresh stream per strike: the burst noise must
                        // not correlate with the activation draw or the
                        // fix's main noise stream.
                        seed: derive_seed(draw, 0x4E42_5253),
                    });
                    fluxcomp_obs::counter_add("faults.noise_burst", 1);
                }
            }
        }
        out
    }

    /// Parses the `FLUXCOMP_FAULT_PLAN` grammar (crate-level docs).
    pub fn parse(text: &str) -> Result<Self, FaultPlanError> {
        let mut plan = Self::new(DEFAULT_PLAN_SEED);
        let mut saw_entry = false;
        for raw in text.split(';') {
            let entry = raw.trim();
            if entry.is_empty() {
                continue;
            }
            saw_entry = true;
            if let Some(seed_text) = entry.strip_prefix("seed=") {
                plan.seed = parse_seed(seed_text.trim())?;
                continue;
            }
            plan.specs.push(parse_spec(entry)?);
        }
        if !saw_entry {
            return Err(FaultPlanError::Empty);
        }
        Ok(plan)
    }

    /// Reads `FLUXCOMP_FAULT_PLAN` from the environment.
    ///
    /// `Ok(None)` when unset or blank; `Err` when set but malformed —
    /// callers decide whether a bad plan is fatal.
    pub fn from_env() -> Result<Option<Self>, FaultPlanError> {
        match std::env::var("FLUXCOMP_FAULT_PLAN") {
            Ok(text) if !text.trim().is_empty() => Self::parse(&text).map(Some),
            _ => Ok(None),
        }
    }
}

/// A noise burst compiled for one fix: effect parameters plus the
/// derived seed of its dedicated noise stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstFault {
    /// RMS of the burst in volts at the pickup.
    pub rms: f64,
    /// Window fraction where the burst starts.
    pub from: f64,
    /// Window fraction where the burst ends.
    pub until: f64,
    /// Seed of the burst's own Gaussian stream.
    pub seed: u64,
}

/// The concrete fault effects striking one axis of one fix — what
/// [`FaultPlan::compile`] produces and the analogue front-end consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixFaults {
    /// Multiplier on the pickup EMF (1.0 nominal, [`OPEN_PICKUP_GAIN`]
    /// for an open coil).
    pub pickup_gain: f64,
    /// Comparator output welded to this level when `Some`.
    pub stuck_output: Option<bool>,
    /// Excitation dropout window `[from, until)` in window fractions.
    pub dropout: Option<(f64, f64)>,
    /// Field offset (A/m) reached at the end of the window, applied as
    /// a linear ramp from zero.
    pub hk_ramp: f64,
    /// Additional burst noise.
    pub burst: Option<BurstFault>,
    /// How many specs struck (0 ⇒ [`FixFaults::is_none`]).
    pub injected: u32,
}

impl FixFaults {
    /// No faults: the front-end takes the untouched fast path.
    #[must_use]
    pub fn none() -> Self {
        Self {
            pickup_gain: 1.0,
            stuck_output: None,
            dropout: None,
            hk_ramp: 0.0,
            burst: None,
            injected: 0,
        }
    }

    /// True when nothing struck.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.injected == 0
    }
}

impl Default for FixFaults {
    fn default() -> Self {
        Self::none()
    }
}

/// Typed parse error for the `FLUXCOMP_FAULT_PLAN` grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultPlanError {
    /// The plan text contained no entries.
    Empty,
    /// `seed=` value was not a u64 (decimal or `0x…` hex).
    BadSeed(String),
    /// Unrecognised fault name.
    UnknownFault(String),
    /// Axis was not `x`, `y` or `both`.
    BadAxis(String),
    /// Rate missing, unparsable, or outside `[0, 1]`.
    BadRate(String),
    /// Fault parameters missing or malformed.
    BadParams {
        /// Which fault the bad parameters belong to.
        fault: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Empty => write!(f, "fault plan is empty"),
            FaultPlanError::BadSeed(s) => write!(f, "bad plan seed {s:?}"),
            FaultPlanError::UnknownFault(s) => write!(f, "unknown fault {s:?}"),
            FaultPlanError::BadAxis(s) => write!(f, "bad axis {s:?} (want x, y or both)"),
            FaultPlanError::BadRate(s) => write!(f, "bad rate {s:?} (want a float in [0, 1])"),
            FaultPlanError::BadParams { fault, detail } => {
                write!(f, "bad parameters for {fault}: {detail}")
            }
        }
    }
}

impl Error for FaultPlanError {}

fn parse_seed(text: &str) -> Result<u64, FaultPlanError> {
    let parsed = if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        text.parse()
    };
    parsed.map_err(|_| FaultPlanError::BadSeed(text.to_string()))
}

fn parse_spec(entry: &str) -> Result<FaultSpec, FaultPlanError> {
    // name@axis[=params]:rate — split the rate off the *last* ':' so
    // future params may contain colons.
    let (head, rate_text) = entry
        .rsplit_once(':')
        .ok_or_else(|| FaultPlanError::BadRate(entry.to_string()))?;
    let rate: f64 = rate_text
        .trim()
        .parse()
        .map_err(|_| FaultPlanError::BadRate(rate_text.to_string()))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(FaultPlanError::BadRate(rate_text.to_string()));
    }
    let (name_axis, params) = match head.split_once('=') {
        Some((na, p)) => (na.trim(), Some(p.trim())),
        None => (head.trim(), None),
    };
    let (name, axis_text) = name_axis
        .split_once('@')
        .ok_or_else(|| FaultPlanError::UnknownFault(name_axis.to_string()))?;
    let axis = match axis_text.trim() {
        "x" => AxisSel::X,
        "y" => AxisSel::Y,
        "both" => AxisSel::Both,
        other => return Err(FaultPlanError::BadAxis(other.to_string())),
    };
    let kind = parse_kind(name.trim(), params)?;
    Ok(FaultSpec { kind, axis, rate })
}

fn parse_kind(name: &str, params: Option<&str>) -> Result<FaultKind, FaultPlanError> {
    let bad = |fault: &'static str, detail: &str| FaultPlanError::BadParams {
        fault,
        detail: detail.to_string(),
    };
    match name {
        "open_pickup" => match params {
            None => Ok(FaultKind::OpenPickup),
            Some(p) => Err(bad(
                "open_pickup",
                &format!("takes no parameters, got {p:?}"),
            )),
        },
        "stuck" => match params {
            Some("high") => Ok(FaultKind::StuckComparator { output: true }),
            Some("low") => Ok(FaultKind::StuckComparator { output: false }),
            other => Err(bad("stuck", &format!("want high|low, got {other:?}"))),
        },
        "hk_ramp" => {
            let text = params.ok_or_else(|| bad("hk_ramp", "missing H offset in A/m"))?;
            let h_end: f64 = text
                .parse()
                .map_err(|_| bad("hk_ramp", &format!("bad H offset {text:?}")))?;
            if !h_end.is_finite() {
                return Err(bad("hk_ramp", "H offset must be finite"));
            }
            Ok(FaultKind::HkDriftRamp { h_end })
        }
        "dropout" => {
            let text = params.ok_or_else(|| bad("dropout", "missing FROM..UNTIL window"))?;
            let (from, until) = parse_window("dropout", text)?;
            Ok(FaultKind::ExcitationDropout { from, until })
        }
        "burst" => {
            let text = params.ok_or_else(|| bad("burst", "missing RMS,FROM..UNTIL"))?;
            let (rms_text, window) = text
                .split_once(',')
                .ok_or_else(|| bad("burst", &format!("want RMS,FROM..UNTIL, got {text:?}")))?;
            let rms: f64 = rms_text
                .trim()
                .parse()
                .map_err(|_| bad("burst", &format!("bad RMS {rms_text:?}")))?;
            if !rms.is_finite() || rms < 0.0 {
                return Err(bad("burst", "RMS must be finite and non-negative"));
            }
            let (from, until) = parse_window("burst", window)?;
            Ok(FaultKind::NoiseBurst { rms, from, until })
        }
        other => Err(FaultPlanError::UnknownFault(other.to_string())),
    }
}

fn parse_window(fault: &'static str, text: &str) -> Result<(f64, f64), FaultPlanError> {
    let bad = |detail: String| FaultPlanError::BadParams { fault, detail };
    let (a, b) = text
        .split_once("..")
        .ok_or_else(|| bad(format!("want FROM..UNTIL, got {text:?}")))?;
    let from: f64 = a
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad window start {a:?}")))?;
    let until: f64 = b
        .trim()
        .parse()
        .map_err(|_| bad(format!("bad window end {b:?}")))?;
    if !(0.0..=1.0).contains(&from) || !(0.0..=1.0).contains(&until) || from >= until {
        return Err(bad(format!(
            "window must satisfy 0 <= from < until <= 1, got {from}..{until}"
        )));
    }
    Ok((from, until))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open_y(rate: f64) -> FaultSpec {
        FaultSpec {
            kind: FaultKind::OpenPickup,
            axis: AxisSel::Y,
            rate,
        }
    }

    #[test]
    fn zero_plan_compiles_to_no_faults_for_any_fix() {
        let plan = FaultPlan::none();
        assert!(plan.is_zero());
        for seed in 0..100u64 {
            assert!(plan.compile(0, seed).is_none());
            assert!(plan.compile(1, seed).is_none());
        }
        // Rate-zero specs are also a zero plan.
        let plan = FaultPlan::new(1).with(open_y(0.0));
        assert!(plan.is_zero());
        for seed in 0..100u64 {
            assert!(plan.compile(1, seed).is_none());
        }
    }

    #[test]
    fn compile_is_deterministic_and_axis_scoped() {
        let plan = FaultPlan::new(7).with(open_y(0.5));
        for seed in 0..200u64 {
            let x = plan.compile(0, seed);
            let y = plan.compile(1, seed);
            // Y-only spec never strikes X.
            assert!(x.is_none(), "X struck at seed {seed}");
            // Recompiling gives the identical effect set.
            assert_eq!(y, plan.compile(1, seed));
        }
    }

    #[test]
    fn activation_rate_is_respected_statistically() {
        let plan = FaultPlan::new(99).with(open_y(0.3));
        let strikes = (0..10_000u64)
            .filter(|&s| !plan.compile(1, s).is_none())
            .count();
        let rate = strikes as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn rate_one_always_strikes_and_stacks_effects() {
        let plan = FaultPlan::new(3)
            .with(FaultSpec {
                kind: FaultKind::StuckComparator { output: false },
                axis: AxisSel::Both,
                rate: 1.0,
            })
            .with(FaultSpec {
                kind: FaultKind::HkDriftRamp { h_end: 5.0 },
                axis: AxisSel::Both,
                rate: 1.0,
            });
        let f = plan.compile(0, 42);
        assert_eq!(f.injected, 2);
        assert_eq!(f.stuck_output, Some(false));
        assert_eq!(f.hk_ramp, 5.0);
        assert_eq!(f.pickup_gain, 1.0);
    }

    #[test]
    fn burst_seed_differs_from_activation_stream_and_per_fix() {
        let plan = FaultPlan::new(11).with(FaultSpec {
            kind: FaultKind::NoiseBurst {
                rms: 1e-3,
                from: 0.1,
                until: 0.9,
            },
            axis: AxisSel::Both,
            rate: 1.0,
        });
        let a = plan.compile(0, 1).burst.unwrap();
        let b = plan.compile(0, 2).burst.unwrap();
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn parse_full_grammar_round_trips() {
        let plan = FaultPlan::parse(
            "seed=0x13;open_pickup@y:0.3;stuck@x=low:0.1;hk_ramp@both=8.0:0.05;\
             dropout@x=0.2..0.6:0.1;burst@y=0.005,0.1..0.9:0.2",
        )
        .unwrap();
        assert_eq!(plan.seed(), 0x13);
        assert_eq!(plan.specs().len(), 5);
        assert_eq!(plan.specs()[0], open_y(0.3));
        assert_eq!(
            plan.specs()[4].kind,
            FaultKind::NoiseBurst {
                rms: 0.005,
                from: 0.1,
                until: 0.9
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_plans_with_typed_errors() {
        use FaultPlanError as E;
        assert_eq!(FaultPlan::parse(""), Err(E::Empty));
        assert_eq!(FaultPlan::parse("  ; ;"), Err(E::Empty));
        assert!(matches!(FaultPlan::parse("seed=zz"), Err(E::BadSeed(_))));
        assert!(matches!(
            FaultPlan::parse("melted@x:0.5"),
            Err(E::UnknownFault(_))
        ));
        assert!(matches!(
            FaultPlan::parse("open_pickup@z:0.5"),
            Err(E::BadAxis(_))
        ));
        assert!(matches!(
            FaultPlan::parse("open_pickup@x:1.5"),
            Err(E::BadRate(_))
        ));
        assert!(matches!(
            FaultPlan::parse("open_pickup@x:NaN"),
            Err(E::BadRate(_))
        ));
        assert!(matches!(
            FaultPlan::parse("open_pickup@x"),
            Err(E::BadRate(_))
        ));
        assert!(matches!(
            FaultPlan::parse("stuck@x=sideways:0.5"),
            Err(E::BadParams { fault: "stuck", .. })
        ));
        assert!(matches!(
            FaultPlan::parse("dropout@x=0.6..0.2:0.5"),
            Err(E::BadParams {
                fault: "dropout",
                ..
            })
        ));
        assert!(matches!(
            FaultPlan::parse("burst@y=0.005:0.5"),
            Err(E::BadParams { fault: "burst", .. })
        ));
    }

    #[test]
    fn from_env_is_none_when_unset() {
        // The test harness does not set FLUXCOMP_FAULT_PLAN; avoid
        // mutating process env (other tests run in parallel).
        if std::env::var("FLUXCOMP_FAULT_PLAN").is_err() {
            assert_eq!(FaultPlan::from_env(), Ok(None));
        }
    }
}
