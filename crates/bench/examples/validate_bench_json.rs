//! Validates benchmark artefacts (`BENCH_sweep.json`, `BENCH_serve.json`)
//! against the flat schema `write_bench_json` promises: one JSON object,
//! an `experiment` string, and otherwise only finite numeric fields.
//!
//! ```text
//! cargo run -p fluxcomp-bench --example validate_bench_json -- \
//!     BENCH_sweep.json BENCH_serve.json
//! ```
//!
//! Exits nonzero on the first violation, naming the file and field. An
//! optional `expect=NAME` argument after a file path pins the expected
//! experiment id (`BENCH_serve.json expect=e12_serve`).

use fluxcomp_obs::json::{parse, Value};
use std::process::ExitCode;

fn validate(path: &str, expect_experiment: Option<&str>) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let trimmed = text.trim();
    let value = parse(trimmed).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let Value::Object(fields) = &value else {
        return Err(format!("{path}: top level must be an object"));
    };
    let experiment = value
        .get("experiment")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{path}: missing string field \"experiment\""))?;
    if let Some(expected) = expect_experiment {
        if experiment != expected {
            return Err(format!(
                "{path}: experiment is {experiment:?}, expected {expected:?}"
            ));
        }
    }
    let mut numeric = 0;
    for (name, field) in fields {
        if name == "experiment" {
            continue;
        }
        match field {
            // The strict parser already rejects non-finite numbers, but
            // say so explicitly: a `null` here is what a NaN/∞ would
            // have become, and the writer promises it never emits one.
            Value::Number(n) if n.is_finite() => numeric += 1,
            other => {
                return Err(format!(
                    "{path}: field {name:?} must be a finite number, got {other:?}"
                ))
            }
        }
    }
    if numeric == 0 {
        return Err(format!("{path}: no numeric fields recorded"));
    }
    Ok(numeric)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: validate_bench_json FILE [expect=EXPERIMENT] [FILE ...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    let mut i = 0;
    while i < args.len() {
        let path = &args[i];
        let expect = args
            .get(i + 1)
            .and_then(|a| a.strip_prefix("expect="))
            .map(str::to_owned);
        if expect.is_some() {
            i += 1;
        }
        i += 1;
        match validate(path, expect.as_deref()) {
            Ok(numeric) => println!("{path}: ok ({numeric} numeric fields)"),
            Err(message) => {
                eprintln!("{message}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
