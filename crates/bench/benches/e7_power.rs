//! E7 — claim C11: power reduction by multiplexing, enable gating and
//! supply scaling.
//!
//! Regenerates the power table: multiplexed vs simultaneous excitation
//! (the "momentary power" argument), always-on vs duty-cycled
//! measurement, and the 5 V → 3.5 V supply scaling the paper says is
//! possible. Times the cost of a power query (trivially fast — the
//! bench is dominated by the table regeneration above it).

use criterion::{criterion_group, Criterion};
use fluxcomp_afe::power::{PowerModel, Schedule};
use fluxcomp_bench::banner;
use fluxcomp_compass::energy::{battery_life_days, Battery, UsageProfile};
use fluxcomp_compass::{Compass, CompassConfig};
use fluxcomp_sog::power_grid::{isolation_report, SupplySpine};
use fluxcomp_units::si::Ampere;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E7",
        "power: multiplexing, enable gating, supply scaling",
        "§2/§4, claim C11",
    );

    let p5 = PowerModel::at_5v();
    let p35 = PowerModel::at_3v5();
    let mux = Schedule::paper_multiplexed();
    let sim = Schedule::simultaneous();

    eprintln!("  momentary power while measuring:");
    eprintln!(
        "    multiplexed (paper):   {:.2} mW",
        p5.momentary_power(&mux).value() * 1e3
    );
    eprintln!(
        "    both sensors at once:  {:.2} mW  ({:.2}x)",
        p5.momentary_power(&sim).value() * 1e3,
        p5.momentary_power(&sim).value() / p5.momentary_power(&mux).value()
    );

    let compass = Compass::new(CompassConfig::paper_design()).expect("valid");
    let fix_duty = compass.sequencer().analog_duty_per_fix(8_000.0);
    eprintln!("\n  average power (one fix per second, measurement duty {fix_duty:.4}):");
    eprintln!(
        "    always measuring:      {:.3} mW",
        p5.average_power(&mux).value() * 1e3
    );
    eprintln!(
        "    duty-cycled enables:   {:.4} mW  ({:.0}x less)",
        p5.average_power(&Schedule::duty_cycled(fix_duty)).value() * 1e3,
        p5.average_power(&mux).value() / p5.average_power(&Schedule::duty_cycled(fix_duty)).value()
    );

    eprintln!("\n  supply scaling (continuous measurement):");
    eprintln!("    5.0 V: {:.3} mW", p5.average_power(&mux).value() * 1e3);
    eprintln!(
        "    3.5 V: {:.3} mW  ({:.0} % saving)",
        p35.average_power(&mux).value() * 1e3,
        (1.0 - p35.average_power(&mux).value() / p5.average_power(&mux).value()) * 100.0
    );

    eprintln!("\n  why separate supply quarters (the §2 floorplan decision):");
    let spine = SupplySpine::fishbone_quarter();
    let report = isolation_report(&spine, Ampere::new(2e-3), Ampere::new(150e-6));
    eprintln!(
        "    digital rail droop:         {:.2} mV (own quarter)",
        report.digital_droop.value() * 1e3
    );
    eprintln!(
        "    analogue rail, separate:    {:.3} mV",
        report.analog_droop_separate.value() * 1e3
    );
    eprintln!(
        "    analogue rail, if shared:   {:.2} mV  ({:.0}x worse — vs a 20 mV",
        report.analog_droop_shared.value() * 1e3,
        report.isolation_factor()
    );
    eprintln!("    comparator threshold, that is the difference between margin and none)");

    eprintln!("\n  battery life (CR2025, 1728 J):");
    eprintln!(
        "    hiker profile (1000 fixes/day, gated): {:.0} days",
        battery_life_days(&p5, &UsageProfile::hiker(), &Battery::cr2025())
    );
    eprintln!(
        "    continuous (1 fix/s, gated):           {:.0} days",
        battery_life_days(&p5, &UsageProfile::continuous(), &Battery::cr2025())
    );
    eprintln!(
        "    no gating at all:                      {:.1} days",
        Battery::cr2025().energy_joules() / p5.average_power(&mux).value() / 86_400.0
    );
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e7_power");
    let pm = PowerModel::at_5v();
    let schedule = Schedule::paper_multiplexed();
    group.bench_function("average_power_query", |b| {
        b.iter(|| black_box(pm.average_power(black_box(&schedule))))
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
