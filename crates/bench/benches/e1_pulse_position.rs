//! E1 — Fig. 3: the pulse-position principle.
//!
//! Regenerates the figure's content as a duty-cycle-vs-field series
//! (the time shift of the pickup pulses is exactly the duty shift of the
//! detector output), demonstrates the predicted linear law
//! `duty = 1/2 − H/(2·H_peak)`, runs the comparator-hysteresis ablation
//! under noise, and times the detector and the front-end transient.

use criterion::{criterion_group, Criterion};
use fluxcomp_afe::detector::{DetectorConfig, PulsePositionDetector};
use fluxcomp_afe::frontend::{FrontEnd, FrontEndConfig};
use fluxcomp_bench::{banner, microtesla_to_h};
use fluxcomp_units::si::Volt;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E1",
        "pulse-position principle: duty cycle vs external field",
        "Fig. 3 / claim C2",
    );
    let fe = FrontEnd::new(FrontEndConfig::paper_design()).expect("valid config");
    let h_peak = fe.peak_excitation_field().value();
    eprintln!("  H_peak = {h_peak:.1} A/m; prediction: duty = 1/2 - H/(2*H_peak)");
    eprintln!(
        "  {:>8} {:>10} {:>12} {:>12}",
        "B [µT]", "H [A/m]", "duty", "predicted"
    );
    for ut in [-40.0, -25.0, -15.0, -5.0, 0.0, 5.0, 15.0, 25.0, 40.0] {
        let h = microtesla_to_h(ut);
        let duty = fe.measure(h).duty;
        let predicted = 0.5 - h.value() / (2.0 * h_peak);
        eprintln!(
            "  {ut:>8.1} {:>10.3} {duty:>12.5} {predicted:>12.5}",
            h.value()
        );
    }

    eprintln!("\n  ablation: comparator hysteresis under 2 mV RMS pickup noise");
    eprintln!("  {:>12} {:>14}", "hyst [mV]", "|field err| [%]");
    let h = microtesla_to_h(20.0);
    for hyst_mv in [1.0, 4.0, 8.0, 16.0, 24.0] {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.pickup_noise_rms = 2e-3;
        cfg.detector.hysteresis = Volt::new(hyst_mv * 1e-3);
        cfg.measure_periods = 8;
        let fe = FrontEnd::new(cfg).expect("valid config");
        let est = fe.measure(h).field_estimate(fe.peak_excitation_field());
        let err = (est.value() - h.value()).abs() / h.value() * 100.0;
        eprintln!("  {hyst_mv:>12.1} {err:>14.2}");
    }
    eprintln!("  -> the danger zone is hysteresis ≈ 2σ of the noise (here 4 mV):");
    eprintln!("     the comparator chatters inside the pulse and releases the");
    eprintln!("     latch early. A detector design sizes hysteresis ≥ 8σ.");
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e1_pulse_position");
    group.sample_size(20);

    // The detector state machine alone, on a synthetic pulse train.
    let wave: Vec<Volt> = (0..4096)
        .map(|k| {
            let t = k as f64 / 4096.0;
            let g = |c: f64| (-((t - c) / 0.02f64).powi(2)).exp();
            Volt::new(0.058 * (g(0.75) - g(0.25)))
        })
        .collect();
    group.bench_function("detector_one_period_4096_samples", |b| {
        b.iter(|| {
            let mut det = PulsePositionDetector::new(DetectorConfig::paper_design());
            let mut high = 0u32;
            for &v in &wave {
                high += det.step(black_box(v)) as u32;
            }
            black_box(high)
        })
    });

    // The full front-end transient (5 periods × 4096 samples), traced
    // tier vs the duty-only fast path (e11 covers the system level).
    let fe = FrontEnd::new(FrontEndConfig::paper_design()).expect("valid config");
    let h = microtesla_to_h(15.0);
    group.bench_function("frontend_transient_5_periods", |b| {
        b.iter(|| black_box(fe.run(black_box(h)).duty))
    });
    group.bench_function("frontend_measure_5_periods", |b| {
        b.iter(|| black_box(fe.measure(black_box(h)).duty))
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
