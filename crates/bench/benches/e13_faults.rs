//! E13 — fault injection and graceful degradation.
//!
//! Three determinism/robustness gates, then a fix-quality mix under a
//! live faulty server, all recorded to `BENCH_faults.json`:
//!
//! 1. **Zero-fault transparency** — an empty `FaultPlan` through the
//!    faulted entry points reproduces the clean fast path bit for bit.
//! 2. **Seeded fault determinism** — faulted fixes are a pure function
//!    of the fix seed: reordering the workload moves nothing.
//! 3. **Degradation bounds** — with an open X pickup, `Good` fixes stay
//!    inside the paper's 1° spec, `Degraded` single-axis fallbacks stay
//!    bounded, and large-error fixes are never flagged `Good`.
//! 4. **Served quality mix** — an in-process fix server under a 25%
//!    open-pickup plan still answers ≥ 99% of fixes non-`Invalid`.
//!
//! The criterion group times the fault tax: a faulted measurement
//! against the clean fast path, and plan compilation alone.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::{banner, write_bench_json};
use fluxcomp_compass::{CompassConfig, CompassDesign, DegradedTracker, FixQuality, MeasureScratch};
use fluxcomp_exec::derive_seed;
use fluxcomp_faults::{AxisSel, FaultKind, FaultPlan, FaultSpec};
use fluxcomp_serve::{loadgen, FixServer, LoadGenConfig, ServeConfig};
use fluxcomp_units::Degrees;
use std::hint::black_box;

fn noisy_design() -> CompassDesign {
    let mut cfg = CompassConfig::paper_design();
    cfg.frontend.pickup_noise_rms = 2e-3;
    CompassDesign::new(cfg).expect("valid design")
}

fn angular_error(heading: f64, truth: f64) -> f64 {
    let d = (heading - truth).abs() % 360.0;
    d.min(360.0 - d)
}

/// Gate 1: the zero-fault plan moves no bits.
fn gate_zero_plan_transparent(design: &CompassDesign) -> bool {
    let plan = FaultPlan::none();
    let mut clean_scratch = MeasureScratch::for_design(design);
    let mut fault_scratch = MeasureScratch::for_design(design);
    (0..24u64).all(|k| {
        let truth = Degrees::new(k as f64 * 15.0);
        let seed = derive_seed(0xE13, k);
        let clean = design.measure_heading_scratch(truth, seed, &mut clean_scratch);
        let faulted =
            design.measure_heading_scratch_faulted(truth, seed, &mut fault_scratch, &plan);
        clean.heading.value().to_bits() == faulted.heading.value().to_bits()
            && clean.x.count == faulted.x.count
            && clean.y.count == faulted.y.count
            && clean.x.duty.to_bits() == faulted.x.duty.to_bits()
            && clean.y.duty.to_bits() == faulted.y.duty.to_bits()
    })
}

/// Gate 2: faulted fixes are order-independent (pure in the fix seed).
fn gate_faulted_deterministic(design: &CompassDesign, plan: &FaultPlan) -> bool {
    let fixes = 24u64;
    let truth_of = |k: u64| Degrees::new(k as f64 * 15.0);
    let seed_of = |k: u64| derive_seed(0xD0_0E13, k);
    let mut forward_scratch = MeasureScratch::for_design(design);
    let forward: Vec<_> = (0..fixes)
        .map(|k| {
            design.measure_heading_scratch_faulted(
                truth_of(k),
                seed_of(k),
                &mut forward_scratch,
                plan,
            )
        })
        .collect();
    let mut reverse_scratch = MeasureScratch::for_design(design);
    let mut reverse: Vec<_> = (0..fixes)
        .rev()
        .map(|k| {
            design.measure_heading_scratch_faulted(
                truth_of(k),
                seed_of(k),
                &mut reverse_scratch,
                plan,
            )
        })
        .collect();
    reverse.reverse();
    forward.iter().zip(reverse.iter()).all(|(a, b)| {
        a.heading.value().to_bits() == b.heading.value().to_bits()
            && a.x.count == b.x.count
            && a.y.count == b.y.count
    })
}

/// Gate 3 + quality mix on the checked path: stationary platform, open
/// X pickup at 30%. Returns (good, degraded, invalid, max_good_error,
/// max_degraded_error).
///
/// This gate runs on the noiseless paper design: with no
/// comparator-referred noise an open pickup pins the duty at 0/1 and
/// is caught deterministically. Added front-end noise survives an open
/// pickup (it enters after the dead winding) and can drive the
/// detector into the plausible duty band, masquerading as a weak-field
/// axis — an observability limit of duty/count scoring, covered in
/// DESIGN.md §11, not a property this gate can assert against.
fn checked_quality_mix(design: &CompassDesign, plan: &FaultPlan) -> (u64, u64, u64, f64, f64) {
    let truth = 123.0;
    let mut scratch = MeasureScratch::for_design(design);
    let mut tracker = DegradedTracker::for_design(design);
    let (mut good, mut degraded, mut invalid) = (0u64, 0u64, 0u64);
    let (mut max_good, mut max_degraded) = (0.0f64, 0.0f64);
    for k in 0..200u64 {
        let seed = derive_seed(0x9A7E, k);
        let checked = design.measure_heading_checked(
            Degrees::new(truth),
            seed,
            &mut scratch,
            Some(plan),
            &mut tracker,
        );
        let error = angular_error(checked.reading.heading.value(), truth);
        match checked.quality {
            FixQuality::Good => {
                good += 1;
                max_good = max_good.max(error);
            }
            FixQuality::Degraded => {
                degraded += 1;
                max_degraded = max_degraded.max(error);
            }
            FixQuality::Invalid => invalid += 1,
        }
    }
    (good, degraded, invalid, max_good, max_degraded)
}

fn print_experiment() -> std::io::Result<()> {
    banner(
        "E13",
        "fault injection: degraded-mode determinism and fix quality",
        "dependability of the integrated compass beyond the nominal design",
    );

    let design = noisy_design();
    let clean_design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let open_x = FaultPlan::new(0xE13F).with(FaultSpec {
        kind: FaultKind::OpenPickup,
        axis: AxisSel::X,
        rate: 0.3,
    });
    let mixed = FaultPlan::new(0xE13F)
        .with(FaultSpec {
            kind: FaultKind::OpenPickup,
            axis: AxisSel::X,
            rate: 0.2,
        })
        .with(FaultSpec {
            kind: FaultKind::NoiseBurst {
                rms: 0.05,
                from: 0.3,
                until: 0.7,
            },
            axis: AxisSel::Both,
            rate: 0.4,
        });

    let zero_transparent = gate_zero_plan_transparent(&design);
    assert!(zero_transparent, "zero-fault plan perturbed the bitstream");
    eprintln!("  zero-fault plan vs clean fast path: bit-identical ✓");

    let deterministic = gate_faulted_deterministic(&design, &mixed);
    assert!(deterministic, "faulted fixes depend on measurement order");
    eprintln!("  faulted fixes under reordering: bit-identical ✓");

    let (good, degraded, invalid, max_good_err, max_degraded_err) =
        checked_quality_mix(&clean_design, &open_x);
    assert!(good >= 1 && degraded >= 1, "mix must exercise both paths");
    assert!(
        max_good_err <= 1.0,
        "a Good fix broke the 1° spec: {max_good_err:.3}°"
    );
    assert!(
        max_degraded_err <= 5.0,
        "a Degraded fallback was unbounded: {max_degraded_err:.3}°"
    );
    eprintln!(
        "  checked mix (30% open X pickup): {good} good / {degraded} degraded / {invalid} invalid"
    );
    eprintln!(
        "  max error: good {max_good_err:.3}° (≤ 1°), degraded {max_degraded_err:.3}° (≤ 5°)"
    );

    // Served quality mix: the fix server under the open-pickup plan.
    let mut server = FixServer::start(
        clean_design,
        ServeConfig {
            cache_capacity: 0,
            fault_plan: Some(open_x),
            quarantine_after: 0,
            ..ServeConfig::default()
        },
    )
    .expect("start faulty server");
    let report = loadgen::run(&LoadGenConfig {
        addr: server.local_addr().to_string(),
        requests: 400,
        connections: 4,
        no_cache: true,
        unique_fixes: 40,
        base_seed: 0xE13,
        ..LoadGenConfig::default()
    })
    .expect("loadgen run");
    server.shutdown();
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.lost, 0);
    let non_invalid =
        (report.completed - report.unmeasurable) as f64 / report.completed.max(1) as f64;
    assert!(
        non_invalid >= 0.99,
        "served non-invalid rate {non_invalid:.4} below the 99% floor"
    );
    eprintln!(
        "  served mix: {} ok ({} degraded) / {} unmeasurable — {:.2}% non-invalid ✓",
        report.ok,
        report.quality_degraded,
        report.unmeasurable,
        100.0 * non_invalid
    );

    let path = write_bench_json(
        "BENCH_faults.json",
        "e13_faults",
        &[
            (
                "zero_plan_bit_identical",
                f64::from(u8::from(zero_transparent)),
            ),
            ("faulted_deterministic", f64::from(u8::from(deterministic))),
            ("checked_good", good as f64),
            ("checked_degraded", degraded as f64),
            ("checked_invalid", invalid as f64),
            ("max_good_error_deg", max_good_err),
            ("max_degraded_error_deg", max_degraded_err),
            ("served_completed", report.completed as f64),
            ("served_ok", report.ok as f64),
            ("served_degraded", report.quality_degraded as f64),
            ("served_unmeasurable", report.unmeasurable as f64),
            ("served_non_invalid_rate", non_invalid),
            ("served_errors", report.protocol_errors as f64),
        ],
    )?;
    eprintln!("  -> {}", path.display());
    Ok(())
}

fn bench(c: &mut Criterion) {
    print_experiment().expect("bench artefact written");

    let design = noisy_design();
    let plan = FaultPlan::new(0xE13F).with(FaultSpec {
        kind: FaultKind::OpenPickup,
        axis: AxisSel::X,
        rate: 1.0,
    });
    let mut scratch = MeasureScratch::for_design(&design);
    let mut group = c.benchmark_group("e13_faults");
    group.sample_size(20);
    let mut seed = 0u64;
    group.bench_function("measure_clean", |b| {
        b.iter(|| {
            seed += 1;
            black_box(design.measure_heading_scratch(
                black_box(Degrees::new(123.0)),
                seed,
                &mut scratch,
            ))
        })
    });
    group.bench_function("measure_faulted_open_pickup", |b| {
        b.iter(|| {
            seed += 1;
            black_box(design.measure_heading_scratch_faulted(
                black_box(Degrees::new(123.0)),
                seed,
                &mut scratch,
                &plan,
            ))
        })
    });
    group.bench_function("plan_compile", |b| {
        b.iter(|| {
            seed += 1;
            black_box(plan.compile(black_box(0), seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
