//! E5 — claim C7: the 4.194304 MHz up/down counter.
//!
//! Sweeps the counter clock and measures end-to-end heading error: the
//! paper's 2²² Hz choice is the first watch-crystal-friendly frequency
//! whose quantisation fits inside the 1° budget (together with the
//! 8-iteration CORDIC). Times counter integration at clock rate.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_compass::evaluate::sweep_headings;
use fluxcomp_compass::{CompassConfig, CompassDesign};
use fluxcomp_exec::ExecPolicy;
use fluxcomp_rtl::clock::ClockTree;
use fluxcomp_rtl::counter::UpDownCounter;
use fluxcomp_units::si::Hertz;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E5",
        "heading error vs counter clock frequency",
        "§4, claim C7",
    );
    eprintln!(
        "  {:>14} {:>14} {:>12} {:>12} {:>6}",
        "clock [Hz]", "counts/period", "max err [°]", "rms err [°]", "spec"
    );
    let policy = ExecPolicy::auto();
    for mhz in [0.524288, 1.048576, 2.097152, 4.194304, 8.388608, 16.777216] {
        let clock = Hertz::new(mhz * 1e6);
        let mut cfg = CompassConfig::paper_design();
        cfg.clock = ClockTree::with_master(clock);
        let design = CompassDesign::new(cfg).expect("valid");
        let stats = sweep_headings(&design, 16, &policy);
        eprintln!(
            "  {:>14.0} {:>14.1} {:>12.3} {:>12.3} {:>6}",
            clock.value(),
            clock.value() / 8_000.0,
            stats.max_error.value(),
            stats.rms_error.value(),
            if stats.meets_one_degree_spec() {
                "PASS"
            } else {
                "miss"
            }
        );
    }
    eprintln!("\n  -> 4.194304 MHz (= 2^22, the watch-crystal multiple) meets 1°;");
    eprintln!("     slower clocks quantise the heading out of spec.");
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e5_counter_resolution");

    // Counter integration over one measurement window (4194 edges).
    let stream: Vec<bool> = (0..4194).map(|k| (k % 524) < 250).collect();
    group.bench_function("counter_4194_edges", |b| {
        b.iter(|| {
            let mut counter = UpDownCounter::paper_design();
            black_box(counter.run(stream.iter().copied()))
        })
    });

    // The clock-domain resampling step.
    let detector: Vec<bool> = (0..32_768).map(|k| (k % 4096) < 2000).collect();
    group.bench_function("sample_at_clock_1ms_window", |b| {
        b.iter(|| {
            black_box(fluxcomp_rtl::counter::sample_at_clock(
                black_box(&detector),
                1e-3,
                Hertz::new(4_194_304.0),
            ))
        })
    });

    // The 16-point clock-characterisation sweep, serial vs pooled — the
    // inner loop of the frequency table above.
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid");
    let serial = ExecPolicy::serial();
    let auto = ExecPolicy::auto();
    group.sample_size(3);
    group.bench_function("heading_sweep_16_serial", |b| {
        b.iter(|| black_box(sweep_headings(&design, 16, &serial)))
    });
    group.bench_function("heading_sweep_16_parallel", |b| {
        b.iter(|| black_box(sweep_headings(&design, 16, &auto)))
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
