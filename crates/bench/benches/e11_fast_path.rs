//! E11 — the duty-only fast measurement path.
//!
//! The production hot path (`FrontEnd::measure` fused with the up/down
//! counter through a precomputed `ClockSchedule`) against the
//! diagnostic full-waveform tier: first the **bit-identity check** over
//! a full 360° sweep — both tiers must produce the same `AccuracyStats`
//! to the last bit — then the throughput comparison, recorded as a
//! machine-readable `BENCH_sweep.json` for regression tracking.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::{banner, write_bench_json};
use fluxcomp_compass::evaluate::{sweep_headings, sweep_headings_traced};
use fluxcomp_compass::{CompassConfig, CompassDesign, MeasureScratch};
use fluxcomp_exec::ExecPolicy;
use fluxcomp_units::Degrees;
use std::hint::black_box;
use std::time::Instant;

/// Serial fixes per second of `fix`, timed over `n` calls.
fn fixes_per_second(n: usize, mut fix: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for k in 0..n {
        fix(k);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

fn print_experiment() -> std::io::Result<()> {
    banner(
        "E11",
        "duty-only fast path vs full-waveform diagnostic tier",
        "perf: precomputed excitation table + allocation-free scratch",
    );

    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let policy = ExecPolicy::auto();
    let headings = 360usize;

    // Contract first: the two tiers are the same computation.
    let fast = sweep_headings(&design, headings, &policy);
    let traced = sweep_headings_traced(&design, headings, &policy);
    let bit_identical = [
        (fast.max_error, traced.max_error),
        (fast.mean_error, traced.mean_error),
        (fast.rms_error, traced.rms_error),
        (fast.bias, traced.bias),
    ]
    .iter()
    .all(|(f, t)| f.value().to_bits() == t.value().to_bits());
    assert!(
        bit_identical && fast.samples == traced.samples,
        "fast and traced sweeps must agree bit for bit"
    );
    eprintln!("  360° sweep, fast vs traced AccuracyStats: bit-identical ✓");
    eprintln!(
        "  max err {:.4}°, rms {:.4}° (spec ≤ 1°: {})",
        fast.max_error.value(),
        fast.rms_error.value(),
        fast.meets_one_degree_spec()
    );

    // Serial throughput of one complete fix (both axes), fresh vs the
    // two tiers. Enough fixes to dwarf timer noise, few enough to keep
    // `cargo bench` turnaround sane.
    let seed = design.config().frontend.noise_seed;
    let mut scratch = MeasureScratch::for_design(&design);
    let fps_fast = fixes_per_second(96, |k| {
        let truth = Degrees::new(k as f64 * 3.75);
        black_box(design.measure_heading_scratch(truth, seed, &mut scratch));
    });
    let fps_traced = fixes_per_second(32, |k| {
        let truth = Degrees::new(k as f64 * 11.25);
        black_box(design.measure_heading_traced(truth, seed));
    });
    let speedup = fps_fast / fps_traced;

    // Analogue-grid samples per fix: two axes, settle + measure periods.
    let fe = &design.config().frontend;
    let samples_per_fix =
        (2 * (fe.settle_periods + fe.measure_periods) * fe.samples_per_period) as f64;

    eprintln!("  serial throughput (one fix = X + Y axis):");
    eprintln!("    traced tier : {fps_traced:>9.1} fixes/s");
    eprintln!("    fast path   : {fps_fast:>9.1} fixes/s  ({speedup:.2}x)");
    eprintln!(
        "    fast path   : {:.2e} analogue samples/s",
        fps_fast * samples_per_fix
    );

    let path = write_bench_json(
        "BENCH_sweep.json",
        "e11_fast_path",
        &[
            ("headings", headings as f64),
            ("fixes_per_s_traced", fps_traced),
            ("fixes_per_s_fast", fps_fast),
            ("speedup", speedup),
            ("samples_per_s_fast", fps_fast * samples_per_fix),
            ("bit_identical", f64::from(u8::from(bit_identical))),
        ],
    )?;
    eprintln!("  -> {}", path.display());
    Ok(())
}

fn bench(c: &mut Criterion) {
    print_experiment().expect("bench artefact written");

    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let seed = design.config().frontend.noise_seed;
    let truth = Degrees::new(123.0);

    let mut group = c.benchmark_group("e11_fast_path");
    group.sample_size(20);
    group.bench_function("fix_traced", |b| {
        b.iter(|| black_box(design.measure_heading_traced(black_box(truth), seed)))
    });
    group.bench_function("fix_fast_fresh", |b| {
        b.iter(|| black_box(design.measure_heading_seeded(black_box(truth), seed)))
    });
    let mut scratch = MeasureScratch::for_design(&design);
    group.bench_function("fix_fast_scratch", |b| {
        b.iter(|| black_box(design.measure_heading_scratch(black_box(truth), seed, &mut scratch)))
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
