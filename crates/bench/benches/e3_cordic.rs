//! E3 — Fig. 8 / claims C1, C8: the CORDIC arctangent.
//!
//! Regenerates the accuracy-vs-iterations table behind the paper's
//! "8 cycles … accuracy of one degree", checks the transliterated Fig. 8
//! kernel against `f64::atan2`, and times the unit (behavioural and as
//! the synthesised gate-level micro-rotation).

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_exec::{par_map_range, ExecPolicy};
use fluxcomp_rtl::cordic::CordicArctan;
use fluxcomp_rtl::netsim::GateSim;
use fluxcomp_rtl::synth::cordic_step;
use fluxcomp_units::angle::Degrees;
use std::hint::black_box;

fn worst_error_par(iterations: u32, radius: f64, policy: &ExecPolicy) -> f64 {
    let c = CordicArctan::new(iterations);
    let errors = par_map_range(policy, 1440, |k| {
        let truth = k as f64 * 0.25;
        let x = (radius * Degrees::new(truth).cos()).round() as i64;
        let y = (radius * Degrees::new(truth).sin()).round() as i64;
        if x == 0 && y == 0 {
            return 0.0;
        }
        let got = c.heading(x, y).expect("nonzero").heading;
        let reference = Degrees::atan2(y as f64, x as f64).normalized();
        got.angular_distance(reference).value()
    });
    errors.into_iter().fold(0.0f64, f64::max)
}

fn worst_error(iterations: u32, radius: f64) -> f64 {
    worst_error_par(iterations, radius, &ExecPolicy::serial())
}

fn print_experiment() {
    banner(
        "E3",
        "CORDIC accuracy vs iteration count (1440 headings, r = 2096)",
        "Fig. 8, claims C1/C8",
    );
    eprintln!(
        "  {:>11} {:>16} {:>16} {:>8}",
        "iterations", "worst err [°]", "bound [°]", "1° spec"
    );
    for n in [1u32, 2, 4, 6, 8, 10, 12, 16] {
        let worst = worst_error(n, 2096.0);
        let bound = CordicArctan::new(n).error_bound().value();
        eprintln!(
            "  {n:>11} {worst:>16.4} {bound:>16.4} {:>8}",
            if worst <= 1.0 { "PASS" } else { "miss" }
        );
    }
    eprintln!("\n  -> the paper's 8 iterations are the first power-friendly point under 1°");
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e3_cordic");

    let cordic = CordicArctan::paper();
    group.bench_function("heading_8_iterations", |b| {
        b.iter(|| black_box(cordic.heading(black_box(1432), black_box(-983)).unwrap()))
    });

    let cordic16 = CordicArctan::new(16);
    group.bench_function("heading_16_iterations", |b| {
        b.iter(|| black_box(cordic16.heading(black_box(1432), black_box(-983)).unwrap()))
    });

    group.bench_function("f64_atan2_reference", |b| {
        b.iter(|| black_box(Degrees::atan2(black_box(-983.0), black_box(1432.0))))
    });

    // The accuracy scan on the sweep engine: 1440 microsecond-scale
    // CORDIC tasks per scan, so chunked self-scheduling (not task
    // granularity) decides whether the pool pays off.
    let serial = ExecPolicy::serial();
    let auto = ExecPolicy::auto().with_chunk(64);
    group.bench_function("accuracy_scan_1440_serial", |b| {
        b.iter(|| black_box(worst_error_par(black_box(8), 2096.0, &serial)))
    });
    group.bench_function("accuracy_scan_1440_parallel", |b| {
        b.iter(|| black_box(worst_error_par(black_box(8), 2096.0, &auto)))
    });

    // One gate-level micro-rotation through the event-driven simulator —
    // the "Compass Design Automation" path of the reproduction.
    let (nl, x_in, y_in, x_out, y_out, _) = cordic_step(24, 3);
    group.bench_function("gate_level_micro_rotation_24bit", |b| {
        let mut sim = GateSim::new(nl.clone());
        b.iter(|| {
            sim.set_bus(&x_in, black_box(183_296));
            sim.set_bus(&y_in, black_box(125_824));
            sim.settle();
            black_box((sim.bus_value_signed(&x_out), sim.bus_value_signed(&y_out)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
