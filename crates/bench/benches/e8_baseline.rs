//! E8 — claims C6/C14: pulse-position vs second-harmonic readout.
//!
//! The paper's argument for pulse position is that "a complicated
//! AD-converter is not necessary, which would have been the case for
//! methods based on second harmonic measurements". This bench
//! regenerates the comparison on both axes:
//!
//! * **accuracy** — second-harmonic heading error vs ADC resolution,
//!   against the ADC-free pulse-position pipeline;
//! * **hardware** — extra transistors the second-harmonic method needs.
//!
//! Times the two readouts' computational kernels.

use criterion::{criterion_group, Criterion};
use fluxcomp_afe::second_harmonic::{
    SecondHarmonicDemodulator, PULSE_POSITION_COST, SECOND_HARMONIC_COST,
};
use fluxcomp_bench::banner;
use fluxcomp_compass::baseline::SecondHarmonicCompass;
use fluxcomp_compass::{Compass, CompassConfig};
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::si::Hertz;
use std::hint::black_box;

fn worst_over(headings: &[f64], mut f: impl FnMut(Degrees) -> Degrees) -> f64 {
    headings.iter().fold(0.0f64, |worst, &deg| {
        let t = Degrees::new(deg);
        worst.max(f(t).angular_distance(t).value())
    })
}

fn print_experiment() {
    banner(
        "E8",
        "pulse-position vs second-harmonic readout",
        "§2.1/§3.2, claims C6/C14",
    );

    let headings = [15.0, 75.0, 160.0, 250.0, 340.0];
    let mut pp = Compass::new(CompassConfig::paper_design()).expect("valid");
    let pp_worst = worst_over(&headings, |t| pp.measure_heading(t).heading);
    eprintln!("  pulse-position (no ADC):        worst err {pp_worst:.2}°");

    eprintln!("\n  second-harmonic, by ADC resolution:");
    eprintln!(
        "  {:>10} {:>14} {:>18}",
        "ADC bits", "worst err [°]", "extra transistors"
    );
    for bits in [4u32, 6, 8, 10, 12] {
        let sh = SecondHarmonicCompass::new(CompassConfig::paper_design(), bits).expect("valid");
        let worst = worst_over(&headings, |t| sh.measure_heading(t));
        eprintln!(
            "  {bits:>10} {worst:>14.2} {:>18}",
            sh.extra_hardware_transistors()
        );
    }

    eprintln!("\n  block-level cost comparison:");
    eprintln!(
        "    pulse-position:  needs_adc={} analog_blocks={} comparators={}",
        PULSE_POSITION_COST.needs_adc,
        PULSE_POSITION_COST.analog_blocks,
        PULSE_POSITION_COST.comparators
    );
    eprintln!(
        "    second-harmonic: needs_adc={} analog_blocks={} comparators={}",
        SECOND_HARMONIC_COST.needs_adc,
        SECOND_HARMONIC_COST.analog_blocks,
        SECOND_HARMONIC_COST.comparators
    );
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e8_baseline");
    group.sample_size(10);

    let sh = SecondHarmonicCompass::new(CompassConfig::paper_design(), 10).expect("valid");
    group.bench_function("second_harmonic_fix", |b| {
        b.iter(|| black_box(sh.measure_heading(black_box(Degrees::new(123.0)))))
    });

    let mut pp = Compass::new(CompassConfig::paper_design()).expect("valid");
    group.bench_function("pulse_position_fix", |b| {
        b.iter(|| black_box(pp.measure_heading(black_box(Degrees::new(123.0))).heading))
    });

    // The demodulation kernel alone.
    let demod = SecondHarmonicDemodulator::new(Hertz::new(8_000.0));
    let samples: Vec<f64> = (0..16_384)
        .map(|k| {
            let t = k as f64 / 16_384.0 * 8.0;
            (std::f64::consts::TAU * t).sin() + 0.1 * (2.0 * std::f64::consts::TAU * t).cos()
        })
        .collect();
    group.bench_function("lockin_demodulate_16k_samples", |b| {
        b.iter(|| black_box(demod.demodulate_iq(black_box(&samples), 1.0 / 16_384.0)))
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
