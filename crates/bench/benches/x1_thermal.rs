//! X1 (extension) — temperature behaviour.
//!
//! The paper designs "to broad specifications" without quantifying
//! temperature; this extension experiment does, using the first-order
//! models in `fluxcomp-fluxgate::thermal`:
//!
//! * heading accuracy across −20…+60 °C — the ratio architecture
//!   cancels the common-mode sensitivity drift, so the compass stays in
//!   spec;
//! * the V-I drive margin of the 800 Ω claim over temperature;
//! * the physically modelled Jiles-Atherton core as a hysteresis
//!   cross-check of the behavioural loop.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::{banner, microtesla_to_h};
use fluxcomp_compass::evaluate::sweep_headings;
use fluxcomp_compass::{Compass, CompassConfig, CompassDesign};
use fluxcomp_exec::ExecPolicy;
use fluxcomp_fluxgate::jiles_atherton::{JaParams, JilesAthertonCore};
use fluxcomp_fluxgate::thermal::{
    max_drive_temperature, sensor_at_temperature, ThermalCoefficients,
};
use fluxcomp_fluxgate::transducer::FluxgateParams;
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::{Ampere, Ohm, Volt};
use std::hint::black_box;

fn print_experiment() {
    banner(
        "X1",
        "temperature behaviour (extension)",
        "§6 'broad specifications'",
    );

    let coeffs = ThermalCoefficients::typical();
    eprintln!("  heading accuracy vs temperature (both sensors tracking):");
    eprintln!(
        "  {:>8} {:>10} {:>12} {:>12}",
        "T [°C]", "R_exc [Ω]", "max err [°]", "spec"
    );
    let policy = ExecPolicy::auto();
    for t in [-20.0, 0.0, 25.0, 40.0, 60.0] {
        let mut cfg = CompassConfig::paper_design();
        let derated = sensor_at_temperature(&cfg.pair.element, &coeffs, t);
        cfg.pair.element = derated;
        cfg.frontend.sensor = derated;
        let design = CompassDesign::new(cfg).expect("valid");
        let stats = sweep_headings(&design, 12, &policy);
        eprintln!(
            "  {t:>8.0} {:>10.1} {:>12.3} {:>12}",
            derated.r_excitation.value(),
            stats.max_error.value(),
            if stats.meets_one_degree_spec() {
                "PASS"
            } else {
                "miss"
            }
        );
    }

    eprintln!("\n  thermal margin of the 800 Ω drive claim (±6 mA from 4.6 V):");
    for r in [500.0, 700.0, 766.0] {
        let mut p = FluxgateParams::adapted();
        p.r_excitation = Ohm::new(r);
        let t_max = max_drive_temperature(&p, &coeffs, Ampere::new(6e-3), Volt::new(4.6));
        eprintln!("    R(25°C) = {r:>4.0} Ω -> drivable up to {t_max:>6.1} °C");
    }

    eprintln!("\n  Jiles-Atherton cross-check of the hysteresis behaviour:");
    let hc = JilesAthertonCore::coercivity(JaParams::permalloy_film(), AmperePerMeter::new(240.0));
    let br = JilesAthertonCore::remanence(JaParams::permalloy_film(), AmperePerMeter::new(240.0));
    eprintln!(
        "    permalloy film: Hc = {:.1} A/m, Br = {:.3} T (soft loop, as the",
        hc.value(),
        br.value()
    );
    eprintln!("    pulse-position method needs — the readout averages it out)");
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("x1_thermal");
    group.sample_size(10);

    let mut core = JilesAthertonCore::new(JaParams::permalloy_film());
    group.bench_function("ja_core_one_excitation_cycle", |b| {
        b.iter(|| {
            core.drive_to(black_box(AmperePerMeter::new(240.0)), 256);
            core.drive_to(black_box(AmperePerMeter::new(-240.0)), 512);
            core.drive_to(black_box(AmperePerMeter::new(240.0)), 512);
            black_box(core.flux_density())
        })
    });

    let nominal = FluxgateParams::adapted();
    let coeffs = ThermalCoefficients::typical();
    group.bench_function("thermal_derating", |b| {
        b.iter(|| black_box(sensor_at_temperature(&nominal, &coeffs, black_box(60.0))))
    });

    // A full fix with a derated sensor.
    let mut cfg = CompassConfig::paper_design();
    let derated = sensor_at_temperature(&cfg.pair.element, &coeffs, 60.0);
    cfg.pair.element = derated;
    cfg.frontend.sensor = derated;
    let mut compass = Compass::new(cfg.clone()).expect("valid");
    group.bench_function("hot_compass_fix", |b| {
        b.iter(|| {
            black_box(
                compass
                    .measure_heading(black_box(fluxcomp_units::Degrees::new(123.0)))
                    .heading,
            )
        })
    });

    // The hot-corner characterisation sweep, serial vs pooled.
    let design = CompassDesign::new(cfg).expect("valid");
    let serial = ExecPolicy::serial();
    let auto = ExecPolicy::auto();
    group.sample_size(3);
    group.bench_function("hot_sweep_12_serial", |b| {
        b.iter(|| black_box(sweep_headings(&design, 12, &serial)))
    });
    group.bench_function("hot_sweep_12_parallel", |b| {
        b.iter(|| black_box(sweep_headings(&design, 12, &auto)))
    });
    let _ = microtesla_to_h(15.0);
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
