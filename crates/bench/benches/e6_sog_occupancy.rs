//! E6 — claim C10: the design fits one fishbone Sea-of-Gates array;
//! "the digital part … occupies 3 quarters fully and the analogue part
//! 1 quarter for less than 15 %".
//!
//! Regenerates the occupancy report from the synthesised transistor
//! inventory, sweeps the routing-utilisation assumption, and times the
//! placer and the netlist builders.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_compass::chip::{build_chip, paper_chip};
use fluxcomp_rtl::scan::{insert_scan, scan_overhead_transistors};
use fluxcomp_rtl::synth::{full_compass_inventory, inventory_total, updown_counter};
use fluxcomp_rtl::timing::{analyze, DelayModel};
use fluxcomp_sog::library::AnalogMacro;
use fluxcomp_units::si::Hertz;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E6",
        "Sea-of-Gates occupancy",
        "§2 / Fig. 2 / Fig. 7, claim C10",
    );

    let report = paper_chip().expect("fits");
    eprintln!(
        "  digital inventory: {} transistors ({} blocks)",
        report.digital_transistors,
        full_compass_inventory().len()
    );
    eprintln!(
        "  at {:.0} % routing utilisation: digital fills {:.2} quarters (paper: 3)",
        report.utilization * 100.0,
        report.digital_quarters
    );
    eprintln!(
        "  analogue section: {:.1} % of one quarter (paper: < 15 %)",
        report.analog_occupancy * 100.0
    );
    let analog_sites: u32 = AnalogMacro::paper_analog_section()
        .iter()
        .map(|m| m.total_sites())
        .sum();
    eprintln!("  analogue sites: {analog_sites} (incl. the Fig. 7 10 pF capacitor's shadow)");

    // Implementation-flow checks on the synthesised blocks.
    let (counter_nl, _, _) = updown_counter(16);
    let timing = analyze(&counter_nl, &DelayModel::sog_1um());
    eprintln!(
        "\n  timing: 16-bit counter critical path {:.1} ns -> fmax {:.1} MHz ({} at 4.194304 MHz)",
        timing.critical_path_ns,
        timing.fmax.value() / 1e6,
        if timing.meets(Hertz::new(4_194_304.0)) {
            "CLOSES"
        } else {
            "FAILS"
        }
    );
    let stage = analyze(
        &fluxcomp_rtl::synth::cordic_step(24, 3).0,
        &DelayModel::sog_1um(),
    );
    eprintln!(
        "  timing: one CORDIC micro-rotation {:.1} ns — iterating 8 cycles at 4.19 MHz is the",
        stage.critical_path_ns
    );
    eprintln!("          right architecture (the unrolled kernel would not close timing)");
    let flops = counter_nl.stats().flip_flops;
    let scanned = insert_scan(counter_nl);
    eprintln!(
        "  DFT: scan insertion on the counter: +{} transistors ({} flops), chain length {}",
        scan_overhead_transistors(flops),
        flops,
        scanned.len()
    );

    eprintln!("\n  utilisation sweep:");
    eprintln!(
        "  {:>12} {:>18} {:>8}",
        "utilisation", "digital quarters", "fits?"
    );
    for util in [0.50, 0.40, 0.30, 0.25, 0.22, 0.15, 0.10] {
        match build_chip(util) {
            Ok(r) => eprintln!("  {util:>12.2} {:>18.2} {:>8}", r.digital_quarters, "yes"),
            Err(_) => eprintln!("  {util:>12.2} {:>18} {:>8}", "-", "NO"),
        }
    }
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e6_sog_occupancy");

    group.bench_function("full_chip_floorplan", |b| {
        b.iter(|| black_box(build_chip(black_box(0.30)).unwrap().digital_quarters))
    });

    group.bench_function("synthesize_inventory", |b| {
        b.iter(|| black_box(inventory_total(&full_compass_inventory())))
    });

    group.bench_function("synthesize_counter_16bit", |b| {
        b.iter(|| {
            let (nl, _, _) = updown_counter(16);
            black_box(nl.stats().transistors)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
