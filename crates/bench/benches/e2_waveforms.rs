//! E2 — Fig. 4: real fluxgate waveforms.
//!
//! Regenerates the scope-shot content: pickup pulse amplitude/position
//! with and without a field, and the excitation-coil impedance change
//! when the core saturates (the paper's explicit "notice also the change
//! in impedance" remark). Times the waveform generation and trace
//! export.

use criterion::{criterion_group, Criterion};
use fluxcomp_afe::frontend::{FrontEnd, FrontEndConfig};
use fluxcomp_bench::{banner, microtesla_to_h};
use fluxcomp_fluxgate::transducer::{Fluxgate, FluxgateParams};
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::Ampere;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E2",
        "sensor waveforms and saturation impedance",
        "Fig. 4 / claim C3",
    );

    let fe = FrontEnd::new(FrontEndConfig::paper_design()).expect("valid config");
    let no_field = fe.run(AmperePerMeter::ZERO);
    let with_field = fe.run(microtesla_to_h(50.0));

    let range = |r: &fluxcomp_afe::frontend::FrontEndResult, name: &str| {
        r.traces
            .by_name(name)
            .and_then(|t| t.value_range())
            .unwrap()
    };
    let (lo0, hi0) = range(&no_field, "v_pickup");
    let (lo1, hi1) = range(&with_field, "v_pickup");
    eprintln!(
        "  pickup pulses, no field:   {:.1} .. {:.1} mV",
        lo0 * 1e3,
        hi0 * 1e3
    );
    eprintln!(
        "  pickup pulses, 50 µT:      {:.1} .. {:.1} mV",
        lo1 * 1e3,
        hi1 * 1e3
    );

    // Pulse positions (threshold crossings of the pickup voltage) shift
    // with the field — the visible effect in Fig. 4.
    let cross0 = no_field
        .traces
        .by_name("v_pickup")
        .unwrap()
        .crossings(0.02, true);
    let cross1 = with_field
        .traces
        .by_name("v_pickup")
        .unwrap()
        .crossings(0.02, true);
    if let (Some(t0), Some(t1)) = (cross0.last(), cross1.last()) {
        eprintln!(
            "  last positive-pulse onset: {:.2} µs (no field) vs {:.2} µs (50 µT): shift {:.2} µs",
            t0.as_secs_f64() * 1e6,
            t1.as_secs_f64() * 1e6,
            (t1.as_secs_f64() - t0.as_secs_f64()) * 1e6
        );
    }

    // Impedance change at saturation, from the transducer model directly.
    let sensor = Fluxgate::new(FluxgateParams::adapted());
    let di_dt = 192.0; // the triangular slew
    let v_transit = sensor.excitation_voltage(Ampere::ZERO, di_dt, AmperePerMeter::ZERO);
    let v_peak = sensor.excitation_voltage(Ampere::new(6e-3), di_dt, AmperePerMeter::ZERO);
    let l0 = sensor.inductance(AmperePerMeter::ZERO);
    let lsat = sensor.inductance(AmperePerMeter::new(240.0));
    eprintln!(
        "  excitation coil: inductive bump {:.1} mV at transit, {:.0} mV (≈R·i) at peak",
        v_transit.value() * 1e3,
        v_peak.value() * 1e3
    );
    eprintln!(
        "  incremental inductance: {:.0} µH permeable -> {:.2} µH saturated ({:.0}x drop)",
        l0.value() * 1e6,
        lsat.value() * 1e6,
        l0.value() / lsat.value()
    );
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e2_waveforms");
    group.sample_size(20);

    let fe = FrontEnd::new(FrontEndConfig::paper_design()).expect("valid config");
    let result = fe.run(microtesla_to_h(50.0));
    group.bench_function("trace_to_csv", |b| {
        b.iter(|| black_box(result.traces.to_csv().len()))
    });
    group.bench_function("trace_to_vcd", |b| {
        b.iter(|| black_box(result.traces.to_vcd().len()))
    });

    let sensor = Fluxgate::new(FluxgateParams::adapted());
    group.bench_function("excitation_voltage_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..1000 {
                let i = Ampere::new((k as f64 - 500.0) * 12e-6);
                acc += sensor
                    .excitation_voltage(black_box(i), 192.0, AmperePerMeter::ZERO)
                    .value();
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
