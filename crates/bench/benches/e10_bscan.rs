//! E10 — claim C12: MCM boundary-scan interconnect test (\[Oli96\]).
//!
//! Regenerates the testability result: counting-sequence EXTEST patterns
//! over the module's nine substrate nets, with single-fault coverage
//! over all opens and adjacent shorts, plus the large-passive placement
//! rule. Times the tester and the TAP machinery.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_mcm::chain::TapChain;
use fluxcomp_mcm::diagnosis::FaultDictionary;
use fluxcomp_mcm::interconnect_test::InterconnectTester;
use fluxcomp_mcm::substrate::{Fault, McmAssembly};
use fluxcomp_mcm::{generate_bsdl, Instruction, TapController};
use fluxcomp_sog::fabric::CapacitorPlan;
use fluxcomp_units::si::Farad;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E10",
        "MCM boundary-scan interconnect test",
        "§2, [Oli96], claim C12",
    );

    let module = McmAssembly::paper_module();
    let tester = InterconnectTester::new(module.nets().len());
    let clean = tester.run(&module);
    eprintln!(
        "  module: {} nets, {} substrate passives; {} EXTEST patterns; clean run: {}",
        module.nets().len(),
        module.passives().len(),
        clean.pattern_count(),
        if clean.passed() { "PASS" } else { "FAIL" }
    );

    let coverage = tester.coverage(&module);
    eprintln!(
        "  single-fault coverage ({} opens + {} adjacent shorts): {:.0} %",
        module.nets().len(),
        module.nets().len() - 1,
        coverage * 100.0
    );

    let mut faulty = module.clone();
    faulty.inject(Fault::Short { a: 0, b: 1 });
    let report = tester.run(&faulty);
    eprintln!(
        "  example diagnosis, short exc_x_p/exc_x_n: failing nets {:?}",
        report.failing_nets
    );

    let dict = FaultDictionary::build(&module);
    eprintln!(
        "  fault dictionary: {} entries, diagnostic resolution {:.0} % uniquely identified",
        dict.len(),
        dict.resolution() * 100.0
    );

    let mut chain = TapChain::new(&[9, 4, 4]); // SoG die + 2 sensor dies
    chain.reset();
    chain.load_instructions(&[
        Instruction::Extest,
        Instruction::Bypass,
        Instruction::Bypass,
    ]);
    eprintln!(
        "  3-die TAP chain: scan path {} bits with only the SoG die in EXTEST (integrity check: {})",
        chain.scan_path_bits(),
        chain.measure_scan_path()
    );
    let bsdl = generate_bsdl(&module, "FLUXCOMP_MCM");
    eprintln!(
        "  BSDL description: {} lines, parsed back OK: {}",
        bsdl.lines().count(),
        fluxcomp_mcm::parse_bsdl(&bsdl).is_some()
    );

    eprintln!("\n  large-passive placement rule (> 400 pF on the substrate):");
    for pf in [10.0, 100.0, 400.0, 470.0] {
        let plan = CapacitorPlan::for_value(Farad::new(pf * 1e-12));
        eprintln!("    {pf:>6.0} pF -> {plan:?}");
    }
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e10_bscan");

    let module = McmAssembly::paper_module();
    let tester = InterconnectTester::new(module.nets().len());
    group.bench_function("extest_interconnect_test", |b| {
        b.iter(|| black_box(tester.run(black_box(&module)).passed()))
    });
    group.bench_function("single_fault_coverage_sweep", |b| {
        b.iter(|| black_box(tester.coverage(black_box(&module))))
    });

    group.bench_function("tap_idcode_readout", |b| {
        b.iter(|| {
            let mut tap = TapController::new(9);
            tap.reset();
            let obs = vec![false; 9];
            tap.clock(false, false, &obs);
            tap.clock(true, false, &obs);
            tap.clock(false, false, &obs);
            tap.clock(false, false, &obs);
            let mut code = 0u32;
            for bit in 0..32 {
                if let Some(tdo) = tap.clock(false, false, &obs) {
                    code |= (tdo as u32) << bit;
                }
            }
            black_box(code)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
