//! X3 (extension) — Monte-Carlo yield of the 1° specification.
//!
//! The paper designs "to broad specifications so it can operate with
//! fluxgate sensors which will be realised in near future" — a yield
//! argument. This experiment quantifies it: sample the component
//! tolerances a real production run would see (sensor `H_K`, excitation
//! amplitude, comparator offset, pair gain mismatch and misalignment),
//! run the full pipeline, and report the fraction of "manufactured"
//! compasses that meet the 1° spec.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_compass::{Compass, CompassConfig};
use fluxcomp_exec::ExecPolicy;
use fluxcomp_msim::montecarlo::{run_monte_carlo, Tolerance};
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::si::{Ampere, Volt};
use std::hint::black_box;

/// Worst heading error over a coarse probe set for one sampled unit.
fn unit_worst_error(factors: &[f64]) -> f64 {
    let mut cfg = CompassConfig::paper_design();
    // factors: [hk, i_pp, comparator offset (additive, scaled), gain, misalignment]
    cfg.pair.element.core = fluxcomp_fluxgate::core_model::CoreModel::anhysteretic(
        cfg.pair.element.core.bsat(),
        cfg.pair.element.core.hk() * factors[0],
    );
    cfg.frontend.sensor = cfg.pair.element;
    cfg.frontend.excitation = cfg
        .frontend
        .excitation
        .with_amplitude_pp(Ampere::new(12e-3 * factors[1]));
    cfg.frontend.detector.offset = Volt::new((factors[2] - 1.0) * 0.05); // ±mV-scale offsets
    cfg.pair.gain_mismatch = factors[3];
    cfg.pair.misalignment = Degrees::new((factors[4] - 1.0) * 20.0); // ±deg-scale
    let mut compass = match Compass::new(cfg) {
        Ok(c) => c,
        Err(_) => return f64::INFINITY,
    };
    let mut worst = 0.0f64;
    for deg in [10.0, 100.0, 190.0, 280.0] {
        let t = Degrees::new(deg);
        let got = compass.measure_heading(t).heading;
        worst = worst.max(got.angular_distance(t).value());
    }
    worst
}

fn print_experiment() {
    banner(
        "X3",
        "Monte-Carlo yield of the 1° spec (extension)",
        "§6 'broad specifications'",
    );

    let tolerances = [
        Tolerance::Gaussian { rel_sigma: 0.05 }, // sensor H_K: ±5 % process
        Tolerance::Gaussian { rel_sigma: 0.02 }, // excitation amplitude
        Tolerance::Gaussian { rel_sigma: 0.04 }, // comparator offset (±2 mV σ)
        Tolerance::Gaussian { rel_sigma: 0.01 }, // pair gain mismatch ±1 %
        Tolerance::Gaussian { rel_sigma: 0.01 }, // misalignment (±0.2° σ)
    ];
    // One sampled unit is ~100 ms of transient simulation: ideal grain
    // for the worker pool, and (per-trial seeding) bit-identical to the
    // serial harness.
    let result = run_monte_carlo(
        &tolerances,
        60,
        0xC0FFEE,
        &ExecPolicy::auto(),
        |s| unit_worst_error(s),
        |m| m <= 1.0,
    );
    eprintln!("  60 sampled units, 4 probe headings each:");
    eprintln!(
        "    yield (worst error ≤ 1°): {:.0} %",
        result.yield_fraction() * 100.0
    );
    eprintln!("    median worst error: {:.3}°", result.quantile(0.5));
    eprintln!("    90th percentile:    {:.3}°", result.quantile(0.9));
    eprintln!("    worst sampled unit: {:.3}°", result.quantile(1.0));

    // Sensitivity: which tolerance matters? Re-run with each parameter
    // alone widened to 3x.
    eprintln!("\n  one-at-a-time widening (x3 the sigma), yield impact:");
    for (k, name) in ["H_K", "I_pp", "comp offset", "gain match", "alignment"]
        .iter()
        .enumerate()
    {
        let mut widened = tolerances;
        widened[k] = match tolerances[k] {
            Tolerance::Gaussian { rel_sigma } => Tolerance::Gaussian {
                rel_sigma: 3.0 * rel_sigma,
            },
            t => t,
        };
        let r = run_monte_carlo(
            &widened,
            40,
            0xC0FFEE,
            &ExecPolicy::auto(),
            |s| unit_worst_error(s),
            |m| m <= 1.0,
        );
        eprintln!(
            "    {name:<12} -> yield {:.0} %",
            r.yield_fraction() * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("x3_montecarlo");
    group.sample_size(10);
    group.bench_function("one_sampled_unit", |b| {
        b.iter(|| {
            black_box(unit_worst_error(black_box(&[
                1.02, 0.99, 1.01, 1.002, 0.999,
            ])))
        })
    });

    // A 12-unit yield batch through the full pipeline, serial harness
    // vs the worker pool.
    let tolerances = [
        Tolerance::Gaussian { rel_sigma: 0.05 },
        Tolerance::Gaussian { rel_sigma: 0.02 },
        Tolerance::Gaussian { rel_sigma: 0.04 },
        Tolerance::Gaussian { rel_sigma: 0.01 },
        Tolerance::Gaussian { rel_sigma: 0.01 },
    ];
    group.sample_size(3);
    group.bench_function("yield_12_units_serial", |b| {
        b.iter(|| {
            black_box(run_monte_carlo(
                &tolerances,
                12,
                0xC0FFEE,
                &ExecPolicy::serial(),
                |s| unit_worst_error(s),
                |m| m <= 1.0,
            ))
        })
    });
    group.bench_function("yield_12_units_parallel", |b| {
        let auto = ExecPolicy::auto();
        b.iter(|| {
            black_box(run_monte_carlo(
                &tolerances,
                12,
                0xC0FFEE,
                &auto,
                |s| unit_worst_error(s),
                |m| m <= 1.0,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
