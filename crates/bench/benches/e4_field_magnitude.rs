//! E4 — claim C9: heading is insensitive to the local field magnitude
//! ("25 µT in South America … 65 µT near the south pole").
//!
//! Runs the full mixed-signal pipeline at every predefined location plus
//! a pure-magnitude sweep at zero inclination, and shows the hard-iron
//! calibration ablation. Times a complete compass fix.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_compass::calibration::Calibration;
use fluxcomp_compass::evaluate::sweep_headings;
use fluxcomp_compass::{Compass, CompassConfig, CompassDesign};
use fluxcomp_exec::ExecPolicy;
use fluxcomp_fluxgate::earth::{EarthField, Location, MagneticDisturbance};
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::Tesla;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E4",
        "heading accuracy vs local field magnitude",
        "§4, claim C9",
    );

    eprintln!("  pure-magnitude sweep (horizontal field, 16 headings):");
    eprintln!(
        "  {:>8} {:>12} {:>12}",
        "B [µT]", "max err [°]", "rms err [°]"
    );
    for ut in [10.0, 15.0, 25.0, 40.0, 55.0, 65.0] {
        let mut cfg = CompassConfig::paper_design();
        cfg.field = EarthField::horizontal(Tesla::from_microtesla(ut));
        let design = CompassDesign::new(cfg).expect("valid config");
        let stats = sweep_headings(&design, 16, &ExecPolicy::serial());
        eprintln!(
            "  {ut:>8.0} {:>12.3} {:>12.3}",
            stats.max_error.value(),
            stats.rms_error.value()
        );
    }

    eprintln!("\n  world tour (real inclination — only the horizontal part is usable):");
    eprintln!(
        "  {:>14} {:>9} {:>10} {:>12}",
        "location", "B [µT]", "B_h [µT]", "max err [°]"
    );
    let policy = ExecPolicy::auto();
    for location in Location::ALL {
        let design = CompassDesign::new(CompassConfig::at_location(location)).expect("valid");
        let stats = sweep_headings(&design, 12, &policy);
        let f = design.config().field;
        eprintln!(
            "  {:>14} {:>9.0} {:>10.1} {:>12.3}",
            format!("{location:?}"),
            f.total().as_microtesla(),
            f.horizontal_magnitude().as_microtesla(),
            stats.max_error.value()
        );
    }

    eprintln!("\n  ablation: 4 µT hard iron, raw vs rotation-calibrated (4 headings):");
    let mut cfg = CompassConfig::paper_design();
    cfg.pair.disturbance =
        MagneticDisturbance::hard(Tesla::from_microtesla(4.0), Tesla::from_microtesla(-2.0));
    let mut compass = Compass::new(cfg).expect("valid");
    let cal = Calibration::rotate(&mut compass, 16);
    let mut worst_raw = 0.0f64;
    let mut worst_cal = 0.0f64;
    for deg in [20.0, 110.0, 200.0, 290.0] {
        let t = Degrees::new(deg);
        let raw = compass.measure_heading(t).heading;
        let corrected = cal.corrected_heading(&mut compass, t);
        worst_raw = worst_raw.max(raw.angular_distance(t).value());
        worst_cal = worst_cal.max(corrected.angular_distance(t).value());
    }
    eprintln!("  raw worst error:        {worst_raw:.2}°");
    eprintln!("  calibrated worst error: {worst_cal:.2}°");
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e4_field_magnitude");
    group.sample_size(10);

    let mut compass = Compass::new(CompassConfig::paper_design()).expect("valid");
    group.bench_function("full_compass_fix", |b| {
        b.iter(|| {
            black_box(
                compass
                    .measure_heading(black_box(Degrees::new(123.0)))
                    .heading,
            )
        })
    });

    let mut weak = Compass::new(CompassConfig::at_location(Location::SouthPole)).expect("valid");
    group.bench_function("full_fix_weak_horizontal_field", |b| {
        b.iter(|| black_box(weak.measure_heading(black_box(Degrees::new(123.0))).heading))
    });
    group.finish();

    // The acceptance sweep of the parallel engine: a full 360-point
    // heading sweep, serial vs. one-worker-per-core. The two produce
    // bit-identical AccuracyStats (tests/determinism.rs); here we time
    // them against each other.
    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid");
    let serial = ExecPolicy::serial();
    let auto = ExecPolicy::auto();
    let mut sweep = c.benchmark_group("e4_sweep_360_headings");
    sweep.sample_size(3);
    sweep.bench_function("serial", |b| {
        b.iter(|| black_box(sweep_headings(&design, 360, &serial)))
    });
    sweep.bench_function(&format!("parallel_{}_threads", auto.threads()), |b| {
        b.iter(|| black_box(sweep_headings(&design, 360, &auto)))
    });
    sweep.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
