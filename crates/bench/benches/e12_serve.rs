//! E12 — the compass fix server under load.
//!
//! Server and load generator run in-process over a real localhost TCP
//! socket. The contract comes first: a fix served over the wire —
//! cached or freshly computed — must be **bit-identical** to a direct
//! `CompassDesign` measurement with the same seed. Then two load
//! profiles are measured: a cache-friendly mix (few unique fixes, the
//! stationary-platform case) and a cache-defeating mix (every fix
//! unique), each reporting throughput and p50/p95/p99 latency into
//! `BENCH_serve.json`.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::{banner, write_bench_json};
use fluxcomp_compass::{CompassConfig, CompassDesign, MeasureScratch};
use fluxcomp_serve::protocol::{
    read_frame, write_request, FieldSpec, FixRequest, FixResponse, ReadFrame, Status,
};
use fluxcomp_serve::{loadgen, FixServer, LoadGenConfig, ServeConfig};
use std::hint::black_box;
use std::net::TcpStream;
use std::time::Duration;

fn request_fix(stream: &mut TcpStream, request: &FixRequest) -> FixResponse {
    write_request(stream, request).expect("send request");
    let mut buf = Vec::new();
    match read_frame(stream, &mut buf).expect("read response") {
        ReadFrame::Frame(len) => FixResponse::decode_payload(&buf[..len]).expect("decode response"),
        ReadFrame::Eof => panic!("server hung up"),
    }
}

/// The acceptance gate: cached and uncached served fixes, heading-truth
/// and field-vector, all bit-identical to direct measurement.
fn assert_bit_identity(server: &FixServer) -> bool {
    let design = server.design();
    let mut scratch = MeasureScratch::for_design(design);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut checked = 0u32;
    for (i, truth) in [0.0f64, 77.5, 123.0, 251.25, 359.0].into_iter().enumerate() {
        let seed = 0xE12 + i as u64;
        let direct =
            design.measure_heading_scratch(fluxcomp_units::Degrees::new(truth), seed, &mut scratch);
        let request = FixRequest {
            id: i as u64,
            seed,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(truth),
        };
        // Uncached (first contact), then cached — same bits both times.
        for expect_hit in [false, true] {
            let response = request_fix(&mut stream, &request);
            assert_eq!(response.status, Status::Ok);
            assert_eq!(response.cache_hit, expect_hit);
            assert_eq!(response.heading.to_bits(), direct.heading.value().to_bits());
            assert_eq!(response.duty_x.to_bits(), direct.x.duty.to_bits());
            assert_eq!(response.duty_y.to_bits(), direct.y.duty.to_bits());
            assert_eq!(response.count_x, direct.x.count);
            assert_eq!(response.count_y, direct.y.count);
            checked += 1;
        }
        // Field-vector form of the same fix, cache bypassed.
        let (hx, hy) = design.axial_fields(fluxcomp_units::Degrees::new(truth));
        let direct_vec = design.measure_field_scratch(hx, hy, seed, &mut scratch);
        let response = request_fix(
            &mut stream,
            &FixRequest {
                id: 100 + i as u64,
                seed,
                deadline_ms: 0,
                no_cache: true,
                field: FieldSpec::FieldVector {
                    hx: hx.value(),
                    hy: hy.value(),
                },
            },
        );
        assert_eq!(response.status, Status::Ok);
        assert!(!response.cache_hit);
        assert_eq!(
            response.heading.to_bits(),
            direct_vec.heading.value().to_bits()
        );
        checked += 1;
    }
    checked == 15
}

fn run_load(
    server: &FixServer,
    requests: usize,
    unique_fixes: usize,
    no_cache: bool,
) -> loadgen::LoadReport {
    loadgen::run(&LoadGenConfig {
        addr: server.local_addr().to_string(),
        requests,
        connections: 4,
        unique_fixes,
        no_cache,
        base_seed: 0xE12,
        ..LoadGenConfig::default()
    })
    .expect("loadgen run")
}

fn print_experiment() -> std::io::Result<()> {
    banner(
        "E12",
        "fix server under load: batching, fix cache, tail latency",
        "serving layer: many clients sharing one measurement core",
    );

    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    // Queue sized above the largest closed-throttle burst below: this
    // experiment measures throughput and tail latency, not load
    // shedding (the overload path has its own integration tests).
    let mut server = FixServer::start(
        design,
        ServeConfig {
            queue_capacity: 4096,
            ..ServeConfig::default()
        },
    )
    .expect("start server");
    eprintln!("  server on {} (in-process)", server.local_addr());

    let bit_identical = assert_bit_identity(&server);
    eprintln!("  wire fixes vs direct measurement (cached + uncached + vector): bit-identical ✓");

    // Cache-friendly: 16 unique fixes cycled — the stationary platform
    // polled by a fleet of clients.
    let cached = run_load(&server, 2000, 16, false);
    assert_eq!(cached.ok, cached.sent, "every cached-mix fix must succeed");
    assert_eq!(cached.protocol_errors, 0);
    // Cache-defeating: every fix unique, measured fresh.
    let uncached = run_load(&server, 600, 600, true);
    assert_eq!(
        uncached.ok, uncached.sent,
        "every uncached fix must succeed"
    );
    assert_eq!(uncached.protocol_errors, 0);

    for (name, r) in [("cache-friendly", &cached), ("uncached", &uncached)] {
        eprintln!(
            "  {name:<15}: {:>8.0} fixes/s | hits {:>5.1} % | p50 {:>7.3} ms  p95 {:>7.3} ms  p99 {:>7.3} ms",
            r.fixes_per_s,
            100.0 * r.cache_hits as f64 / r.completed.max(1) as f64,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
        );
    }

    let path = write_bench_json(
        "BENCH_serve.json",
        "e12_serve",
        &[
            ("bit_identical", f64::from(u8::from(bit_identical))),
            ("requests_cached_mix", cached.sent as f64),
            ("fixes_per_s_cached", cached.fixes_per_s),
            (
                "cache_hit_rate",
                cached.cache_hits as f64 / cached.completed.max(1) as f64,
            ),
            ("p50_ms_cached", cached.p50_ms),
            ("p95_ms_cached", cached.p95_ms),
            ("p99_ms_cached", cached.p99_ms),
            ("requests_uncached", uncached.sent as f64),
            ("fixes_per_s_uncached", uncached.fixes_per_s),
            ("p50_ms_uncached", uncached.p50_ms),
            ("p95_ms_uncached", uncached.p95_ms),
            ("p99_ms_uncached", uncached.p99_ms),
            // Per-status accounting across both mixes: nothing is
            // lumped into a catch-all — every non-Ok outcome is typed.
            ("completed", (cached.completed + uncached.completed) as f64),
            ("ok", (cached.ok + uncached.ok) as f64),
            (
                "overloaded",
                (cached.overloaded + uncached.overloaded) as f64,
            ),
            (
                "deadline_exceeded",
                (cached.deadline_exceeded + uncached.deadline_exceeded) as f64,
            ),
            (
                "shutting_down",
                (cached.shutting_down + uncached.shutting_down) as f64,
            ),
            (
                "unmeasurable",
                (cached.unmeasurable + uncached.unmeasurable) as f64,
            ),
            (
                "quality_degraded",
                (cached.quality_degraded + uncached.quality_degraded) as f64,
            ),
            ("retries", (cached.retries + uncached.retries) as f64),
            ("lost", (cached.lost + uncached.lost) as f64),
            (
                "errors",
                (cached.protocol_errors + uncached.protocol_errors) as f64,
            ),
        ],
    )?;
    eprintln!("  -> {}", path.display());
    server.shutdown();
    Ok(())
}

fn bench(c: &mut Criterion) {
    print_experiment().expect("bench artefact written");

    let design = CompassDesign::new(CompassConfig::paper_design()).expect("valid design");
    let mut server = FixServer::start(design, ServeConfig::default()).expect("start server");
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");

    let mut group = c.benchmark_group("e12_serve");
    group.sample_size(20);
    // One round trip of a cached fix: protocol + queue + cache lookup.
    let cached_request = FixRequest {
        id: 0,
        seed: 1,
        deadline_ms: 0,
        no_cache: false,
        field: FieldSpec::HeadingTruth(45.0),
    };
    request_fix(&mut stream, &cached_request); // warm the cache
    group.bench_function("round_trip_cached", |b| {
        b.iter(|| black_box(request_fix(&mut stream, black_box(&cached_request))))
    });
    // One round trip that computes a fresh fix every time.
    let mut seed = 1000u64;
    group.bench_function("round_trip_uncached", |b| {
        b.iter(|| {
            seed += 1;
            let request = FixRequest {
                id: seed,
                seed,
                deadline_ms: 0,
                no_cache: true,
                field: FieldSpec::HeadingTruth(45.0),
            };
            black_box(request_fix(&mut stream, black_box(&request)))
        })
    });
    group.finish();
    drop(stream);
    server.shutdown();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
