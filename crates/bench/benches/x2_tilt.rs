//! X2 (extension) — tilt error and the three-axis remedy.
//!
//! The paper's compass "functions by measuring the magnetic field in a
//! horizontal plane"; this experiment quantifies what happens when the
//! watch is *not* level at the authors' latitude (67° dip), shows the
//! tilt-compensated three-axis extension recovering the heading, and
//! measures how circular smoothing steadies noisy repeated fixes.

use criterion::{criterion_group, Criterion};
use fluxcomp_bench::banner;
use fluxcomp_compass::filter::{circular_std, HeadingSmoother};
use fluxcomp_compass::tilt::{
    body_field, tilt_compensated_heading, two_axis_heading, worst_tilt_error, Attitude,
};
use fluxcomp_compass::{CompassConfig, CompassDesign};
use fluxcomp_exec::{derive_seed, ExecPolicy};
use fluxcomp_fluxgate::earth::{EarthField, Location};
use fluxcomp_units::angle::Degrees;
use std::hint::black_box;

fn print_experiment() {
    banner(
        "X2",
        "tilt error and tilt compensation (extension)",
        "§2 'horizontal plane'",
    );

    let field = EarthField::at(Location::Enschede);
    eprintln!("  two-axis worst heading error vs pitch (Enschede, 67° dip):");
    eprintln!(
        "  {:>10} {:>14} {:>18}",
        "pitch [°]", "2-axis err [°]", "3-axis comp. [°]"
    );
    for pitch in [0.0, 2.0, 5.0, 10.0, 20.0] {
        let att = Attitude::new(Degrees::new(pitch), Degrees::ZERO);
        let raw = worst_tilt_error(&field, att, 36, &ExecPolicy::serial()).value();
        // Compensated worst error (exact attitude knowledge).
        let mut comp_worst = 0.0f64;
        for k in 0..36 {
            let truth = Degrees::new(k as f64 * 10.0);
            let (bx, by, bz) = body_field(&field, truth, att);
            let got = tilt_compensated_heading(bx, by, bz, att);
            comp_worst = comp_worst.max(got.angular_distance(truth).value());
        }
        eprintln!("  {pitch:>10.0} {raw:>14.2} {comp_worst:>18.6}");
    }
    eprintln!("  -> even 2° of pitch already eats most of the 1° budget at 67°");
    eprintln!("     dip; a third fluxgate + inclinometer removes the error.");

    eprintln!("\n  repeated noisy fixes, raw vs smoothed (sigma of 60 fixes):");
    let mut cfg = CompassConfig::paper_design();
    cfg.frontend.pickup_noise_rms = 2e-3;
    cfg.frontend.detector.hysteresis = fluxcomp_units::Volt::new(0.016);
    let design = CompassDesign::new(cfg).expect("valid");
    let base_seed = design.config().frontend.noise_seed;
    let truth = Degrees::new(123.0);
    let mut raw_fixes = Vec::new();
    let mut smoother = HeadingSmoother::new(0.25);
    let mut smoothed_tail = Vec::new();
    for k in 0..60u64 {
        // A fresh noise realisation per fix, deterministically derived.
        let fix = design
            .measure_heading_seeded(truth, derive_seed(base_seed, k))
            .heading;
        raw_fixes.push(fix);
        let s = smoother.update(fix);
        if k >= 20 {
            smoothed_tail.push(s);
        }
    }
    let raw_std = circular_std(&raw_fixes).unwrap().value();
    let smooth_std = circular_std(&smoothed_tail).unwrap().value();
    eprintln!("    raw fixes:      sigma = {raw_std:.3}°");
    eprintln!("    smoothed (α=0.25): sigma = {smooth_std:.3}°");
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("x2_tilt");

    let field = EarthField::at(Location::Enschede);
    let att = Attitude::new(Degrees::new(10.0), Degrees::new(-5.0));
    group.bench_function("body_field_rotation", |b| {
        b.iter(|| black_box(body_field(&field, black_box(Degrees::new(123.0)), att)))
    });
    group.bench_function("tilt_compensated_heading", |b| {
        let (bx, by, bz) = body_field(&field, Degrees::new(123.0), att);
        b.iter(|| black_box(tilt_compensated_heading(bx, by, bz, att)))
    });
    group.bench_function("two_axis_heading", |b| {
        b.iter(|| {
            black_box(two_axis_heading(
                &field,
                black_box(Degrees::new(123.0)),
                att,
            ))
        })
    });

    let mut smoother = HeadingSmoother::new(0.25);
    group.bench_function("heading_smoother_update", |b| {
        b.iter(|| black_box(smoother.update(black_box(Degrees::new(90.5)))))
    });

    // The 360-point tilt scan on the sweep engine, serial vs pooled.
    let serial = ExecPolicy::serial();
    let auto = ExecPolicy::auto().with_chunk(16);
    group.bench_function("tilt_scan_360_serial", |b| {
        b.iter(|| black_box(worst_tilt_error(&field, att, 360, &serial)))
    });
    group.bench_function("tilt_scan_360_parallel", |b| {
        b.iter(|| black_box(worst_tilt_error(&field, att, 360, &auto)))
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
