//! E9 — claims C4/C5: the sensor operating point.
//!
//! * "Best sensitivity is obtained when the applied magnetic field is
//!   twice the saturation field" — reproduced by sweeping the excitation
//!   amplitude and measuring the end-to-end field-readout gain and
//!   error;
//! * the measured \[Kaw95\] element (H_K = 1 Oe ≈ 15× the earth's field)
//!   vs the adapted ELDO model;
//! * the 800 Ω drive limit at 5 V, and the dc-offset-correction
//!   ablation.

use criterion::{criterion_group, Criterion};
use fluxcomp_afe::frontend::{FrontEnd, FrontEndConfig};
use fluxcomp_afe::oscillator::{OffsetCorrection, TriangleWave};
use fluxcomp_afe::vi_converter::ViConverter;
use fluxcomp_bench::{banner, microtesla_to_h};
use fluxcomp_fluxgate::transducer::{Fluxgate, FluxgateParams};
use fluxcomp_units::si::{Ampere, Ohm};
use std::hint::black_box;

fn print_experiment() {
    banner(
        "E9",
        "sensitivity vs excitation amplitude; sensor variants",
        "§2.1.1/§3.1, C4/C5",
    );

    let h_test = microtesla_to_h(15.0);
    eprintln!("  excitation sweep (field readout of a 15 µT component; H_sat = 120 A/m):");
    eprintln!(
        "  {:>12} {:>12} {:>14} {:>12}",
        "I_pp [mA]", "H_pk/H_sat", "duty shift", "err [%]"
    );
    for ratio in [0.75f64, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let mut cfg = FrontEndConfig::paper_design();
        let sensor = Fluxgate::new(cfg.sensor);
        let ipp = sensor.excitation_pp_for_ratio(ratio);
        cfg.excitation = TriangleWave::paper_excitation().with_amplitude_pp(ipp);
        let fe = FrontEnd::new(cfg).expect("valid config");
        let result = fe.measure(h_test);
        let est = result.field_estimate(fe.peak_excitation_field());
        let err = (est.value() - h_test.value()) / h_test.value() * 100.0;
        eprintln!(
            "  {:>12.2} {ratio:>12.2} {:>14.5} {err:>12.2}",
            ipp.value() * 1e3,
            0.5 - result.duty
        );
    }
    eprintln!("  -> ratio < 1 never saturates the core: no pulses, the readout");
    eprintln!("     breaks down completely. Ratio 1 works but with zero margin;");
    eprintln!("     the paper's ratio 2 keeps a full saturation-field of headroom");
    eprintln!("     for offsets/disturbances while the duty swing per µT (the");
    eprintln!("     sensitivity, ∝ 1/H_pk) is still half of the theoretical max.");

    eprintln!("\n  sensor variants at the paper's 12 mA p-p drive:");
    for (name, params) in [
        ("adapted (paper model)", FluxgateParams::adapted()),
        ("kaw95 (H_K = 1 Oe)", FluxgateParams::kaw95()),
        (
            "adapted + hysteresis",
            FluxgateParams::adapted_hysteretic(0.1),
        ),
    ] {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.sensor = params;
        let fe = FrontEnd::new(cfg).expect("valid config");
        let result = fe.measure(h_test);
        let est = result.field_estimate(fe.peak_excitation_field());
        let err = (est.value() - h_test.value()) / h_test.value() * 100.0;
        eprintln!(
            "    {name:<24} duty {:.5}  err {err:>7.2} %  clipped: {}",
            result.duty, result.clipped
        );
    }

    eprintln!("\n  V-I drive limit at 5 V (claim: up to 800 Ω):");
    let vi = ViConverter::paper_design();
    for r in [77.0, 400.0, 766.0, 800.0, 900.0] {
        eprintln!(
            "    R = {r:>4.0} Ω: max current {:.2} mA {}",
            vi.max_current(Ohm::new(r)).value() * 1e3,
            if vi.clips(Ampere::new(6e-3), Ohm::new(r)) {
                "(clips at ±6 mA)"
            } else {
                ""
            }
        );
    }

    eprintln!("\n  dc-offset ablation (0.5 mA oscillator offset looks like a field):");
    let offset = Ampere::new(0.5e-3);
    let mut cfg = FrontEndConfig::paper_design();
    cfg.excitation = TriangleWave::paper_excitation().with_dc_offset(offset);
    let fe = FrontEnd::new(cfg.clone()).expect("valid config");
    let est_uncorrected = fe
        .measure(h_test)
        .field_estimate(fe.peak_excitation_field());
    let mut servo = OffsetCorrection::new(1.0);
    cfg.excitation = servo.update(&cfg.excitation, cfg.excitation.mean());
    let fe = FrontEnd::new(cfg).expect("valid config");
    let est_corrected = fe
        .measure(h_test)
        .field_estimate(fe.peak_excitation_field());
    eprintln!(
        "    without correction: {:.2} A/m (truth {:.2}) — biased by the offset",
        est_uncorrected.value(),
        h_test.value()
    );
    eprintln!("    with correction:    {:.2} A/m", est_corrected.value());
}

fn bench(c: &mut Criterion) {
    print_experiment();

    let mut group = c.benchmark_group("e9_sensitivity");
    group.sample_size(20);

    let sensor = Fluxgate::new(FluxgateParams::adapted());
    group.bench_function("pickup_emf_model_1k_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..1000 {
                let h = fluxcomp_units::AmperePerMeter::new((k as f64 - 500.0) * 0.5);
                acc += sensor.pickup_emf(black_box(h), 7.68e6).value();
            }
            black_box(acc)
        })
    });

    let fe = FrontEnd::new(FrontEndConfig::paper_design()).expect("valid config");
    let h = microtesla_to_h(15.0);
    group.bench_function("field_readout_end_to_end", |b| {
        b.iter(|| {
            black_box(
                fe.run(black_box(h))
                    .field_estimate(fe.peak_excitation_field()),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
fluxcomp_bench::bench_main!(benches);
