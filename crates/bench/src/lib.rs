//! # fluxcomp-bench
//!
//! Shared helpers for the benchmark harness. Each bench target under
//! `benches/` regenerates one experiment from `DESIGN.md` (E1..E10):
//! it first **prints the table/series the paper's figure or claim
//! corresponds to** (so `cargo bench` output doubles as the experiment
//! log recorded in `EXPERIMENTS.md`) and then times the computational
//! kernel behind it with Criterion.

use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};

pub use fluxcomp_obs as obs;

/// Like `criterion_main!`, but opens a `fluxcomp-obs` session around the
/// whole run: `FLUXCOMP_OBS=json cargo bench -p fluxcomp-bench` dumps
/// the instrumentation profile (solver steps, front-end runs, exec pool
/// activity, …) to stderr when the harness exits. With `FLUXCOMP_OBS`
/// unset or `off` the recorder stays disabled and the benches measure
/// the production fast path.
#[macro_export]
macro_rules! bench_main {
    ( $( $group:path ),+ $(,)* ) => {
        fn main() {
            let _obs = $crate::obs::init_from_env();
            $( $group(); )+
        }
    };
}

/// Converts a flux density in microtesla to the field strength the
/// sensor models consume.
pub fn microtesla_to_h(ut: f64) -> AmperePerMeter {
    AmperePerMeter::new(Tesla::from_microtesla(ut).value() / MU_0)
}

/// Prints an experiment banner so the bench log is self-describing.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    eprintln!("\n================================================================");
    eprintln!("{id}: {title}");
    eprintln!("paper reference: {paper_ref}");
    eprintln!("================================================================");
}

/// Prints one row of a two-column numeric series.
pub fn row2(label: &str, a: f64, b: f64) {
    eprintln!("  {label:<28} {a:>12.4} {b:>12.4}");
}

/// Renders a flat machine-readable benchmark record: one JSON object
/// with the experiment id and a set of named numeric fields, in field
/// order, `\n`-terminated — trivially diffable and `jq`-friendly.
///
/// # Panics
///
/// Panics if a field value is not finite (a NaN in a regression artefact
/// would poison every downstream comparison silently).
pub fn render_bench_json(experiment: &str, fields: &[(&str, f64)]) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"experiment\":\"{experiment}\""));
    for (name, value) in fields {
        assert!(value.is_finite(), "field {name} is not finite: {value}");
        out.push_str(&format!(",\"{name}\":{value}"));
    }
    out.push_str("}\n");
    out
}

/// Writes [`render_bench_json`] output to `file_name` in the benchmark
/// artefact directory: `$FLUXCOMP_BENCH_DIR` when set, the workspace
/// root otherwise. Returns the path written.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_bench_json(
    file_name: &str,
    experiment: &str,
    fields: &[(&str, f64)],
) -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::var_os("FLUXCOMP_BENCH_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let path = dir.join(file_name);
    std::fs::write(&path, render_bench_json(experiment, fields))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microtesla_conversion() {
        let h = microtesla_to_h(15.0);
        assert!((h.value() - 11.936_62).abs() < 1e-3);
    }

    #[test]
    fn bench_json_renders_flat_object() {
        let json = render_bench_json("e11", &[("fixes_per_s", 123.5), ("speedup", 2.0)]);
        assert_eq!(
            json,
            "{\"experiment\":\"e11\",\"fixes_per_s\":123.5,\"speedup\":2}\n"
        );
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn bench_json_rejects_nan() {
        let _ = render_bench_json("e11", &[("bad", f64::NAN)]);
    }
}
