//! # fluxcomp-bench
//!
//! Shared helpers for the benchmark harness. Each bench target under
//! `benches/` regenerates one experiment from `DESIGN.md` (E1..E10):
//! it first **prints the table/series the paper's figure or claim
//! corresponds to** (so `cargo bench` output doubles as the experiment
//! log recorded in `EXPERIMENTS.md`) and then times the computational
//! kernel behind it with Criterion.

use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};

pub use fluxcomp_obs as obs;

/// Like `criterion_main!`, but opens a `fluxcomp-obs` session around the
/// whole run: `FLUXCOMP_OBS=json cargo bench -p fluxcomp-bench` dumps
/// the instrumentation profile (solver steps, front-end runs, exec pool
/// activity, …) to stderr when the harness exits. With `FLUXCOMP_OBS`
/// unset or `off` the recorder stays disabled and the benches measure
/// the production fast path.
#[macro_export]
macro_rules! bench_main {
    ( $( $group:path ),+ $(,)* ) => {
        fn main() {
            let _obs = $crate::obs::init_from_env();
            $( $group(); )+
        }
    };
}

/// Converts a flux density in microtesla to the field strength the
/// sensor models consume.
pub fn microtesla_to_h(ut: f64) -> AmperePerMeter {
    AmperePerMeter::new(Tesla::from_microtesla(ut).value() / MU_0)
}

/// Prints an experiment banner so the bench log is self-describing.
pub fn banner(id: &str, title: &str, paper_ref: &str) {
    eprintln!("\n================================================================");
    eprintln!("{id}: {title}");
    eprintln!("paper reference: {paper_ref}");
    eprintln!("================================================================");
}

/// Prints one row of a two-column numeric series.
pub fn row2(label: &str, a: f64, b: f64) {
    eprintln!("  {label:<28} {a:>12.4} {b:>12.4}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microtesla_conversion() {
        let h = microtesla_to_h(15.0);
        assert!((h.value() - 11.936_62).abs() < 1e-3);
    }
}
