//! Property tests for the sensor physics.

use fluxcomp_fluxgate::core_model::{CoreModel, Sweep};
use fluxcomp_fluxgate::earth::{EarthField, MagneticDisturbance};
use fluxcomp_fluxgate::jiles_atherton::{JaParams, JilesAthertonCore};
use fluxcomp_fluxgate::pair::{SensorPair, SensorPairParams};
use fluxcomp_fluxgate::transducer::{Fluxgate, FluxgateParams};
use fluxcomp_units::magnetics::{AmperePerMeter, Tesla};
use fluxcomp_units::si::Ampere;
use fluxcomp_units::Degrees;
use proptest::prelude::*;

proptest! {
    /// The anhysteretic B(H) curve is strictly increasing (µ > 0
    /// everywhere) and odd.
    #[test]
    fn anhysteretic_monotone_and_odd(h1 in -500.0f64..500.0, h2 in -500.0f64..500.0) {
        let m = CoreModel::anhysteretic(Tesla::new(0.5), AmperePerMeter::new(40.0));
        let b1 = m.b(AmperePerMeter::new(h1), Sweep::Up).value();
        let b2 = m.b(AmperePerMeter::new(h2), Sweep::Up).value();
        if h1 < h2 {
            prop_assert!(b1 < b2);
        }
        let bneg = m.b(AmperePerMeter::new(-h1), Sweep::Up).value();
        prop_assert!((b1 + bneg).abs() < 1e-12);
        prop_assert!(m.mu_diff(AmperePerMeter::new(h1), Sweep::Up) > 0.0);
    }

    /// |B| never exceeds B_sat + µ0·|H| (the physical bound).
    #[test]
    fn flux_density_bounded(h in -1e5f64..1e5) {
        let m = CoreModel::anhysteretic(Tesla::new(0.5), AmperePerMeter::new(40.0));
        let b = m.b(AmperePerMeter::new(h), Sweep::Up).value().abs();
        let bound = 0.5 + fluxcomp_units::MU_0 * h.abs() + 1e-12;
        prop_assert!(b <= bound);
    }

    /// Current → field → current round-trips through the transducer.
    #[test]
    fn transducer_current_field_bijection(ma in -50.0f64..50.0) {
        let s = Fluxgate::new(FluxgateParams::adapted());
        let i = Ampere::new(ma * 1e-3);
        let back = s.current_for_field(s.h_from_current(i));
        prop_assert!((back.value() - i.value()).abs() < 1e-15);
    }

    /// Pickup EMF is linear in the field slew rate.
    #[test]
    fn pickup_emf_linear_in_slew(h in -200.0f64..200.0, slew in 1e3f64..1e7) {
        let s = Fluxgate::new(FluxgateParams::adapted());
        let ha = AmperePerMeter::new(h);
        let v1 = s.pickup_emf(ha, slew).value();
        let v2 = s.pickup_emf(ha, 2.0 * slew).value();
        prop_assert!((v2 - 2.0 * v1).abs() < 1e-9 * v1.abs().max(1e-12));
    }

    /// The earth-model heading round-trip holds for any heading and any
    /// nonzero horizontal field.
    #[test]
    fn earth_heading_round_trip(heading in 0.0f64..360.0, ut in 1.0f64..80.0) {
        let f = EarthField::horizontal(Tesla::from_microtesla(ut));
        let (bx, by) = f.body_components(Degrees::new(heading));
        let back = EarthField::heading_from_components(bx, by);
        prop_assert!(back.angular_distance(Degrees::new(heading)).value() < 1e-9);
    }

    /// Disturbance application is affine: applying to a sum equals the
    /// sum of applications minus one extra offset.
    #[test]
    fn disturbance_is_affine(bx in -50.0f64..50.0, by in -50.0f64..50.0,
                              ox in -5.0f64..5.0, oy in -5.0f64..5.0) {
        let d = MagneticDisturbance {
            hard_iron: (Tesla::from_microtesla(ox), Tesla::from_microtesla(oy)),
            soft_iron: [[1.1, 0.05], [-0.03, 0.95]],
        };
        let a = (Tesla::from_microtesla(bx), Tesla::from_microtesla(by));
        let b = (Tesla::from_microtesla(by), Tesla::from_microtesla(bx));
        let (sx, sy) = d.apply(a.0 + b.0, a.1 + b.1);
        let (ax, ay) = d.apply(a.0, a.1);
        let (bx2, by2) = d.apply(b.0, b.1);
        // f(a+b) = f(a) + f(b) − offset.
        prop_assert!((sx.value() - (ax.value() + bx2.value() - d.hard_iron.0.value())).abs() < 1e-18);
        prop_assert!((sy.value() - (ay.value() + by2.value() - d.hard_iron.1.value())).abs() < 1e-18);
    }

    /// An ideal pair recovers any heading exactly from its axial fields.
    #[test]
    fn ideal_pair_recovers_heading(heading in 0.0f64..360.0) {
        let pair = SensorPair::new(SensorPairParams::ideal());
        let f = EarthField::horizontal(Tesla::from_microtesla(20.0));
        let (hx, hy) = pair.axial_fields(&f, Degrees::new(heading));
        let est = Degrees::atan2(hy.value(), hx.value()).normalized();
        prop_assert!(est.angular_distance(Degrees::new(heading)).value() < 1e-9);
    }

    /// The JA core's magnetisation always stays within ±Ms, whatever
    /// drive sequence it sees.
    #[test]
    fn ja_magnetization_bounded(targets in prop::collection::vec(-500.0f64..500.0, 1..12)) {
        let params = JaParams::permalloy_film();
        let mut core = JilesAthertonCore::new(params);
        for t in targets {
            core.drive_to(AmperePerMeter::new(t), 64);
            prop_assert!(core.magnetization().value().abs() <= params.ms + 1e-9);
        }
    }
}
