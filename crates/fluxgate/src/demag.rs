//! Shape anisotropy / demagnetisation of the micro-machined core.
//!
//! Why could the paper "adapt" `H_K` at all? Because a thin-film
//! fluxgate core's effective saturation field is dominated by **shape**:
//! the demagnetising field `H_d = −N_d·M` of a finite core opposes the
//! magnetisation, so the apparent (externally measured) anisotropy is
//!
//! ```text
//! H_K,eff ≈ H_K,material + N_d·M_s
//! ```
//!
//! Making the core longer and thinner reduces the length-direction
//! demagnetising factor `N_d` and with it the drive field needed — the
//! "obtainable goal for a new fluxgate sensor" the paper mentions is a
//! geometry change. This module implements the standard prolate-
//! ellipsoid approximation for `N_d` and derives the effective core
//! model from geometry + material.

use crate::core_model::CoreModel;
use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};

/// The in-plane geometry of a thin-film core strip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreGeometry {
    /// Length along the sensitive axis, metres.
    pub length: f64,
    /// Width, metres.
    pub width: f64,
    /// Film thickness, metres.
    pub thickness: f64,
}

impl CoreGeometry {
    /// The \[Kaw95\]-class element: a 1 mm × 40 µm × 1 µm electroplated
    /// permalloy strip — its shape term reproduces the measured
    /// `H_K ≈ 1 Oe ≈ 80 A/m`.
    pub fn kaw95() -> Self {
        Self {
            length: 1.0e-3,
            width: 40e-6,
            thickness: 1e-6,
        }
    }

    /// The next-generation strip: the same film, 1.5× longer — which
    /// halves the shape anisotropy to the paper's adapted `H_K ≈
    /// 40 A/m`. This is the concrete content of "still an obtainable
    /// goal for a new fluxgate sensor".
    pub fn adapted() -> Self {
        Self {
            length: 1.5e-3,
            width: 40e-6,
            thickness: 1e-6,
        }
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `length ≥ width ≥ thickness > 0` (the prolate
    /// approximation's axis ordering).
    pub fn validate(&self) {
        assert!(self.thickness > 0.0, "thickness must be positive");
        assert!(self.width >= self.thickness, "width must be ≥ thickness");
        assert!(self.length >= self.width, "length must be ≥ width");
    }

    /// Aspect ratio `m = length / √(width·thickness)` of the equivalent
    /// prolate ellipsoid.
    pub fn aspect_ratio(&self) -> f64 {
        self.validate();
        self.length / (self.width * self.thickness).sqrt()
    }

    /// The demagnetising factor along the length, prolate-ellipsoid
    /// approximation (Osborn):
    ///
    /// ```text
    /// N_d = (ln(2m) − 1) / m²    for m ≫ 1
    /// ```
    pub fn demag_factor(&self) -> f64 {
        let m = self.aspect_ratio();
        assert!(m > 2.0, "prolate approximation needs an elongated core");
        ((2.0 * m).ln() - 1.0) / (m * m)
    }

    /// The effective anisotropy field of a film with material anisotropy
    /// `hk_material` and saturation `bsat`: the shape term `N_d·M_s`
    /// adds to the material term.
    pub fn effective_hk(&self, hk_material: AmperePerMeter, bsat: Tesla) -> AmperePerMeter {
        let ms = bsat.value() / MU_0;
        AmperePerMeter::new(hk_material.value() + self.demag_factor() * ms)
    }

    /// Derives the behavioural core model from geometry + material.
    pub fn core_model(&self, hk_material: AmperePerMeter, bsat: Tesla) -> CoreModel {
        CoreModel::anhysteretic(bsat, self.effective_hk(hk_material, bsat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BSAT: Tesla = Tesla::new(0.5);
    /// Soft-permalloy material anisotropy: a few A/m.
    const HK_MATERIAL: AmperePerMeter = AmperePerMeter::new(5.0);

    #[test]
    fn demag_factor_falls_with_aspect_ratio() {
        let fat = CoreGeometry::kaw95();
        let thin = CoreGeometry::adapted();
        assert!(thin.aspect_ratio() > fat.aspect_ratio());
        assert!(thin.demag_factor() < fat.demag_factor());
    }

    #[test]
    fn kaw95_geometry_reproduces_the_1oe_scale() {
        // The measured element's H_K ≈ 1 Oe ≈ 80 A/m: the shape term of
        // the 1 mm × 40 µm × 1 µm strip must land on it.
        let hk = CoreGeometry::kaw95().effective_hk(HK_MATERIAL, BSAT);
        assert!(
            (60.0..110.0).contains(&hk.value()),
            "kaw95 H_K,eff = {} A/m (expect ≈80 = 1 Oe)",
            hk.value()
        );
    }

    #[test]
    fn adapted_geometry_lands_near_the_papers_model() {
        // The adapted strip should realise roughly the 40 A/m the
        // reproduction's sensor model uses — "still an obtainable goal".
        let hk = CoreGeometry::adapted().effective_hk(HK_MATERIAL, BSAT);
        assert!(
            (30.0..55.0).contains(&hk.value()),
            "adapted H_K,eff = {} A/m (expect ≈40, the reproduction's model)",
            hk.value()
        );
    }

    #[test]
    fn shape_dominates_material() {
        let hk = CoreGeometry::kaw95().effective_hk(HK_MATERIAL, BSAT);
        assert!(hk.value() > 5.0 * HK_MATERIAL.value());
    }

    #[test]
    fn derived_core_model_is_usable() {
        let model = CoreGeometry::adapted().core_model(HK_MATERIAL, BSAT);
        assert_eq!(model.bsat(), BSAT);
        assert!(model.hk().value() > HK_MATERIAL.value());
        // And it saturates like any core model.
        assert!(model.is_saturated(model.hk() * 5.0, crate::core_model::Sweep::Up));
    }

    #[test]
    fn longer_core_needs_less_drive() {
        let short = CoreGeometry {
            length: 0.5e-3,
            ..CoreGeometry::adapted()
        };
        let long = CoreGeometry {
            length: 2.0e-3,
            ..CoreGeometry::adapted()
        };
        assert!(long.effective_hk(HK_MATERIAL, BSAT) < short.effective_hk(HK_MATERIAL, BSAT));
    }

    #[test]
    #[should_panic(expected = "length must be ≥ width")]
    fn bad_axis_order_rejected() {
        let g = CoreGeometry {
            length: 10e-6,
            width: 200e-6,
            thickness: 2e-6,
        };
        g.validate();
    }

    #[test]
    #[should_panic(expected = "elongated")]
    fn stubby_core_rejected() {
        let g = CoreGeometry {
            length: 210e-6,
            width: 200e-6,
            thickness: 100e-6,
        };
        let _ = g.demag_factor();
    }
}
