//! A Jiles-Atherton hysteresis model of the permalloy core.
//!
//! The paper derived its ELDO sensor model "from these measurements" of
//! a real \[Kaw95\] element. The workhorse behavioural model in
//! [`crate::core_model`] captures saturation with an optional
//! fixed-width loop; this module adds the standard *physical* hysteresis
//! model used for fluxgate cores in the literature (Jiles & Atherton
//! 1986, applied to fluxgates by Ripka): an ODE in the magnetisation
//! `M(H)` with pinning (`k`), domain-coupling (`α`), reversibility
//! (`c`) and the Langevin anhysteretic curve.
//!
//! The model is *stateful* — `M` is a true state variable integrated
//! along the excitation trajectory — so it exposes effects the shifted
//! -tanh loop cannot: minor loops, remanence after excitation stops, and
//! first-magnetisation curves. The E9 sensitivity experiment uses it as
//! a cross-check that the pulse-position readout is robust to a
//! physically modelled loop.
//!
//! Equations (standard form, field-driven):
//!
//! ```text
//! M_an(He) = Ms·(coth(He/a) − a/He),   He = H + α·M
//! dM/dH    = δM·(M_an − M)/(δ·k − α·(M_an − M)) · (1−c)  +  c·dM_an/dH
//! B        = µ0·(H + M)
//! ```
//!
//! with `δ = sign(dH/dt)` and `δM = 0` when the irreversible term would
//! move `M` against the sweep (the standard non-physical-negative-
//! susceptibility guard).

use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};

/// Parameters of the Jiles-Atherton model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaParams {
    /// Saturation magnetisation `Ms` (A/m).
    pub ms: f64,
    /// Anhysteretic shape parameter `a` (A/m).
    pub a: f64,
    /// Pinning-site parameter `k` (A/m) — sets the coercive field.
    pub k: f64,
    /// Inter-domain coupling `α` (dimensionless).
    pub alpha: f64,
    /// Reversible fraction `c` in `[0, 1)`.
    pub c: f64,
}

impl JaParams {
    /// A permalloy film matched to the paper's adapted core:
    /// `Ms ≈ B_sat/µ0` with `B_sat = 0.5 T`, shape parameter tuned so
    /// the anhysteretic knee sits near the behavioural model's
    /// `H_K = 40 A/m`, a soft ~4 A/m pinning (permalloy is a low-Hc
    /// material) and a small reversible fraction.
    pub fn permalloy_film() -> Self {
        Self {
            ms: 0.5 / MU_0,
            a: 14.0,
            k: 4.0,
            alpha: 1e-5,
            c: 0.1,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is outside its physical range.
    fn validate(&self) {
        assert!(self.ms > 0.0, "Ms must be positive");
        assert!(self.a > 0.0, "a must be positive");
        assert!(self.k > 0.0, "k must be positive");
        assert!(self.alpha >= 0.0, "alpha must be non-negative");
        assert!((0.0..1.0).contains(&self.c), "c must be in [0, 1)");
    }
}

impl Default for JaParams {
    fn default() -> Self {
        Self::permalloy_film()
    }
}

/// The Langevin function `L(x) = coth(x) − 1/x`, with the series
/// expansion near zero where the direct form loses precision.
fn langevin(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        // L(x) ≈ x/3 − x³/45.
        x / 3.0 - x.powi(3) / 45.0
    } else {
        1.0 / x.tanh() - 1.0 / x
    }
}

/// d/dx of the Langevin function.
fn langevin_deriv(x: f64) -> f64 {
    if x.abs() < 1e-4 {
        1.0 / 3.0 - x * x / 15.0
    } else {
        let s = x.sinh();
        1.0 / (x * x) - 1.0 / (s * s)
    }
}

/// A stateful Jiles-Atherton core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JilesAthertonCore {
    params: JaParams,
    /// Current magnetisation (A/m).
    m: f64,
    /// Current applied field (A/m).
    h: f64,
}

impl JilesAthertonCore {
    /// A demagnetised core (`M = 0`) at zero field.
    pub fn new(params: JaParams) -> Self {
        params.validate();
        Self {
            params,
            m: 0.0,
            h: 0.0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &JaParams {
        &self.params
    }

    /// Current magnetisation.
    pub fn magnetization(&self) -> AmperePerMeter {
        AmperePerMeter::new(self.m)
    }

    /// Current flux density `B = µ0(H + M)`.
    pub fn flux_density(&self) -> Tesla {
        Tesla::new(MU_0 * (self.h + self.m))
    }

    /// The anhysteretic magnetisation at effective field `he`.
    fn m_anhysteretic(&self, he: f64) -> f64 {
        self.params.ms * langevin(he / self.params.a)
    }

    /// Advances the state to a new applied field `h_new`, integrating
    /// `dM/dH` in `steps` sub-steps (explicit Euler in H, which is the
    /// standard and adequate choice for the smooth JA right-hand side).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`.
    pub fn drive_to(&mut self, h_new: AmperePerMeter, steps: u32) {
        assert!(steps > 0, "need at least one step");
        let h_target = h_new.value();
        let dh_total = h_target - self.h;
        if dh_total == 0.0 {
            return;
        }
        let dh = dh_total / steps as f64;
        let delta = dh.signum();
        let p = self.params;
        for _ in 0..steps {
            let he = self.h + p.alpha * self.m;
            let m_an = self.m_anhysteretic(he);
            let dm_an_dhe = p.ms / p.a * langevin_deriv(he / p.a);
            let diff = m_an - self.m;
            // Irreversible susceptibility, with the δM guard.
            let denom = delta * p.k - p.alpha * diff;
            let chi_irr = if diff * delta < 0.0 || denom.abs() < 1e-12 {
                0.0
            } else {
                diff / denom
            };
            let dm_dh =
                ((1.0 - p.c) * chi_irr + p.c * dm_an_dhe) / (1.0 - p.alpha * p.c * dm_an_dhe);
            self.m += dm_dh * dh;
            self.h += dh;
            // Physical clamp: |M| ≤ Ms.
            self.m = self.m.clamp(-p.ms, p.ms);
        }
    }

    /// Traces one full major loop: drives the field
    /// `0 → +h_peak → −h_peak → +h_peak` and returns the `(H, B)` points
    /// of the final (settled) cycle.
    pub fn major_loop(params: JaParams, h_peak: AmperePerMeter, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 8, "need a reasonable resolution");
        let mut core = Self::new(params);
        let hp = h_peak.value();
        // Settle: two full cycles.
        for _ in 0..2 {
            core.drive_to(AmperePerMeter::new(hp), 256);
            core.drive_to(AmperePerMeter::new(-hp), 512);
            core.drive_to(AmperePerMeter::new(hp), 512);
        }
        // Record the final cycle.
        let mut out = Vec::with_capacity(points);
        let half = points / 2;
        for i in 0..half {
            let h = hp - 2.0 * hp * (i as f64 / (half - 1) as f64);
            core.drive_to(AmperePerMeter::new(h), 8);
            out.push((h, core.flux_density().value()));
        }
        for i in 0..half {
            let h = -hp + 2.0 * hp * (i as f64 / (half - 1) as f64);
            core.drive_to(AmperePerMeter::new(h), 8);
            out.push((h, core.flux_density().value()));
        }
        out
    }

    /// The coercive field of the settled major loop: the *magnitude* of
    /// H where B crosses zero on the descending branch (which happens at
    /// `H = −H_c`), interpolated on the traced loop.
    pub fn coercivity(params: JaParams, h_peak: AmperePerMeter) -> AmperePerMeter {
        let loop_pts = Self::major_loop(params, h_peak, 512);
        // Descending branch: first half of the trace.
        let half = loop_pts.len() / 2;
        for w in loop_pts[..half].windows(2) {
            let (h0, b0) = w[0];
            let (h1, b1) = w[1];
            if b0 > 0.0 && b1 <= 0.0 {
                let frac = b0 / (b0 - b1);
                return AmperePerMeter::new((h0 + frac * (h1 - h0)).abs());
            }
        }
        AmperePerMeter::ZERO
    }

    /// Remanent flux density after removing a saturating field.
    pub fn remanence(params: JaParams, h_peak: AmperePerMeter) -> Tesla {
        let mut core = Self::new(params);
        let hp = h_peak.value();
        core.drive_to(AmperePerMeter::new(hp), 512);
        core.drive_to(AmperePerMeter::new(-hp), 1024);
        core.drive_to(AmperePerMeter::new(hp), 1024);
        core.drive_to(AmperePerMeter::ZERO, 512);
        core.flux_density()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> JaParams {
        JaParams::permalloy_film()
    }

    #[test]
    fn langevin_properties() {
        assert_eq!(langevin(0.0), 0.0);
        assert!((langevin(1e-6) - 1e-6 / 3.0).abs() < 1e-12);
        assert!(langevin(50.0) > 0.97);
        assert!((langevin(2.0) + langevin(-2.0)).abs() < 1e-12, "odd");
        // Derivative consistency.
        for x in [0.5f64, 2.0, 10.0] {
            let num = (langevin(x + 1e-6) - langevin(x - 1e-6)) / 2e-6;
            assert!((num - langevin_deriv(x)).abs() < 1e-6, "at {x}");
        }
    }

    #[test]
    fn virgin_curve_saturates_at_ms() {
        let mut core = JilesAthertonCore::new(params());
        core.drive_to(AmperePerMeter::new(2_000.0), 2_000);
        let m = core.magnetization().value();
        assert!(m > 0.95 * params().ms, "M = {m}, Ms = {}", params().ms);
        // B at saturation ≈ µ0(Ms + H) ≈ 0.5 T.
        assert!((core.flux_density().value() - 0.5).abs() < 0.05);
    }

    #[test]
    fn loop_shows_hysteresis() {
        let pts = JilesAthertonCore::major_loop(params(), AmperePerMeter::new(240.0), 256);
        // At H = 0 the two branches must differ (remanence ≠ 0).
        let near_zero: Vec<f64> = pts
            .iter()
            .filter(|(h, _)| h.abs() < 4.0)
            .map(|&(_, b)| b)
            .collect();
        let max = near_zero.iter().cloned().fold(f64::MIN, f64::max);
        let min = near_zero.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 0.0 && min < 0.0, "loop branches: {min}..{max}");
    }

    #[test]
    fn coercivity_is_low_like_permalloy() {
        let hc = JilesAthertonCore::coercivity(params(), AmperePerMeter::new(240.0));
        // Soft magnetic film: a few A/m, well under the pinning k + a.
        assert!((0.5..20.0).contains(&hc.value()), "Hc = {} A/m", hc.value());
    }

    #[test]
    fn remanence_is_positive_but_below_saturation() {
        let br = JilesAthertonCore::remanence(params(), AmperePerMeter::new(240.0));
        assert!(br.value() > 0.01, "Br = {}", br.value());
        assert!(br.value() < 0.5);
    }

    #[test]
    fn loop_is_odd_symmetric() {
        let pts = JilesAthertonCore::major_loop(params(), AmperePerMeter::new(240.0), 256);
        let half = pts.len() / 2;
        // Descending branch at +H mirrors ascending branch at −H.
        for k in 0..half {
            let (h_down, b_down) = pts[k];
            let (h_up, b_up) = pts[half + k];
            assert!((h_down + h_up).abs() < 2.0, "sweep grids align");
            assert!(
                (b_down + b_up).abs() < 0.03,
                "symmetry broken at k={k}: {b_down} vs {b_up}"
            );
        }
    }

    #[test]
    fn minor_loop_stays_inside_major_loop() {
        let mut core = JilesAthertonCore::new(params());
        // Settle on the major loop.
        for _ in 0..2 {
            core.drive_to(AmperePerMeter::new(240.0), 512);
            core.drive_to(AmperePerMeter::new(-240.0), 1024);
            core.drive_to(AmperePerMeter::new(240.0), 1024);
        }
        // A minor excursion: 240 → 100 → 240.
        core.drive_to(AmperePerMeter::new(100.0), 256);
        let b_minor = core.flux_density().value();
        // Compare with the major-loop descending branch at H = 100.
        let major = JilesAthertonCore::major_loop(params(), AmperePerMeter::new(240.0), 512);
        let b_major_desc = major
            .iter()
            .take(major.len() / 2)
            .min_by(|a, b| (a.0 - 100.0).abs().total_cmp(&(b.0 - 100.0).abs()))
            .unwrap()
            .1;
        // The minor branch reverses from deeper saturation, so it sits at
        // or above the major descending branch.
        assert!(
            b_minor >= b_major_desc - 0.02,
            "minor {b_minor} vs major {b_major_desc}"
        );
    }

    #[test]
    fn zero_drive_is_identity() {
        let mut core = JilesAthertonCore::new(params());
        core.drive_to(AmperePerMeter::new(50.0), 100);
        let before = core.magnetization();
        core.drive_to(AmperePerMeter::new(50.0), 100);
        assert_eq!(core.magnetization(), before);
    }

    #[test]
    fn magnetization_never_exceeds_ms() {
        let mut core = JilesAthertonCore::new(params());
        core.drive_to(AmperePerMeter::new(1e6), 100);
        assert!(core.magnetization().value() <= params().ms);
        core.drive_to(AmperePerMeter::new(-1e6), 100);
        assert!(core.magnetization().value() >= -params().ms);
    }

    #[test]
    #[should_panic(expected = "c must be in")]
    fn bad_params_rejected() {
        let mut p = params();
        p.c = 1.5;
        let _ = JilesAthertonCore::new(p);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let mut core = JilesAthertonCore::new(params());
        core.drive_to(AmperePerMeter::new(10.0), 0);
    }
}
