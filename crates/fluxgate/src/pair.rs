//! The orthogonal X/Y sensor pair.
//!
//! The compass measures the horizontal field "in two perpendicular
//! directions" (paper §2). [`SensorPair`] groups two [`Fluxgate`]
//! elements with the two dominant pair-level non-idealities:
//!
//! * **gain mismatch** — the two elements (and their V-I converters) are
//!   never perfectly matched; modelled as a multiplicative factor on the
//!   Y element's sensitivity;
//! * **axis misalignment** — the Y axis deviates from 90° by a small
//!   angle, folding a fraction of `B_x` into the Y measurement.
//!
//! The multiplexing itself (one sensor excited at a time, paper §2) is a
//! *system* behaviour and lives in the `compass` crate's scheduler.

use crate::earth::{EarthField, MagneticDisturbance};
use crate::transducer::{Fluxgate, FluxgateParams};
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::{AmperePerMeter, MU_0};

/// Which element of the pair is being addressed. The digital control
/// logic multiplexes between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The forward-pointing element.
    X,
    /// The rightward-pointing element.
    Y,
}

impl Axis {
    /// The other axis.
    pub fn other(self) -> Self {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// Construction parameters for a pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorPairParams {
    /// Element parameters, used for both axes.
    pub element: FluxgateParams,
    /// Multiplicative sensitivity mismatch on Y (1.0 = matched).
    pub gain_mismatch: f64,
    /// Deviation of the Y axis from perfect orthogonality.
    pub misalignment: Degrees,
    /// Platform disturbance applied to the field before the sensors.
    pub disturbance: MagneticDisturbance,
}

impl SensorPairParams {
    /// An ideal pair built from the paper's adapted element.
    pub fn ideal() -> Self {
        Self {
            element: FluxgateParams::adapted(),
            gain_mismatch: 1.0,
            misalignment: Degrees::ZERO,
            disturbance: MagneticDisturbance::none(),
        }
    }

    /// Validates the parameters without constructing the pair.
    ///
    /// Returns the same message [`SensorPair::new`] would panic with, so
    /// callers can surface the problem as a recoverable error instead.
    pub fn check(&self) -> Result<(), &'static str> {
        if !(self.gain_mismatch > 0.0 && self.gain_mismatch.is_finite()) {
            return Err("gain mismatch must be positive and finite");
        }
        self.element.check()
    }
}

impl Default for SensorPairParams {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Two orthogonal fluxgate elements on the MCM.
#[derive(Debug, Clone)]
pub struct SensorPair {
    x: Fluxgate,
    y: Fluxgate,
    params: SensorPairParams,
}

impl SensorPair {
    /// Builds the pair.
    ///
    /// # Panics
    ///
    /// Panics if `gain_mismatch` is not strictly positive, or the element
    /// parameters are invalid (see [`Fluxgate::new`]).
    pub fn new(params: SensorPairParams) -> Self {
        if let Err(reason) = params.check() {
            panic!("{reason}");
        }
        Self {
            x: Fluxgate::new(params.element),
            y: Fluxgate::new(params.element),
            params,
        }
    }

    /// The pair's parameters.
    pub fn params(&self) -> &SensorPairParams {
        &self.params
    }

    /// The element on the given axis.
    pub fn element(&self, axis: Axis) -> &Fluxgate {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
        }
    }

    /// The external axial field strength each element sees when the
    /// platform points at `heading` in `field`, including disturbance,
    /// misalignment and gain mismatch.
    ///
    /// Returns `(h_x, h_y)` in A/m.
    pub fn axial_fields(
        &self,
        field: &EarthField,
        heading: Degrees,
    ) -> (AmperePerMeter, AmperePerMeter) {
        let (bx, by) = field.body_components(heading);
        let (bx, by) = self.params.disturbance.apply(bx, by);
        // X axis points forward.
        let hx = AmperePerMeter::new(bx.value() / MU_0);
        // Y axis deviates from 90° by the misalignment angle ε:
        // it measures  B·ŷ' = -Bx·sin(ε) + By·cos(ε) … with the
        // convention that ŷ' = (sin(90°+ε) shifted) — for small ε this is
        // By + ε·Bx to first order. Gain mismatch multiplies on top.
        let eps = self.params.misalignment;
        let by_eff = by.value() * eps.cos() + bx.value() * eps.sin();
        let hy = AmperePerMeter::new(self.params.gain_mismatch * by_eff / MU_0);
        (hx, hy)
    }

    /// The field strength seen by one axis only — what the multiplexed
    /// measurement cycle uses.
    pub fn axial_field(&self, axis: Axis, field: &EarthField, heading: Degrees) -> AmperePerMeter {
        let (hx, hy) = self.axial_fields(field, heading);
        match axis {
            Axis::X => hx,
            Axis::Y => hy,
        }
    }
}

impl Default for SensorPair {
    fn default() -> Self {
        Self::new(SensorPairParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_units::magnetics::Tesla;

    fn field() -> EarthField {
        EarthField::horizontal(Tesla::from_microtesla(15.0))
    }

    #[test]
    fn ideal_pair_recovers_heading() {
        let pair = SensorPair::default();
        for deg in (0..360).step_by(15) {
            let heading = Degrees::new(deg as f64);
            let (hx, hy) = pair.axial_fields(&field(), heading);
            let est = Degrees::atan2(hy.value(), hx.value()).normalized();
            assert!(
                est.angular_distance(heading).value() < 1e-9,
                "at {deg}: {est}"
            );
        }
    }

    #[test]
    fn axis_other() {
        assert_eq!(Axis::X.other(), Axis::Y);
        assert_eq!(Axis::Y.other(), Axis::X);
    }

    #[test]
    fn single_axis_matches_pair() {
        let pair = SensorPair::default();
        let h = Degrees::new(73.0);
        let (hx, hy) = pair.axial_fields(&field(), h);
        assert_eq!(pair.axial_field(Axis::X, &field(), h), hx);
        assert_eq!(pair.axial_field(Axis::Y, &field(), h), hy);
    }

    #[test]
    fn gain_mismatch_biases_heading() {
        let mut p = SensorPairParams::ideal();
        p.gain_mismatch = 1.05;
        let pair = SensorPair::new(p);
        let heading = Degrees::new(45.0);
        let (hx, hy) = pair.axial_fields(&field(), heading);
        let est = Degrees::atan2(hy.value(), hx.value()).normalized();
        let err = est.angular_distance(heading).value();
        // 5 % mismatch at 45° ≈ 1.4° of error.
        assert!((1.0..2.0).contains(&err), "err = {err}");
        // …but no error on the cardinal axes where one component is zero.
        let (hx, hy) = pair.axial_fields(&field(), Degrees::ZERO);
        let est = Degrees::atan2(hy.value(), hx.value()).normalized();
        assert!(est.angular_distance(Degrees::ZERO).value() < 1e-9);
    }

    #[test]
    fn misalignment_folds_x_into_y() {
        let mut p = SensorPairParams::ideal();
        p.misalignment = Degrees::new(2.0);
        let pair = SensorPair::new(p);
        // Pointing north: By = 0 but the misaligned Y sees a bit of Bx.
        let (hx, hy) = pair.axial_fields(&field(), Degrees::ZERO);
        assert!(hy.value() > 0.0);
        assert!((hy.value() / hx.value() - Degrees::new(2.0).sin()).abs() < 1e-9);
    }

    #[test]
    fn hard_iron_disturbance_propagates() {
        let mut p = SensorPairParams::ideal();
        p.disturbance = MagneticDisturbance::hard(Tesla::from_microtesla(3.0), Tesla::ZERO);
        let pair = SensorPair::new(p);
        let (hx_clean, _) = SensorPair::default().axial_fields(&field(), Degrees::new(90.0));
        let (hx_dist, _) = pair.axial_fields(&field(), Degrees::new(90.0));
        let delta_b = (hx_dist.value() - hx_clean.value()) * MU_0;
        assert!((delta_b - 3e-6).abs() < 1e-12);
    }

    #[test]
    fn elements_share_parameters() {
        let pair = SensorPair::default();
        assert_eq!(
            pair.element(Axis::X).params(),
            pair.element(Axis::Y).params()
        );
    }

    #[test]
    #[should_panic(expected = "gain mismatch")]
    fn zero_gain_rejected() {
        let mut p = SensorPairParams::ideal();
        p.gain_mismatch = 0.0;
        let _ = SensorPair::new(p);
    }
}
