//! Temperature behaviour of the sensor and its drive.
//!
//! A wearable compass (the paper's watch use case) spans roughly −20 °C
//! to +60 °C. The paper does not quantify temperature effects — a
//! design-margin question its "broad specifications" remark gestures at
//! — so this module supplies the standard first-order models and the
//! extension experiment X1 measures how the pulse-position architecture
//! absorbs them:
//!
//! * **copper/aluminium coil resistance**: `R(T) = R₀·(1 + α_R·ΔT)`
//!   with `α_R ≈ 0.39 %/K` — this moves the V-I compliance limit;
//! * **permalloy saturation flux**: `B_sat(T) = B_sat(T₀)·(1 − α_B·ΔT)`
//!   (gradual approach to the Curie point far above the range);
//! * **anisotropy field `H_K`** drifts slightly with temperature —
//!   this scales the *sensitivity* but, crucially, identically for both
//!   sensors, so the heading ratio cancels it (the same argument as
//!   claim C9).

use crate::transducer::FluxgateParams;
use fluxcomp_units::si::Ohm;

/// First-order temperature coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalCoefficients {
    /// Relative resistance change per kelvin (metal coils: ≈ 0.0039).
    pub alpha_resistance: f64,
    /// Relative `B_sat` decrease per kelvin (permalloy: ≈ 3e-4).
    pub alpha_bsat: f64,
    /// Relative `H_K` change per kelvin (film anisotropy: ≈ −5e-4).
    pub alpha_hk: f64,
}

impl ThermalCoefficients {
    /// Typical values for an electroplated-permalloy/aluminium element.
    pub fn typical() -> Self {
        Self {
            alpha_resistance: 0.0039,
            alpha_bsat: 3.0e-4,
            alpha_hk: -5.0e-4,
        }
    }

    /// Zero coefficients — an ideal, temperature-free sensor.
    pub fn none() -> Self {
        Self {
            alpha_resistance: 0.0,
            alpha_bsat: 0.0,
            alpha_hk: 0.0,
        }
    }
}

impl Default for ThermalCoefficients {
    fn default() -> Self {
        Self::typical()
    }
}

/// The reference temperature of all nominal parameters, in °C.
pub const REFERENCE_CELSIUS: f64 = 25.0;

/// Derates a sensor's parameters to an operating temperature.
///
/// Returns a new [`FluxgateParams`] whose core and resistances reflect
/// `celsius`, leaving the geometry untouched.
pub fn sensor_at_temperature(
    nominal: &FluxgateParams,
    coeffs: &ThermalCoefficients,
    celsius: f64,
) -> FluxgateParams {
    let dt = celsius - REFERENCE_CELSIUS;
    let bsat = nominal.core.bsat() * (1.0 - coeffs.alpha_bsat * dt).max(0.01);
    let hk = nominal.core.hk() * (1.0 + coeffs.alpha_hk * dt).max(0.01);
    let core = match nominal.core {
        crate::core_model::CoreModel::Anhysteretic { .. } => {
            crate::core_model::CoreModel::anhysteretic(bsat, hk)
        }
        crate::core_model::CoreModel::Hysteretic { hc, hk: hk0, .. } => {
            // Scale the coercive field with H_K.
            let hc_scaled = hc * (hk.value() / hk0.value());
            crate::core_model::CoreModel::hysteretic(bsat, hk, hc_scaled)
        }
    };
    FluxgateParams {
        core,
        r_excitation: scale_resistance(nominal.r_excitation, coeffs, dt),
        r_pickup: scale_resistance(nominal.r_pickup, coeffs, dt),
        ..*nominal
    }
}

fn scale_resistance(r: Ohm, coeffs: &ThermalCoefficients, dt: f64) -> Ohm {
    r * (1.0 + coeffs.alpha_resistance * dt).max(0.01)
}

/// The sensitivity scale factor at temperature: the pulse-position duty
/// shift per unit field is `1/H_peak`, and when the drive is fixed the
/// *usable* sensitivity follows `H_K` drift. Both axes share it, so the
/// heading ratio is first-order temperature-free; this helper quantifies
/// the common-mode factor for the X1 experiment.
pub fn sensitivity_scale(coeffs: &ThermalCoefficients, celsius: f64) -> f64 {
    1.0 / (1.0 + coeffs.alpha_hk * (celsius - REFERENCE_CELSIUS)).max(0.01)
}

/// The hottest temperature at which the paper's V-I converter can still
/// drive the given sensor at ±`i_peak` from a 5 V supply — the thermal
/// margin of the 800 Ω claim.
pub fn max_drive_temperature(
    nominal: &FluxgateParams,
    coeffs: &ThermalCoefficients,
    i_peak: fluxcomp_units::Ampere,
    compliance: fluxcomp_units::Volt,
) -> f64 {
    if coeffs.alpha_resistance <= 0.0 {
        return f64::INFINITY;
    }
    // R(T) · i_peak = compliance  →  T.
    let r_limit = compliance.value() / i_peak.value();
    let ratio = r_limit / nominal.r_excitation.value();
    REFERENCE_CELSIUS + (ratio - 1.0) / coeffs.alpha_resistance
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_units::{Ampere, Volt};

    #[test]
    fn resistance_rises_with_temperature() {
        let nominal = FluxgateParams::adapted();
        let hot = sensor_at_temperature(&nominal, &ThermalCoefficients::typical(), 60.0);
        let cold = sensor_at_temperature(&nominal, &ThermalCoefficients::typical(), -20.0);
        assert!(hot.r_excitation > nominal.r_excitation);
        assert!(cold.r_excitation < nominal.r_excitation);
        // 35 K × 0.39 %/K ≈ +13.7 %.
        let expect = 77.0 * (1.0 + 0.0039 * 35.0);
        assert!((hot.r_excitation.value() - expect).abs() < 1e-9);
    }

    #[test]
    fn bsat_falls_hk_rises_when_cooling() {
        let nominal = FluxgateParams::adapted();
        let cold = sensor_at_temperature(&nominal, &ThermalCoefficients::typical(), -20.0);
        assert!(cold.core.bsat() > nominal.core.bsat());
        // alpha_hk negative: cooling raises H_K.
        assert!(cold.core.hk() > nominal.core.hk());
    }

    #[test]
    fn reference_temperature_is_identity() {
        let nominal = FluxgateParams::adapted();
        let same =
            sensor_at_temperature(&nominal, &ThermalCoefficients::typical(), REFERENCE_CELSIUS);
        assert_eq!(same, nominal);
    }

    #[test]
    fn none_coefficients_are_identity_everywhere() {
        let nominal = FluxgateParams::adapted();
        for t in [-40.0, 0.0, 85.0] {
            assert_eq!(
                sensor_at_temperature(&nominal, &ThermalCoefficients::none(), t),
                nominal
            );
        }
    }

    #[test]
    fn hysteretic_core_scales_hc_with_hk() {
        let nominal = FluxgateParams::adapted_hysteretic(0.2);
        let hot = sensor_at_temperature(&nominal, &ThermalCoefficients::typical(), 85.0);
        match (nominal.core, hot.core) {
            (
                crate::core_model::CoreModel::Hysteretic {
                    hc: hc0, hk: hk0, ..
                },
                crate::core_model::CoreModel::Hysteretic { hc, hk, .. },
            ) => {
                let r0 = hc0.value() / hk0.value();
                let r = hc.value() / hk.value();
                assert!((r - r0).abs() < 1e-12, "hc/hk ratio preserved");
            }
            _ => panic!("expected hysteretic cores"),
        }
    }

    #[test]
    fn sensitivity_scale_is_common_mode() {
        let c = ThermalCoefficients::typical();
        let s_hot = sensitivity_scale(&c, 60.0);
        let s_cold = sensitivity_scale(&c, -20.0);
        assert!(s_hot > 1.0, "H_K drops when hot -> more duty per field");
        assert!(s_cold < 1.0);
        assert_eq!(sensitivity_scale(&c, REFERENCE_CELSIUS), 1.0);
    }

    #[test]
    fn drive_margin_of_the_800_ohm_claim() {
        // A 700 Ω sensor at 25 °C: how hot before ±6 mA no longer fits
        // in the 4.6 V compliance (limit 766 Ω)?
        let mut nominal = FluxgateParams::adapted();
        nominal.r_excitation = Ohm::new(700.0);
        let t_max = max_drive_temperature(
            &nominal,
            &ThermalCoefficients::typical(),
            Ampere::new(6e-3),
            Volt::new(4.6),
        );
        // (766.67/700 − 1)/0.0039 ≈ 24.4 K above reference.
        assert!((t_max - 49.4).abs() < 1.0, "t_max = {t_max}");
        // Temperature-free coil: unlimited.
        assert!(max_drive_temperature(
            &nominal,
            &ThermalCoefficients::none(),
            Ampere::new(6e-3),
            Volt::new(4.6)
        )
        .is_infinite());
    }
}
