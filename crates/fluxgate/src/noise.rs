//! Seeded noise sources.
//!
//! The pulse-position detector's robustness (comparator threshold +
//! hysteresis ablations in experiment E1) is studied under additive
//! Gaussian noise on the pickup voltage. Everything is seeded so that
//! every experiment in `EXPERIMENTS.md` is bit-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded white Gaussian noise source (Box-Muller transform).
///
/// # Example
///
/// ```
/// use fluxcomp_fluxgate::noise::GaussianNoise;
///
/// let mut n = GaussianNoise::new(1.0, 42);
/// let samples: Vec<f64> = (0..10_000).map(|_| n.sample()).collect();
/// let mean = samples.iter().sum::<f64>() / samples.len() as f64;
/// assert!(mean.abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianNoise {
    std_dev: f64,
    rng: StdRng,
    /// Box-Muller produces pairs; cache the spare value.
    spare: Option<f64>,
}

impl GaussianNoise {
    /// Creates a source with standard deviation `std_dev`, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn new(std_dev: f64, seed: u64) -> Self {
        assert!(
            std_dev >= 0.0 && std_dev.is_finite(),
            "standard deviation must be finite and non-negative"
        );
        Self {
            std_dev,
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// A source that always returns zero (noise disabled).
    pub fn silent() -> Self {
        Self::new(0.0, 0)
    }

    /// The configured standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one sample `~ N(0, std_dev²)`.
    pub fn sample(&mut self) -> f64 {
        if self.std_dev == 0.0 {
            return 0.0;
        }
        if let Some(z) = self.spare.take() {
            return z * self.std_dev;
        }
        // Box-Muller: two uniforms → two independent standard normals.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos() * self.std_dev
    }

    /// Fills `buf` with independent samples.
    pub fn fill(&mut self, buf: &mut [f64]) {
        for v in buf {
            *v = self.sample();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = GaussianNoise::new(2.0, 7);
        let mut b = GaussianNoise::new(2.0, 7);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = GaussianNoise::new(1.0, 1);
        let mut b = GaussianNoise::new(1.0, 2);
        let same = (0..50).filter(|_| a.sample() == b.sample()).count();
        assert!(same < 5);
    }

    #[test]
    fn statistics_match_parameters() {
        let mut n = GaussianNoise::new(3.0, 123);
        let count = 100_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample()).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / count as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn silent_source_is_zero() {
        let mut n = GaussianNoise::silent();
        assert_eq!(n.std_dev(), 0.0);
        for _ in 0..10 {
            assert_eq!(n.sample(), 0.0);
        }
    }

    #[test]
    fn fill_buffer() {
        let mut n = GaussianNoise::new(1.0, 9);
        let mut buf = [0.0; 64];
        n.fill(&mut buf);
        assert!(buf.iter().any(|&v| v != 0.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_rejected() {
        let _ = GaussianNoise::new(-1.0, 0);
    }
}
