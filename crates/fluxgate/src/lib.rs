//! # fluxcomp-fluxgate
//!
//! Physics models of the **micro-machined fluxgate sensing element** the
//! 1997 integrated-compass paper builds on (\[Kaw95\]: electroplated
//! permalloy core sandwiched between two metal layers, with closely
//! coupled excitation and pickup coils), plus the magnetic environment the
//! compass operates in.
//!
//! * [`core_model`] — saturable B-H characteristics of the permalloy core,
//!   both anhysteretic (the paper's ELDO model) and with a simple
//!   hysteresis loop for robustness studies;
//! * [`transducer`] — the fluxgate as a two-coil transformer: excitation
//!   current → core field → flux → pickup EMF, including the
//!   field-dependent excitation-coil inductance that makes the impedance
//!   visibly drop at saturation (Fig. 4);
//! * [`earth`] — the earth's magnetic field by location (the paper quotes
//!   25 µT in South America to 65 µT near the south pole) with optional
//!   hard-iron/soft-iron disturbances;
//! * [`noise`] — seeded Gaussian noise sources for pickup and comparator
//!   noise studies;
//! * [`pair`] — the orthogonal X/Y sensor pair of the compass, with
//!   gain-mismatch and misalignment non-idealities;
//! * [`demag`] — shape anisotropy: how core geometry sets the effective
//!   `H_K`, i.e. why the paper's "adapted" sensor is obtainable;
//! * [`jiles_atherton`] / [`thermal`] — physical hysteresis and
//!   temperature models for the robustness extensions.
//!
//! ## The pulse-position principle (paper §2.1.1, Fig. 3)
//!
//! A triangular excitation field sweeps the core symmetrically into
//! saturation. The pickup voltage is `-N·A·dB/dt`, which spikes while the
//! core transits its permeable region and collapses in saturation. An
//! external field `H_ext` shifts the transit *in time*: the core stays
//! saturated longer in one direction and shorter in the other. The time
//! positions of the pulses therefore encode `H_ext` — no amplitude
//! measurement and hence no A/D converter is needed.
//!
//! ```
//! use fluxcomp_fluxgate::transducer::{Fluxgate, FluxgateParams};
//! use fluxcomp_units::AmperePerMeter;
//!
//! let sensor = Fluxgate::new(FluxgateParams::adapted());
//! // In deep saturation the differential permeability — and with it the
//! // excitation-coil inductance — collapses (the paper's Fig. 4 note).
//! let l_center = sensor.inductance(AmperePerMeter::ZERO);
//! let l_sat = sensor.inductance(sensor.params().core.hk() * 10.0);
//! assert!(l_sat.value() < 0.05 * l_center.value());
//! ```

pub mod core_model;
pub mod demag;
pub mod earth;
pub mod jiles_atherton;
pub mod noise;
pub mod pair;
pub mod thermal;
pub mod transducer;

pub use core_model::{CoreModel, Sweep};
pub use demag::CoreGeometry;
pub use earth::{EarthField, Location, MagneticDisturbance};
pub use jiles_atherton::{JaParams, JilesAthertonCore};
pub use noise::GaussianNoise;
pub use pair::{SensorPair, SensorPairParams};
pub use thermal::ThermalCoefficients;
pub use transducer::{Fluxgate, FluxgateParams};
