//! Saturable B-H characteristics of the permalloy core.
//!
//! The paper derived an ELDO model from measurements of a real \[Kaw95\]
//! sensing element and then *adapted its saturation field `H_K`* to a
//! value realisable in a next-generation sensor, because the measured
//! element only saturated at ≈15× the earth's field. Both behaviours are
//! reproduced here:
//!
//! * [`CoreModel::Anhysteretic`] — the single-valued saturation curve
//!   `B(H) = B_sat·tanh(H/H_K) + µ₀·H`, the standard behavioural fluxgate
//!   core model (Ripka 1992);
//! * [`CoreModel::Hysteretic`] — the same curve split into an up-sweep and
//!   a down-sweep branch shifted by a coercive field `H_c`, giving a
//!   parallelogram-like loop; used for the robustness ablations.
//!
//! The differential permeability `dB/dH` is available in closed form —
//! the transducer uses it to compute pickup EMF and the field-dependent
//! excitation inductance without numerical differentiation.

use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};

/// Which way the excitation field is currently sweeping. Only meaningful
/// for the hysteretic model; the anhysteretic model ignores it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sweep {
    /// `dH/dt ≥ 0`.
    #[default]
    Up,
    /// `dH/dt < 0`.
    Down,
}

impl Sweep {
    /// Sweep direction from the sign of `dH/dt`.
    #[inline]
    pub fn from_dh_dt(dh_dt: f64) -> Self {
        if dh_dt < 0.0 {
            Sweep::Down
        } else {
            Sweep::Up
        }
    }
}

/// A behavioural B-H model of the sensor core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CoreModel {
    /// Single-valued saturation curve `B = B_sat·tanh(H/H_K) + µ₀·H`.
    Anhysteretic {
        /// Saturation flux density of the permalloy film.
        bsat: Tesla,
        /// Saturation (anisotropy) field scale `H_K`.
        hk: AmperePerMeter,
    },
    /// The anhysteretic curve offset by ±`hc` depending on sweep
    /// direction — a simple major-loop hysteresis model.
    Hysteretic {
        /// Saturation flux density.
        bsat: Tesla,
        /// Saturation field scale.
        hk: AmperePerMeter,
        /// Coercive field (half the loop width).
        hc: AmperePerMeter,
    },
}

impl CoreModel {
    /// Convenience constructor for the anhysteretic model.
    ///
    /// # Panics
    ///
    /// Panics if `bsat` or `hk` is not strictly positive.
    pub fn anhysteretic(bsat: Tesla, hk: AmperePerMeter) -> Self {
        assert!(bsat.value() > 0.0, "bsat must be positive");
        assert!(hk.value() > 0.0, "hk must be positive");
        CoreModel::Anhysteretic { bsat, hk }
    }

    /// Convenience constructor for the hysteretic model.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or `bsat`/`hk` is zero.
    pub fn hysteretic(bsat: Tesla, hk: AmperePerMeter, hc: AmperePerMeter) -> Self {
        assert!(bsat.value() > 0.0, "bsat must be positive");
        assert!(hk.value() > 0.0, "hk must be positive");
        assert!(hc.value() >= 0.0, "hc must be non-negative");
        CoreModel::Hysteretic { bsat, hk, hc }
    }

    /// The saturation flux density parameter.
    pub fn bsat(&self) -> Tesla {
        match *self {
            CoreModel::Anhysteretic { bsat, .. } | CoreModel::Hysteretic { bsat, .. } => bsat,
        }
    }

    /// The saturation field scale `H_K`.
    pub fn hk(&self) -> AmperePerMeter {
        match *self {
            CoreModel::Anhysteretic { hk, .. } | CoreModel::Hysteretic { hk, .. } => hk,
        }
    }

    /// Flux density at core field `h`, for the given sweep direction.
    pub fn b(&self, h: AmperePerMeter, sweep: Sweep) -> Tesla {
        match *self {
            CoreModel::Anhysteretic { bsat, hk } => anhysteretic_b(h, bsat, hk),
            CoreModel::Hysteretic { bsat, hk, hc } => {
                let shift = match sweep {
                    // On the up-sweep the magnetisation lags: the curve is
                    // shifted to the right by the coercive field.
                    Sweep::Up => -hc,
                    Sweep::Down => hc,
                };
                anhysteretic_b(h + shift, bsat, hk)
            }
        }
    }

    /// Differential permeability `dB/dH` (units H/m) at field `h`.
    ///
    /// This is what the pickup coil "sees": the EMF is
    /// `-N·A·(dB/dH)·(dH/dt)`, so the sharp peak of `dB/dH` around the
    /// (shifted) zero crossing of `H` *is* the output pulse of Fig. 3.
    pub fn mu_diff(&self, h: AmperePerMeter, sweep: Sweep) -> f64 {
        match *self {
            CoreModel::Anhysteretic { bsat, hk } => anhysteretic_mu(h, bsat, hk),
            CoreModel::Hysteretic { bsat, hk, hc } => {
                let shift = match sweep {
                    Sweep::Up => -hc,
                    Sweep::Down => hc,
                };
                anhysteretic_mu(h + shift, bsat, hk)
            }
        }
    }

    /// Relative differential permeability `µ_r = (dB/dH)/µ₀` at `h`.
    pub fn mu_r(&self, h: AmperePerMeter, sweep: Sweep) -> f64 {
        self.mu_diff(h, sweep) / MU_0
    }

    /// `true` when the core is in deep saturation at `h`: the
    /// differential permeability has collapsed below 5 % of its zero-field
    /// value.
    pub fn is_saturated(&self, h: AmperePerMeter, sweep: Sweep) -> bool {
        self.mu_diff(h, sweep) < 0.05 * self.mu_diff(AmperePerMeter::ZERO, Sweep::default())
    }

    /// The field at which `tanh` has effectively saturated (≈ 3·H_K,
    /// where `tanh = 0.995`); a practical "saturation field" figure.
    pub fn saturation_field(&self) -> AmperePerMeter {
        self.hk() * 3.0
    }
}

#[inline]
fn anhysteretic_b(h: AmperePerMeter, bsat: Tesla, hk: AmperePerMeter) -> Tesla {
    Tesla::new(bsat.value() * (h.value() / hk.value()).tanh() + MU_0 * h.value())
}

#[inline]
fn anhysteretic_mu(h: AmperePerMeter, bsat: Tesla, hk: AmperePerMeter) -> f64 {
    let x = h.value() / hk.value();
    let sech2 = 1.0 / x.cosh().powi(2);
    bsat.value() / hk.value() * sech2 + MU_0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapted() -> CoreModel {
        CoreModel::anhysteretic(Tesla::new(0.5), AmperePerMeter::new(40.0))
    }

    #[test]
    fn b_is_odd_function() {
        let m = adapted();
        for h in [1.0, 10.0, 40.0, 200.0] {
            let up = m.b(AmperePerMeter::new(h), Sweep::Up).value();
            let dn = m.b(AmperePerMeter::new(-h), Sweep::Up).value();
            assert!((up + dn).abs() < 1e-12, "odd symmetry at {h}");
        }
        assert_eq!(m.b(AmperePerMeter::ZERO, Sweep::Up), Tesla::ZERO);
    }

    #[test]
    fn b_saturates_near_bsat() {
        let m = adapted();
        let b = m.b(AmperePerMeter::new(400.0), Sweep::Up);
        // tanh(10) ≈ 1: B ≈ bsat + µ0·H (the air term is tiny).
        assert!((b.value() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn mu_diff_peaks_at_zero_field() {
        let m = adapted();
        let mu0field = m.mu_diff(AmperePerMeter::ZERO, Sweep::Up);
        assert!(mu0field > m.mu_diff(AmperePerMeter::new(20.0), Sweep::Up));
        assert!(mu0field > m.mu_diff(AmperePerMeter::new(-20.0), Sweep::Up));
        // Zero-field µ = bsat/hk + µ0 = 0.0125 + µ0.
        assert!((mu0field - (0.5 / 40.0 + MU_0)).abs() < 1e-9);
    }

    #[test]
    fn mu_diff_matches_numerical_derivative() {
        let m = adapted();
        for h in [-100.0, -37.0, 0.0, 12.5, 80.0] {
            let dh = 1e-4;
            let num = (m.b(AmperePerMeter::new(h + dh), Sweep::Up).value()
                - m.b(AmperePerMeter::new(h - dh), Sweep::Up).value())
                / (2.0 * dh);
            let ana = m.mu_diff(AmperePerMeter::new(h), Sweep::Up);
            assert!((num - ana).abs() < 1e-8, "at h={h}: {num} vs {ana}");
        }
    }

    #[test]
    fn saturation_detection() {
        let m = adapted();
        assert!(!m.is_saturated(AmperePerMeter::ZERO, Sweep::Up));
        assert!(!m.is_saturated(AmperePerMeter::new(40.0), Sweep::Up));
        assert!(m.is_saturated(AmperePerMeter::new(120.0), Sweep::Up));
        assert!(m.is_saturated(AmperePerMeter::new(-120.0), Sweep::Up));
        assert_eq!(m.saturation_field(), AmperePerMeter::new(120.0));
    }

    #[test]
    fn relative_permeability_is_large_for_permalloy() {
        let m = adapted();
        // 0.0125 / µ0 ≈ 10,000 — the right order for a permalloy film.
        let mu_r = m.mu_r(AmperePerMeter::ZERO, Sweep::Up);
        assert!((9_000.0..11_000.0).contains(&mu_r), "mu_r = {mu_r}");
    }

    #[test]
    fn hysteretic_branches_differ_by_loop_width() {
        let m = CoreModel::hysteretic(
            Tesla::new(0.5),
            AmperePerMeter::new(40.0),
            AmperePerMeter::new(8.0),
        );
        // At H = 0 the up-branch is still negative (lagging), the
        // down-branch still positive.
        let up = m.b(AmperePerMeter::ZERO, Sweep::Up).value();
        let down = m.b(AmperePerMeter::ZERO, Sweep::Down).value();
        assert!(up < 0.0 && down > 0.0);
        assert!((up + down).abs() < 1e-12, "loop is symmetric");
        // The µ peak moves to ±hc.
        let peak_up = m.mu_diff(AmperePerMeter::new(8.0), Sweep::Up);
        let center_up = m.mu_diff(AmperePerMeter::ZERO, Sweep::Up);
        assert!(peak_up > center_up);
    }

    #[test]
    fn hysteretic_with_zero_hc_equals_anhysteretic() {
        let a = adapted();
        let h0 = CoreModel::hysteretic(
            Tesla::new(0.5),
            AmperePerMeter::new(40.0),
            AmperePerMeter::ZERO,
        );
        for h in [-50.0, 0.0, 50.0] {
            let ha = AmperePerMeter::new(h);
            assert_eq!(a.b(ha, Sweep::Up), h0.b(ha, Sweep::Up));
            assert_eq!(a.b(ha, Sweep::Down), h0.b(ha, Sweep::Down));
        }
    }

    #[test]
    fn sweep_from_derivative_sign() {
        assert_eq!(Sweep::from_dh_dt(1.0), Sweep::Up);
        assert_eq!(Sweep::from_dh_dt(0.0), Sweep::Up);
        assert_eq!(Sweep::from_dh_dt(-1.0), Sweep::Down);
    }

    #[test]
    fn accessors() {
        let m = adapted();
        assert_eq!(m.bsat(), Tesla::new(0.5));
        assert_eq!(m.hk(), AmperePerMeter::new(40.0));
    }

    #[test]
    #[should_panic(expected = "hk must be positive")]
    fn zero_hk_rejected() {
        let _ = CoreModel::anhysteretic(Tesla::new(0.5), AmperePerMeter::ZERO);
    }

    #[test]
    #[should_panic(expected = "bsat must be positive")]
    fn negative_bsat_rejected() {
        let _ = CoreModel::anhysteretic(Tesla::new(-0.5), AmperePerMeter::new(40.0));
    }
}
