//! The magnetic environment: a simple geomagnetic model plus platform
//! disturbances.
//!
//! The paper's key robustness claim (C9 in `DESIGN.md`) is that the
//! ratio-based heading computation is "insensitive to local variations of
//! the magnitude of the earth's magnetic field, which … varies between
//! 25 µT in South America and 65 µT near the south pole". [`Location`]
//! encodes exactly those extremes plus intermediate points;
//! [`EarthField`] turns a location + device heading into the axial field
//! components the two sensors experience; [`MagneticDisturbance`] adds
//! hard-iron and soft-iron effects for calibration experiments.

use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};

/// Representative locations spanning the paper's stated field range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// ~25 µT total field, shallow inclination — the paper's low extreme.
    SouthAmerica,
    /// ~65 µT total field near the (magnetic) south pole — the paper's
    /// high extreme. Inclination is steep, which stresses the compass:
    /// only a small horizontal component remains.
    SouthPole,
    /// Enschede, The Netherlands — where the authors' lab is. ~49 µT
    /// total, ~67° inclination.
    Enschede,
    /// Magnetic equator: the entire field is horizontal.
    Equator,
    /// Mid-northern latitudes (e.g. central Europe / USA).
    MidNorth,
}

impl Location {
    /// All predefined locations, ordered by total field magnitude.
    pub const ALL: [Location; 5] = [
        Location::SouthAmerica,
        Location::Equator,
        Location::MidNorth,
        Location::Enschede,
        Location::SouthPole,
    ];

    /// Total field magnitude at the location.
    pub fn total_field(self) -> Tesla {
        match self {
            Location::SouthAmerica => Tesla::from_microtesla(25.0),
            Location::Equator => Tesla::from_microtesla(31.0),
            Location::MidNorth => Tesla::from_microtesla(48.0),
            Location::Enschede => Tesla::from_microtesla(49.0),
            Location::SouthPole => Tesla::from_microtesla(65.0),
        }
    }

    /// Magnetic inclination (dip angle) at the location.
    pub fn inclination(self) -> Degrees {
        match self {
            Location::SouthAmerica => Degrees::new(-20.0),
            Location::Equator => Degrees::new(0.0),
            Location::MidNorth => Degrees::new(60.0),
            Location::Enschede => Degrees::new(67.0),
            Location::SouthPole => Degrees::new(-85.0),
        }
    }

    /// Magnetic declination at the location (representative mid-1990s
    /// values; declination drifts by ~0.1°/year).
    pub fn declination(self) -> Degrees {
        match self {
            Location::SouthAmerica => Degrees::new(-8.0),
            Location::Equator => Degrees::new(0.0),
            Location::MidNorth => Degrees::new(4.0),
            Location::Enschede => Degrees::new(-2.0),
            Location::SouthPole => Degrees::new(25.0),
        }
    }
}

/// The earth's field as the compass experiences it: a horizontal
/// component (what the two in-plane fluxgates measure) plus the dip
/// angle, and the local declination (the angle from true north to
/// magnetic north — what separates the compass's reading from a map
/// bearing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarthField {
    total: Tesla,
    inclination: Degrees,
    declination: Degrees,
}

impl EarthField {
    /// Builds the field model for a predefined location.
    pub fn at(location: Location) -> Self {
        Self {
            total: location.total_field(),
            inclination: location.inclination(),
            declination: location.declination(),
        }
    }

    /// Builds a field model from explicit total magnitude and dip angle.
    ///
    /// # Panics
    ///
    /// Panics if `total` is negative.
    pub fn with_magnitude(total: Tesla, inclination: Degrees) -> Self {
        assert!(total.value() >= 0.0, "field magnitude must be non-negative");
        Self {
            total,
            inclination,
            declination: Degrees::ZERO,
        }
    }

    /// Returns a copy with the given declination.
    pub fn with_declination(self, declination: Degrees) -> Self {
        Self {
            declination,
            ..self
        }
    }

    /// A purely horizontal field of the given magnitude — the idealised
    /// test condition.
    pub fn horizontal(b: Tesla) -> Self {
        Self::with_magnitude(b, Degrees::ZERO)
    }

    /// Total field magnitude.
    pub fn total(&self) -> Tesla {
        self.total
    }

    /// Dip angle.
    pub fn inclination(&self) -> Degrees {
        self.inclination
    }

    /// Declination: the signed angle from true north to magnetic north
    /// (positive = magnetic north lies east of true north).
    pub fn declination(&self) -> Degrees {
        self.declination
    }

    /// Converts a compass (magnetic) heading to a map (true) bearing:
    /// `true = magnetic + declination`.
    pub fn magnetic_to_true(&self, magnetic: Degrees) -> Degrees {
        (magnetic + self.declination).normalized()
    }

    /// Converts a map (true) bearing to the compass (magnetic) heading
    /// to steer.
    pub fn true_to_magnetic(&self, true_bearing: Degrees) -> Degrees {
        (true_bearing - self.declination).normalized()
    }

    /// Horizontal field magnitude `B_h = B·cos(inclination)` — the only
    /// part a levelled two-axis compass can use.
    pub fn horizontal_magnitude(&self) -> Tesla {
        self.total * self.inclination.cos().abs()
    }

    /// Vertical component `B_v = B·sin(inclination)` (positive downward
    /// in the northern hemisphere).
    pub fn vertical_component(&self) -> Tesla {
        self.total * self.inclination.sin()
    }

    /// The flux-density components along the compass's X (forward) and Y
    /// (right) axes when the platform points at `heading` (clockwise from
    /// magnetic north, the navigation convention).
    ///
    /// `B_x = B_h·cos(θ)`, `B_y = B_h·sin(θ)`, so that
    /// `atan2(B_y, B_x) = θ` recovers the heading.
    pub fn body_components(&self, heading: Degrees) -> (Tesla, Tesla) {
        let bh = self.horizontal_magnitude();
        (bh * heading.cos(), bh * heading.sin())
    }

    /// The same components expressed as field strength `H = B/µ₀`
    /// (what the sensor core model consumes).
    pub fn body_field_strength(&self, heading: Degrees) -> (AmperePerMeter, AmperePerMeter) {
        let (bx, by) = self.body_components(heading);
        (
            AmperePerMeter::new(bx.value() / MU_0),
            AmperePerMeter::new(by.value() / MU_0),
        )
    }

    /// Recovers the heading from body-frame components — the reference
    /// ("oracle") computation the digital CORDIC is checked against.
    pub fn heading_from_components(bx: Tesla, by: Tesla) -> Degrees {
        Degrees::atan2(by.value(), bx.value()).normalized()
    }
}

/// Hard-iron and soft-iron disturbances of the platform (a wristwatch
/// strap buckle, a vehicle body …), applied in the body frame.
///
/// * **Hard iron**: a constant offset field added to both axes.
/// * **Soft iron**: a 2×2 gain/cross-coupling matrix distorting the
///   field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagneticDisturbance {
    /// Constant offset on (x, y).
    pub hard_iron: (Tesla, Tesla),
    /// Row-major 2×2 soft-iron matrix `[[sxx, sxy], [syx, syy]]`.
    pub soft_iron: [[f64; 2]; 2],
}

impl MagneticDisturbance {
    /// No disturbance: zero offset, identity matrix.
    pub fn none() -> Self {
        Self {
            hard_iron: (Tesla::ZERO, Tesla::ZERO),
            soft_iron: [[1.0, 0.0], [0.0, 1.0]],
        }
    }

    /// Pure hard-iron offset.
    pub fn hard(bx: Tesla, by: Tesla) -> Self {
        Self {
            hard_iron: (bx, by),
            ..Self::none()
        }
    }

    /// Pure soft-iron distortion.
    pub fn soft(matrix: [[f64; 2]; 2]) -> Self {
        Self {
            soft_iron: matrix,
            ..Self::none()
        }
    }

    /// Applies the disturbance to clean body-frame components.
    pub fn apply(&self, bx: Tesla, by: Tesla) -> (Tesla, Tesla) {
        let dx = Tesla::new(self.soft_iron[0][0] * bx.value() + self.soft_iron[0][1] * by.value())
            + self.hard_iron.0;
        let dy = Tesla::new(self.soft_iron[1][0] * bx.value() + self.soft_iron[1][1] * by.value())
            + self.hard_iron.1;
        (dx, dy)
    }

    /// `true` when this is exactly the identity disturbance.
    pub fn is_none(&self) -> bool {
        *self == Self::none()
    }
}

impl Default for MagneticDisturbance {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_extremes() {
        assert!((Location::SouthAmerica.total_field().as_microtesla() - 25.0).abs() < 1e-9);
        assert!((Location::SouthPole.total_field().as_microtesla() - 65.0).abs() < 1e-9);
    }

    #[test]
    fn locations_ordered_by_magnitude() {
        let mags: Vec<f64> = Location::ALL
            .iter()
            .map(|l| l.total_field().as_microtesla())
            .collect();
        assert!(mags.windows(2).all(|w| w[0] <= w[1]), "{mags:?}");
    }

    #[test]
    fn horizontal_magnitude_respects_dip() {
        let f = EarthField::at(Location::Equator);
        assert!((f.horizontal_magnitude() / f.total() - 1.0).abs() < 1e-12);
        let steep = EarthField::at(Location::SouthPole);
        // cos(85°) ≈ 0.0872: only ~5.7 µT horizontal remains.
        let h = steep.horizontal_magnitude().as_microtesla();
        assert!((h - 65.0 * (85f64).to_radians().cos()).abs() < 1e-6);
        assert!(h < 6.0);
    }

    #[test]
    fn heading_round_trip_through_components() {
        let f = EarthField::at(Location::Enschede);
        for deg in (0..360).step_by(7) {
            let heading = Degrees::new(deg as f64);
            let (bx, by) = f.body_components(heading);
            let back = EarthField::heading_from_components(bx, by);
            assert!(
                back.angular_distance(heading).value() < 1e-9,
                "heading {deg}: got {back}"
            );
        }
    }

    #[test]
    fn cardinal_directions() {
        let f = EarthField::horizontal(Tesla::from_microtesla(20.0));
        let (bx, by) = f.body_components(Degrees::new(0.0));
        assert!((bx.as_microtesla() - 20.0).abs() < 1e-9 && by.as_microtesla().abs() < 1e-9);
        let (bx, by) = f.body_components(Degrees::new(90.0));
        assert!(bx.as_microtesla().abs() < 1e-9 && (by.as_microtesla() - 20.0).abs() < 1e-9);
        let (bx, by) = f.body_components(Degrees::new(180.0));
        assert!((bx.as_microtesla() + 20.0).abs() < 1e-9 && by.as_microtesla().abs() < 1e-9);
        let (bx, by) = f.body_components(Degrees::new(270.0));
        assert!(bx.as_microtesla().abs() < 1e-9 && (by.as_microtesla() + 20.0).abs() < 1e-9);
    }

    #[test]
    fn field_strength_components_divide_by_mu0() {
        let f = EarthField::horizontal(Tesla::from_microtesla(50.0));
        let (hx, _) = f.body_field_strength(Degrees::ZERO);
        // 50 µT / µ0 ≈ 39.8 A/m.
        assert!((hx.value() - 39.788_735).abs() < 1e-3);
    }

    #[test]
    fn vertical_component_sign() {
        let north = EarthField::at(Location::Enschede);
        assert!(north.vertical_component().value() > 0.0);
        let south = EarthField::at(Location::SouthPole);
        assert!(south.vertical_component().value() < 0.0);
    }

    #[test]
    fn hard_iron_offsets_components() {
        let d =
            MagneticDisturbance::hard(Tesla::from_microtesla(5.0), Tesla::from_microtesla(-3.0));
        let (x, y) = d.apply(Tesla::from_microtesla(10.0), Tesla::from_microtesla(10.0));
        assert!((x.as_microtesla() - 15.0).abs() < 1e-9);
        assert!((y.as_microtesla() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn soft_iron_scales_and_couples() {
        let d = MagneticDisturbance::soft([[1.1, 0.0], [0.2, 0.9]]);
        let (x, y) = d.apply(Tesla::from_microtesla(10.0), Tesla::from_microtesla(20.0));
        assert!((x.as_microtesla() - 11.0).abs() < 1e-9);
        assert!((y.as_microtesla() - 20.0).abs() < 1e-9); // 0.2·10 + 0.9·20
    }

    #[test]
    fn none_disturbance_is_identity() {
        let d = MagneticDisturbance::none();
        assert!(d.is_none());
        assert_eq!(d, MagneticDisturbance::default());
        let (x, y) = d.apply(Tesla::from_microtesla(7.0), Tesla::from_microtesla(-7.0));
        assert!((x.as_microtesla() - 7.0).abs() < 1e-12);
        assert!((y.as_microtesla() + 7.0).abs() < 1e-12);
        assert!(!MagneticDisturbance::hard(Tesla::new(1e-6), Tesla::ZERO).is_none());
    }

    #[test]
    fn declination_round_trip() {
        let f = EarthField::at(Location::Enschede);
        assert_eq!(f.declination(), Degrees::new(-2.0));
        for deg in [0.0, 90.0, 359.0] {
            let magnetic = Degrees::new(deg);
            let true_bearing = f.magnetic_to_true(magnetic);
            let back = f.true_to_magnetic(true_bearing);
            assert!(back.angular_distance(magnetic).value() < 1e-9);
        }
        // Enschede 1990s: magnetic north ~2° west of true north, so a
        // magnetic heading of 0° is a true bearing of 358°.
        assert_eq!(f.magnetic_to_true(Degrees::ZERO), Degrees::new(358.0));
    }

    #[test]
    fn with_declination_builder() {
        let f = EarthField::horizontal(Tesla::from_microtesla(20.0))
            .with_declination(Degrees::new(10.0));
        assert_eq!(f.magnetic_to_true(Degrees::new(350.0)), Degrees::new(0.0));
        // Horizontal constructor defaults to zero declination.
        let g = EarthField::horizontal(Tesla::from_microtesla(20.0));
        assert_eq!(g.declination(), Degrees::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_magnitude_rejected() {
        let _ = EarthField::with_magnitude(Tesla::from_microtesla(-1.0), Degrees::ZERO);
    }
}
