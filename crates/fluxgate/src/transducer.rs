//! The fluxgate sensing element as an electrical two-port.
//!
//! Structure (paper Fig. 5): a permalloy core sandwiched between two metal
//! layers that form an excitation coil and a pickup coil — a transformer
//! whose core is deliberately driven into saturation.
//!
//! The electrical model:
//!
//! * excitation current `i` produces the core field
//!   `H_exc = N_e·i / l_m` (solenoid approximation over the magnetic
//!   path length `l_m`);
//! * the total axial field is `H = H_exc + H_ext` where `H_ext` is the
//!   projection of the external (earth) field on the sensor axis;
//! * the pickup EMF is `v_p = -N_p·A·dB/dt = -N_p·A·µ_diff(H)·dH/dt`;
//! * the excitation coil presents `v_e = R_e·i + N_e·A·dB/dt`, i.e. an
//!   incremental inductance `L(H) = N_e²·A·µ_diff(H)/l_m` that collapses
//!   in saturation — the impedance change visible in the paper's Fig. 4.

use crate::core_model::{CoreModel, Sweep};
use fluxcomp_units::magnetics::{AmperePerMeter, Tesla, MU_0};
use fluxcomp_units::si::{Ampere, Henry, Ohm, Volt};

/// Physical and electrical parameters of one fluxgate element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluxgateParams {
    /// B-H model of the permalloy core.
    pub core: CoreModel,
    /// Excitation coil turns `N_e`.
    pub turns_excitation: u32,
    /// Pickup coil turns `N_p`.
    pub turns_pickup: u32,
    /// Magnetic path length `l_m` in metres.
    pub magnetic_length: f64,
    /// Effective core cross-section `A` in m².
    pub core_area: f64,
    /// Excitation coil series resistance.
    pub r_excitation: Ohm,
    /// Pickup coil series resistance.
    pub r_pickup: Ohm,
}

impl FluxgateParams {
    /// The measured \[Kaw95\] element the paper characterised: saturation at
    /// `H_K = 1 Oe` (≈ 79.6 A/m — about 15× the earth's field when
    /// expressed as flux density) and a 77 Ω excitation coil, "too high
    /// for low-power applications".
    pub fn kaw95() -> Self {
        Self {
            core: CoreModel::anhysteretic(
                Tesla::new(0.5),
                fluxcomp_units::Oersted::new(1.0).to_ampere_per_meter(),
            ),
            turns_excitation: 40,
            turns_pickup: 60,
            magnetic_length: 1.0e-3,
            core_area: 1.0e-8,
            r_excitation: Ohm::new(77.0),
            r_pickup: Ohm::new(120.0),
        }
    }

    /// The paper's **adapted ELDO model**: `H_K` lowered to a level "still
    /// an obtainable goal for a new fluxgate sensor", such that the
    /// paper's 12 mA p-p excitation drives the core to twice its
    /// saturation field (the stated optimum operating point).
    pub fn adapted() -> Self {
        Self {
            core: CoreModel::anhysteretic(Tesla::new(0.5), AmperePerMeter::new(40.0)),
            turns_excitation: 40,
            turns_pickup: 60,
            magnetic_length: 1.0e-3,
            core_area: 1.0e-8,
            r_excitation: Ohm::new(77.0),
            r_pickup: Ohm::new(120.0),
        }
    }

    /// The adapted element with a simple hysteresis loop (coercive field
    /// `hc` as a fraction of `H_K`), for robustness ablations.
    pub fn adapted_hysteretic(hc_over_hk: f64) -> Self {
        let base = Self::adapted();
        let hk = base.core.hk();
        Self {
            core: CoreModel::hysteretic(base.core.bsat(), hk, hk * hc_over_hk),
            ..base
        }
    }

    /// A high-resistance variant at the paper's stated drive limit
    /// ("sensors with a resistance as high as 800 Ω can be driven" at
    /// 5 V supply).
    pub fn high_resistance() -> Self {
        Self {
            r_excitation: Ohm::new(800.0),
            ..Self::adapted()
        }
    }

    /// Validates the parameters without constructing an element.
    ///
    /// Returns the same message [`Fluxgate::new`] would panic with, so
    /// callers can surface the problem as a recoverable error instead.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.magnetic_length <= 0.0 || self.magnetic_length.is_nan() {
            return Err("magnetic length must be positive");
        }
        if self.core_area <= 0.0 || self.core_area.is_nan() {
            return Err("core area must be positive");
        }
        if self.turns_excitation == 0 {
            return Err("excitation coil needs turns");
        }
        if self.turns_pickup == 0 {
            return Err("pickup coil needs turns");
        }
        if self.r_excitation.value() < 0.0 || self.r_pickup.value() < 0.0 {
            return Err("negative resistance");
        }
        Ok(())
    }
}

impl Default for FluxgateParams {
    /// The adapted model — what the paper's system simulations used.
    fn default() -> Self {
        Self::adapted()
    }
}

/// A fluxgate sensing element.
///
/// The element itself is stateless (the core model is memory-free within
/// a sweep branch); the dynamic behaviour emerges when the analogue
/// front-end drives it through time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fluxgate {
    params: FluxgateParams,
}

impl Fluxgate {
    /// Creates an element from parameters.
    ///
    /// # Panics
    ///
    /// Panics if any geometric parameter is non-positive or a coil has
    /// zero turns.
    pub fn new(params: FluxgateParams) -> Self {
        if let Err(reason) = params.check() {
            panic!("{reason}");
        }
        Self { params }
    }

    /// The element's parameters.
    pub fn params(&self) -> &FluxgateParams {
        &self.params
    }

    /// Core field produced by an excitation current: `H = N_e·i / l_m`.
    #[inline]
    pub fn h_from_current(&self, i: Ampere) -> AmperePerMeter {
        AmperePerMeter::new(
            self.params.turns_excitation as f64 * i.value() / self.params.magnetic_length,
        )
    }

    /// Excitation current needed to produce core field `h` — the inverse
    /// of [`Fluxgate::h_from_current`].
    #[inline]
    pub fn current_for_field(&self, h: AmperePerMeter) -> Ampere {
        Ampere::new(h.value() * self.params.magnetic_length / self.params.turns_excitation as f64)
    }

    /// Rate of change of core field for a current slew rate `di_dt` (A/s).
    #[inline]
    pub fn dh_dt_from_current(&self, di_dt: f64) -> f64 {
        self.params.turns_excitation as f64 * di_dt / self.params.magnetic_length
    }

    /// Core flux density at total axial field `h`.
    #[inline]
    pub fn flux_density(&self, h: AmperePerMeter, sweep: Sweep) -> Tesla {
        self.params.core.b(h, sweep)
    }

    /// Pickup EMF `-N_p·A·µ_diff(H)·dH/dt` at total field `h` and field
    /// slew `dh_dt` (A/m per second).
    ///
    /// This is the pulse train of Fig. 3d: large while the core transits
    /// its permeable region, near zero in saturation.
    #[inline]
    pub fn pickup_emf(&self, h: AmperePerMeter, dh_dt: f64) -> Volt {
        let sweep = Sweep::from_dh_dt(dh_dt);
        let mu = self.params.core.mu_diff(h, sweep);
        Volt::new(-(self.params.turns_pickup as f64) * self.params.core_area * mu * dh_dt)
    }

    /// Incremental excitation-coil inductance
    /// `L(H) = N_e²·A·µ_diff(H) / l_m`.
    #[inline]
    pub fn inductance(&self, h: AmperePerMeter) -> Henry {
        self.inductance_swept(h, Sweep::default())
    }

    /// Incremental inductance on a specific sweep branch.
    #[inline]
    pub fn inductance_swept(&self, h: AmperePerMeter, sweep: Sweep) -> Henry {
        let n = self.params.turns_excitation as f64;
        Henry::new(
            n * n * self.params.core_area * self.params.core.mu_diff(h, sweep)
                / self.params.magnetic_length,
        )
    }

    /// Voltage across the excitation coil while carrying current `i` with
    /// slew `di_dt` (A/s) under external axial field `h_ext`:
    /// `v = R_e·i + N_e·A·dB/dt`.
    ///
    /// Reproduces the Fig. 4 observation: when the core saturates, the
    /// inductive term collapses and the coil looks almost purely
    /// resistive.
    pub fn excitation_voltage(&self, i: Ampere, di_dt: f64, h_ext: AmperePerMeter) -> Volt {
        let h = self.h_from_current(i) + h_ext;
        let dh_dt = self.dh_dt_from_current(di_dt);
        let sweep = Sweep::from_dh_dt(dh_dt);
        let mu = self.params.core.mu_diff(h, sweep);
        let inductive = self.params.turns_excitation as f64 * self.params.core_area * mu * dh_dt;
        self.params.r_excitation * i + Volt::new(inductive)
    }

    /// Ratio of the element's saturation field (as an equivalent air flux
    /// density) to a given external field — the paper quotes ≈15 for the
    /// \[Kaw95\] element against the earth's field.
    pub fn saturation_ratio_vs(&self, b_ext: Tesla) -> f64 {
        let b_sat_equiv = MU_0 * self.params.core.hk().value();
        b_sat_equiv / b_ext.value()
    }

    /// Peak-to-peak excitation current that drives the core to
    /// `ratio × saturation field` — the paper's operating-point rule
    /// ("best sensitivity … twice the saturation field") solved for
    /// current.
    pub fn excitation_pp_for_ratio(&self, ratio: f64) -> Ampere {
        let h_peak = self.params.core.saturation_field() * ratio;
        self.current_for_field(h_peak) * 2.0
    }
}

impl From<FluxgateParams> for Fluxgate {
    fn from(params: FluxgateParams) -> Self {
        Self::new(params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor() -> Fluxgate {
        Fluxgate::new(FluxgateParams::adapted())
    }

    #[test]
    fn current_field_round_trip() {
        let s = sensor();
        let i = Ampere::new(6e-3);
        let h = s.h_from_current(i);
        // 40 turns × 6 mA / 1 mm = 240 A/m.
        assert!((h.value() - 240.0).abs() < 1e-9);
        let back = s.current_for_field(h);
        assert!((back.value() - 6e-3).abs() < 1e-15);
    }

    #[test]
    fn paper_drive_reaches_twice_saturation() {
        // 12 mA p-p (±6 mA) must reach 2× the saturation field of the
        // adapted core: H_peak = 240 = 2 × (3×40).
        let s = sensor();
        let ipp = s.excitation_pp_for_ratio(2.0);
        assert!((ipp.value() - 12e-3).abs() < 1e-12, "ipp = {ipp}");
    }

    #[test]
    fn kaw95_saturates_at_about_15x_earth() {
        let s = Fluxgate::new(FluxgateParams::kaw95());
        // Earth's field as the paper compares it (≈6.7 µT horizontal
        // component in NL): ratio ≈ 15.
        let ratio = s.saturation_ratio_vs(Tesla::from_microtesla(6.67));
        assert!((14.0..16.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn pickup_emf_peaks_during_transit_collapses_in_saturation() {
        let s = sensor();
        let dh_dt = 7.68e6; // 480 A/m swing over a 62.5 µs half period
        let v_transit = s.pickup_emf(AmperePerMeter::ZERO, dh_dt).abs();
        let v_sat = s.pickup_emf(AmperePerMeter::new(200.0), dh_dt).abs();
        assert!(v_transit.value() > 10.0 * v_sat.value());
        // Magnitude sanity: tens of millivolts, like the paper's scope shot.
        assert!(
            (0.005..0.5).contains(&v_transit.value()),
            "v_transit = {v_transit}"
        );
    }

    #[test]
    fn pickup_emf_sign_opposes_flux_change() {
        let s = sensor();
        let rising = s.pickup_emf(AmperePerMeter::ZERO, 1e6);
        let falling = s.pickup_emf(AmperePerMeter::ZERO, -1e6);
        assert!(rising.value() < 0.0);
        assert!(falling.value() > 0.0);
    }

    #[test]
    fn inductance_collapses_in_saturation() {
        let s = sensor();
        let l0 = s.inductance(AmperePerMeter::ZERO);
        let lsat = s.inductance(AmperePerMeter::new(400.0));
        assert!(lsat.value() < 0.01 * l0.value());
        // Zero-field inductance: N²·A·µ/l = 1600·1e-8·0.012501/1e-3 ≈ 200 µH.
        assert!((l0.value() - 2.0e-4).abs() < 2e-5, "l0 = {l0}");
    }

    #[test]
    fn excitation_voltage_resistive_in_saturation_inductive_in_transit() {
        let s = sensor();
        let di_dt = 12e-3 / 62.5e-6; // paper's triangular slew: 192 A/s
                                     // Deep in saturation (peak current): voltage ≈ R·i.
        let i_peak = Ampere::new(6e-3);
        let v_sat = s.excitation_voltage(i_peak, di_dt, AmperePerMeter::ZERO);
        let v_resistive = s.params().r_excitation * i_peak;
        assert!((v_sat.value() - v_resistive.value()).abs() < 0.05 * v_resistive.value());
        // At the zero crossing the coil is purely inductive (i = 0, so no
        // resistive drop) and the inductive bump is a visible fraction of
        // the peak resistive voltage — the impedance change of Fig. 4.
        let v_transit = s.excitation_voltage(Ampere::ZERO, di_dt, AmperePerMeter::ZERO);
        assert!(v_transit.value() > 0.05 * v_resistive.value());
        // In deep saturation the same i=0-style inductive term collapses.
        let v_ind_sat = s.excitation_voltage(Ampere::ZERO, di_dt, AmperePerMeter::new(400.0));
        assert!(v_transit.value() > 50.0 * v_ind_sat.value());
    }

    #[test]
    fn external_field_shifts_the_permeable_window() {
        let s = sensor();
        let h_ext = AmperePerMeter::new(12.0); // ~15 µT in air
        let dh_dt = 1e6;
        // With the external field, the EMF peak occurs where the *total*
        // field crosses zero, i.e. at excitation field -h_ext.
        let at_shifted = s
            .pickup_emf(AmperePerMeter::new(-12.0) + h_ext, dh_dt)
            .abs();
        let at_origin = s.pickup_emf(AmperePerMeter::new(0.0) + h_ext, dh_dt).abs();
        assert!(at_shifted > at_origin);
    }

    #[test]
    fn high_resistance_preset_is_800_ohm() {
        let p = FluxgateParams::high_resistance();
        assert_eq!(p.r_excitation, Ohm::new(800.0));
        // Drive check at 5 V: 6 mA through 800 Ω needs 4.8 V — just fits.
        let v = Ohm::new(800.0) * Ampere::new(6e-3);
        assert!(v.value() < 5.0);
    }

    #[test]
    fn hysteretic_preset_carries_loop() {
        let p = FluxgateParams::adapted_hysteretic(0.2);
        match p.core {
            CoreModel::Hysteretic { hc, hk, .. } => {
                assert!((hc.value() - 0.2 * hk.value()).abs() < 1e-12);
            }
            CoreModel::Anhysteretic { .. } => panic!("expected hysteretic core"),
        }
    }

    #[test]
    fn conversion_from_params() {
        let s: Fluxgate = FluxgateParams::adapted().into();
        assert_eq!(s.params(), &FluxgateParams::adapted());
    }

    #[test]
    #[should_panic(expected = "magnetic length")]
    fn zero_length_rejected() {
        let mut p = FluxgateParams::adapted();
        p.magnetic_length = 0.0;
        let _ = Fluxgate::new(p);
    }

    #[test]
    #[should_panic(expected = "turns")]
    fn zero_turns_rejected() {
        let mut p = FluxgateParams::adapted();
        p.turns_pickup = 0;
        let _ = Fluxgate::new(p);
    }
}
