//! Property tests for the analogue front-end.

use fluxcomp_afe::comparator::Comparator;
use fluxcomp_afe::detector::duty_cycle;
use fluxcomp_afe::oscillator::{OffsetCorrection, TriangleWave};
use fluxcomp_afe::power::{PowerModel, Schedule};
use fluxcomp_afe::vi_converter::ViConverter;
use fluxcomp_units::si::{Ampere, Hertz, Ohm, Seconds, Volt};
use proptest::prelude::*;

proptest! {
    /// The triangle wave is periodic and bounded by offset ± A/2.
    #[test]
    fn triangle_periodic_and_bounded(t in 0.0f64..1.0, offset_ma in -3.0f64..3.0) {
        let w = TriangleWave::new(
            Hertz::new(8_000.0),
            Ampere::new(12e-3),
            Ampere::new(offset_ma * 1e-3),
        );
        let period = 125e-6;
        let v = w.value(t).value();
        let v_next = w.value(t + period).value();
        prop_assert!((v - v_next).abs() < 1e-12);
        let lo = offset_ma * 1e-3 - 6e-3 - 1e-12;
        let hi = offset_ma * 1e-3 + 6e-3 + 1e-12;
        prop_assert!(v >= lo && v <= hi);
    }

    /// The slope has the right sign in each half period and constant
    /// magnitude.
    #[test]
    fn triangle_slope_signs(k in 0usize..1000) {
        let w = TriangleWave::paper_excitation();
        let period = 125e-6;
        let t = k as f64 / 1000.0 * period;
        let phase = (t / period).rem_euclid(1.0);
        let s = w.slope(t);
        prop_assert!((s.abs() - 192.0).abs() < 1e-9);
        if phase < 0.5 { prop_assert!(s > 0.0); } else { prop_assert!(s < 0.0); }
    }

    /// Mean-abs formula: numerically verified for arbitrary offsets.
    #[test]
    fn mean_abs_matches_numeric(offset_ma in -10.0f64..10.0) {
        let w = TriangleWave::paper_excitation().with_dc_offset(Ampere::new(offset_ma * 1e-3));
        let n = 20_000;
        let num: f64 = (0..n)
            .map(|k| w.value(k as f64 / n as f64 * 125e-6).value().abs())
            .sum::<f64>() / n as f64;
        prop_assert!((num - w.mean_abs().value()).abs() < 2e-6);
    }

    /// The offset-correction servo converges for any gain in (0, 1] and
    /// any initial offset.
    #[test]
    fn servo_converges(gain in 0.05f64..1.0, offset_ma in -5.0f64..5.0) {
        let mut servo = OffsetCorrection::new(gain);
        let initial = offset_ma.abs() * 1e-3;
        let mut wave = TriangleWave::paper_excitation()
            .with_dc_offset(Ampere::new(offset_ma * 1e-3));
        for _ in 0..400 {
            let measured = wave.mean();
            wave = servo.update(&wave, measured);
        }
        // Geometric convergence: |offset| shrinks by (1−gain) per step.
        let bound = initial * (1.0 - gain).powi(400) * 1.01 + 1e-12;
        prop_assert!(
            wave.dc_offset().value().abs() <= bound,
            "residual {} vs bound {bound}",
            wave.dc_offset()
        );
    }

    /// The V-I converter's output is always inside compliance and equals
    /// the demand when the demand is inside.
    #[test]
    fn vi_always_within_compliance(demand_ma in -100.0f64..100.0, r in 1.0f64..5_000.0) {
        let vi = ViConverter::paper_design();
        let load = Ohm::new(r);
        let demanded = Ampere::new(demand_ma * 1e-3);
        let out = vi.drive(demanded, load);
        let limit = vi.max_current(load).value();
        prop_assert!(out.value().abs() <= limit + 1e-15);
        if demanded.value().abs() <= limit {
            prop_assert_eq!(out, demanded);
            prop_assert!(!vi.clips(demanded, load));
        } else {
            prop_assert!(vi.clips(demanded, load));
        }
    }

    /// A comparator with hysteresis never changes output while the input
    /// stays inside the dead band.
    #[test]
    fn hysteresis_dead_band(inputs in prop::collection::vec(-0.04f64..0.04, 1..100)) {
        let mut c = Comparator::new(Volt::ZERO, Volt::new(0.1), Volt::ZERO, Seconds::ZERO);
        let initial = c.output();
        for v in inputs {
            // All inputs are within ±0.04 < ±0.05 (the trip points).
            prop_assert_eq!(c.step(Volt::new(v)), initial);
        }
    }

    /// duty_cycle is the exact fraction of true samples.
    #[test]
    fn duty_cycle_counts(samples in prop::collection::vec(any::<bool>(), 1..500)) {
        let duty = duty_cycle(&samples).unwrap();
        let expect = samples.iter().filter(|&&s| s).count() as f64 / samples.len() as f64;
        prop_assert!((duty - expect).abs() < 1e-15);
    }

    /// Average power is monotone in the measurement duty and bounded by
    /// the always-on figure.
    #[test]
    fn power_monotone_in_duty(d1 in 0.0f64..1.0, d2 in 0.0f64..1.0) {
        let pm = PowerModel::at_5v();
        let p = |d: f64| pm.average_power(&Schedule::duty_cycled(d)).value();
        if d1 <= d2 {
            prop_assert!(p(d1) <= p(d2) + 1e-15);
        }
        prop_assert!(p(d1) <= pm.average_power(&Schedule::paper_multiplexed()).value() + 1e-15);
    }
}
