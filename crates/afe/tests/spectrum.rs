//! The simulated fluxgate reproduces the textbook spectrum: odd
//! harmonics only without a field; even harmonics proportional to the
//! field — the physical basis of the second-harmonic method the paper
//! compares against (§2.1).

use fluxcomp_afe::frontend::{FrontEnd, FrontEndConfig};
use fluxcomp_msim::spectrum::{even_odd_ratio, harmonic_profile};
use fluxcomp_units::magnetics::{AmperePerMeter, MU_0};

fn pickup_and_rates(h_ext: AmperePerMeter) -> (Vec<f64>, f64, f64) {
    let mut cfg = FrontEndConfig::paper_design();
    cfg.settle_periods = 0;
    cfg.measure_periods = 8;
    let n = cfg.samples_per_period;
    let f0 = cfg.excitation.frequency().value();
    let fe = FrontEnd::new(cfg).expect("valid config");
    let result = fe.run(h_ext);
    let samples: Vec<f64> = result
        .traces
        .by_name("v_pickup")
        .expect("recorded")
        .samples()
        .iter()
        .map(|&(_, v)| v)
        .collect();
    (samples, f0 * n as f64, f0)
}

fn h(ut: f64) -> AmperePerMeter {
    AmperePerMeter::new(ut * 1e-6 / MU_0)
}

#[test]
fn no_field_means_odd_harmonics_only() {
    let (samples, fs, f0) = pickup_and_rates(AmperePerMeter::ZERO);
    let profile = harmonic_profile(&samples, fs, f0, 8);
    let ratio = even_odd_ratio(&profile);
    assert!(ratio < 0.01, "even/odd ratio without field: {ratio}");
    // There IS odd-harmonic energy (the pulses exist).
    assert!(profile[0] + profile[2] > 1e-3, "profile {profile:?}");
}

#[test]
fn even_harmonics_grow_linearly_with_field() {
    let second = |ut: f64| {
        let (samples, fs, f0) = pickup_and_rates(h(ut));
        harmonic_profile(&samples, fs, f0, 2)[1]
    };
    let h2_at_10 = second(10.0);
    let h2_at_20 = second(20.0);
    let h2_at_40 = second(40.0);
    assert!(h2_at_10 > 1e-5, "second harmonic should appear: {h2_at_10}");
    let r1 = h2_at_20 / h2_at_10;
    let r2 = h2_at_40 / h2_at_20;
    assert!((r1 - 2.0).abs() < 0.25, "10->20 ratio {r1}");
    assert!((r2 - 2.0).abs() < 0.25, "20->40 ratio {r2}");
}

#[test]
fn field_sign_does_not_change_even_harmonic_magnitude() {
    let (samples_pos, fs, f0) = pickup_and_rates(h(25.0));
    let (samples_neg, _, _) = pickup_and_rates(h(-25.0));
    let h2_pos = harmonic_profile(&samples_pos, fs, f0, 2)[1];
    let h2_neg = harmonic_profile(&samples_neg, fs, f0, 2)[1];
    assert!(
        (h2_pos - h2_neg).abs() < 0.05 * h2_pos,
        "{h2_pos} vs {h2_neg}"
    );
}
