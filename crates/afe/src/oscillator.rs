//! The triangular-waveform generator (paper §3.1, Fig. 7).
//!
//! The paper's oscillator integrates a reference current on a **10 pF**
//! on-chip capacitor (metal2-over-metal1) between two comparator
//! thresholds; the current is set by an external **12.5 MΩ** resistor
//! realised on the MCM substrate. Two views are provided:
//!
//! * [`TriangleWave`] — the behavioural view: an ideal triangle of given
//!   frequency, peak-to-peak amplitude and dc offset, with exact `value`
//!   and `slope` evaluation (what the system-level experiments use);
//! * [`RelaxationOscillator`] — the circuit view: cap + reference current
//!   plus a window comparator, integrated in time, which *derives* the
//!   8 kHz frequency from the paper's component values and exposes the
//!   effect of component tolerances.
//!
//! The oscillator's dc offset matters (the paper: "The linearity of the
//! waveform is not very essential but the dc-offset is") because an
//! offset in the excitation current looks exactly like an external field.
//! [`OffsetCorrection`] models the paper's fix: measure the average of
//! the excitation current and servo it to zero.

use fluxcomp_units::si::{Ampere, Farad, Hertz, Ohm, Seconds, Volt};

/// An ideal triangular current waveform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriangleWave {
    frequency: Hertz,
    amplitude_pp: Ampere,
    dc_offset: Ampere,
}

impl TriangleWave {
    /// The paper's excitation: 12 mA peak-to-peak at 8 kHz, no offset.
    pub fn paper_excitation() -> Self {
        Self::new(Hertz::new(8_000.0), Ampere::new(12e-3), Ampere::ZERO)
    }

    /// Creates a triangle wave.
    ///
    /// # Panics
    ///
    /// Panics if the frequency or peak-to-peak amplitude is not strictly
    /// positive.
    pub fn new(frequency: Hertz, amplitude_pp: Ampere, dc_offset: Ampere) -> Self {
        assert!(frequency.value() > 0.0, "frequency must be positive");
        assert!(amplitude_pp.value() > 0.0, "amplitude must be positive");
        Self {
            frequency,
            amplitude_pp,
            dc_offset,
        }
    }

    /// Oscillation frequency.
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Peak-to-peak amplitude.
    pub fn amplitude_pp(&self) -> Ampere {
        self.amplitude_pp
    }

    /// DC offset.
    pub fn dc_offset(&self) -> Ampere {
        self.dc_offset
    }

    /// Returns a copy with a different dc offset (used by the offset
    /// correction servo).
    pub fn with_dc_offset(&self, dc_offset: Ampere) -> Self {
        Self { dc_offset, ..*self }
    }

    /// Returns a copy with a different peak-to-peak amplitude (used for
    /// the sensitivity sweep of experiment E9).
    pub fn with_amplitude_pp(&self, amplitude_pp: Ampere) -> Self {
        assert!(amplitude_pp.value() > 0.0, "amplitude must be positive");
        Self {
            amplitude_pp,
            ..*self
        }
    }

    /// Instantaneous value at time `t` (seconds).
    ///
    /// The wave starts at its minimum at `t = 0`, peaks at `T/2` and
    /// returns to the minimum at `T` — so the *rising* sweep occupies the
    /// first half period.
    pub fn value(&self, t: f64) -> Ampere {
        let period = 1.0 / self.frequency.value();
        let phase = (t / period).rem_euclid(1.0);
        let peak = self.amplitude_pp.value() / 2.0;
        let v = if phase < 0.5 {
            -peak + 4.0 * peak * phase
        } else {
            3.0 * peak - 4.0 * peak * phase
        };
        Ampere::new(v + self.dc_offset.value())
    }

    /// Instantaneous slope `di/dt` in A/s at time `t`.
    pub fn slope(&self, t: f64) -> f64 {
        let period = 1.0 / self.frequency.value();
        let phase = (t / period).rem_euclid(1.0);
        let peak = self.amplitude_pp.value() / 2.0;
        if phase < 0.5 {
            4.0 * peak / period
        } else {
            -4.0 * peak / period
        }
    }

    /// Mean of the waveform over a whole period — equals the dc offset.
    pub fn mean(&self) -> Ampere {
        self.dc_offset
    }

    /// Mean absolute value over a period (sets the average supply current
    /// of the V-I converter): `|offset| ⊕ A_pp/4` for small offsets.
    pub fn mean_abs(&self) -> Ampere {
        // For a triangle of peak a around offset o with |o| <= a:
        // E|x| = (a² + o²) / (2a). For |o| > a the wave never crosses 0.
        let a = self.amplitude_pp.value() / 2.0;
        let o = self.dc_offset.value();
        if o.abs() >= a {
            Ampere::new(o.abs())
        } else {
            Ampere::new((a * a + o * o) / (2.0 * a))
        }
    }
}

/// The circuit-level relaxation oscillator: a capacitor charged and
/// discharged by `±I_ref = ±V_ref/R_ext` between two comparator
/// thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelaxationOscillator {
    /// Integration capacitor (on-chip, 10 pF in the paper).
    pub capacitor: Farad,
    /// External reference resistor (12.5 MΩ on the MCM substrate).
    pub r_ext: Ohm,
    /// Reference voltage across the resistor.
    pub v_ref: Volt,
    /// Lower comparator threshold.
    pub v_low: Volt,
    /// Upper comparator threshold.
    pub v_high: Volt,
}

impl RelaxationOscillator {
    /// The paper's component values: 10 pF, 12.5 MΩ, and a threshold
    /// window chosen to hit 8 kHz.
    ///
    /// `f = I / (2·C·ΔV)` with `I = V_ref/R_ext = 2.5 V / 12.5 MΩ =
    /// 200 nA` gives `ΔV = I/(2·C·f) = 200 nA / (2·10 pF·8 kHz) =
    /// 1.25 V`.
    pub fn paper_values() -> Self {
        Self {
            capacitor: Farad::new(10e-12),
            r_ext: Ohm::new(12.5e6),
            v_ref: Volt::new(2.5),
            v_low: Volt::new(1.25),
            v_high: Volt::new(2.5),
        }
    }

    /// The charging current `I = V_ref / R_ext`.
    pub fn reference_current(&self) -> Ampere {
        self.v_ref / self.r_ext
    }

    /// The oscillation frequency `f = I / (2·C·(V_high − V_low))`.
    ///
    /// # Panics
    ///
    /// Panics if `v_high ≤ v_low`.
    pub fn frequency(&self) -> Hertz {
        let dv = self.v_high - self.v_low;
        assert!(dv.value() > 0.0, "threshold window must be positive");
        let i = self.reference_current().value();
        Hertz::new(i / (2.0 * self.capacitor.value() * dv.value()))
    }

    /// Period of one triangle cycle.
    pub fn period(&self) -> Seconds {
        self.frequency().period()
    }

    /// Frequency sensitivity to a relative capacitor tolerance: returns
    /// the frequency when `C` deviates by `tol` (e.g. `0.1` = +10 %).
    pub fn frequency_with_tolerance(&self, cap_tol: f64, r_tol: f64) -> Hertz {
        let mut osc = *self;
        osc.capacitor *= 1.0 + cap_tol;
        osc.r_ext *= 1.0 + r_tol;
        osc.frequency()
    }
}

/// The dc-offset correction servo: integrates the measured mean of the
/// excitation current and trims the waveform's offset toward zero —
/// paper §3.1: "the dc-offset … is therefore corrected by measuring the
/// average of the excitation current".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetCorrection {
    /// Servo gain per update (fraction of the measured offset removed
    /// each cycle; 1.0 = dead-beat).
    pub gain: f64,
    accumulated: Ampere,
}

impl OffsetCorrection {
    /// Creates a servo with the given per-cycle gain.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < gain ≤ 1`.
    pub fn new(gain: f64) -> Self {
        assert!(gain > 0.0 && gain <= 1.0, "gain must be in (0, 1]");
        Self {
            gain,
            accumulated: Ampere::ZERO,
        }
    }

    /// The trim currently applied.
    pub fn trim(&self) -> Ampere {
        self.accumulated
    }

    /// Feeds one measured cycle-mean and returns the corrected waveform.
    pub fn update(&mut self, wave: &TriangleWave, measured_mean: Ampere) -> TriangleWave {
        self.accumulated += measured_mean * self.gain;
        wave.with_dc_offset(wave.dc_offset() - measured_mean * self.gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wave_parameters() {
        let w = TriangleWave::paper_excitation();
        assert_eq!(w.frequency(), Hertz::new(8_000.0));
        assert_eq!(w.amplitude_pp(), Ampere::new(12e-3));
        assert_eq!(w.dc_offset(), Ampere::ZERO);
    }

    #[test]
    fn value_hits_extremes_and_zero_crossings() {
        let w = TriangleWave::paper_excitation();
        let period = 125e-6;
        assert!((w.value(0.0).value() + 6e-3).abs() < 1e-12);
        assert!((w.value(period / 2.0).value() - 6e-3).abs() < 1e-12);
        assert!((w.value(period / 4.0).value()).abs() < 1e-12);
        assert!((w.value(3.0 * period / 4.0).value()).abs() < 1e-12);
        // Periodicity.
        assert!((w.value(period * 3.25).value()).abs() < 1e-10);
    }

    #[test]
    fn slope_magnitude_and_sign() {
        let w = TriangleWave::paper_excitation();
        let period = 125e-6;
        // Rising: 12 mA over half a period = 192 A/s.
        assert!((w.slope(period * 0.25) - 192.0).abs() < 1e-9);
        assert!((w.slope(period * 0.75) + 192.0).abs() < 1e-9);
    }

    #[test]
    fn slope_consistent_with_value() {
        let w = TriangleWave::paper_excitation();
        let dt = 1e-9;
        for &t in &[10e-6, 40e-6, 70e-6, 110e-6] {
            let num = (w.value(t + dt).value() - w.value(t - dt).value()) / (2.0 * dt);
            assert!((num - w.slope(t)).abs() < 1e-3, "t={t}");
        }
    }

    #[test]
    fn dc_offset_shifts_wave_and_mean() {
        let w = TriangleWave::paper_excitation().with_dc_offset(Ampere::new(1e-3));
        assert_eq!(w.mean(), Ampere::new(1e-3));
        assert!((w.value(0.0).value() + 5e-3).abs() < 1e-12);
    }

    #[test]
    fn mean_abs_of_symmetric_triangle() {
        let w = TriangleWave::paper_excitation();
        // E|x| of ±6 mA triangle = 3 mA.
        assert!((w.mean_abs().value() - 3e-3).abs() < 1e-12);
        // Fully offset wave never crosses zero.
        let off = w.with_dc_offset(Ampere::new(10e-3));
        assert!((off.mean_abs().value() - 10e-3).abs() < 1e-12);
    }

    #[test]
    fn numeric_mean_abs_matches_formula() {
        let w = TriangleWave::paper_excitation().with_dc_offset(Ampere::new(2e-3));
        let n = 100_000;
        let period = 125e-6;
        let num: f64 = (0..n)
            .map(|k| w.value(k as f64 / n as f64 * period).value().abs())
            .sum::<f64>()
            / n as f64;
        assert!((num - w.mean_abs().value()).abs() < 1e-7);
    }

    #[test]
    fn relaxation_oscillator_derives_8khz_from_paper_values() {
        let osc = RelaxationOscillator::paper_values();
        assert!((osc.reference_current().value() - 200e-9).abs() < 1e-15);
        assert!((osc.frequency().value() - 8_000.0).abs() < 1e-6);
        assert!((osc.period().value() - 125e-6).abs() < 1e-12);
    }

    #[test]
    fn tolerance_shifts_frequency_inversely() {
        let osc = RelaxationOscillator::paper_values();
        // +10 % capacitance → f/1.1.
        let f = osc.frequency_with_tolerance(0.1, 0.0);
        assert!((f.value() - 8_000.0 / 1.1).abs() < 1e-6);
        // +10 % resistance → also f/1.1 (current drops).
        let f = osc.frequency_with_tolerance(0.0, 0.1);
        assert!((f.value() - 8_000.0 / 1.1).abs() < 1e-6);
    }

    #[test]
    fn offset_correction_converges() {
        let mut servo = OffsetCorrection::new(0.5);
        let mut wave = TriangleWave::paper_excitation().with_dc_offset(Ampere::new(1e-3));
        for _ in 0..30 {
            let measured = wave.mean();
            wave = servo.update(&wave, measured);
        }
        assert!(wave.dc_offset().value().abs() < 1e-12);
        assert!((servo.trim().value() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn deadbeat_correction_in_one_step() {
        let mut servo = OffsetCorrection::new(1.0);
        let wave = TriangleWave::paper_excitation().with_dc_offset(Ampere::new(-0.5e-3));
        let corrected = servo.update(&wave, wave.mean());
        assert!(corrected.dc_offset().value().abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = TriangleWave::new(Hertz::new(0.0), Ampere::new(1e-3), Ampere::ZERO);
    }

    #[test]
    #[should_panic(expected = "gain")]
    fn bad_servo_gain_rejected() {
        let _ = OffsetCorrection::new(1.5);
    }
}
