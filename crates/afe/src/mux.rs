//! The analogue multiplexer steering the excitation to one sensor at a
//! time (paper §2: "The system uses a multiplexing technique by exciting
//! one sensor at a time").
//!
//! The switch is a CMOS transmission gate pair per channel. The three
//! non-idealities that matter for the compass:
//!
//! * **on-resistance** `R_on` adds to the sensor's series resistance —
//!   it eats into the V-I compliance budget (the 800 Ω claim shrinks by
//!   `R_on`);
//! * **settling time** after a channel switch: the sensor's L/R time
//!   constant means the first excitation period after switching is
//!   distorted — exactly why the front-end discards settle periods;
//! * **charge injection** at the switching instant: a one-off charge
//!   dumped into the sensor, harmless at 8 kHz but modelled for
//!   completeness.

use fluxcomp_fluxgate::pair::Axis;
use fluxcomp_units::si::{Henry, Ohm, Seconds};

/// The analogue multiplexer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogMux {
    /// Per-channel on-resistance.
    pub r_on: Ohm,
    /// Charge injected per switching event, in coulombs.
    pub charge_injection: f64,
    selected: Axis,
    /// Switch events since construction.
    switch_count: u64,
}

impl AnalogMux {
    /// A mid-90s CMOS transmission gate: ~25 Ω on-resistance, ~1 pC of
    /// injected charge.
    pub fn sog_switch() -> Self {
        Self {
            r_on: Ohm::new(25.0),
            charge_injection: 1e-12,
            selected: Axis::X,
            switch_count: 0,
        }
    }

    /// The currently routed sensor.
    pub fn selected(&self) -> Axis {
        self.selected
    }

    /// Number of switching events so far.
    pub fn switch_count(&self) -> u64 {
        self.switch_count
    }

    /// Routes the excitation to `axis`; returns `true` if this was an
    /// actual switch (selecting the already-routed channel is free).
    pub fn select(&mut self, axis: Axis) -> bool {
        if axis == self.selected {
            return false;
        }
        self.selected = axis;
        self.switch_count += 1;
        true
    }

    /// The total series resistance the V-I converter sees: sensor plus
    /// switch.
    pub fn effective_load(&self, sensor_resistance: Ohm) -> Ohm {
        sensor_resistance + self.r_on
    }

    /// The L/R settling time constant after a switch, given the sensor's
    /// permeable-state inductance.
    pub fn settling_tau(&self, inductance: Henry, sensor_resistance: Ohm) -> Seconds {
        Seconds::new(inductance.value() / self.effective_load(sensor_resistance).value())
    }

    /// Excitation periods to discard after a switch so that the residual
    /// settling transient is below `fraction` (e.g. `1e-4`) — the number
    /// the front-end's `settle_periods` must cover.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1`.
    pub fn settle_periods_needed(
        &self,
        inductance: Henry,
        sensor_resistance: Ohm,
        excitation_period: Seconds,
        fraction: f64,
    ) -> u32 {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1)"
        );
        let tau = self.settling_tau(inductance, sensor_resistance).value();
        let needed_time = -fraction.ln() * tau;
        (needed_time / excitation_period.value()).ceil().max(0.0) as u32
    }

    /// The worst-case field-equivalent error of one charge-injection
    /// event, expressed as a fraction of a measurement: the injected
    /// charge flows as a current spike `Q/T` over one period, producing
    /// a momentary excitation-field error that the multi-period average
    /// divides down.
    pub fn charge_injection_field_error(
        &self,
        turns_per_meter: f64,
        excitation_period: Seconds,
        measure_periods: u32,
    ) -> f64 {
        let i_equiv = self.charge_injection / excitation_period.value();
        turns_per_meter * i_equiv / measure_periods as f64
    }
}

impl Default for AnalogMux {
    fn default() -> Self {
        Self::sog_switch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_and_switch_counting() {
        let mut mux = AnalogMux::sog_switch();
        assert_eq!(mux.selected(), Axis::X);
        assert!(!mux.select(Axis::X), "re-select is free");
        assert_eq!(mux.switch_count(), 0);
        assert!(mux.select(Axis::Y));
        assert!(mux.select(Axis::X));
        assert_eq!(mux.switch_count(), 2);
    }

    #[test]
    fn on_resistance_eats_compliance() {
        let mux = AnalogMux::sog_switch();
        // The 800 Ω headline becomes ~775 Ω of *sensor* budget.
        let load = mux.effective_load(Ohm::new(775.0));
        assert_eq!(load, Ohm::new(800.0));
    }

    #[test]
    fn settling_is_fast_relative_to_a_period() {
        // 200 µH / 102 Ω ≈ 2 µs — far below the 125 µs period, which is
        // why one settle period is plenty.
        let mux = AnalogMux::sog_switch();
        let tau = mux.settling_tau(Henry::new(200e-6), Ohm::new(77.0));
        assert!((tau.value() - 200e-6 / 102.0).abs() < 1e-12);
        let periods = mux.settle_periods_needed(
            Henry::new(200e-6),
            Ohm::new(77.0),
            Seconds::new(125e-6),
            1e-6,
        );
        assert_eq!(periods, 1);
    }

    #[test]
    fn slow_settling_needs_more_periods() {
        // A hypothetical huge inductance.
        let mux = AnalogMux::sog_switch();
        let periods = mux.settle_periods_needed(
            Henry::new(50e-3),
            Ohm::new(77.0),
            Seconds::new(125e-6),
            1e-6,
        );
        assert!(periods > 10, "{periods}");
    }

    #[test]
    fn charge_injection_is_negligible_at_the_design_point() {
        let mux = AnalogMux::sog_switch();
        // 40 turns/mm = 40 000 /m; 1 pC over 125 µs = 8 nA equivalent.
        let err = mux.charge_injection_field_error(40_000.0, Seconds::new(125e-6), 8);
        // Equivalent field error: 40000 × 8nA / 8 = 4e-5 A/m — versus an
        // earth-field signal of ~12 A/m: 6 orders below.
        assert!(err < 1e-4, "field error {err} A/m");
        assert!(err > 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let mux = AnalogMux::sog_switch();
        let _ =
            mux.settle_periods_needed(Henry::new(1e-3), Ohm::new(77.0), Seconds::new(125e-6), 1.5);
    }
}
