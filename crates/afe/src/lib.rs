//! # fluxcomp-afe
//!
//! The **analogue front-end** of the integrated compass (paper §3,
//! Fig. 1 left half): everything between the digital control logic and
//! the fluxgate sensors.
//!
//! * [`oscillator`] — the triangular waveform generator (10 pF on-chip
//!   capacitor, 12.5 MΩ MCM resistor → 8 kHz) with dc-offset correction;
//! * [`vi_converter`] — the balanced-differential V-I converters that
//!   force the 12 mA p-p excitation through sensors of up to 800 Ω at a
//!   5 V supply;
//! * [`comparator`] — comparators with offset/hysteresis/delay;
//! * [`detector`] — the **pulse-position detector** producing the single
//!   digital-compatible output that makes an ADC unnecessary;
//! * [`excitation`] — the precomputed one-period drive table (the
//!   oscillator→V-I chain is periodic and field-independent, so both
//!   measurement tiers read it instead of re-evaluating per sample);
//! * [`second_harmonic`] — the classical readout the paper argues
//!   against, implemented as the baseline for experiment E8;
//! * [`frontend`] — the transient simulation wiring oscillator + V-I +
//!   sensor + detector together (regenerates Fig. 3 and Fig. 4);
//! * [`power`] — momentary/average power under multiplexing, duty
//!   cycling and supply scaling (experiment E7);
//! * [`relaxation_sim`] — circuit-level transient of the relaxation
//!   oscillator, verifying that 8 kHz really emerges from 10 pF and
//!   12.5 MΩ;
//! * [`mux`] — the analogue multiplexer that excites "one sensor at a
//!   time" (on-resistance, settling, charge injection).
//!
//! ## Example: measure a field with the paper's front-end
//!
//! ```
//! use fluxcomp_afe::frontend::{FrontEnd, FrontEndConfig};
//! use fluxcomp_units::AmperePerMeter;
//!
//! # fn main() -> Result<(), fluxcomp_afe::frontend::FrontEndError> {
//! let fe = FrontEnd::new(FrontEndConfig::paper_design())?;
//! let h_ext = AmperePerMeter::new(12.0); // ≈ 15 µT
//! let result = fe.measure(h_ext); // duty-only fast path, no traces
//! // duty = 1/2 − H/(2·H_peak); H_peak = 240 A/m → duty ≈ 0.475
//! assert!((result.duty - 0.475).abs() < 0.005);
//! # Ok(())
//! # }
//! ```
//!
//! `measure` is the production hot path; [`FrontEnd::run`] additionally
//! captures the full waveform set for the Fig. 3 / Fig. 4 diagnostics,
//! at identical (bit-for-bit) duty output.

pub mod comparator;
pub mod detector;
pub mod excitation;
pub mod frontend;
pub mod mux;
pub mod oscillator;
pub mod power;
pub mod relaxation_sim;
pub mod second_harmonic;
pub mod vi_converter;

pub use comparator::Comparator;
pub use detector::{DetectorConfig, PulsePositionDetector};
pub use excitation::{DriveSample, ExcitationTable};
pub use frontend::{FrontEnd, FrontEndConfig, FrontEndError, FrontEndResult, MeasureResult};
pub use mux::AnalogMux;
pub use oscillator::{OffsetCorrection, RelaxationOscillator, TriangleWave};
pub use power::{BlockCurrents, PowerModel, Schedule};
pub use relaxation_sim::{simulate_relaxation, RelaxationRun};
pub use second_harmonic::SecondHarmonicDemodulator;
pub use vi_converter::{OutputStage, ViConverter};
