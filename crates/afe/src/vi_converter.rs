//! The voltage-to-current converters driving the sensors (paper §3.1).
//!
//! The paper's design points:
//!
//! * the sensors have a **high series resistance**, so the converter uses
//!   a **balanced differential output** — each side only needs to swing
//!   half the compliance voltage;
//! * with a 5 V supply, "sensors with a resistance as high as **800 Ω**
//!   can be driven" at the 12 mA p-p excitation level;
//! * "the resistive character of the sensors is used to **linearise** the
//!   excitation current sources".
//!
//! [`ViConverter`] models exactly these properties: a transconductance
//! stage with finite output compliance set by supply and headroom,
//! optional single-ended (for comparison with the paper's balanced
//! choice), and soft clipping when compliance is exceeded.

use fluxcomp_units::si::{Ampere, Ohm, Volt};

/// Output topology of the converter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutputStage {
    /// Balanced differential drive — the paper's choice. Both supply
    /// rails contribute headroom, so the compliance voltage is
    /// `V_dd − 2·V_headroom`.
    #[default]
    BalancedDifferential,
    /// Single-ended drive: only `V_dd/2 − V_headroom` of compliance.
    SingleEnded,
}

/// A V-I converter channel (one per sensor; two in the system).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViConverter {
    /// Supply voltage (5 V in the paper, scalable to 3.5 V).
    pub supply: Volt,
    /// Saturation headroom each output transistor needs.
    pub headroom: Volt,
    /// Output topology.
    pub stage: OutputStage,
}

impl ViConverter {
    /// The paper's converter: 5 V supply, balanced differential,
    /// 0.2 V headroom per side.
    pub fn paper_design() -> Self {
        Self {
            supply: Volt::new(5.0),
            headroom: Volt::new(0.2),
            stage: OutputStage::BalancedDifferential,
        }
    }

    /// The same converter at the paper's scaled-down 3.5 V supply.
    pub fn low_voltage() -> Self {
        Self {
            supply: Volt::new(3.5),
            ..Self::paper_design()
        }
    }

    /// The maximum voltage the converter can place across the load.
    pub fn compliance(&self) -> Volt {
        match self.stage {
            OutputStage::BalancedDifferential => self.supply - self.headroom * 2.0,
            OutputStage::SingleEnded => self.supply / 2.0 - self.headroom,
        }
    }

    /// The largest load resistance that can carry `i_peak` without
    /// clipping: `R_max = V_compliance / i_peak`.
    pub fn max_load_resistance(&self, i_peak: Ampere) -> Ohm {
        self.compliance() / i_peak
    }

    /// The largest peak current that can be forced through `load`.
    pub fn max_current(&self, load: Ohm) -> Ampere {
        self.compliance() / load
    }

    /// Drives `demanded` current through `load`, clipping at the
    /// compliance limit. Returns the actual current delivered.
    ///
    /// Inside compliance the converter is ideal (the sensor's resistive
    /// character linearises it, per the paper); outside it clamps.
    pub fn drive(&self, demanded: Ampere, load: Ohm) -> Ampere {
        let limit = self.max_current(load).value();
        Ampere::new(demanded.value().clamp(-limit, limit))
    }

    /// `true` if `demanded` would clip on `load`.
    pub fn clips(&self, demanded: Ampere, load: Ohm) -> bool {
        demanded.value().abs() > self.max_current(load).value()
    }
}

impl Default for ViConverter {
    fn default() -> Self {
        Self::paper_design()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_drives_800_ohm_sensor() {
        // The paper's claim: at 5 V, sensors up to 800 Ω can be driven
        // (12 mA p-p = ±6 mA peak).
        let vi = ViConverter::paper_design();
        let r_max = vi.max_load_resistance(Ampere::new(6e-3));
        assert!(
            r_max.value() >= 766.0,
            "r_max = {r_max} — should be around 800 Ω"
        );
        assert!(!vi.clips(Ampere::new(6e-3), Ohm::new(760.0)));
    }

    #[test]
    fn single_ended_halves_the_drive_capability() {
        let bal = ViConverter::paper_design();
        let se = ViConverter {
            stage: OutputStage::SingleEnded,
            ..bal
        };
        assert!(se.compliance().value() < 0.5 * bal.compliance().value() + 0.2);
        // A 500 Ω sensor at ±6 mA: fine balanced, clips single-ended.
        assert!(!bal.clips(Ampere::new(6e-3), Ohm::new(500.0)));
        assert!(se.clips(Ampere::new(6e-3), Ohm::new(500.0)));
    }

    #[test]
    fn low_voltage_supply_still_drives_77_ohm_kaw95() {
        // At 3.5 V the measured [Kaw95] sensor (77 Ω) is still drivable…
        let vi = ViConverter::low_voltage();
        assert!(!vi.clips(Ampere::new(6e-3), Ohm::new(77.0)));
        // …but the 800 Ω headline no longer holds.
        assert!(vi.clips(Ampere::new(6e-3), Ohm::new(800.0)));
    }

    #[test]
    fn drive_is_linear_inside_compliance() {
        let vi = ViConverter::paper_design();
        for ma in [-6.0, -3.0, 0.0, 2.5, 6.0] {
            let i = Ampere::new(ma * 1e-3);
            assert_eq!(vi.drive(i, Ohm::new(77.0)), i);
        }
    }

    #[test]
    fn drive_clips_symmetrically() {
        let vi = ViConverter::paper_design();
        let load = Ohm::new(2_000.0);
        let lim = vi.max_current(load);
        assert_eq!(vi.drive(Ampere::new(10e-3), load), lim);
        assert_eq!(vi.drive(Ampere::new(-10e-3), load), -lim);
    }

    #[test]
    fn compliance_arithmetic() {
        let vi = ViConverter::paper_design();
        assert!((vi.compliance().value() - 4.6).abs() < 1e-12);
        let se = ViConverter {
            stage: OutputStage::SingleEnded,
            ..vi
        };
        assert!((se.compliance().value() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn default_is_paper_design() {
        assert_eq!(ViConverter::default(), ViConverter::paper_design());
        assert_eq!(OutputStage::default(), OutputStage::BalancedDifferential);
    }
}
