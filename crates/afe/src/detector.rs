//! The pulse-position detector (paper §3.2).
//!
//! The sensor's pickup voltage consists of alternating positive and
//! negative pulses, one per excitation half-sweep, whose *positions in
//! time* encode the external field. The paper's detector:
//!
//! > "The pulse position detector processes a digital 1 after the falling
//! > edge of the positive pulse, which changes to a digital 0 after the
//! > rising edge of the negative pulse, and vice versa."
//!
//! i.e. an SR-latch toggled by the **trailing edges** of the two pulse
//! polarities. Using trailing edges on both polarities makes the
//! comparator lag cancel to first order. The result is a single
//! **digital-compatible** signal whose high fraction per period is
//!
//! ```text
//! duty = 1/2 − H_ext / (2·H_peak)
//! ```
//!
//! — a *time-domain* representation of the field that a plain up/down
//! counter can digitise. **No A/D converter is needed**, the paper's key
//! argument for pulse-position over second-harmonic readout.

use crate::comparator::Comparator;
use fluxcomp_units::si::{Seconds, Volt};

/// Configuration of the detector's two comparators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Pulse detection threshold (applied at `+threshold` for positive
    /// pulses and `−threshold` for negative pulses).
    pub threshold: Volt,
    /// Comparator hysteresis width.
    pub hysteresis: Volt,
    /// Input-referred comparator offset.
    pub offset: Volt,
    /// Comparator propagation delay.
    pub delay: Seconds,
}

impl DetectorConfig {
    /// A reasonable SoG design point: threshold at a third of the nominal
    /// pulse height (≈58 mV pulses → 20 mV threshold), 4 mV hysteresis,
    /// no offset, 100 ns propagation delay.
    pub fn paper_design() -> Self {
        Self {
            threshold: Volt::new(0.02),
            hysteresis: Volt::new(0.004),
            offset: Volt::ZERO,
            delay: Seconds::new(100e-9),
        }
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::paper_design()
    }
}

/// The latched output state plus edge bookkeeping of the detector.
#[derive(Debug, Clone, PartialEq)]
pub struct PulsePositionDetector {
    config: DetectorConfig,
    positive: Comparator,
    negative: Comparator,
    prev_positive: bool,
    prev_negative: bool,
    output: bool,
}

impl PulsePositionDetector {
    /// Creates a detector; output starts low.
    pub fn new(config: DetectorConfig) -> Self {
        Self {
            config,
            positive: Comparator::new(
                config.threshold,
                config.hysteresis,
                config.offset,
                config.delay,
            ),
            negative: Comparator::new(
                config.threshold,
                config.hysteresis,
                config.offset,
                config.delay,
            ),
            prev_positive: false,
            prev_negative: false,
            output: false,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The current latched output.
    pub fn output(&self) -> bool {
        self.output
    }

    /// Resets all internal state.
    pub fn reset(&mut self) {
        self.positive.reset();
        self.negative.reset();
        self.prev_positive = false;
        self.prev_negative = false;
        self.output = false;
    }

    /// Feeds one pickup-voltage sample and returns the (possibly updated)
    /// latched output.
    ///
    /// * Trailing edge of a **positive** pulse (the `positive` comparator
    ///   releasing) **sets** the output;
    /// * trailing edge of a **negative** pulse (the `negative` comparator
    ///   releasing) **clears** it.
    pub fn step(&mut self, pickup: Volt) -> bool {
        let pos = self.positive.step(pickup);
        let neg = self.negative.step(-pickup);
        if self.prev_positive && !pos {
            self.output = true;
        }
        if self.prev_negative && !neg {
            self.output = false;
        }
        self.prev_positive = pos;
        self.prev_negative = neg;
        self.output
    }
}

/// Measures the high fraction of a sampled digital signal — the quantity
/// the up/down counter digitises in hardware. Returns `None` for an
/// empty sample set.
pub fn duty_cycle(samples: &[bool]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().filter(|&&s| s).count() as f64 / samples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic pickup waveform: a negative pulse centred at
    /// `t_neg` and a positive pulse at `t_pos`, over one period of
    /// `n` samples.
    fn synth_waveform(n: usize, t_neg: f64, t_pos: f64, height: f64) -> Vec<Volt> {
        let width = 0.02; // pulse width as fraction of the period
        (0..n)
            .map(|k| {
                let t = k as f64 / n as f64;
                let g = |c: f64| (-((t - c) / width).powi(2)).exp();
                Volt::new(height * (g(t_pos) - g(t_neg)))
            })
            .collect()
    }

    #[test]
    fn set_after_positive_pulse_clear_after_negative() {
        let mut det = PulsePositionDetector::new(DetectorConfig::paper_design());
        // Period: negative pulse at 25 %, positive pulse at 75 %.
        let wave = synth_waveform(4000, 0.25, 0.75, 0.058);
        let mut out = Vec::with_capacity(wave.len());
        // Run two periods so the latch settles.
        for _ in 0..2 {
            for &v in &wave {
                out.push(det.step(v));
            }
        }
        let second: &[bool] = &out[4000..];
        // High between the positive pulse (75 %) and the next negative
        // pulse (25 % of the following period): duty ≈ 50 %.
        let duty = duty_cycle(second).unwrap();
        assert!((duty - 0.5).abs() < 0.03, "duty = {duty}");
        // Check polarity at sample points: low just before 75 %, high
        // just after; high before 25 %, low after.
        assert!(!second[2900]);
        assert!(second[3500]);
        assert!(second[500]);
        assert!(!second[1500]);
    }

    #[test]
    fn shifted_pulses_shift_duty_linearly() {
        // Move both pulses by +5 % of the period (what an external field
        // does): the high interval from positive→negative pulse is
        // unchanged at exactly 50 % only when symmetric; moving *only*
        // the pulse pair apart changes the duty.
        let mut det = PulsePositionDetector::new(DetectorConfig::paper_design());
        // Negative pulse earlier, positive pulse later: high interval
        // (pos → next neg) shrinks.
        let wave = synth_waveform(4000, 0.20, 0.80, 0.058);
        let mut out = Vec::new();
        for _ in 0..2 {
            for &v in &wave {
                out.push(det.step(v));
            }
        }
        let duty = duty_cycle(&out[4000..]).unwrap();
        assert!((duty - 0.40).abs() < 0.03, "duty = {duty}");
    }

    #[test]
    fn small_pulses_below_threshold_are_ignored() {
        let mut det = PulsePositionDetector::new(DetectorConfig::paper_design());
        let wave = synth_waveform(2000, 0.25, 0.75, 0.01); // < 20 mV
        let mut any_high = false;
        for &v in &wave {
            any_high |= det.step(v);
        }
        assert!(!any_high);
    }

    #[test]
    fn reset_clears_state() {
        let mut det = PulsePositionDetector::new(DetectorConfig::paper_design());
        for &v in &synth_waveform(2000, 0.25, 0.75, 0.058) {
            det.step(v);
        }
        det.reset();
        assert!(!det.output());
    }

    #[test]
    fn duty_cycle_helper() {
        assert_eq!(duty_cycle(&[]), None);
        assert_eq!(duty_cycle(&[true, true, false, false]), Some(0.5));
        assert_eq!(duty_cycle(&[true]), Some(1.0));
        assert_eq!(duty_cycle(&[false]), Some(0.0));
    }

    #[test]
    fn config_accessors() {
        let det = PulsePositionDetector::new(DetectorConfig::default());
        assert_eq!(det.config().threshold, Volt::new(0.02));
        assert!(!det.output());
    }
}
