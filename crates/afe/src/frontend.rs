//! Transient simulation of the complete analogue front-end.
//!
//! [`FrontEnd`] wires the triangular oscillator, a V-I converter, one
//! fluxgate element and the pulse-position detector into the transient
//! readout chain of Fig. 1's analogue section, and runs it over a
//! configurable number of excitation periods.
//!
//! There are **two measurement tiers**, both fed from the same
//! precomputed [`ExcitationTable`] (built once per channel — the drive
//! chain is periodic and field-independent):
//!
//! * [`FrontEnd::measure`] — the **duty-only fast path**: tallies the
//!   detector output inline (duty, clipping, pulse edges) with zero
//!   per-sample allocation. This is what every heading fix, sweep and
//!   Monte-Carlo trial runs.
//! * [`FrontEnd::run`] — the **traced diagnostic path**: additionally
//!   records the full `i_exc`/`v_exc`/`v_pickup`/`detector` waveform set
//!   for the Fig. 3 / Fig. 4 reproductions and the spectrum tests.
//!
//! The two tiers consume identical drive values and step the noise
//! generator and detector in the same order, so their duty cycles (and
//! everything downstream — counts, headings) agree **bit for bit**; the
//! determinism suite enforces this.
//!
//! The closed-form expectation, derived in the [`detector`](crate::detector)
//! docs, is `duty = 1/2 − H_ext/(2·H_peak)`; the simulation reproduces it
//! including all modelled non-idealities (comparator thresholds, noise,
//! clipping, hysteretic cores).

use crate::detector::{duty_cycle, DetectorConfig, PulsePositionDetector};
use crate::excitation::ExcitationTable;
use crate::oscillator::TriangleWave;
use crate::vi_converter::ViConverter;
use fluxcomp_fluxgate::noise::GaussianNoise;
use fluxcomp_fluxgate::transducer::{Fluxgate, FluxgateParams};
use fluxcomp_msim::time::SimTime;
use fluxcomp_msim::trace::TraceSet;
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::{Seconds, Volt};
use std::error::Error;
use std::fmt;

/// Why a front-end channel configuration was rejected.
///
/// Each variant corresponds to one structural constraint of the readout
/// chain, so callers that relay the failure over a wire (the serve
/// layer's typed statuses) or fold it into a larger build error
/// (`compass::BuildError::BadFrontEnd`) can match on the cause instead
/// of parsing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FrontEndError {
    /// The analogue grid is too coarse to resolve the pulse shape:
    /// fewer than 16 samples per excitation period.
    TooFewSamplesPerPeriod {
        /// The rejected `samples_per_period`.
        got: usize,
    },
    /// `measure_periods == 0` — there would be no measurement window.
    NoMeasurePeriods,
    /// The sensor element parameters are invalid.
    BadSensor {
        /// The message [`FluxgateParams::check`] rejected them with.
        reason: &'static str,
    },
}

impl fmt::Display for FrontEndError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontEndError::TooFewSamplesPerPeriod { got } => {
                write!(f, "need at least 16 samples per period, got {got}")
            }
            FrontEndError::NoMeasurePeriods => write!(f, "need at least one measurement period"),
            FrontEndError::BadSensor { reason } => write!(f, "invalid sensor element: {reason}"),
        }
    }
}

impl Error for FrontEndError {}

/// Configuration of one front-end channel.
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// The excitation waveform.
    pub excitation: TriangleWave,
    /// The V-I converter driving the sensor.
    pub vi: ViConverter,
    /// The sensor element.
    pub sensor: FluxgateParams,
    /// The pulse detector.
    pub detector: DetectorConfig,
    /// RMS noise added to the pickup voltage, in volts.
    pub pickup_noise_rms: f64,
    /// Noise seed.
    pub noise_seed: u64,
    /// Analogue samples per excitation period.
    pub samples_per_period: usize,
    /// Settling periods discarded before measurement.
    pub settle_periods: usize,
    /// Measurement periods.
    pub measure_periods: usize,
}

impl FrontEndConfig {
    /// The paper's operating point: 12 mA p-p @ 8 kHz through the adapted
    /// sensor, paper detector design, no noise, 4096 samples/period
    /// (the analogue grid is synchronous with the excitation, so the
    /// detector edges quantise to it — 4096 keeps that quantisation well
    /// below the counter's own), 1 settle + 4 measure periods.
    pub fn paper_design() -> Self {
        Self {
            excitation: TriangleWave::paper_excitation(),
            vi: ViConverter::paper_design(),
            sensor: FluxgateParams::adapted(),
            detector: DetectorConfig::paper_design(),
            pickup_noise_rms: 0.0,
            noise_seed: 0x5EED,
            samples_per_period: 4096,
            settle_periods: 1,
            measure_periods: 4,
        }
    }

    /// Validates the configuration without constructing a channel.
    ///
    /// Returns the same [`FrontEndError`] [`FrontEnd::new`] reports, so
    /// callers can check a configuration before handing it over.
    pub fn check(&self) -> Result<(), FrontEndError> {
        if self.samples_per_period < 16 {
            return Err(FrontEndError::TooFewSamplesPerPeriod {
                got: self.samples_per_period,
            });
        }
        if self.measure_periods == 0 {
            return Err(FrontEndError::NoMeasurePeriods);
        }
        self.sensor
            .check()
            .map_err(|reason| FrontEndError::BadSensor { reason })
    }
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        Self::paper_design()
    }
}

/// Result of a traced front-end transient run.
#[derive(Debug, Clone)]
pub struct FrontEndResult {
    /// Measured high fraction of the detector output over the
    /// measurement periods.
    pub duty: f64,
    /// Detector output samples (measurement periods only), in time order.
    pub detector_samples: Vec<bool>,
    /// Full waveform set: `i_exc`, `v_exc`, `v_pickup`, `detector`.
    pub traces: TraceSet,
    /// `true` if the V-I converter clipped at any point in the run.
    pub clipped: bool,
}

impl FrontEndResult {
    /// The field estimate implied by the duty cycle, inverted through the
    /// ideal detector equation `duty = 1/2 − H/(2·H_peak)`.
    pub fn field_estimate(&self, h_peak: AmperePerMeter) -> AmperePerMeter {
        h_peak * ((0.5 - self.duty) * 2.0)
    }
}

/// Result of a duty-only fast measurement — the tallies the digital
/// counter side actually consumes, with no waveform capture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasureResult {
    /// Measured high fraction of the detector output over the
    /// measurement periods. Bit-identical to the traced
    /// [`FrontEndResult::duty`] for the same configuration and seed.
    pub duty: f64,
    /// `true` if the V-I converter clips anywhere in the (periodic)
    /// drive.
    pub clipped: bool,
    /// Detector output edges over the whole run (settle + measurement).
    pub pulse_edges: u64,
    /// Detector-high samples within the measurement window.
    pub high_samples: u64,
    /// Total samples in the measurement window.
    pub measure_samples: u64,
}

impl MeasureResult {
    /// The field estimate implied by the duty cycle, inverted through the
    /// ideal detector equation `duty = 1/2 − H/(2·H_peak)`.
    pub fn field_estimate(&self, h_peak: AmperePerMeter) -> AmperePerMeter {
        h_peak * ((0.5 - self.duty) * 2.0)
    }
}

/// One analogue front-end channel (oscillator → V-I → sensor → detector).
#[derive(Debug, Clone)]
pub struct FrontEnd {
    config: FrontEndConfig,
    sensor: Fluxgate,
    table: ExcitationTable,
}

impl FrontEnd {
    /// Builds the channel, precomputing one period of the excitation
    /// drive chain (shared by every subsequent run and measurement).
    ///
    /// # Errors
    ///
    /// The [`FrontEndConfig::check`] error if `samples_per_period < 16`
    /// or `measure_periods == 0`, or if the sensor parameters are
    /// invalid.
    pub fn new(config: FrontEndConfig) -> Result<Self, FrontEndError> {
        config.check()?;
        let sensor = Fluxgate::new(config.sensor);
        let table = ExcitationTable::build(
            &config.excitation,
            &config.vi,
            &sensor,
            config.samples_per_period,
        );
        Ok(Self {
            config,
            sensor,
            table,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &FrontEndConfig {
        &self.config
    }

    /// The sensor element.
    pub fn sensor(&self) -> &Fluxgate {
        &self.sensor
    }

    /// The precomputed one-period excitation drive table.
    pub fn excitation_table(&self) -> &ExcitationTable {
        &self.table
    }

    /// The peak excitation field the configured drive produces (after
    /// V-I compliance limiting).
    pub fn peak_excitation_field(&self) -> AmperePerMeter {
        let demanded =
            self.config.excitation.amplitude_pp() / 2.0 + self.config.excitation.dc_offset().abs();
        let delivered = self
            .config
            .vi
            .drive(demanded, self.config.sensor.r_excitation);
        self.sensor.h_from_current(delivered)
    }

    /// Runs the traced transient readout with external axial field
    /// `h_ext` and returns the measured duty cycle plus all waveforms.
    ///
    /// Noise is seeded from the configured `noise_seed`; this call is a
    /// pure function of the configuration and `h_ext`, so repeated runs
    /// return bit-identical results. Sweep-style callers that discard the
    /// waveforms should use [`measure`](Self::measure) instead.
    pub fn run(&self, h_ext: AmperePerMeter) -> FrontEndResult {
        self.run_with_seed(h_ext, self.config.noise_seed)
    }

    /// Like [`run`](Self::run), but with an explicit noise seed.
    ///
    /// This is the entry point for repeat/Monte-Carlo studies that need
    /// a *different* noise realisation per run while staying fully
    /// deterministic: derive one seed per run (e.g. with
    /// `fluxcomp_exec::derive_seed`) instead of mutating shared state.
    pub fn run_with_seed(&self, h_ext: AmperePerMeter, noise_seed: u64) -> FrontEndResult {
        let _run = fluxcomp_obs::span("afe.run");
        let cfg = &self.config;
        let period = 1.0 / cfg.excitation.frequency().value();
        let n = cfg.samples_per_period;
        let dt = period / n as f64;
        let total_periods = cfg.settle_periods + cfg.measure_periods;
        let total_samples = total_periods * n;

        let mut detector = PulsePositionDetector::new(cfg.detector);
        let mut noise = GaussianNoise::new(cfg.pickup_noise_rms, noise_seed);

        let mut traces = TraceSet::new();
        let ch_i = traces.add_with_capacity("i_exc", total_samples);
        let ch_ve = traces.add_with_capacity("v_exc", total_samples);
        let ch_vp = traces.add_with_capacity("v_pickup", total_samples);
        let ch_d = traces.add_with_capacity("detector", total_samples);

        let mut detector_samples = Vec::with_capacity(cfg.measure_periods * n);
        // Pulse edges are tallied locally — one counter update per run,
        // not per analogue sample.
        let mut pulse_edges = 0u64;
        let mut prev_out = false;

        for p in 0..total_periods {
            for (j, drive) in self.table.samples().iter().enumerate() {
                let k = p * n + j;
                let sim_t = SimTime::from_seconds(Seconds::new(k as f64 * dt));

                // Sensor: total field, pickup EMF, excitation-coil
                // voltage. The drive terms come from the shared table.
                let h = drive.h_drive + h_ext;
                let mut v_pickup = self.sensor.pickup_emf(h, drive.dh_dt);
                v_pickup += Volt::new(noise.sample());
                let v_exc = self.sensor.excitation_voltage(drive.i, drive.di_dt, h_ext);

                // Detector.
                let out = detector.step(v_pickup);
                pulse_edges += u64::from(out != prev_out);
                prev_out = out;

                traces.record(ch_i, sim_t, drive.i.value());
                traces.record(ch_ve, sim_t, v_exc.value());
                traces.record(ch_vp, sim_t, v_pickup.value());
                traces.record(ch_d, sim_t, if out { 1.0 } else { 0.0 });

                if p >= cfg.settle_periods {
                    detector_samples.push(out);
                }
            }
        }

        let duty = duty_cycle(&detector_samples).unwrap_or(0.5);
        // The drive is periodic, so "clipped anywhere in the run" is
        // exactly "clipped anywhere in the table's single period".
        let clipped = self.table.any_clips();
        // The front-end drives its own analogue grid (it does not go
        // through the msim engine), so it contributes its steps to the
        // kernel-wide analogue step counter itself.
        fluxcomp_obs::counter_add("msim.analog_steps", total_samples as u64);
        fluxcomp_obs::counter_add("afe.runs", 1);
        fluxcomp_obs::counter_add("afe.pulse_edges", pulse_edges);
        fluxcomp_obs::counter_add("afe.clipped_runs", u64::from(clipped));
        fluxcomp_obs::histogram_record("afe.duty", duty);
        FrontEndResult {
            duty,
            detector_samples,
            traces,
            clipped,
        }
    }

    /// Runs the duty-only fast measurement with external axial field
    /// `h_ext`: same physics, same noise sequence and same detector
    /// stepping as [`run`](Self::run), but the detector output is tallied
    /// inline — no waveform capture, no per-sample allocation.
    ///
    /// The returned duty is bit-identical to the traced path's.
    pub fn measure(&self, h_ext: AmperePerMeter) -> MeasureResult {
        self.measure_with_seed(h_ext, self.config.noise_seed)
    }

    /// Like [`measure`](Self::measure), but with an explicit noise seed.
    pub fn measure_with_seed(&self, h_ext: AmperePerMeter, noise_seed: u64) -> MeasureResult {
        let mut detector = PulsePositionDetector::new(self.config.detector);
        self.measure_into(h_ext, noise_seed, &mut detector, |_, _| {})
    }

    /// The core of the fast path: measures into a caller-provided
    /// detector (reset on entry, so a scratch detector can be reused
    /// across any number of measurements) and reports every measurement-
    /// window sample to `on_sample(index, output)` as it happens.
    ///
    /// `on_sample` is how the digital side rides along without an
    /// intermediate buffer: the compass feeds each sample straight into
    /// the up/down counter via its precomputed clock schedule. Indices
    /// run `0..measure_periods·samples_per_period` in time order.
    pub fn measure_into(
        &self,
        h_ext: AmperePerMeter,
        noise_seed: u64,
        detector: &mut PulsePositionDetector,
        mut on_sample: impl FnMut(usize, bool),
    ) -> MeasureResult {
        let _run = fluxcomp_obs::span("afe.measure");
        let cfg = &self.config;
        debug_assert_eq!(
            detector.config(),
            &cfg.detector,
            "scratch detector configured for a different channel"
        );
        detector.reset();
        let mut noise = GaussianNoise::new(cfg.pickup_noise_rms, noise_seed);
        let mut pulse_edges = 0u64;
        let mut prev_out = false;

        for _ in 0..cfg.settle_periods {
            for drive in self.table.samples() {
                let h = drive.h_drive + h_ext;
                let mut v_pickup = self.sensor.pickup_emf(h, drive.dh_dt);
                v_pickup += Volt::new(noise.sample());
                let out = detector.step(v_pickup);
                pulse_edges += u64::from(out != prev_out);
                prev_out = out;
            }
        }

        let mut high_samples = 0u64;
        let mut index = 0usize;
        for _ in 0..cfg.measure_periods {
            for drive in self.table.samples() {
                let h = drive.h_drive + h_ext;
                let mut v_pickup = self.sensor.pickup_emf(h, drive.dh_dt);
                v_pickup += Volt::new(noise.sample());
                let out = detector.step(v_pickup);
                pulse_edges += u64::from(out != prev_out);
                prev_out = out;
                high_samples += u64::from(out);
                on_sample(index, out);
                index += 1;
            }
        }

        let measure_samples = index as u64;
        // Same division as `duty_cycle(&detector_samples)` on the traced
        // path: high/total as f64 — bit-identical by construction.
        let duty = high_samples as f64 / measure_samples as f64;
        let clipped = self.table.any_clips();
        let total = (cfg.settle_periods + cfg.measure_periods) * cfg.samples_per_period;
        fluxcomp_obs::counter_add("msim.analog_steps", total as u64);
        fluxcomp_obs::counter_add("afe.measures", 1);
        fluxcomp_obs::counter_add("afe.pulse_edges", pulse_edges);
        fluxcomp_obs::counter_add("afe.clipped_runs", u64::from(clipped));
        fluxcomp_obs::histogram_record("afe.duty", duty);
        MeasureResult {
            duty,
            clipped,
            pulse_edges,
            high_samples,
            measure_samples,
        }
    }

    /// [`measure_into`](Self::measure_into) under injected faults.
    ///
    /// When `faults` [is none](fluxcomp_faults::FixFaults::is_none) this
    /// **delegates** to the plain fast path — the no-fault bitstream is
    /// untouched by construction, not by tolerance. When faults are
    /// active, the same sample loop runs with the fault effects applied
    /// in physical order:
    ///
    /// 1. excitation dropout zeroes the drive field over its window;
    /// 2. the H_K drift ramp adds a linearly growing field offset;
    /// 3. an open pickup scales the EMF by its residual gain;
    /// 4. the nominal noise stream is added (always stepped, in the
    ///    same order as the clean path, so a fault never perturbs any
    ///    *other* fix's draw sequence);
    /// 5. a noise burst adds draws from its own derived stream over its
    ///    window;
    /// 6. a stuck comparator overrides the detector output (the
    ///    detector is still stepped — its internal state evolves as the
    ///    real damaged circuit's would).
    ///
    /// Window fractions cover the full settle+measure run.
    pub fn measure_into_faulted(
        &self,
        h_ext: AmperePerMeter,
        noise_seed: u64,
        detector: &mut PulsePositionDetector,
        faults: &fluxcomp_faults::FixFaults,
        mut on_sample: impl FnMut(usize, bool),
    ) -> MeasureResult {
        if faults.is_none() {
            return self.measure_into(h_ext, noise_seed, detector, on_sample);
        }
        let _run = fluxcomp_obs::span("faults.measure");
        let cfg = &self.config;
        debug_assert_eq!(
            detector.config(),
            &cfg.detector,
            "scratch detector configured for a different channel"
        );
        detector.reset();
        let mut noise = GaussianNoise::new(cfg.pickup_noise_rms, noise_seed);
        let mut burst_noise = faults.burst.map(|b| GaussianNoise::new(b.rms, b.seed));
        let total_samples =
            ((cfg.settle_periods + cfg.measure_periods) * cfg.samples_per_period) as f64;
        let inv_total = 1.0 / total_samples;
        let mut pulse_edges = 0u64;
        let mut prev_out = false;
        let mut high_samples = 0u64;
        let mut index = 0usize;
        let mut global = 0usize;

        for period in 0..cfg.settle_periods + cfg.measure_periods {
            let measuring = period >= cfg.settle_periods;
            for drive in self.table.samples() {
                let frac = global as f64 * inv_total;
                global += 1;
                let dropped = faults
                    .dropout
                    .is_some_and(|(from, until)| frac >= from && frac < until);
                let (h_drive, dh_dt) = if dropped {
                    (AmperePerMeter::ZERO, 0.0)
                } else {
                    (drive.h_drive, drive.dh_dt)
                };
                let h = h_drive + h_ext + AmperePerMeter::new(faults.hk_ramp * frac);
                let mut v_pickup = self.sensor.pickup_emf(h, dh_dt);
                if faults.pickup_gain != 1.0 {
                    v_pickup = Volt::new(v_pickup.value() * faults.pickup_gain);
                }
                v_pickup += Volt::new(noise.sample());
                if let (Some(burst), Some(stream)) = (faults.burst, burst_noise.as_mut()) {
                    if frac >= burst.from && frac < burst.until {
                        v_pickup += Volt::new(stream.sample());
                    }
                }
                let mut out = detector.step(v_pickup);
                if let Some(stuck) = faults.stuck_output {
                    out = stuck;
                }
                pulse_edges += u64::from(out != prev_out);
                prev_out = out;
                if measuring {
                    high_samples += u64::from(out);
                    on_sample(index, out);
                    index += 1;
                }
            }
        }

        let measure_samples = index as u64;
        let duty = high_samples as f64 / measure_samples as f64;
        let clipped = self.table.any_clips();
        fluxcomp_obs::counter_add("msim.analog_steps", global as u64);
        fluxcomp_obs::counter_add("afe.measures", 1);
        fluxcomp_obs::counter_add("faults.faulted_measures", 1);
        fluxcomp_obs::counter_add("afe.pulse_edges", pulse_edges);
        fluxcomp_obs::counter_add("afe.clipped_runs", u64::from(clipped));
        fluxcomp_obs::histogram_record("afe.duty", duty);
        MeasureResult {
            duty,
            clipped,
            pulse_edges,
            high_samples,
            measure_samples,
        }
    }
}

impl Default for FrontEnd {
    fn default() -> Self {
        Self::new(FrontEndConfig::default()).expect("paper design is valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_units::magnetics::MU_0;

    fn h_from_microtesla(ut: f64) -> AmperePerMeter {
        AmperePerMeter::new(ut * 1e-6 / MU_0)
    }

    #[test]
    fn zero_field_gives_half_duty() {
        let fe = FrontEnd::default();
        let r = fe.run(AmperePerMeter::ZERO);
        assert!(
            (r.duty - 0.5).abs() < 0.005,
            "duty = {} should be 0.5",
            r.duty
        );
        assert!(!r.clipped);
    }

    #[test]
    fn duty_shift_is_linear_in_field() {
        let fe = FrontEnd::default();
        let h_peak = fe.peak_excitation_field();
        // 15 µT ≈ 11.9 A/m; H_peak = 240 A/m → expected shift ≈ 0.0249.
        let h1 = h_from_microtesla(15.0);
        let d1 = fe.run(h1).duty;
        let expected1 = 0.5 - h1.value() / (2.0 * h_peak.value());
        assert!((d1 - expected1).abs() < 0.005, "{d1} vs {expected1}");
        // Twice the field → twice the shift, within tolerance.
        let h2 = h_from_microtesla(30.0);
        let d2 = fe.run(h2).duty;
        let shift1 = 0.5 - d1;
        let shift2 = 0.5 - d2;
        assert!(
            (shift2 / shift1 - 2.0).abs() < 0.15,
            "shift ratio {}",
            shift2 / shift1
        );
    }

    #[test]
    fn negative_field_shifts_duty_the_other_way() {
        let fe = FrontEnd::default();
        let plus = fe.run(h_from_microtesla(20.0)).duty;
        let minus = fe.run(h_from_microtesla(-20.0)).duty;
        assert!(plus < 0.5 && minus > 0.5);
        // Symmetric response.
        assert!(((0.5 - plus) - (minus - 0.5)).abs() < 0.005);
    }

    #[test]
    fn field_estimate_inverts_duty() {
        let fe = FrontEnd::default();
        let h = h_from_microtesla(25.0);
        let r = fe.run(h);
        let est = r.field_estimate(fe.peak_excitation_field());
        let rel = (est.value() - h.value()).abs() / h.value();
        assert!(rel < 0.05, "estimate {est} vs {h}, rel err {rel}");
    }

    #[test]
    fn traces_are_complete() {
        let fe = FrontEnd::default();
        let r = fe.run(AmperePerMeter::ZERO);
        for name in ["i_exc", "v_exc", "v_pickup", "detector"] {
            let tr = r.traces.by_name(name).unwrap();
            assert_eq!(tr.len(), (1 + 4) * 4096, "{name}");
        }
        // Pickup shows both polarities of pulses.
        let (lo, hi) = r.traces.by_name("v_pickup").unwrap().value_range().unwrap();
        assert!(lo < -0.02 && hi > 0.02, "pulses missing: {lo}..{hi}");
    }

    #[test]
    fn peak_excitation_field_matches_design_point() {
        let fe = FrontEnd::default();
        // ±6 mA × 40 turns / 1 mm = 240 A/m = 2× saturation field.
        assert!((fe.peak_excitation_field().value() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn noise_perturbs_but_does_not_break_readout() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.pickup_noise_rms = 2e-3; // 2 mV RMS on ~58 mV pulses
                                     // Size the hysteresis well above the noise (≫ 3σ both ways), as a
                                     // real detector design would — otherwise comparator chatter inside
                                     // a pulse releases the latch early (see the E1 hysteresis
                                     // ablation, which sweeps this deliberately).
        cfg.detector.hysteresis = fluxcomp_units::Volt::new(0.016);
        cfg.measure_periods = 8;
        let fe = FrontEnd::new(cfg).expect("valid config");
        let h = h_from_microtesla(20.0);
        let r = fe.run(h);
        let est = r.field_estimate(fe.peak_excitation_field());
        let rel = (est.value() - h.value()).abs() / h.value();
        assert!(rel < 0.15, "rel err {rel} under noise");
    }

    #[test]
    fn excessive_drive_reports_clipping() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.sensor.r_excitation = fluxcomp_units::Ohm::new(2_000.0);
        let fe = FrontEnd::new(cfg).expect("valid config");
        let r = fe.run(AmperePerMeter::ZERO);
        assert!(r.clipped);
        assert!(fe.excitation_table().any_clips());
    }

    #[test]
    fn hysteretic_core_still_reads_field() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.sensor = FluxgateParams::adapted_hysteretic(0.1);
        let fe = FrontEnd::new(cfg).expect("valid config");
        let h = h_from_microtesla(20.0);
        let est = fe.run(h).field_estimate(fe.peak_excitation_field());
        let rel = (est.value() - h.value()).abs() / h.value();
        assert!(rel < 0.1, "rel err {rel} with hysteresis");
    }

    #[test]
    fn too_few_samples_rejected() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.samples_per_period = 8;
        let err = FrontEnd::new(cfg).unwrap_err();
        assert_eq!(err, FrontEndError::TooFewSamplesPerPeriod { got: 8 });
        assert!(err.to_string().contains("16 samples"));
    }

    #[test]
    fn zero_measure_periods_rejected() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.measure_periods = 0;
        let err = FrontEnd::new(cfg).unwrap_err();
        assert_eq!(err, FrontEndError::NoMeasurePeriods);
        assert!(err.to_string().contains("measurement period"));
    }

    #[test]
    fn bad_sensor_reports_the_element_reason() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.sensor.turns_pickup = 0;
        assert_eq!(
            FrontEnd::new(cfg).unwrap_err(),
            FrontEndError::BadSensor {
                reason: "pickup coil needs turns"
            }
        );
    }

    /// The contract the whole fast path rests on: for every configuration
    /// class (clean, noisy, clipping, hysteretic core), every seed and
    /// every field, the duty-only tier reproduces the traced tier bit for
    /// bit.
    #[test]
    fn measure_matches_run_bitwise() {
        let noisy = {
            let mut cfg = FrontEndConfig::paper_design();
            cfg.pickup_noise_rms = 2e-3;
            cfg.detector.hysteresis = fluxcomp_units::Volt::new(0.016);
            cfg
        };
        let clipping = {
            let mut cfg = FrontEndConfig::paper_design();
            cfg.sensor.r_excitation = fluxcomp_units::Ohm::new(2_000.0);
            cfg
        };
        let hysteretic = {
            let mut cfg = FrontEndConfig::paper_design();
            cfg.sensor = FluxgateParams::adapted_hysteretic(0.1);
            cfg
        };
        let configs = [
            ("paper", FrontEndConfig::paper_design()),
            ("noisy", noisy),
            ("clipping", clipping),
            ("hysteretic", hysteretic),
        ];
        for (name, cfg) in configs {
            let fe = FrontEnd::new(cfg).expect("valid config");
            for seed in [0x5EED_u64, 1, 0xDEAD_BEEF] {
                for ut in [-20.0, 0.0, 15.0] {
                    let h = h_from_microtesla(ut);
                    let traced = fe.run_with_seed(h, seed);
                    let fast = fe.measure_with_seed(h, seed);
                    assert_eq!(
                        traced.duty.to_bits(),
                        fast.duty.to_bits(),
                        "{name}: duty differs at seed {seed:#x}, {ut} µT"
                    );
                    assert_eq!(traced.clipped, fast.clipped, "{name}");
                    let high = traced.detector_samples.iter().filter(|&&s| s).count() as u64;
                    assert_eq!(high, fast.high_samples, "{name}");
                    assert_eq!(
                        traced.detector_samples.len() as u64,
                        fast.measure_samples,
                        "{name}"
                    );
                }
            }
        }
    }

    #[test]
    fn measure_into_reports_every_measurement_sample_in_order() {
        let fe = FrontEnd::default();
        let h = h_from_microtesla(15.0);
        let mut detector = PulsePositionDetector::new(fe.config().detector);
        let mut seen = Vec::new();
        let result = fe.measure_into(h, fe.config().noise_seed, &mut detector, |index, out| {
            assert_eq!(index, seen.len());
            seen.push(out);
        });
        let traced = fe.run(h);
        assert_eq!(seen, traced.detector_samples);
        assert_eq!(result.measure_samples as usize, seen.len());
        // Reuse: the detector is reset on entry, so a second measurement
        // with the same (dirty) detector reproduces the first.
        let again = fe.measure_into(h, fe.config().noise_seed, &mut detector, |_, _| {});
        assert_eq!(result, again);
    }

    #[test]
    fn measure_field_estimate_matches_traced_estimate() {
        let fe = FrontEnd::default();
        let h = h_from_microtesla(25.0);
        let traced = fe.run(h).field_estimate(fe.peak_excitation_field());
        let fast = fe.measure(h).field_estimate(fe.peak_excitation_field());
        assert_eq!(traced.value().to_bits(), fast.value().to_bits());
    }

    #[test]
    fn faulted_path_with_no_faults_is_bit_identical_to_fast_path() {
        let fe = FrontEnd::default();
        let none = fluxcomp_faults::FixFaults::none();
        for ut in [-20.0, 0.0, 15.0] {
            let h = h_from_microtesla(ut);
            for seed in [1u64, 0x5EED] {
                let mut detector = PulsePositionDetector::new(fe.config().detector);
                let mut clean_samples = Vec::new();
                let clean = fe.measure_into(h, seed, &mut detector, |_, out| {
                    clean_samples.push(out);
                });
                let mut faulted_samples = Vec::new();
                let faulted = fe.measure_into_faulted(h, seed, &mut detector, &none, |_, out| {
                    faulted_samples.push(out);
                });
                assert_eq!(clean.duty.to_bits(), faulted.duty.to_bits(), "{ut} µT");
                assert_eq!(clean, faulted);
                assert_eq!(clean_samples, faulted_samples);
            }
        }
    }

    #[test]
    fn open_pickup_collapses_duty_and_edges() {
        let fe = FrontEnd::default();
        let mut faults = fluxcomp_faults::FixFaults::none();
        faults.pickup_gain = fluxcomp_faults::OPEN_PICKUP_GAIN;
        faults.injected = 1;
        let mut detector = PulsePositionDetector::new(fe.config().detector);
        let h = h_from_microtesla(15.0);
        let r = fe.measure_into_faulted(h, 1, &mut detector, &faults, |_, _| {});
        // µV-scale EMF never crosses the comparator threshold: the
        // detector output is flat and the duty is pinned at an
        // implausible extreme (0 or 1 depending on idle polarity).
        assert_eq!(r.pulse_edges, 0, "open pickup must kill every pulse edge");
        assert!(r.duty == 0.0 || r.duty == 1.0, "duty {} not pinned", r.duty);
    }

    #[test]
    fn stuck_comparator_pins_duty_and_is_deterministic() {
        let fe = FrontEnd::default();
        let mut faults = fluxcomp_faults::FixFaults::none();
        faults.stuck_output = Some(true);
        faults.injected = 1;
        let mut detector = PulsePositionDetector::new(fe.config().detector);
        let h = h_from_microtesla(15.0);
        let a = fe.measure_into_faulted(h, 9, &mut detector, &faults, |_, _| {});
        assert_eq!(a.duty, 1.0);
        // One edge at most: the idle-low → welded-high transition.
        assert!(a.pulse_edges <= 1, "edges {}", a.pulse_edges);
        let b = fe.measure_into_faulted(h, 9, &mut detector, &faults, |_, _| {});
        assert_eq!(a, b, "faulted measurement must be reproducible");
    }

    #[test]
    fn hk_ramp_shifts_duty_beyond_clean_value() {
        let fe = FrontEnd::default();
        let mut faults = fluxcomp_faults::FixFaults::none();
        faults.hk_ramp = 60.0; // a quarter of H_peak by window end
        faults.injected = 1;
        let mut detector = PulsePositionDetector::new(fe.config().detector);
        let h = h_from_microtesla(15.0);
        let clean = fe.measure_with_seed(h, 3);
        let drifted = fe.measure_into_faulted(h, 3, &mut detector, &faults, |_, _| {});
        // duty = 1/2 − H/(2·H_peak): a positive field offset pushes the
        // duty further down than the clean measurement.
        assert!(
            drifted.duty < clean.duty - 0.01,
            "drift did not move duty: clean {} vs drifted {}",
            clean.duty,
            drifted.duty
        );
    }
}
