//! Transient simulation of the complete analogue front-end.
//!
//! [`FrontEnd`] wires the triangular oscillator, a V-I converter, one
//! fluxgate element and the pulse-position detector into the transient
//! readout chain of Fig. 1's analogue section, and runs it over a
//! configurable number of excitation periods. The output is both the raw
//! waveform set (for the Fig. 3 / Fig. 4 reproductions) and the measured
//! detector duty cycle (what the digital counter will digitise).
//!
//! The closed-form expectation, derived in the [`detector`](crate::detector)
//! docs, is `duty = 1/2 − H_ext/(2·H_peak)`; the simulation reproduces it
//! including all modelled non-idealities (comparator thresholds, noise,
//! clipping, hysteretic cores).

use crate::detector::{duty_cycle, DetectorConfig, PulsePositionDetector};
use crate::oscillator::TriangleWave;
use crate::vi_converter::ViConverter;
use fluxcomp_fluxgate::noise::GaussianNoise;
use fluxcomp_fluxgate::transducer::{Fluxgate, FluxgateParams};
use fluxcomp_msim::time::SimTime;
use fluxcomp_msim::trace::TraceSet;
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::Seconds;

/// Configuration of one front-end channel.
#[derive(Debug, Clone)]
pub struct FrontEndConfig {
    /// The excitation waveform.
    pub excitation: TriangleWave,
    /// The V-I converter driving the sensor.
    pub vi: ViConverter,
    /// The sensor element.
    pub sensor: FluxgateParams,
    /// The pulse detector.
    pub detector: DetectorConfig,
    /// RMS noise added to the pickup voltage, in volts.
    pub pickup_noise_rms: f64,
    /// Noise seed.
    pub noise_seed: u64,
    /// Analogue samples per excitation period.
    pub samples_per_period: usize,
    /// Settling periods discarded before measurement.
    pub settle_periods: usize,
    /// Measurement periods.
    pub measure_periods: usize,
}

impl FrontEndConfig {
    /// The paper's operating point: 12 mA p-p @ 8 kHz through the adapted
    /// sensor, paper detector design, no noise, 4096 samples/period
    /// (the analogue grid is synchronous with the excitation, so the
    /// detector edges quantise to it — 4096 keeps that quantisation well
    /// below the counter's own), 1 settle + 4 measure periods.
    pub fn paper_design() -> Self {
        Self {
            excitation: TriangleWave::paper_excitation(),
            vi: ViConverter::paper_design(),
            sensor: FluxgateParams::adapted(),
            detector: DetectorConfig::paper_design(),
            pickup_noise_rms: 0.0,
            noise_seed: 0x5EED,
            samples_per_period: 4096,
            settle_periods: 1,
            measure_periods: 4,
        }
    }

    /// Validates the configuration without constructing a channel.
    ///
    /// Returns the same message [`FrontEnd::new`] would panic with, so
    /// callers can surface the problem as a recoverable error instead.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.samples_per_period < 16 {
            return Err("need at least 16 samples per period");
        }
        if self.measure_periods == 0 {
            return Err("need at least one measurement period");
        }
        self.sensor.check()
    }
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        Self::paper_design()
    }
}

/// Result of a front-end transient run.
#[derive(Debug, Clone)]
pub struct FrontEndResult {
    /// Measured high fraction of the detector output over the
    /// measurement periods.
    pub duty: f64,
    /// Detector output samples (measurement periods only), in time order.
    pub detector_samples: Vec<bool>,
    /// Full waveform set: `i_exc`, `v_exc`, `v_pickup`, `detector`.
    pub traces: TraceSet,
    /// `true` if the V-I converter clipped at any point in the run.
    pub clipped: bool,
}

impl FrontEndResult {
    /// The field estimate implied by the duty cycle, inverted through the
    /// ideal detector equation `duty = 1/2 − H/(2·H_peak)`.
    pub fn field_estimate(&self, h_peak: AmperePerMeter) -> AmperePerMeter {
        h_peak * ((0.5 - self.duty) * 2.0)
    }
}

/// One analogue front-end channel (oscillator → V-I → sensor → detector).
#[derive(Debug, Clone)]
pub struct FrontEnd {
    config: FrontEndConfig,
    sensor: Fluxgate,
}

impl FrontEnd {
    /// Builds the channel.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_period < 16` or `measure_periods == 0`, or
    /// if the sensor parameters are invalid.
    pub fn new(config: FrontEndConfig) -> Self {
        if let Err(reason) = config.check() {
            panic!("{reason}");
        }
        let sensor = Fluxgate::new(config.sensor);
        Self { config, sensor }
    }

    /// The configuration.
    pub fn config(&self) -> &FrontEndConfig {
        &self.config
    }

    /// The sensor element.
    pub fn sensor(&self) -> &Fluxgate {
        &self.sensor
    }

    /// The peak excitation field the configured drive produces (after
    /// V-I compliance limiting).
    pub fn peak_excitation_field(&self) -> AmperePerMeter {
        let demanded =
            self.config.excitation.amplitude_pp() / 2.0 + self.config.excitation.dc_offset().abs();
        let delivered = self
            .config
            .vi
            .drive(demanded, self.config.sensor.r_excitation);
        self.sensor.h_from_current(delivered)
    }

    /// Runs the transient readout with external axial field `h_ext` and
    /// returns the measured duty cycle plus all waveforms.
    ///
    /// Noise is seeded from the configured `noise_seed`; this call is a
    /// pure function of the configuration and `h_ext`, so repeated runs
    /// return bit-identical results.
    pub fn run(&self, h_ext: AmperePerMeter) -> FrontEndResult {
        self.run_with_seed(h_ext, self.config.noise_seed)
    }

    /// Like [`run`](Self::run), but with an explicit noise seed.
    ///
    /// This is the entry point for repeat/Monte-Carlo studies that need
    /// a *different* noise realisation per run while staying fully
    /// deterministic: derive one seed per run (e.g. with
    /// `fluxcomp_exec::derive_seed`) instead of mutating shared state.
    pub fn run_with_seed(&self, h_ext: AmperePerMeter, noise_seed: u64) -> FrontEndResult {
        let _run = fluxcomp_obs::span("afe.run");
        let cfg = &self.config;
        let period = 1.0 / cfg.excitation.frequency().value();
        let n = cfg.samples_per_period;
        let dt = period / n as f64;
        let total_periods = cfg.settle_periods + cfg.measure_periods;
        let total_samples = total_periods * n;

        let mut detector = PulsePositionDetector::new(cfg.detector);
        let mut noise = GaussianNoise::new(cfg.pickup_noise_rms, noise_seed);

        let mut traces = TraceSet::new();
        let ch_i = traces.add_with_capacity("i_exc", total_samples);
        let ch_ve = traces.add_with_capacity("v_exc", total_samples);
        let ch_vp = traces.add_with_capacity("v_pickup", total_samples);
        let ch_d = traces.add_with_capacity("detector", total_samples);

        let mut detector_samples = Vec::with_capacity(cfg.measure_periods * n);
        let mut clipped = false;
        // Pulse edges are tallied locally — one counter update per run,
        // not per analogue sample.
        let mut pulse_edges = 0u64;
        let mut prev_out = false;

        for k in 0..total_periods * n {
            let t = k as f64 * dt;
            let sim_t = SimTime::from_seconds(Seconds::new(t));

            // Oscillator → V-I converter (with compliance limiting).
            let demanded = cfg.excitation.value(t);
            let i = cfg.vi.drive(demanded, cfg.sensor.r_excitation);
            clipped |= cfg.vi.clips(demanded, cfg.sensor.r_excitation);
            let di_dt = if i == demanded {
                cfg.excitation.slope(t)
            } else {
                0.0 // clipped: current pinned at the compliance limit
            };

            // Sensor: total field, pickup EMF, excitation-coil voltage.
            let h = self.sensor.h_from_current(i) + h_ext;
            let dh_dt = self.sensor.dh_dt_from_current(di_dt);
            let mut v_pickup = self.sensor.pickup_emf(h, dh_dt);
            v_pickup += fluxcomp_units::Volt::new(noise.sample());
            let v_exc = self.sensor.excitation_voltage(i, di_dt, h_ext);

            // Detector.
            let out = detector.step(v_pickup);
            pulse_edges += u64::from(out != prev_out);
            prev_out = out;

            traces.record(ch_i, sim_t, i.value());
            traces.record(ch_ve, sim_t, v_exc.value());
            traces.record(ch_vp, sim_t, v_pickup.value());
            traces.record(ch_d, sim_t, if out { 1.0 } else { 0.0 });

            if k >= cfg.settle_periods * n {
                detector_samples.push(out);
            }
        }

        let duty = duty_cycle(&detector_samples).unwrap_or(0.5);
        // The front-end drives its own analogue grid (it does not go
        // through the msim engine), so it contributes its steps to the
        // kernel-wide analogue step counter itself.
        fluxcomp_obs::counter_add("msim.analog_steps", (total_periods * n) as u64);
        fluxcomp_obs::counter_add("afe.runs", 1);
        fluxcomp_obs::counter_add("afe.pulse_edges", pulse_edges);
        fluxcomp_obs::counter_add("afe.clipped_runs", u64::from(clipped));
        fluxcomp_obs::histogram_record("afe.duty", duty);
        FrontEndResult {
            duty,
            detector_samples,
            traces,
            clipped,
        }
    }
}

impl Default for FrontEnd {
    fn default() -> Self {
        Self::new(FrontEndConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_units::magnetics::MU_0;

    fn h_from_microtesla(ut: f64) -> AmperePerMeter {
        AmperePerMeter::new(ut * 1e-6 / MU_0)
    }

    #[test]
    fn zero_field_gives_half_duty() {
        let fe = FrontEnd::default();
        let r = fe.run(AmperePerMeter::ZERO);
        assert!(
            (r.duty - 0.5).abs() < 0.005,
            "duty = {} should be 0.5",
            r.duty
        );
        assert!(!r.clipped);
    }

    #[test]
    fn duty_shift_is_linear_in_field() {
        let fe = FrontEnd::default();
        let h_peak = fe.peak_excitation_field();
        // 15 µT ≈ 11.9 A/m; H_peak = 240 A/m → expected shift ≈ 0.0249.
        let h1 = h_from_microtesla(15.0);
        let d1 = fe.run(h1).duty;
        let expected1 = 0.5 - h1.value() / (2.0 * h_peak.value());
        assert!((d1 - expected1).abs() < 0.005, "{d1} vs {expected1}");
        // Twice the field → twice the shift, within tolerance.
        let h2 = h_from_microtesla(30.0);
        let d2 = fe.run(h2).duty;
        let shift1 = 0.5 - d1;
        let shift2 = 0.5 - d2;
        assert!(
            (shift2 / shift1 - 2.0).abs() < 0.15,
            "shift ratio {}",
            shift2 / shift1
        );
    }

    #[test]
    fn negative_field_shifts_duty_the_other_way() {
        let fe = FrontEnd::default();
        let plus = fe.run(h_from_microtesla(20.0)).duty;
        let minus = fe.run(h_from_microtesla(-20.0)).duty;
        assert!(plus < 0.5 && minus > 0.5);
        // Symmetric response.
        assert!(((0.5 - plus) - (minus - 0.5)).abs() < 0.005);
    }

    #[test]
    fn field_estimate_inverts_duty() {
        let fe = FrontEnd::default();
        let h = h_from_microtesla(25.0);
        let r = fe.run(h);
        let est = r.field_estimate(fe.peak_excitation_field());
        let rel = (est.value() - h.value()).abs() / h.value();
        assert!(rel < 0.05, "estimate {est} vs {h}, rel err {rel}");
    }

    #[test]
    fn traces_are_complete() {
        let fe = FrontEnd::default();
        let r = fe.run(AmperePerMeter::ZERO);
        for name in ["i_exc", "v_exc", "v_pickup", "detector"] {
            let tr = r.traces.by_name(name).unwrap();
            assert_eq!(tr.len(), (1 + 4) * 4096, "{name}");
        }
        // Pickup shows both polarities of pulses.
        let (lo, hi) = r.traces.by_name("v_pickup").unwrap().value_range().unwrap();
        assert!(lo < -0.02 && hi > 0.02, "pulses missing: {lo}..{hi}");
    }

    #[test]
    fn peak_excitation_field_matches_design_point() {
        let fe = FrontEnd::default();
        // ±6 mA × 40 turns / 1 mm = 240 A/m = 2× saturation field.
        assert!((fe.peak_excitation_field().value() - 240.0).abs() < 1e-9);
    }

    #[test]
    fn noise_perturbs_but_does_not_break_readout() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.pickup_noise_rms = 2e-3; // 2 mV RMS on ~58 mV pulses
                                     // Size the hysteresis well above the noise (≫ 3σ both ways), as a
                                     // real detector design would — otherwise comparator chatter inside
                                     // a pulse releases the latch early (see the E1 hysteresis
                                     // ablation, which sweeps this deliberately).
        cfg.detector.hysteresis = fluxcomp_units::Volt::new(0.016);
        cfg.measure_periods = 8;
        let fe = FrontEnd::new(cfg);
        let h = h_from_microtesla(20.0);
        let r = fe.run(h);
        let est = r.field_estimate(fe.peak_excitation_field());
        let rel = (est.value() - h.value()).abs() / h.value();
        assert!(rel < 0.15, "rel err {rel} under noise");
    }

    #[test]
    fn excessive_drive_reports_clipping() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.sensor.r_excitation = fluxcomp_units::Ohm::new(2_000.0);
        let fe = FrontEnd::new(cfg);
        let r = fe.run(AmperePerMeter::ZERO);
        assert!(r.clipped);
    }

    #[test]
    fn hysteretic_core_still_reads_field() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.sensor = FluxgateParams::adapted_hysteretic(0.1);
        let fe = FrontEnd::new(cfg);
        let h = h_from_microtesla(20.0);
        let est = fe.run(h).field_estimate(fe.peak_excitation_field());
        let rel = (est.value() - h.value()).abs() / h.value();
        assert!(rel < 0.1, "rel err {rel} with hysteresis");
    }

    #[test]
    #[should_panic(expected = "samples per period")]
    fn too_few_samples_rejected() {
        let mut cfg = FrontEndConfig::paper_design();
        cfg.samples_per_period = 8;
        let _ = FrontEnd::new(cfg);
    }
}
