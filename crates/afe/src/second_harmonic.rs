//! The **second-harmonic readout** baseline (paper §2.1).
//!
//! "Most common is the so called second harmonic measurement" — the
//! classical fluxgate readout (\[Rip92\], \[Got95\], \[Kaw95\]): with a
//! symmetric excitation the pickup spectrum contains only odd harmonics;
//! an external field breaks the symmetry and produces **even harmonics
//! whose amplitude is proportional to the field**. A synchronous
//! demodulator at `2·f_exc` extracts that amplitude — which then needs an
//! **A/D converter** to reach the digital domain.
//!
//! The paper rejects this method precisely because of the ADC; this
//! module implements it as the baseline for experiment E8 so the
//! comparison (hardware cost and accuracy vs. ADC resolution) can be
//! reproduced.

use fluxcomp_units::si::Hertz;

/// A synchronous (lock-in) demodulator at the second harmonic of the
/// excitation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondHarmonicDemodulator {
    excitation_frequency: Hertz,
}

impl SecondHarmonicDemodulator {
    /// Creates a demodulator locked to `2 × excitation_frequency`.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn new(excitation_frequency: Hertz) -> Self {
        assert!(
            excitation_frequency.value() > 0.0,
            "excitation frequency must be positive"
        );
        Self {
            excitation_frequency,
        }
    }

    /// The lock-in reference frequency (`2·f_exc`).
    pub fn reference_frequency(&self) -> Hertz {
        self.excitation_frequency * 2.0
    }

    /// Demodulates a pickup waveform sampled at interval `dt` seconds,
    /// starting at `t = 0`, returning the in-phase and quadrature
    /// components of the second harmonic.
    ///
    /// The samples should span an integer number of excitation periods
    /// for an unbiased result; fractional remainders leak other
    /// harmonics.
    pub fn demodulate_iq(&self, samples: &[f64], dt: f64) -> (f64, f64) {
        let w = 2.0 * std::f64::consts::TAU * self.excitation_frequency.value();
        let mut i_acc = 0.0;
        let mut q_acc = 0.0;
        for (k, &v) in samples.iter().enumerate() {
            let t = k as f64 * dt;
            i_acc += v * (w * t).cos();
            q_acc += v * (w * t).sin();
        }
        let n = samples.len().max(1) as f64;
        (2.0 * i_acc / n, 2.0 * q_acc / n)
    }

    /// The second-harmonic amplitude `√(I² + Q²)` — proportional to the
    /// external field for small fields.
    pub fn amplitude(&self, samples: &[f64], dt: f64) -> f64 {
        let (i, q) = self.demodulate_iq(samples, dt);
        (i * i + q * q).sqrt()
    }

    /// The *signed* second-harmonic output: the component projected onto
    /// the phase reference established by a calibration run. `reference`
    /// is the `(I, Q)` of a known positive field; the return value is the
    /// projection of this signal onto that direction, preserving sign.
    pub fn signed_output(&self, samples: &[f64], dt: f64, reference: (f64, f64)) -> f64 {
        let (i, q) = self.demodulate_iq(samples, dt);
        let norm = (reference.0 * reference.0 + reference.1 * reference.1).sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        (i * reference.0 + q * reference.1) / norm
    }
}

/// Hardware-cost comparison data for the two readout methods (used by
/// experiment E8 together with the `sog` crate's transistor budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadoutCost {
    /// Whether the method needs an A/D converter.
    pub needs_adc: bool,
    /// Analogue blocks beyond the excitation source.
    pub analog_blocks: u32,
    /// Approximate comparator count.
    pub comparators: u32,
}

/// Cost profile of the pulse-position method: two comparators and a
/// latch; the "converter" is the digital counter that exists anyway.
pub const PULSE_POSITION_COST: ReadoutCost = ReadoutCost {
    needs_adc: false,
    analog_blocks: 1, // the pulse detector
    comparators: 2,
};

/// Cost profile of the second-harmonic method: multiplier/demodulator,
/// low-pass filter, and a multi-bit ADC.
pub const SECOND_HARMONIC_COST: ReadoutCost = ReadoutCost {
    needs_adc: true,
    analog_blocks: 3, // demodulator, filter, sample/hold
    comparators: 1,   // inside the SAR ADC
};

#[cfg(test)]
mod tests {
    use super::*;

    const F: f64 = 8_000.0;

    /// Synthesises `periods` of a signal with given 1st/2nd/3rd harmonic
    /// amplitudes, `n` samples per period.
    fn synth(h1: f64, h2: f64, h3: f64, n: usize, periods: usize, phase2: f64) -> (Vec<f64>, f64) {
        let dt = 1.0 / F / n as f64;
        let w = std::f64::consts::TAU * F;
        let samples = (0..n * periods)
            .map(|k| {
                let t = k as f64 * dt;
                h1 * (w * t).sin() + h2 * (2.0 * w * t + phase2).cos() + h3 * (3.0 * w * t).sin()
            })
            .collect();
        (samples, dt)
    }

    #[test]
    fn extracts_second_harmonic_amplitude() {
        let demod = SecondHarmonicDemodulator::new(Hertz::new(F));
        let (samples, dt) = synth(1.0, 0.25, 0.5, 512, 4, 0.0);
        let amp = demod.amplitude(&samples, dt);
        assert!((amp - 0.25).abs() < 1e-6, "amp = {amp}");
    }

    #[test]
    fn rejects_odd_harmonics() {
        let demod = SecondHarmonicDemodulator::new(Hertz::new(F));
        let (samples, dt) = synth(1.0, 0.0, 0.7, 512, 4, 0.0);
        let amp = demod.amplitude(&samples, dt);
        assert!(amp < 1e-6, "odd-harmonic leakage: {amp}");
    }

    #[test]
    fn amplitude_is_phase_invariant() {
        let demod = SecondHarmonicDemodulator::new(Hertz::new(F));
        for phase in [0.0, 0.7, 1.9, 3.1] {
            let (samples, dt) = synth(1.0, 0.3, 0.0, 512, 4, phase);
            let amp = demod.amplitude(&samples, dt);
            assert!((amp - 0.3).abs() < 1e-6, "phase {phase}: {amp}");
        }
    }

    #[test]
    fn signed_output_preserves_field_sign() {
        let demod = SecondHarmonicDemodulator::new(Hertz::new(F));
        // "Calibration": a positive field gives phase 0.
        let (cal, dt) = synth(1.0, 0.2, 0.0, 512, 4, 0.0);
        let reference = demod.demodulate_iq(&cal, dt);
        // A negative field flips the 2nd-harmonic phase by π.
        let (neg, _) = synth(1.0, 0.2, 0.0, 512, 4, std::f64::consts::PI);
        let s_pos = demod.signed_output(&cal, dt, reference);
        let s_neg = demod.signed_output(&neg, dt, reference);
        assert!(s_pos > 0.19 && s_neg < -0.19, "{s_pos} / {s_neg}");
    }

    #[test]
    fn signed_output_zero_reference() {
        let demod = SecondHarmonicDemodulator::new(Hertz::new(F));
        let (samples, dt) = synth(1.0, 0.2, 0.0, 512, 2, 0.0);
        assert_eq!(demod.signed_output(&samples, dt, (0.0, 0.0)), 0.0);
    }

    #[test]
    fn reference_frequency_is_double() {
        let demod = SecondHarmonicDemodulator::new(Hertz::new(F));
        assert_eq!(demod.reference_frequency(), Hertz::new(16_000.0));
    }

    #[test]
    fn cost_comparison_favors_pulse_position() {
        // Read through locals so the comparison survives const folding
        // (the costs are compile-time constants by design).
        let (pp, sh) = (PULSE_POSITION_COST, SECOND_HARMONIC_COST);
        assert!(!pp.needs_adc);
        assert!(sh.needs_adc);
        assert!(pp.analog_blocks < sh.analog_blocks);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = SecondHarmonicDemodulator::new(Hertz::new(0.0));
    }
}
