//! A clocked-free (continuous) comparator with hysteresis and
//! propagation delay — the building block of the pulse-position detector.
//!
//! Sea-of-Gates comparators (cf. \[Haa95\], \[Don94\]: analogue design on a
//! digital SoG) are modest: we model the three non-idealities that matter
//! for pulse timing — input offset, hysteresis and propagation delay.
//! All three feed the detector-robustness ablation of experiment E1.

use fluxcomp_units::si::{Seconds, Volt};

/// A continuous-time comparator with hysteresis.
///
/// Output is `true` when the input has exceeded `threshold + hysteresis/2`
/// and stays `true` until the input drops below
/// `threshold − hysteresis/2`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparator {
    /// Nominal switching threshold.
    pub threshold: Volt,
    /// Full hysteresis width (centred on the threshold).
    pub hysteresis: Volt,
    /// Input-referred offset voltage.
    pub offset: Volt,
    /// Propagation delay from input crossing to output change.
    pub delay: Seconds,
    state: bool,
}

impl Comparator {
    /// Creates a comparator; initial output is low.
    ///
    /// # Panics
    ///
    /// Panics if `hysteresis` or `delay` is negative.
    pub fn new(threshold: Volt, hysteresis: Volt, offset: Volt, delay: Seconds) -> Self {
        assert!(hysteresis.value() >= 0.0, "hysteresis must be non-negative");
        assert!(delay.value() >= 0.0, "delay must be non-negative");
        Self {
            threshold,
            hysteresis,
            offset,
            delay,
            state: false,
        }
    }

    /// An ideal comparator: no hysteresis, offset or delay.
    pub fn ideal(threshold: Volt) -> Self {
        Self::new(threshold, Volt::ZERO, Volt::ZERO, Seconds::ZERO)
    }

    /// Current output state.
    pub fn output(&self) -> bool {
        self.state
    }

    /// Resets the output to low.
    pub fn reset(&mut self) {
        self.state = false;
    }

    /// Evaluates the comparator on a new input sample, returning the new
    /// output. (Propagation delay is exposed via [`Comparator::delay`]
    /// and applied by the caller, which knows the time base.)
    pub fn step(&mut self, input: Volt) -> bool {
        let half = self.hysteresis / 2.0;
        let eff = input + self.offset;
        if self.state {
            if eff < self.threshold - half {
                self.state = false;
            }
        } else if eff > self.threshold + half {
            self.state = true;
        }
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_switches_at_threshold() {
        let mut c = Comparator::ideal(Volt::new(1.0));
        assert!(!c.step(Volt::new(0.99)));
        assert!(c.step(Volt::new(1.01)));
        assert!(!c.step(Volt::new(0.99)));
    }

    #[test]
    fn hysteresis_creates_dead_band() {
        let mut c = Comparator::new(Volt::new(0.0), Volt::new(0.2), Volt::ZERO, Seconds::ZERO);
        assert!(!c.step(Volt::new(0.09))); // below upper trip (0.1)
        assert!(c.step(Volt::new(0.11))); // above upper trip
        assert!(c.step(Volt::new(-0.09))); // still high inside band
        assert!(!c.step(Volt::new(-0.11))); // below lower trip (-0.1)
        assert!(!c.step(Volt::new(0.09))); // stays low inside band
    }

    #[test]
    fn hysteresis_rejects_noise_chatter() {
        let mut ideal = Comparator::ideal(Volt::ZERO);
        let mut hyst = Comparator::new(Volt::ZERO, Volt::new(0.1), Volt::ZERO, Seconds::ZERO);
        // A slow ramp with superimposed deterministic ripple.
        let mut ideal_edges = 0;
        let mut hyst_edges = 0;
        let mut prev_i = false;
        let mut prev_h = false;
        for k in 0..1000 {
            let t = k as f64 / 1000.0;
            let v = Volt::new((t - 0.5) * 0.5 + 0.03 * (t * 400.0).sin());
            let i = ideal.step(v);
            let h = hyst.step(v);
            if i != prev_i {
                ideal_edges += 1;
            }
            if h != prev_h {
                hyst_edges += 1;
            }
            prev_i = i;
            prev_h = h;
        }
        assert!(ideal_edges > 5, "ripple should chatter: {ideal_edges}");
        assert_eq!(hyst_edges, 1, "hysteresis should produce one clean edge");
    }

    #[test]
    fn offset_shifts_effective_threshold() {
        let mut c = Comparator::new(Volt::new(1.0), Volt::ZERO, Volt::new(0.1), Seconds::ZERO);
        // Effective input = v + 0.1, so switching happens at v = 0.9.
        assert!(!c.step(Volt::new(0.89)));
        assert!(c.step(Volt::new(0.91)));
    }

    #[test]
    fn reset_forces_low() {
        let mut c = Comparator::ideal(Volt::ZERO);
        c.step(Volt::new(1.0));
        assert!(c.output());
        c.reset();
        assert!(!c.output());
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn negative_hysteresis_rejected() {
        let _ = Comparator::new(Volt::ZERO, Volt::new(-0.1), Volt::ZERO, Seconds::ZERO);
    }
}
