//! Circuit-level transient simulation of the relaxation oscillator.
//!
//! [`crate::oscillator::RelaxationOscillator`] computes the frequency
//! analytically from the paper's component values. This module *runs*
//! the circuit instead: the 10 pF capacitor is integrated through time
//! with the reference current steered by the window comparator, using
//! the `msim` ODE solver — the ELDO-style verification that the analytic
//! 8 kHz really emerges from `10 pF × 12.5 MΩ` plus the threshold
//! window, including comparator delay (which real oscillators run
//! *slow* by).

use crate::oscillator::RelaxationOscillator;
use fluxcomp_msim::solver::{Method, OdeSolver};
use fluxcomp_msim::time::SimTime;
use fluxcomp_msim::trace::{Trace, TraceSet};
use fluxcomp_units::si::{Hertz, Seconds};

/// Result of a transient oscillator run.
#[derive(Debug, Clone)]
pub struct RelaxationRun {
    /// The capacitor-voltage waveform.
    pub traces: TraceSet,
    /// Frequency measured from the waveform's rising threshold
    /// crossings (`None` if fewer than two full cycles completed).
    pub measured_frequency: Option<Hertz>,
}

/// Simulates the oscillator for `duration`, with an explicit comparator
/// propagation delay (0 for the ideal case).
///
/// # Panics
///
/// Panics if `dt` or `duration` is not positive.
pub fn simulate_relaxation(
    osc: &RelaxationOscillator,
    comparator_delay: Seconds,
    duration: Seconds,
    dt: Seconds,
) -> RelaxationRun {
    assert!(dt.value() > 0.0, "dt must be positive");
    assert!(duration.value() > 0.0, "duration must be positive");
    let i_ref = osc.reference_current().value();
    let c = osc.capacitor.value();
    let v_low = osc.v_low.value();
    let v_high = osc.v_high.value();
    let delay_steps = (comparator_delay.value() / dt.value()).round() as u64;

    let mut solver = OdeSolver::new(Method::Rk4, 1);
    // Start at the lower threshold, charging.
    let mut v = [v_low];
    let mut charging = true;
    // Pending comparator decision: steps until the direction flips.
    let mut flip_countdown: Option<u64> = None;

    let mut traces = TraceSet::new();
    let ch = traces.add("v_cap");
    let steps = (duration.value() / dt.value()).ceil() as u64;
    let mut t = 0.0;
    for k in 0..steps {
        traces.record(ch, SimTime::from_seconds(Seconds::new(t)), v[0]);
        // Comparator: schedule a flip `delay_steps` after the crossing.
        if flip_countdown.is_none() {
            let crossed = if charging {
                v[0] >= v_high
            } else {
                v[0] <= v_low
            };
            if crossed {
                flip_countdown = Some(delay_steps);
            }
        }
        if let Some(n) = flip_countdown {
            if n == 0 {
                charging = !charging;
                flip_countdown = None;
            } else {
                flip_countdown = Some(n - 1);
            }
        }
        // Integrate dv/dt = ±I/C.
        let slope = if charging { i_ref / c } else { -i_ref / c };
        solver.step(t, dt.value(), &mut v, |_t, _y, dy| dy[0] = slope);
        t = (k + 1) as f64 * dt.value();
    }
    solver.publish_obs();

    let measured_frequency =
        measure_frequency(traces.by_name("v_cap").expect("recorded"), v_low, v_high);
    RelaxationRun {
        traces,
        measured_frequency,
    }
}

/// Measures the oscillation frequency from the mid-threshold rising
/// crossings of the capacitor waveform.
fn measure_frequency(trace: &Trace, v_low: f64, v_high: f64) -> Option<Hertz> {
    let mid = (v_low + v_high) / 2.0;
    let crossings = trace.crossings(mid, true);
    if crossings.len() < 3 {
        return None;
    }
    // Average period over all full cycles, skipping the first (startup).
    let first = crossings[1];
    let last = *crossings.last()?;
    let cycles = (crossings.len() - 2) as f64;
    let period = (last - first).as_secs_f64() / cycles;
    Some(Hertz::new(1.0 / period))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_circuit_oscillates_at_8khz() {
        let osc = RelaxationOscillator::paper_values();
        let run = simulate_relaxation(
            &osc,
            Seconds::ZERO,
            Seconds::new(2e-3), // 16 nominal periods
            Seconds::new(20e-9),
        );
        let f = run.measured_frequency.expect("oscillates").value();
        assert!(
            (f - 8_000.0).abs() < 40.0,
            "measured {f} Hz, expected ≈8000"
        );
    }

    #[test]
    fn waveform_stays_inside_thresholds() {
        let osc = RelaxationOscillator::paper_values();
        let run = simulate_relaxation(&osc, Seconds::ZERO, Seconds::new(1e-3), Seconds::new(20e-9));
        let (lo, hi) = run.traces.by_name("v_cap").unwrap().value_range().unwrap();
        // One integration step of overshoot is allowed.
        let step_v = 200e-9 / 10e-12 * 20e-9; // I/C × dt = 40 mV
        assert!(lo >= osc.v_low.value() - 2.0 * step_v, "lo = {lo}");
        assert!(hi <= osc.v_high.value() + 2.0 * step_v, "hi = {hi}");
    }

    #[test]
    fn comparator_delay_slows_the_oscillator() {
        let osc = RelaxationOscillator::paper_values();
        let ideal =
            simulate_relaxation(&osc, Seconds::ZERO, Seconds::new(2e-3), Seconds::new(20e-9))
                .measured_frequency
                .unwrap();
        let delayed = simulate_relaxation(
            &osc,
            Seconds::new(2e-6), // a slow comparator
            Seconds::new(2e-3),
            Seconds::new(20e-9),
        )
        .measured_frequency
        .unwrap();
        assert!(
            delayed.value() < ideal.value(),
            "delay should slow it: {delayed} vs {ideal}"
        );
        // Each half period stretches by 2·delay: the comparator reacts
        // `delay` late, and the overshoot it allowed must be retraced,
        // costing another `delay` — so f ≈ 1/(T + 4·delay).
        let expect = 1.0 / (1.0 / ideal.value() + 4.0 * 2e-6);
        assert!(
            (delayed.value() - expect).abs() < 0.03 * expect,
            "{delayed} vs {expect}"
        );
    }

    #[test]
    fn larger_capacitor_oscillates_slower() {
        let mut osc = RelaxationOscillator::paper_values();
        osc.capacitor *= 2.0;
        let run = simulate_relaxation(&osc, Seconds::ZERO, Seconds::new(2e-3), Seconds::new(20e-9));
        let f = run.measured_frequency.unwrap().value();
        assert!((f - 4_000.0).abs() < 40.0, "doubled C: {f} Hz");
    }

    #[test]
    fn too_short_run_reports_no_frequency() {
        let osc = RelaxationOscillator::paper_values();
        let run = simulate_relaxation(
            &osc,
            Seconds::ZERO,
            Seconds::new(50e-6), // less than half a period
            Seconds::new(20e-9),
        );
        assert!(run.measured_frequency.is_none());
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let osc = RelaxationOscillator::paper_values();
        let _ = simulate_relaxation(&osc, Seconds::ZERO, Seconds::new(1e-3), Seconds::ZERO);
    }
}
