//! Power modelling (paper §2, §4 / experiment E7).
//!
//! The paper's power-reduction levers:
//!
//! * **multiplexing** — "exciting one sensor at a time … reduces both
//!   momentary power consumption and chip area since only one oscillator
//!   is needed";
//! * **duty-cycled enables** — the digital control "enables the analogue
//!   section and the digital high speed up-down counter only when they
//!   are needed";
//! * **supply scaling** — "the supply voltage is currently 5 Volts, but
//!   can be scaled down to 3.5 V".
//!
//! [`PowerModel`] accounts per-block average supply current and computes
//! momentary and average power for a given operating schedule. The block
//! currents are design estimates consistent with mid-1990s CMOS SoG
//! practice (documented per block); the *relative* savings — which are
//! what the paper claims — follow from the schedule arithmetic, not from
//! the absolute values.

use fluxcomp_units::si::{Ampere, Volt, Watt};

/// Average supply-current draw of each block while enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCurrents {
    /// Triangular oscillator + bias (one instance regardless of sensor
    /// count — the multiplexing argument).
    pub oscillator: Ampere,
    /// One V-I converter channel *driving a sensor*: dominated by the
    /// excitation current itself (mean |i| = 3 mA for the paper's
    /// triangle) plus bias.
    pub vi_converter_active: Ampere,
    /// Pulse-detector comparators.
    pub detector: Ampere,
    /// The 4.194304 MHz up/down counter while counting (CV²f dynamic
    /// power expressed as equivalent supply current at 5 V).
    pub counter: Ampere,
    /// CORDIC arctan unit while computing (8 cycles per fix — almost
    /// negligible duty).
    pub arctan: Ampere,
    /// Watch/RTC and LCD driver (always on).
    pub watch_lcd: Ampere,
}

impl BlockCurrents {
    /// Design estimates for the paper's 5 V SoG implementation.
    pub fn sog_estimates() -> Self {
        Self {
            oscillator: Ampere::new(150e-6),
            vi_converter_active: Ampere::new(3.2e-3),
            detector: Ampere::new(120e-6),
            counter: Ampere::new(1.8e-3),
            arctan: Ampere::new(0.9e-3),
            watch_lcd: Ampere::new(15e-6),
        }
    }
}

impl Default for BlockCurrents {
    fn default() -> Self {
        Self::sog_estimates()
    }
}

/// An operating schedule: which blocks are on, and for what fraction of
/// time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Schedule {
    /// Number of sensors excited *simultaneously* (1 = multiplexed, the
    /// paper's choice; 2 = both at once, the alternative).
    pub simultaneous_sensors: u32,
    /// Number of oscillators required (1 when multiplexed; one per
    /// simultaneous sensor otherwise, per the paper's area/power
    /// argument).
    pub oscillators: u32,
    /// Fraction of time the analogue section + counter are enabled
    /// (duty-cycled measurement; 1.0 = always on).
    pub measurement_duty: f64,
    /// Fraction of time the arctan unit runs (8 cycles per fix).
    pub arctan_duty: f64,
}

impl Schedule {
    /// The paper's schedule: multiplexed single sensor, one oscillator,
    /// measuring continuously alternating between sensors, arctan
    /// essentially idle (8 cycles @ 4.19 MHz per fix).
    pub fn paper_multiplexed() -> Self {
        Self {
            simultaneous_sensors: 1,
            oscillators: 1,
            measurement_duty: 1.0,
            arctan_duty: 1e-3,
        }
    }

    /// The rejected alternative: both sensors excited at once, needing
    /// two oscillators.
    pub fn simultaneous() -> Self {
        Self {
            simultaneous_sensors: 2,
            oscillators: 2,
            ..Self::paper_multiplexed()
        }
    }

    /// A low-power watch mode: one compass fix per second, each taking
    /// `measure_fraction` of the second.
    pub fn duty_cycled(measure_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&measure_fraction),
            "duty must be in [0, 1]"
        );
        Self {
            measurement_duty: measure_fraction,
            ..Self::paper_multiplexed()
        }
    }
}

/// The power model: block currents + supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Per-block currents.
    pub blocks: BlockCurrents,
    /// Supply voltage.
    pub supply: Volt,
}

impl PowerModel {
    /// The paper's 5 V operating point.
    pub fn at_5v() -> Self {
        Self {
            blocks: BlockCurrents::sog_estimates(),
            supply: Volt::new(5.0),
        }
    }

    /// The scaled 3.5 V operating point. Analogue bias currents are kept;
    /// digital dynamic power scales with V² (the current scales with V).
    pub fn at_3v5() -> Self {
        let five = Self::at_5v();
        let scale = 3.5 / 5.0;
        Self {
            blocks: BlockCurrents {
                counter: five.blocks.counter * scale,
                arctan: five.blocks.arctan * scale,
                watch_lcd: five.blocks.watch_lcd * scale,
                ..five.blocks
            },
            supply: Volt::new(3.5),
        }
    }

    /// **Momentary** (peak) power while a measurement is in progress —
    /// the quantity the paper says multiplexing reduces.
    pub fn momentary_power(&self, s: &Schedule) -> Watt {
        let b = &self.blocks;
        let i = b.oscillator * s.oscillators as f64
            + b.vi_converter_active * s.simultaneous_sensors as f64
            + b.detector * s.simultaneous_sensors as f64
            + b.counter
            + b.watch_lcd;
        self.supply * i
    }

    /// **Average** power over the schedule, including duty-cycled
    /// enables.
    pub fn average_power(&self, s: &Schedule) -> Watt {
        let b = &self.blocks;
        let measuring = b.oscillator * s.oscillators as f64
            + b.vi_converter_active * s.simultaneous_sensors as f64
            + b.detector * s.simultaneous_sensors as f64
            + b.counter;
        let i = measuring * s.measurement_duty + b.arctan * s.arctan_duty + b.watch_lcd;
        self.supply * i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplexing_reduces_momentary_power() {
        let pm = PowerModel::at_5v();
        let mux = pm.momentary_power(&Schedule::paper_multiplexed());
        let sim = pm.momentary_power(&Schedule::simultaneous());
        assert!(
            mux.value() < 0.65 * sim.value(),
            "multiplexed {mux} vs simultaneous {sim}"
        );
    }

    #[test]
    fn duty_cycling_reduces_average_power() {
        let pm = PowerModel::at_5v();
        let always = pm.average_power(&Schedule::paper_multiplexed());
        let pulsed = pm.average_power(&Schedule::duty_cycled(0.05));
        assert!(
            pulsed.value() < 0.12 * always.value(),
            "always {always} vs pulsed {pulsed}"
        );
        // But never below the always-on watch/LCD floor.
        let floor = pm.supply * pm.blocks.watch_lcd;
        assert!(pulsed.value() > floor.value());
    }

    #[test]
    fn supply_scaling_saves_power() {
        let p5 = PowerModel::at_5v().average_power(&Schedule::paper_multiplexed());
        let p35 = PowerModel::at_3v5().average_power(&Schedule::paper_multiplexed());
        // At least the linear V factor, plus V² on the digital part.
        assert!(p35.value() < 0.7 * p5.value(), "{p35} vs {p5}");
    }

    #[test]
    fn momentary_power_magnitude_is_plausible() {
        // 5 V × ~5.3 mA ≈ 27 mW while measuring — watch-scale electronics.
        let p = PowerModel::at_5v().momentary_power(&Schedule::paper_multiplexed());
        assert!(
            (0.01..0.05).contains(&p.value()),
            "momentary power {p} out of plausible range"
        );
    }

    #[test]
    fn average_includes_arctan_duty() {
        let pm = PowerModel::at_5v();
        let mut s = Schedule::paper_multiplexed();
        let base = pm.average_power(&s);
        s.arctan_duty = 1.0;
        let busy = pm.average_power(&s);
        let delta = busy - base;
        let expect = pm.supply * (pm.blocks.arctan * (1.0 - 1e-3));
        assert!((delta.value() - expect.value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duty")]
    fn bad_duty_rejected() {
        let _ = Schedule::duty_cycled(1.5);
    }
}
