//! The precomputed excitation drive table.
//!
//! The oscillator → V-I converter → excitation-coil chain is strictly
//! periodic and completely independent of the external field: at grid
//! sample `k` of a run the demanded current, the delivered (compliance-
//! limited) current, its slew rate and the resulting core drive field
//! depend only on `k mod samples_per_period`. The analogue grid is
//! synchronous with the excitation (the front-end samples each period at
//! the same phases), so **one period of the drive chain — evaluated once
//! at construction — covers every settle and measure period of every
//! run**, for every axis, heading and worker thread.
//!
//! [`ExcitationTable`] is that single period. Both measurement tiers of
//! [`FrontEnd`](crate::frontend::FrontEnd) read their drive values from
//! it, which is what makes the duty-only fast path bit-identical to the
//! traced diagnostic path: they consume literally the same numbers in
//! the same order, and only differ in what they *record*.

use crate::oscillator::TriangleWave;
use crate::vi_converter::ViConverter;
use fluxcomp_fluxgate::transducer::Fluxgate;
use fluxcomp_units::magnetics::AmperePerMeter;
use fluxcomp_units::si::Ampere;

/// The heading-invariant drive state at one analogue grid sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveSample {
    /// Delivered excitation current (after V-I compliance limiting).
    pub i: Ampere,
    /// Delivered current slew rate in A/s (zero while the converter
    /// clips: the current is pinned at the compliance limit).
    pub di_dt: f64,
    /// Core drive field produced by `i` alone (the external field adds
    /// on top at measurement time).
    pub h_drive: AmperePerMeter,
    /// Core drive-field slew rate in A/m/s.
    pub dh_dt: f64,
    /// Whether the V-I converter clips at this sample.
    pub clips: bool,
}

/// One period of the periodic oscillator → V-I → coil drive chain,
/// sampled on the front-end's analogue grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ExcitationTable {
    samples: Vec<DriveSample>,
    any_clips: bool,
}

impl ExcitationTable {
    /// Evaluates the drive chain over one period of `samples` grid
    /// points: sample `k` is taken at `t = k·(T/samples)`, matching the
    /// transient loop's grid exactly.
    pub fn build(
        excitation: &TriangleWave,
        vi: &ViConverter,
        sensor: &Fluxgate,
        samples: usize,
    ) -> Self {
        let period = 1.0 / excitation.frequency().value();
        let dt = period / samples as f64;
        let load = sensor.params().r_excitation;
        let mut any_clips = false;
        let samples = (0..samples)
            .map(|k| {
                let t = k as f64 * dt;
                let demanded = excitation.value(t);
                let i = vi.drive(demanded, load);
                let clips = vi.clips(demanded, load);
                any_clips |= clips;
                let di_dt = if i == demanded {
                    excitation.slope(t)
                } else {
                    0.0
                };
                DriveSample {
                    i,
                    di_dt,
                    h_drive: sensor.h_from_current(i),
                    dh_dt: sensor.dh_dt_from_current(di_dt),
                    clips,
                }
            })
            .collect();
        Self { samples, any_clips }
    }

    /// The drive samples of one period, in grid order.
    pub fn samples(&self) -> &[DriveSample] {
        &self.samples
    }

    /// Number of grid samples per period.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` for a zero-length table (never produced by `build` with a
    /// validated front-end configuration).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the V-I converter clips anywhere in the period — and
    /// therefore (by periodicity) anywhere in any run.
    pub fn any_clips(&self) -> bool {
        self.any_clips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluxcomp_fluxgate::transducer::FluxgateParams;
    use fluxcomp_units::si::Ohm;

    fn paper_table() -> ExcitationTable {
        let excitation = TriangleWave::paper_excitation();
        let vi = ViConverter::paper_design();
        let sensor = Fluxgate::new(FluxgateParams::adapted());
        ExcitationTable::build(&excitation, &vi, &sensor, 4096)
    }

    #[test]
    fn table_is_one_period_of_the_grid() {
        let table = paper_table();
        assert_eq!(table.len(), 4096);
        assert!(!table.is_empty());
        assert!(!table.any_clips());
    }

    #[test]
    fn entries_match_direct_evaluation() {
        let excitation = TriangleWave::paper_excitation();
        let vi = ViConverter::paper_design();
        let sensor = Fluxgate::new(FluxgateParams::adapted());
        let n = 512;
        let table = ExcitationTable::build(&excitation, &vi, &sensor, n);
        let dt = (1.0 / excitation.frequency().value()) / n as f64;
        for (k, drive) in table.samples().iter().enumerate() {
            let t = k as f64 * dt;
            let demanded = excitation.value(t);
            let i = vi.drive(demanded, sensor.params().r_excitation);
            assert_eq!(drive.i, i, "sample {k}");
            assert_eq!(drive.h_drive, sensor.h_from_current(i), "sample {k}");
            let di_dt = if i == demanded {
                excitation.slope(t)
            } else {
                0.0
            };
            assert_eq!(drive.di_dt.to_bits(), di_dt.to_bits(), "sample {k}");
            assert_eq!(
                drive.dh_dt.to_bits(),
                sensor.dh_dt_from_current(di_dt).to_bits(),
                "sample {k}"
            );
        }
    }

    #[test]
    fn clipping_load_marks_the_table() {
        let excitation = TriangleWave::paper_excitation();
        let vi = ViConverter::paper_design();
        let mut params = FluxgateParams::adapted();
        params.r_excitation = Ohm::new(2_000.0); // beyond the 800 Ω limit
        let sensor = Fluxgate::new(params);
        let table = ExcitationTable::build(&excitation, &vi, &sensor, 1024);
        assert!(table.any_clips());
        // Clipped samples carry zero slew — the current is pinned.
        for drive in table.samples().iter().filter(|d| d.clips) {
            assert_eq!(drive.di_dt, 0.0);
            assert_eq!(drive.dh_dt, 0.0);
        }
        // The triangle crosses zero, so not every sample clips.
        assert!(table.samples().iter().any(|d| !d.clips));
    }
}
