//! Property tests for the MCM substrate and boundary-scan machinery.

use fluxcomp_mcm::bscan::{BoundaryScanChain, Instruction, TapController, TapState};
use fluxcomp_mcm::chain::TapChain;
use fluxcomp_mcm::substrate::{Fault, McmAssembly};
use proptest::prelude::*;

proptest! {
    /// A fault-free substrate is transparent for any drive pattern.
    #[test]
    fn clean_substrate_transparent(bits in prop::collection::vec(any::<bool>(), 9)) {
        let m = McmAssembly::paper_module();
        prop_assert_eq!(m.propagate(&bits), bits);
    }

    /// With a short injected, the bridged nets always read the AND of
    /// their drives; all other nets are untouched.
    #[test]
    fn short_is_wired_and(bits in prop::collection::vec(any::<bool>(), 9), a in 0usize..9, b in 0usize..9) {
        prop_assume!(a != b);
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Short { a, b });
        let seen = m.propagate(&bits);
        let expect_group = bits[a] && bits[b];
        prop_assert_eq!(seen[a], expect_group);
        prop_assert_eq!(seen[b], expect_group);
        for i in 0..9 {
            if i != a && i != b {
                prop_assert_eq!(seen[i], bits[i], "net {} disturbed", i);
            }
        }
    }

    /// An open forces its net low regardless of drive; others untouched.
    #[test]
    fn open_floats_low(bits in prop::collection::vec(any::<bool>(), 9), net in 0usize..9) {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Open { net });
        let seen = m.propagate(&bits);
        prop_assert!(!seen[net]);
        for i in 0..9 {
            if i != net {
                prop_assert_eq!(seen[i], bits[i]);
            }
        }
    }

    /// The boundary chain is a bijection: shifting N bits through an
    /// N-cell chain returns exactly what was loaded before.
    #[test]
    fn chain_shift_bijection(first in prop::collection::vec(any::<bool>(), 1..48),
                             second_seed in any::<u64>()) {
        let n = first.len();
        let second: Vec<bool> = (0..n).map(|k| (second_seed >> (k % 60)) & 1 == 1).collect();
        let mut chain = BoundaryScanChain::new(n);
        chain.shift_pattern(&first);
        let out = chain.shift_pattern(&second);
        prop_assert_eq!(out, first);
    }

    /// Five TMS-high clocks reach Test-Logic-Reset from any state the
    /// FSM can be walked into by an arbitrary TMS sequence.
    #[test]
    fn reset_from_any_walk(walk in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut s = TapState::TestLogicReset;
        for tms in walk {
            s = s.next(tms);
        }
        for _ in 0..5 {
            s = s.next(true);
        }
        prop_assert_eq!(s, TapState::TestLogicReset);
    }

    /// The TAP never panics and its instruction register always decodes
    /// to a defined instruction under random stimulation.
    #[test]
    fn tap_total_under_random_stimuli(stimuli in prop::collection::vec(any::<(bool, bool)>(), 0..256)) {
        let mut tap = TapController::new(4);
        let obs = vec![false; 4];
        for (tms, tdi) in stimuli {
            tap.clock(tms, tdi, &obs);
            // Any reachable instruction is one of the defined set.
            let inst = tap.instruction();
            let defined = matches!(
                inst,
                Instruction::Bypass
                    | Instruction::Extest
                    | Instruction::Sample
                    | Instruction::Idcode
                    | Instruction::Clamp
                    | Instruction::Highz
            );
            prop_assert!(defined, "undefined instruction {inst:?}");
        }
    }

    /// Chain scan-path measurement equals the computed length for any
    /// per-die instruction assignment.
    #[test]
    fn chain_path_measurement(assignments in prop::collection::vec(0u8..3, 1..5)) {
        let lengths: Vec<usize> = (0..assignments.len()).map(|k| 3 + k).collect();
        let mut chain = TapChain::new(&lengths);
        chain.reset();
        let instructions: Vec<Instruction> = assignments
            .iter()
            .map(|&a| match a {
                0 => Instruction::Bypass,
                1 => Instruction::Extest,
                _ => Instruction::Sample,
            })
            .collect();
        chain.load_instructions(&instructions);
        for (die, inst) in instructions.iter().enumerate() {
            prop_assert_eq!(chain.tap(die).instruction(), *inst);
        }
        prop_assert_eq!(chain.measure_scan_path(), chain.scan_path_bits());
    }
}
