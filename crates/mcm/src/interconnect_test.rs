//! The EXTEST interconnect test (experiment E10).
//!
//! The point of the boundary-scan structures of \[Oli96\] is testing the
//! MCM's die-to-die wiring after assembly. The classic algorithm is the
//! **counting sequence** (true/complement walking codes): each net is
//! assigned its index as a binary code; patterns `p` drive bit `p` of
//! every net's code; any open or short between nets with different codes
//! produces a mismatch at the receivers. All-zeros and all-ones patterns
//! are appended to catch stuck-style behaviour of the wired-AND short
//! model and opens on nets whose counting code happens to be benign.

use crate::bscan::BoundaryScanChain;
#[cfg(test)]
use crate::substrate::Fault;
use crate::substrate::McmAssembly;

/// One pattern's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternResult {
    /// The driven values.
    pub driven: Vec<bool>,
    /// The observed values after substrate propagation.
    pub observed: Vec<bool>,
    /// Nets whose observation differed from the drive.
    pub mismatches: Vec<usize>,
}

/// The full test outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestReport {
    /// Per-pattern results.
    pub patterns: Vec<PatternResult>,
    /// Union of all mismatching nets.
    pub failing_nets: Vec<usize>,
}

impl TestReport {
    /// `true` when no pattern mismatched — the module passes.
    pub fn passed(&self) -> bool {
        self.failing_nets.is_empty()
    }

    /// Number of test patterns applied.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }
}

/// The interconnect tester: generates counting-sequence patterns, drives
/// them through the boundary-scan chain and diagnoses mismatches.
#[derive(Debug, Clone)]
pub struct InterconnectTester {
    net_count: usize,
}

impl InterconnectTester {
    /// A tester for a module with `net_count` boundary-connected nets.
    ///
    /// # Panics
    ///
    /// Panics if `net_count` is zero.
    pub fn new(net_count: usize) -> Self {
        assert!(net_count > 0, "need at least one net");
        Self { net_count }
    }

    /// The counting-sequence pattern set: `ceil(log2(n+2))` code bits,
    /// each applied true and complemented, plus all-zeros and all-ones.
    ///
    /// Codes start at 1 so no net carries the all-zeros code (which the
    /// open model would alias).
    pub fn patterns(&self) -> Vec<Vec<bool>> {
        let n = self.net_count;
        let bits = usize::BITS - (n + 1).leading_zeros();
        let mut out = Vec::new();
        for b in 0..bits {
            let p: Vec<bool> = (0..n).map(|i| ((i + 1) >> b) & 1 == 1).collect();
            let q: Vec<bool> = p.iter().map(|&v| !v).collect();
            out.push(p);
            out.push(q);
        }
        out.push(vec![false; n]);
        out.push(vec![true; n]);
        out
    }

    /// Runs the test against an assembly, exercising the real
    /// boundary-scan shift/update/capture mechanics for every pattern.
    pub fn run(&self, assembly: &McmAssembly) -> TestReport {
        assert_eq!(
            assembly.nets().len(),
            self.net_count,
            "tester sized for a different module"
        );
        let _test = fluxcomp_obs::span("mcm.interconnect_test");
        let mut chain = BoundaryScanChain::new(self.net_count);
        let mut patterns = Vec::new();
        let mut failing: Vec<usize> = Vec::new();
        for driven in self.patterns() {
            fluxcomp_obs::counter_add("mcm.test_vectors", 1);
            // Shift the pattern into the chain and update (EXTEST drive).
            chain.shift_pattern(&driven);
            chain.update();
            let launched = chain.driven();
            // The substrate propagates the driven values (with faults).
            let observed = assembly.propagate(&launched);
            // Capture and shift out — the receiving cells observe.
            chain.capture(&observed);
            let read_back = chain.shift_pattern(&vec![false; self.net_count]);
            let mismatches: Vec<usize> = (0..self.net_count)
                .filter(|&i| read_back[i] != driven[i])
                .collect();
            for &m in &mismatches {
                if !failing.contains(&m) {
                    failing.push(m);
                }
            }
            patterns.push(PatternResult {
                driven,
                observed,
                mismatches,
            });
        }
        failing.sort_unstable();
        TestReport {
            patterns,
            failing_nets: failing,
        }
    }

    /// Fault-coverage experiment: injects every single fault in turn and
    /// reports the fraction the test detects.
    pub fn coverage(&self, assembly: &McmAssembly) -> f64 {
        let faults = assembly.all_single_faults();
        let mut detected = 0;
        for f in &faults {
            let mut dut = assembly.clone();
            dut.clear_faults();
            dut.inject(*f);
            if !self.run(&dut).passed() {
                detected += 1;
            }
        }
        detected as f64 / faults.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> McmAssembly {
        McmAssembly::paper_module()
    }

    fn tester() -> InterconnectTester {
        InterconnectTester::new(module().nets().len())
    }

    #[test]
    fn fault_free_module_passes() {
        let report = tester().run(&module());
        assert!(report.passed());
        assert!(report.failing_nets.is_empty());
    }

    #[test]
    fn pattern_count_is_logarithmic() {
        let t = tester(); // 9 nets → codes 1..=9 need 4 bits → 8+2 patterns
        let report = t.run(&module());
        assert_eq!(report.pattern_count(), 10);
    }

    #[test]
    fn every_open_is_detected_and_diagnosed() {
        let t = tester();
        for net in 0..module().nets().len() {
            let mut dut = module();
            dut.inject(Fault::Open { net });
            let report = t.run(&dut);
            assert!(!report.passed(), "open on net {net} undetected");
            assert!(
                report.failing_nets.contains(&net),
                "open on net {net} misdiagnosed: {:?}",
                report.failing_nets
            );
        }
    }

    #[test]
    fn every_adjacent_short_is_detected() {
        let t = tester();
        let n = module().nets().len();
        for a in 0..n - 1 {
            let mut dut = module();
            dut.inject(Fault::Short { a, b: a + 1 });
            let report = t.run(&dut);
            assert!(!report.passed(), "short {a}-{} undetected", a + 1);
            // At least one of the bridged nets shows up.
            assert!(
                report.failing_nets.contains(&a) || report.failing_nets.contains(&(a + 1)),
                "short {a}-{} misdiagnosed",
                a + 1
            );
        }
    }

    #[test]
    fn non_adjacent_shorts_also_detected() {
        let t = tester();
        let mut dut = module();
        dut.inject(Fault::Short { a: 0, b: 7 });
        assert!(!t.run(&dut).passed());
    }

    #[test]
    fn full_single_fault_coverage() {
        // The E10 headline: 100 % single-fault coverage on the paper's
        // module.
        let cov = tester().coverage(&module());
        assert_eq!(cov, 1.0, "coverage {cov}");
    }

    #[test]
    fn counting_codes_are_distinct() {
        let t = tester();
        let pats = t.patterns();
        let n = module().nets().len();
        // Reconstruct each net's code from the non-complement patterns
        // (even indices) and check pairwise distinctness.
        let codes: Vec<u32> = (0..n)
            .map(|i| {
                pats.iter()
                    .step_by(2)
                    .take(4)
                    .enumerate()
                    .fold(0, |acc, (b, p)| acc | ((p[i] as u32) << b))
            })
            .collect();
        for a in 0..n {
            for b in a + 1..n {
                assert_ne!(codes[a], codes[b], "nets {a} and {b} share a code");
            }
        }
        // No all-zeros code.
        assert!(codes.iter().all(|&c| c != 0));
    }

    #[test]
    #[should_panic(expected = "different module")]
    fn size_mismatch_rejected() {
        let t = InterconnectTester::new(3);
        let _ = t.run(&module());
    }
}
