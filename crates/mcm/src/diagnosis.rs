//! Fault diagnosis via a precomputed fault dictionary.
//!
//! Running the EXTEST interconnect test tells a manufacturing line *that*
//! a module is bad; a **fault dictionary** tells it *what* to look at
//! under the microscope. The dictionary is built by simulating every
//! modelled single fault through the same test the tester applies and
//! recording its failure **signature** (which nets mismatched on which
//! patterns). Diagnosis is then signature lookup; faults with identical
//! signatures are equivalence classes the test cannot distinguish.

use crate::interconnect_test::InterconnectTester;
use crate::substrate::{Fault, McmAssembly};

/// The failure signature of one test run: for every pattern, the set of
/// mismatching nets (as a bitmask; the paper module has 9 nets).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature(Vec<u32>);

impl Signature {
    /// Extracts the signature from a test report.
    pub fn from_report(report: &crate::interconnect_test::TestReport) -> Self {
        Signature(
            report
                .patterns
                .iter()
                .map(|p| p.mismatches.iter().fold(0u32, |acc, &net| acc | (1 << net)))
                .collect(),
        )
    }

    /// `true` when no pattern failed.
    pub fn is_clean(&self) -> bool {
        self.0.iter().all(|&m| m == 0)
    }
}

/// The fault dictionary of a module.
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    entries: Vec<(Fault, Signature)>,
}

impl FaultDictionary {
    /// Builds the dictionary by simulating every single fault of the
    /// (assumed fault-free) `golden` module.
    pub fn build(golden: &McmAssembly) -> Self {
        let tester = InterconnectTester::new(golden.nets().len());
        let entries = golden
            .all_single_faults()
            .into_iter()
            .map(|fault| {
                let mut dut = golden.clone();
                dut.clear_faults();
                dut.inject(fault);
                let report = tester.run(&dut);
                (fault, Signature::from_report(&report))
            })
            .collect();
        Self { entries }
    }

    /// Number of dictionary entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the fault candidates matching an observed signature.
    pub fn diagnose(&self, observed: &Signature) -> Vec<Fault> {
        self.entries
            .iter()
            .filter(|(_, sig)| sig == observed)
            .map(|&(f, _)| f)
            .collect()
    }

    /// The equivalence classes: groups of faults the test cannot tell
    /// apart (identical signatures).
    pub fn equivalence_classes(&self) -> Vec<Vec<Fault>> {
        let mut classes: Vec<(Signature, Vec<Fault>)> = Vec::new();
        for (fault, sig) in &self.entries {
            match classes.iter_mut().find(|(s, _)| s == sig) {
                Some((_, members)) => members.push(*fault),
                None => classes.push((sig.clone(), vec![*fault])),
            }
        }
        classes.into_iter().map(|(_, m)| m).collect()
    }

    /// Diagnostic resolution: the fraction of faults that are uniquely
    /// identifiable (their equivalence class has size 1).
    pub fn resolution(&self) -> f64 {
        let unique: usize = self
            .equivalence_classes()
            .iter()
            .filter(|c| c.len() == 1)
            .map(|c| c.len())
            .sum();
        unique as f64 / self.entries.len() as f64
    }
}

/// End-to-end diagnosis: runs the test on a DUT and looks up the
/// candidates. Returns an empty vector for a passing module.
pub fn diagnose_module(golden: &McmAssembly, dut: &McmAssembly) -> Vec<Fault> {
    let tester = InterconnectTester::new(golden.nets().len());
    let report = tester.run(dut);
    let sig = Signature::from_report(&report);
    if sig.is_clean() {
        return Vec::new();
    }
    FaultDictionary::build(golden).diagnose(&sig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> McmAssembly {
        McmAssembly::paper_module()
    }

    #[test]
    fn dictionary_covers_every_single_fault() {
        let dict = FaultDictionary::build(&golden());
        assert_eq!(dict.len(), 17); // 9 opens + 8 adjacent shorts
        assert!(!dict.is_empty());
        // Every signature is non-clean (100 % detection, as E10 shows).
        for class in dict.equivalence_classes() {
            assert!(!class.is_empty());
        }
    }

    #[test]
    fn every_fault_diagnoses_to_a_class_containing_it() {
        let g = golden();
        for fault in g.all_single_faults() {
            let mut dut = g.clone();
            dut.inject(fault);
            let candidates = diagnose_module(&g, &dut);
            assert!(
                candidates.contains(&fault),
                "{fault:?} not among candidates {candidates:?}"
            );
        }
    }

    #[test]
    fn clean_module_diagnoses_to_nothing() {
        let g = golden();
        assert!(diagnose_module(&g, &g).is_empty());
    }

    #[test]
    fn diagnostic_resolution_is_high() {
        // The counting-sequence patterns separate most faults; perfect
        // resolution is not guaranteed (some opens/shorts can alias),
        // but the majority must be uniquely identified.
        let dict = FaultDictionary::build(&golden());
        let res = dict.resolution();
        assert!(res >= 0.7, "resolution {res}");
    }

    #[test]
    fn equivalence_classes_partition_the_faults() {
        let dict = FaultDictionary::build(&golden());
        let total: usize = dict.equivalence_classes().iter().map(|c| c.len()).sum();
        assert_eq!(total, dict.len());
    }

    #[test]
    fn signature_clean_check() {
        let g = golden();
        let tester = InterconnectTester::new(g.nets().len());
        let sig = Signature::from_report(&tester.run(&g));
        assert!(sig.is_clean());
    }
}
