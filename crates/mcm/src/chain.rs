//! A daisy-chained TAP ring — the real MCM topology.
//!
//! On a production MCM every die carries its own TAP, wired
//! `TDI → die0 → die1 → … → TDO` with shared TMS/TCK. \[Oli96\]'s whole
//! point is that the *substrate* can carry such structures. This module
//! chains multiple [`TapController`]s and provides the chain-level
//! operations a board tester uses: concatenated IR loads, per-die DR
//! access with bypass padding, and chain integrity checks.

use crate::bscan::{Instruction, TapController};

/// A serial chain of TAPs sharing TMS/TCK.
#[derive(Debug, Clone)]
pub struct TapChain {
    taps: Vec<TapController>,
    /// Per-die boundary observation inputs, latched between clocks.
    observed: Vec<Vec<bool>>,
}

impl TapChain {
    /// Builds a chain of TAPs; `boundary_cells[i]` is die `i`'s boundary
    /// register length. Die 0 is nearest TDI.
    ///
    /// # Panics
    ///
    /// Panics if the chain is empty.
    pub fn new(boundary_cells: &[usize]) -> Self {
        assert!(!boundary_cells.is_empty(), "a chain needs at least one TAP");
        Self {
            taps: boundary_cells
                .iter()
                .map(|&n| TapController::new(n))
                .collect(),
            observed: boundary_cells.iter().map(|&n| vec![false; n]).collect(),
        }
    }

    /// Number of dies in the chain.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the chain is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Access to one die's TAP.
    pub fn tap(&self, die: usize) -> &TapController {
        &self.taps[die]
    }

    /// Sets the observed boundary values for one die (what its pins see).
    pub fn set_observed(&mut self, die: usize, values: Vec<bool>) {
        assert_eq!(
            values.len(),
            self.observed[die].len(),
            "observation width mismatch"
        );
        self.observed[die] = values;
    }

    /// One TCK on the whole chain: TMS is common, data ripples
    /// TDI → die0 → … → TDO. Returns the chain's TDO.
    pub fn clock(&mut self, tms: bool, tdi: bool) -> Option<bool> {
        let mut data = Some(tdi);
        for (tap, obs) in self.taps.iter_mut().zip(&self.observed) {
            data = tap.clock(tms, data.unwrap_or(false), obs);
        }
        data
    }

    /// Resets every TAP (five TMS-high clocks).
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.clock(true, false);
        }
    }

    /// Loads an instruction into **every** die (the common case: all in
    /// BYPASS except one under test is handled by
    /// [`TapChain::load_instructions`]).
    pub fn load_instruction_all(&mut self, instruction: Instruction) {
        self.load_instructions(&vec![instruction; self.taps.len()]);
    }

    /// Loads a per-die instruction vector through one IR scan.
    ///
    /// # Panics
    ///
    /// Panics if the vector length differs from the chain length.
    pub fn load_instructions(&mut self, instructions: &[Instruction]) {
        assert_eq!(instructions.len(), self.taps.len(), "one opcode per die");
        // Navigate to Shift-IR: RTI, SelectDR, SelectIR, CaptureIR,
        // then shift 4 bits per die, then Exit1 → Update.
        self.clock(false, false); // (from reset) RunTestIdle
        self.clock(true, false); // SelectDrScan
        self.clock(true, false); // SelectIrScan
        self.clock(false, false); // CaptureIr
        self.clock(false, false); // ShiftIr
                                  // The die nearest TDO gets its opcode shifted first.
        let total_bits = 4 * self.taps.len();
        let mut bits = Vec::with_capacity(total_bits);
        for inst in instructions.iter().rev() {
            let op = inst.opcode();
            for b in 0..4 {
                bits.push((op >> b) & 1 == 1);
            }
        }
        for (k, bit) in bits.iter().enumerate() {
            let last = k == total_bits - 1;
            self.clock(last, *bit); // last bit exits ShiftIr
        }
        self.clock(true, false); // UpdateIr
        self.clock(false, false); // RunTestIdle
    }

    /// Total scan-path length in the current instruction configuration
    /// (1 bit per bypassed die, boundary length per EXTEST/SAMPLE die,
    /// 32 per IDCODE die).
    pub fn scan_path_bits(&self) -> usize {
        self.taps
            .iter()
            .map(|t| match t.instruction() {
                Instruction::Bypass | Instruction::Clamp | Instruction::Highz => 1,
                Instruction::Extest | Instruction::Sample => t.boundary.len(),
                Instruction::Idcode => 32,
            })
            .sum()
    }

    /// Measures the actual scan-path length by flushing zeros and timing
    /// a marker bit through Shift-DR — the classic chain-integrity test.
    pub fn measure_scan_path(&mut self) -> usize {
        // Enter Shift-DR.
        self.clock(false, false); // RTI
        self.clock(true, false); // SelectDR
        self.clock(false, false); // CaptureDR
        self.clock(false, false); // ShiftDR
        let flush = self.scan_path_bits() + 64;
        for _ in 0..flush {
            self.clock(false, false);
        }
        // Launch a 1 and count clocks until it emerges.
        let mut length = None;
        self.clock(false, true);
        for k in 0..flush {
            if let Some(true) = self.clock(false, false) {
                length = Some(k + 1);
                break;
            }
        }
        // Leave Shift-DR cleanly.
        self.clock(true, false); // Exit1
        self.clock(true, false); // Update
        self.clock(false, false); // RTI
        length.unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's MCM: the SoG die (9 boundary cells toward the
    /// substrate) plus two sensor dies (4 cells each — their pads).
    fn paper_chain() -> TapChain {
        TapChain::new(&[9, 4, 4])
    }

    #[test]
    fn reset_selects_idcode_everywhere() {
        let mut chain = paper_chain();
        chain.reset();
        for die in 0..3 {
            assert_eq!(chain.tap(die).instruction(), Instruction::Idcode);
        }
    }

    #[test]
    fn ir_scan_loads_distinct_instructions() {
        let mut chain = paper_chain();
        chain.reset();
        chain.load_instructions(&[Instruction::Extest, Instruction::Bypass, Instruction::Clamp]);
        assert_eq!(chain.tap(0).instruction(), Instruction::Extest);
        assert_eq!(chain.tap(1).instruction(), Instruction::Bypass);
        assert_eq!(chain.tap(2).instruction(), Instruction::Clamp);
    }

    #[test]
    fn all_bypass_scan_path_is_one_bit_per_die() {
        let mut chain = paper_chain();
        chain.reset();
        chain.load_instruction_all(Instruction::Bypass);
        assert_eq!(chain.scan_path_bits(), 3);
        assert_eq!(chain.measure_scan_path(), 3);
    }

    #[test]
    fn extest_everywhere_sums_boundary_lengths() {
        let mut chain = paper_chain();
        chain.reset();
        chain.load_instruction_all(Instruction::Extest);
        assert_eq!(chain.scan_path_bits(), 9 + 4 + 4);
        assert_eq!(chain.measure_scan_path(), 17);
    }

    #[test]
    fn mixed_configuration_path_length() {
        let mut chain = paper_chain();
        chain.reset();
        chain.load_instructions(&[
            Instruction::Extest,
            Instruction::Bypass,
            Instruction::Bypass,
        ]);
        assert_eq!(chain.scan_path_bits(), 9 + 1 + 1);
        assert_eq!(chain.measure_scan_path(), 11);
    }

    #[test]
    fn idcode_path_is_32_bits_per_die() {
        let mut chain = paper_chain();
        chain.reset();
        // Reset selects IDCODE everywhere.
        assert_eq!(chain.scan_path_bits(), 96);
    }

    #[test]
    fn observed_values_reach_capture() {
        let mut chain = TapChain::new(&[4]);
        chain.reset();
        chain.load_instruction_all(Instruction::Sample);
        chain.set_observed(0, vec![true, false, true, true]);
        // DR scan: capture then shift out 4 bits.
        chain.clock(false, false); // RTI (already there — harmless)
        chain.clock(true, false); // SelectDR
        chain.clock(false, false); // CaptureDR
        chain.clock(false, false); // ShiftDR
        let mut bits = Vec::new();
        for _ in 0..4 {
            bits.push(chain.clock(false, false).unwrap());
        }
        // TDO emits last-cell-first.
        assert_eq!(bits, vec![true, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "at least one TAP")]
    fn empty_chain_rejected() {
        let _ = TapChain::new(&[]);
    }
}
