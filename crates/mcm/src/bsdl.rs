//! BSDL-style description generation.
//!
//! Boundary-Scan Description Language files are how 1149.1 hardware
//! advertises its test structures to board/module testers. This module
//! emits a (simplified but syntactically BSDL-shaped) description of the
//! MCM's scan resources from the same data structures the simulator
//! runs on — so the description is correct by construction, and a test
//! can parse it back and cross-check.

use crate::bscan::{Instruction, IDCODE};
use crate::substrate::{Die, McmAssembly};
use std::fmt::Write as _;

/// Generates the BSDL-like description of the module.
pub fn generate_bsdl(module: &McmAssembly, entity: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "entity {entity} is");
    let _ = writeln!(out, "attribute TAP_SCAN_IN    of TDI : signal is true;");
    let _ = writeln!(out, "attribute TAP_SCAN_OUT   of TDO : signal is true;");
    let _ = writeln!(out, "attribute TAP_SCAN_MODE  of TMS : signal is true;");
    let _ = writeln!(
        out,
        "attribute TAP_SCAN_CLOCK of TCK : signal is (4.0e6, BOTH);"
    );
    let _ = writeln!(
        out,
        "attribute INSTRUCTION_LENGTH of {entity}: entity is 4;"
    );
    let _ = writeln!(out, "attribute INSTRUCTION_OPCODE of {entity}: entity is");
    for (name, inst) in [
        ("BYPASS", Instruction::Bypass),
        ("EXTEST", Instruction::Extest),
        ("SAMPLE", Instruction::Sample),
        ("IDCODE", Instruction::Idcode),
        ("CLAMP", Instruction::Clamp),
        ("HIGHZ", Instruction::Highz),
    ] {
        let _ = writeln!(out, "  \"{name} ({:04b})\" &", inst.opcode());
    }
    let _ = writeln!(out, "  \"\";");
    let _ = writeln!(
        out,
        "attribute IDCODE_REGISTER of {entity}: entity is \"{IDCODE:032b}\";"
    );
    let n = module.nets().len();
    let _ = writeln!(out, "attribute BOUNDARY_LENGTH of {entity}: entity is {n};");
    let _ = writeln!(out, "attribute BOUNDARY_REGISTER of {entity}: entity is");
    for (i, net) in module.nets().iter().enumerate() {
        let function = match net.driver {
            Die::SeaOfGates => "output3",
            _ => "input",
        };
        let _ = writeln!(out, "  \"{i} (BC_1, {}, {function}, X)\" &", net.name);
    }
    let _ = writeln!(out, "  \"\";");
    let _ = writeln!(out, "end {entity};");
    out
}

/// A parsed-back summary used to verify the generated description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BsdlSummary {
    /// Declared boundary register length.
    pub boundary_length: usize,
    /// Cell names in index order.
    pub cell_names: Vec<String>,
    /// Declared instruction length.
    pub instruction_length: usize,
    /// The IDCODE parsed from the binary string.
    pub idcode: u32,
}

/// Parses a description produced by [`generate_bsdl`].
///
/// Returns `None` when a required attribute is missing or malformed —
/// this is a verifier for our own output, not a general BSDL parser.
pub fn parse_bsdl(text: &str) -> Option<BsdlSummary> {
    let mut boundary_length = None;
    let mut instruction_length = None;
    let mut idcode = None;
    let mut cell_names = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("attribute BOUNDARY_LENGTH") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            boundary_length = digits.parse().ok();
        } else if let Some(rest) = line.strip_prefix("attribute INSTRUCTION_LENGTH") {
            let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
            instruction_length = digits.parse().ok();
        } else if line.starts_with("attribute IDCODE_REGISTER") {
            let bin: String = line.chars().filter(|c| *c == '0' || *c == '1').collect();
            // The attribute line contains stray digits from the entity
            // name? No — entity names here are alphabetic; the filtered
            // string is the 32-bit code.
            if bin.len() >= 32 {
                idcode = u32::from_str_radix(&bin[bin.len() - 32..], 2).ok();
            }
        } else if line.starts_with('"') && line.contains("(BC_1,") {
            // `"i (BC_1, name, function, X)" &`
            let inner = line.trim_start_matches('"');
            let mut parts = inner.split(',').map(str::trim);
            let _index_and_cell = parts.next()?;
            let name = parts.next()?;
            cell_names.push(name.to_string());
        }
    }
    Some(BsdlSummary {
        boundary_length: boundary_length?,
        cell_names,
        instruction_length: instruction_length?,
        idcode: idcode?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_description_round_trips() {
        let module = McmAssembly::paper_module();
        let text = generate_bsdl(&module, "FLUXCOMP_MCM");
        let summary = parse_bsdl(&text).expect("parsable");
        assert_eq!(summary.boundary_length, module.nets().len());
        assert_eq!(summary.instruction_length, 4);
        assert_eq!(summary.idcode, IDCODE);
        assert_eq!(summary.cell_names.len(), module.nets().len());
        for (net, name) in module.nets().iter().zip(&summary.cell_names) {
            assert_eq!(&net.name, name);
        }
    }

    #[test]
    fn description_lists_all_instructions() {
        let text = generate_bsdl(&McmAssembly::paper_module(), "X");
        for name in ["BYPASS", "EXTEST", "SAMPLE", "IDCODE", "CLAMP", "HIGHZ"] {
            assert!(text.contains(name), "{name} missing");
        }
        // BYPASS must advertise the all-ones opcode.
        assert!(text.contains("BYPASS (1111)"));
    }

    #[test]
    fn directions_follow_net_drivers() {
        let module = McmAssembly::paper_module();
        let text = generate_bsdl(&module, "X");
        // Excitation nets are SoG outputs; pickup nets are inputs.
        assert!(text.contains("exc_x_p, output3"));
        assert!(text.contains("pick_x_p, input"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_bsdl("not a bsdl at all").is_none());
    }
}
