//! The multi-chip module substrate (paper §2, §3.1, \[Oli96\]).
//!
//! The MCM carries three dies — the Sea-of-Gates die and the two
//! micro-machined fluxgate sensor dies — plus the passives that do not
//! fit on chip: the 12.5 MΩ oscillator reference resistor and any
//! capacitor above 400 pF. [`McmAssembly`] is the module netlist:
//! substrate nets connecting die pads, with injectable manufacturing
//! faults (opens and shorts) for the boundary-scan interconnect test of
//! experiment E10.

use fluxcomp_units::si::{Farad, Ohm};
use std::collections::BTreeMap;

/// A die mounted on the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Die {
    /// The 200k-transistor Sea-of-Gates die.
    SeaOfGates,
    /// The X-axis fluxgate sensor die.
    SensorX,
    /// The Y-axis fluxgate sensor die.
    SensorY,
}

/// A passive component realised on the substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubstratePassive {
    /// A thick-film resistor.
    Resistor(Ohm),
    /// A substrate capacitor (> 400 pF per the paper's rule).
    Capacitor(Farad),
}

/// A substrate net: one driver pad, any number of receiver pads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McmNet {
    /// Net name.
    pub name: String,
    /// The driving die (boundary-scan drivable in EXTEST).
    pub driver: Die,
    /// Receiving dies.
    pub receivers: Vec<Die>,
}

/// A manufacturing defect on the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Net `net` is broken: receivers see a floating (weakly low) value
    /// instead of the driven one.
    Open {
        /// Index of the broken net.
        net: usize,
    },
    /// Nets `a` and `b` are bridged (wired-AND, the usual model for
    /// metal shorts on a substrate).
    Short {
        /// First net.
        a: usize,
        /// Second net.
        b: usize,
    },
}

/// The assembled module.
#[derive(Debug, Clone, PartialEq)]
pub struct McmAssembly {
    nets: Vec<McmNet>,
    passives: Vec<(String, SubstratePassive)>,
    faults: Vec<Fault>,
}

impl McmAssembly {
    /// The paper's module: SoG die + two sensors, with the excitation and
    /// pickup interconnect per sensor (balanced pairs), the oscillator's
    /// 12.5 MΩ reference resistor and a 470 pF supply-decoupling
    /// capacitor on the substrate.
    pub fn paper_module() -> Self {
        let mut nets = Vec::new();
        for (axis, die) in [("x", Die::SensorX), ("y", Die::SensorY)] {
            // Balanced excitation pair: SoG drives the sensor.
            nets.push(McmNet {
                name: format!("exc_{axis}_p"),
                driver: Die::SeaOfGates,
                receivers: vec![die],
            });
            nets.push(McmNet {
                name: format!("exc_{axis}_n"),
                driver: Die::SeaOfGates,
                receivers: vec![die],
            });
            // Pickup pair: sensor drives the SoG detector. For EXTEST the
            // direction only matters for who launches the pattern.
            nets.push(McmNet {
                name: format!("pick_{axis}_p"),
                driver: die,
                receivers: vec![Die::SeaOfGates],
            });
            nets.push(McmNet {
                name: format!("pick_{axis}_n"),
                driver: die,
                receivers: vec![Die::SeaOfGates],
            });
        }
        // The oscillator reference node routed through the substrate R.
        nets.push(McmNet {
            name: "osc_ref".into(),
            driver: Die::SeaOfGates,
            receivers: vec![Die::SeaOfGates],
        });
        Self {
            nets,
            passives: vec![
                (
                    "r_osc_ref".into(),
                    SubstratePassive::Resistor(Ohm::new(12.5e6)),
                ),
                (
                    "c_decouple".into(),
                    SubstratePassive::Capacitor(Farad::new(470e-12)),
                ),
            ],
            faults: Vec::new(),
        }
    }

    /// The substrate nets.
    pub fn nets(&self) -> &[McmNet] {
        &self.nets
    }

    /// The substrate passives.
    pub fn passives(&self) -> &[(String, SubstratePassive)] {
        &self.passives
    }

    /// Currently injected faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Injects a fault.
    ///
    /// # Panics
    ///
    /// Panics if a fault references a nonexistent net, or a short bridges
    /// a net with itself.
    pub fn inject(&mut self, fault: Fault) {
        match fault {
            Fault::Open { net } => assert!(net < self.nets.len(), "no such net"),
            Fault::Short { a, b } => {
                assert!(a < self.nets.len() && b < self.nets.len(), "no such net");
                assert_ne!(a, b, "a net cannot short to itself");
            }
        }
        self.faults.push(fault);
    }

    /// Removes all injected faults.
    pub fn clear_faults(&mut self) {
        self.faults.clear();
    }

    /// Every possible single fault on this module: one open per net and
    /// one short per adjacent net pair (substrate shorts occur between
    /// neighbouring traces).
    pub fn all_single_faults(&self) -> Vec<Fault> {
        let mut out: Vec<Fault> = (0..self.nets.len())
            .map(|net| Fault::Open { net })
            .collect();
        for a in 0..self.nets.len().saturating_sub(1) {
            out.push(Fault::Short { a, b: a + 1 });
        }
        out
    }

    /// Propagates driven values through the (possibly faulty) substrate:
    /// `driven[i]` is what net `i`'s driver launches; the return value is
    /// what net `i`'s receivers observe.
    pub fn propagate(&self, driven: &[bool]) -> Vec<bool> {
        assert_eq!(driven.len(), self.nets.len(), "one value per net");
        // Union shorted nets, then wire-AND within each group.
        let mut group: Vec<usize> = (0..driven.len()).collect();
        fn find(group: &mut [usize], mut i: usize) -> usize {
            while group[i] != i {
                group[i] = group[group[i]];
                i = group[i];
            }
            i
        }
        for f in &self.faults {
            if let Fault::Short { a, b } = *f {
                let ra = find(&mut group, a);
                let rb = find(&mut group, b);
                group[ra] = rb;
            }
        }
        let mut group_value: BTreeMap<usize, bool> = BTreeMap::new();
        for (i, &d) in driven.iter().enumerate() {
            let r = find(&mut group, i);
            let entry = group_value.entry(r).or_insert(true);
            *entry &= d; // wired-AND
        }
        (0..driven.len())
            .map(|i| {
                let is_open = self
                    .faults
                    .iter()
                    .any(|f| matches!(f, Fault::Open { net } if *net == i));
                if is_open {
                    false // broken trace floats weakly low
                } else {
                    let r = find(&mut group, i);
                    group_value[&r]
                }
            })
            .collect()
    }
}

impl Default for McmAssembly {
    fn default() -> Self {
        Self::paper_module()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_module_inventory() {
        let m = McmAssembly::paper_module();
        assert_eq!(m.nets().len(), 9); // 4 per sensor + osc_ref
        assert_eq!(m.passives().len(), 2);
        // The famous 12.5 MΩ resistor is on the substrate.
        assert!(m.passives().iter().any(|(n, p)| n == "r_osc_ref"
            && matches!(p, SubstratePassive::Resistor(r) if (r.value() - 12.5e6).abs() < 1.0)));
        // The decoupling capacitor obeys the > 400 pF rule.
        assert!(m
            .passives()
            .iter()
            .any(|(_, p)| matches!(p, SubstratePassive::Capacitor(c) if c.value() > 400e-12)));
    }

    #[test]
    fn fault_free_propagation_is_identity() {
        let m = McmAssembly::paper_module();
        let driven: Vec<bool> = (0..9).map(|k| k % 3 == 0).collect();
        assert_eq!(m.propagate(&driven), driven);
    }

    #[test]
    fn open_floats_low() {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Open { net: 2 });
        let driven = vec![true; 9];
        let seen = m.propagate(&driven);
        assert!(!seen[2]);
        assert!(seen.iter().enumerate().all(|(i, &v)| v || i == 2));
    }

    #[test]
    fn short_wire_ands_the_pair() {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Short { a: 0, b: 1 });
        let mut driven = vec![true; 9];
        driven[1] = false;
        let seen = m.propagate(&driven);
        assert!(!seen[0], "net 0 pulled low by shorted net 1");
        assert!(!seen[1]);
        // Opposite pattern also detected.
        driven[0] = false;
        driven[1] = true;
        let seen = m.propagate(&driven);
        assert!(!seen[1]);
    }

    #[test]
    fn transitive_shorts_group() {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Short { a: 0, b: 1 });
        m.inject(Fault::Short { a: 1, b: 2 });
        let mut driven = vec![true; 9];
        driven[2] = false;
        let seen = m.propagate(&driven);
        assert!(!seen[0] && !seen[1] && !seen[2]);
    }

    #[test]
    fn single_fault_universe() {
        let m = McmAssembly::paper_module();
        let faults = m.all_single_faults();
        assert_eq!(faults.len(), 9 + 8);
    }

    #[test]
    fn clear_faults_restores_identity() {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Open { net: 0 });
        m.clear_faults();
        assert!(m.faults().is_empty());
        let driven = vec![true; 9];
        assert_eq!(m.propagate(&driven), driven);
    }

    #[test]
    #[should_panic(expected = "no such net")]
    fn bad_fault_rejected() {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Open { net: 99 });
    }

    #[test]
    #[should_panic(expected = "short to itself")]
    fn self_short_rejected() {
        let mut m = McmAssembly::paper_module();
        m.inject(Fault::Short { a: 1, b: 1 });
    }
}
