//! # fluxcomp-mcm
//!
//! The **multi-chip module** that carries the compass (paper §2, §6,
//! \[Oli96\]): the Sea-of-Gates die and the two micro-machined fluxgate
//! sensor dies on a silicon substrate, together with the passives that
//! cannot live on chip (the 12.5 MΩ oscillator resistor, capacitors
//! above 400 pF) — all "equipped with boundary scan test structures".
//!
//! * [`substrate`] — the module netlist with injectable opens/shorts;
//! * [`bscan`] — a full IEEE 1149.1 TAP controller, instruction set and
//!   boundary register;
//! * [`interconnect_test`] — the EXTEST counting-sequence interconnect
//!   test and its fault-coverage evaluation (experiment E10);
//! * [`chain`] — the multi-die TAP daisy chain of a production MCM,
//!   with per-die instruction loads and scan-path integrity checks;
//! * [`bsdl`] — BSDL-style description generation for the module's
//!   scan resources (correct by construction, parsed back in tests);
//! * [`diagnosis`] — a fault dictionary mapping failure signatures back
//!   to physical defect candidates.
//!
//! ## Example
//!
//! ```
//! use fluxcomp_mcm::substrate::{Fault, McmAssembly};
//! use fluxcomp_mcm::interconnect_test::InterconnectTester;
//!
//! let mut module = McmAssembly::paper_module();
//! let tester = InterconnectTester::new(module.nets().len());
//! assert!(tester.run(&module).passed());
//!
//! module.inject(Fault::Open { net: 2 });
//! assert!(!tester.run(&module).passed());
//! ```

pub mod bscan;
pub mod bsdl;
pub mod chain;
pub mod diagnosis;
pub mod interconnect_test;
pub mod substrate;

pub use bscan::{BoundaryScanChain, Instruction, TapController, TapState};
pub use bsdl::{generate_bsdl, parse_bsdl, BsdlSummary};
pub use chain::TapChain;
pub use diagnosis::{diagnose_module, FaultDictionary, Signature};
pub use interconnect_test::{InterconnectTester, TestReport};
pub use substrate::{Die, Fault, McmAssembly, McmNet, SubstratePassive};
