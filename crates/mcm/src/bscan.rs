//! IEEE 1149.1 boundary scan (\[Oli96\]: "Test Structures on MCM Active
//! Substrate").
//!
//! The MCM is "equipped with boundary scan test structures" so the
//! die-to-die interconnect can be tested after assembly. This module
//! implements the standard's machinery:
//!
//! * [`TapController`] — the full 16-state TAP FSM driven by TMS/TCK;
//! * [`Instruction`] — BYPASS / EXTEST / SAMPLE / IDCODE;
//! * [`BoundaryScanChain`] — the shift/update boundary register whose
//!   update stage drives (EXTEST) or observes the MCM nets.

use std::fmt;

/// The 16 TAP controller states of IEEE 1149.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[allow(missing_docs)]
pub enum TapState {
    #[default]
    TestLogicReset,
    RunTestIdle,
    SelectDrScan,
    CaptureDr,
    ShiftDr,
    Exit1Dr,
    PauseDr,
    Exit2Dr,
    UpdateDr,
    SelectIrScan,
    CaptureIr,
    ShiftIr,
    Exit1Ir,
    PauseIr,
    Exit2Ir,
    UpdateIr,
}

impl TapState {
    /// The IEEE 1149.1 state transition on a TCK rising edge with the
    /// given TMS value.
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, false) => RunTestIdle,
            (TestLogicReset, true) => TestLogicReset,
            (RunTestIdle, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (SelectDrScan, false) => CaptureDr,
            (SelectDrScan, true) => SelectIrScan,
            (CaptureDr, false) => ShiftDr,
            (CaptureDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (Exit1Dr, false) => PauseDr,
            (Exit1Dr, true) => UpdateDr,
            (PauseDr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (Exit2Dr, false) => ShiftDr,
            (Exit2Dr, true) => UpdateDr,
            (UpdateDr, false) => RunTestIdle,
            (UpdateDr, true) => SelectDrScan,
            (SelectIrScan, false) => CaptureIr,
            (SelectIrScan, true) => TestLogicReset,
            (CaptureIr, false) => ShiftIr,
            (CaptureIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (Exit1Ir, false) => PauseIr,
            (Exit1Ir, true) => UpdateIr,
            (PauseIr, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (Exit2Ir, false) => ShiftIr,
            (Exit2Ir, true) => UpdateIr,
            (UpdateIr, false) => RunTestIdle,
            (UpdateIr, true) => SelectDrScan,
        }
    }
}

impl fmt::Display for TapState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The public instructions the module's TAP supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Instruction {
    /// Mandatory single-bit bypass (all-ones opcode per the standard).
    #[default]
    Bypass,
    /// Drive/capture the boundary cells from the chip pins — the MCM
    /// interconnect test instruction.
    Extest,
    /// Sample the functional values without disturbing the mission mode.
    Sample,
    /// Shift out the 32-bit device identification code.
    Idcode,
    /// Drive the boundary update latches onto the pins while the scan
    /// path is the 1-bit bypass — used to hold safe values on one die
    /// while testing another.
    Clamp,
    /// Float all outputs (high impedance); scan path is bypass.
    Highz,
}

impl Instruction {
    /// 4-bit opcodes (BYPASS must be all ones per the standard).
    pub fn opcode(self) -> u8 {
        match self {
            Instruction::Extest => 0b0000,
            Instruction::Sample => 0b0001,
            Instruction::Idcode => 0b0010,
            Instruction::Clamp => 0b0011,
            Instruction::Highz => 0b0100,
            Instruction::Bypass => 0b1111,
        }
    }

    /// Decodes an opcode; unknown opcodes select BYPASS, as the standard
    /// requires.
    pub fn decode(op: u8) -> Self {
        match op & 0xF {
            0b0000 => Instruction::Extest,
            0b0001 => Instruction::Sample,
            0b0010 => Instruction::Idcode,
            0b0011 => Instruction::Clamp,
            0b0100 => Instruction::Highz,
            _ => Instruction::Bypass,
        }
    }
}

/// The device ID code of the reproduction's MCM (version 1, invented
/// part number, the mandatory trailing 1).
pub const IDCODE: u32 = 0x1_C0_4A_5F | 1;

/// A boundary-scan cell: shift stage plus update latch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BoundaryCell {
    /// Shift-register stage.
    pub shift: bool,
    /// Update (output) latch — what EXTEST drives onto the net.
    pub update: bool,
}

/// The boundary register of the module: one cell per MCM net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryScanChain {
    cells: Vec<BoundaryCell>,
}

impl BoundaryScanChain {
    /// A chain with `length` cells, all low.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn new(length: usize) -> Self {
        assert!(length > 0, "a boundary chain needs at least one cell");
        Self {
            cells: vec![BoundaryCell::default(); length],
        }
    }

    /// Chain length.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the chain has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// One TCK in Shift-DR: shifts `tdi` in at cell 0, returns TDO (the
    /// last cell's previous shift value).
    pub fn shift(&mut self, tdi: bool) -> bool {
        let tdo = self.cells.last().expect("nonempty").shift;
        for i in (1..self.cells.len()).rev() {
            self.cells[i].shift = self.cells[i - 1].shift;
        }
        self.cells[0].shift = tdi;
        tdo
    }

    /// Capture-DR: loads the observed net values into the shift stages.
    pub fn capture(&mut self, observed: &[bool]) {
        assert_eq!(observed.len(), self.cells.len(), "one value per cell");
        for (c, &v) in self.cells.iter_mut().zip(observed) {
            c.shift = v;
        }
    }

    /// Update-DR: transfers shift stages to the update latches (the
    /// values EXTEST drives).
    pub fn update(&mut self) {
        for c in &mut self.cells {
            c.update = c.shift;
        }
    }

    /// The currently driven values.
    pub fn driven(&self) -> Vec<bool> {
        self.cells.iter().map(|c| c.update).collect()
    }

    /// Shifts a whole pattern in (so that `pattern[i]` lands in cell `i`)
    /// and returns the bits shifted out, re-ordered so that element `i`
    /// is what cell `i` held before the scan.
    pub fn shift_pattern(&mut self, pattern: &[bool]) -> Vec<bool> {
        // Feeding the pattern in reverse makes pattern[i] land in cell i;
        // TDO emits the old contents last-cell-first, so reverse the
        // collected bits back into cell order.
        let mut out: Vec<bool> = pattern.iter().rev().map(|&b| self.shift(b)).collect();
        out.reverse();
        out
    }
}

/// The TAP controller plus instruction and data registers of the MCM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapController {
    state: TapState,
    ir_shift: u8,
    instruction: Instruction,
    bypass: bool,
    idcode_shift: u32,
    /// The boundary register (shared by EXTEST/SAMPLE).
    pub boundary: BoundaryScanChain,
}

impl TapController {
    /// A TAP with a boundary chain of `boundary_cells` cells, held in
    /// Test-Logic-Reset.
    pub fn new(boundary_cells: usize) -> Self {
        Self {
            state: TapState::TestLogicReset,
            ir_shift: 0,
            instruction: Instruction::Idcode, // reset selects IDCODE/BYPASS
            bypass: false,
            idcode_shift: IDCODE,
            boundary: BoundaryScanChain::new(boundary_cells),
        }
    }

    /// Current FSM state.
    pub fn state(&self) -> TapState {
        self.state
    }

    /// Current instruction.
    pub fn instruction(&self) -> Instruction {
        self.instruction
    }

    /// One TCK rising edge. `observed` supplies the net values for a
    /// Capture-DR in EXTEST/SAMPLE. Returns TDO where defined.
    pub fn clock(&mut self, tms: bool, tdi: bool, observed: &[bool]) -> Option<bool> {
        let mut tdo = None;
        // Actions happen in the state being *exited* for shift, per the
        // standard's timing; modelling at the granularity of "state
        // acts on entry" is the usual software simplification and is
        // what we do here, acting on the *current* state.
        match self.state {
            TapState::ShiftIr => {
                tdo = Some(self.ir_shift & 1 == 1);
                self.ir_shift = (self.ir_shift >> 1) | ((tdi as u8) << 3);
            }
            TapState::ShiftDr => match self.instruction {
                Instruction::Bypass | Instruction::Clamp | Instruction::Highz => {
                    tdo = Some(self.bypass);
                    self.bypass = tdi;
                }
                Instruction::Idcode => {
                    tdo = Some(self.idcode_shift & 1 == 1);
                    self.idcode_shift = (self.idcode_shift >> 1) | ((tdi as u32) << 31);
                }
                Instruction::Extest | Instruction::Sample => {
                    tdo = Some(self.boundary.shift(tdi));
                }
            },
            _ => {}
        }
        let next = self.state.next(tms);
        match next {
            TapState::TestLogicReset => {
                self.instruction = Instruction::Idcode;
                self.idcode_shift = IDCODE;
            }
            TapState::CaptureIr => {
                // The standard mandates capturing ...01 into the IR.
                self.ir_shift = 0b0001;
            }
            TapState::CaptureDr => match self.instruction {
                Instruction::Idcode => self.idcode_shift = IDCODE,
                Instruction::Extest | Instruction::Sample => self.boundary.capture(observed),
                Instruction::Bypass | Instruction::Clamp | Instruction::Highz => {
                    self.bypass = false
                }
            },
            TapState::UpdateIr => {
                self.instruction = Instruction::decode(self.ir_shift);
            }
            TapState::UpdateDr if self.instruction == Instruction::Extest => {
                self.boundary.update();
            }
            _ => {}
        }
        self.state = next;
        tdo
    }

    /// Drives the FSM to Test-Logic-Reset (five TMS-high clocks, per the
    /// standard's guarantee).
    pub fn reset(&mut self) {
        for _ in 0..5 {
            self.clock(true, false, &vec![false; self.boundary.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tms_highs_reach_reset_from_anywhere() {
        use TapState::*;
        for start in [
            TestLogicReset,
            RunTestIdle,
            ShiftDr,
            PauseDr,
            ShiftIr,
            PauseIr,
            UpdateDr,
            UpdateIr,
            Exit2Dr,
        ] {
            let mut s = start;
            for _ in 0..5 {
                s = s.next(true);
            }
            assert_eq!(s, TestLogicReset, "from {start:?}");
        }
    }

    #[test]
    fn dr_scan_path() {
        use TapState::*;
        let mut s = RunTestIdle;
        for (tms, expect) in [
            (true, SelectDrScan),
            (false, CaptureDr),
            (false, ShiftDr),
            (false, ShiftDr),
            (true, Exit1Dr),
            (true, UpdateDr),
            (false, RunTestIdle),
        ] {
            s = s.next(tms);
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn pause_and_resume_shifting() {
        use TapState::*;
        let mut s = ShiftDr;
        s = s.next(true); // Exit1Dr
        s = s.next(false); // PauseDr
        assert_eq!(s, PauseDr);
        s = s.next(true); // Exit2Dr
        s = s.next(false); // back to ShiftDr
        assert_eq!(s, ShiftDr);
    }

    #[test]
    fn opcode_round_trip_and_bypass_default() {
        for i in [
            Instruction::Bypass,
            Instruction::Extest,
            Instruction::Sample,
            Instruction::Idcode,
            Instruction::Clamp,
            Instruction::Highz,
        ] {
            assert_eq!(Instruction::decode(i.opcode()), i);
        }
        // Unknown opcodes fall back to BYPASS.
        assert_eq!(Instruction::decode(0b0111), Instruction::Bypass);
        assert_eq!(Instruction::Bypass.opcode(), 0b1111);
    }

    #[test]
    fn chain_shift_is_a_shift_register() {
        let mut chain = BoundaryScanChain::new(3);
        assert!(!chain.shift(true));
        assert!(!chain.shift(false));
        assert!(!chain.shift(true));
        // First bit now reaches the end.
        assert!(chain.shift(false));
    }

    #[test]
    fn shift_pattern_lands_in_order() {
        let mut chain = BoundaryScanChain::new(4);
        chain.shift_pattern(&[true, false, true, true]);
        chain.update();
        assert_eq!(chain.driven(), vec![true, false, true, true]);
    }

    #[test]
    fn capture_then_shift_out_reads_nets() {
        let mut chain = BoundaryScanChain::new(4);
        // Deliberately non-palindromic to pin the ordering.
        chain.capture(&[true, true, false, true]);
        let out = chain.shift_pattern(&[false; 4]);
        assert_eq!(out, vec![true, true, false, true]);
    }

    #[test]
    fn idcode_reads_out_after_reset() {
        let mut tap = TapController::new(4);
        tap.reset();
        assert_eq!(tap.instruction(), Instruction::Idcode);
        // Walk to Shift-DR.
        let obs = vec![false; 4];
        tap.clock(false, false, &obs); // RunTestIdle
        tap.clock(true, false, &obs); // SelectDrScan
        tap.clock(false, false, &obs); // CaptureDr
        tap.clock(false, false, &obs); // now in ShiftDr
        let mut code: u32 = 0;
        for bit in 0..32 {
            let tdo = tap.clock(false, false, &obs).expect("in ShiftDr");
            code |= (tdo as u32) << bit;
        }
        assert_eq!(code, IDCODE);
        // Mandatory LSB-1 of every IDCODE.
        assert_eq!(IDCODE & 1, 1);
    }

    #[test]
    fn ir_scan_loads_extest() {
        let mut tap = TapController::new(4);
        tap.reset();
        let obs = vec![false; 4];
        // Navigate: RTI → SelectDR → SelectIR → CaptureIR → ShiftIR ×4 →
        // Exit1IR → UpdateIR.
        tap.clock(false, false, &obs);
        tap.clock(true, false, &obs);
        tap.clock(true, false, &obs);
        tap.clock(false, false, &obs); // CaptureIr
        let op = Instruction::Extest.opcode();
        for bit in 0..3 {
            tap.clock(false, (op >> bit) & 1 == 1, &obs);
        }
        tap.clock(true, (op >> 3) & 1 == 1, &obs); // last bit, to Exit1Ir
        tap.clock(true, false, &obs); // UpdateIr
        assert_eq!(tap.instruction(), Instruction::Extest);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_chain_rejected() {
        let _ = BoundaryScanChain::new(0);
    }
}
