//! Property tests for the quantity, angle and fixed-point types.

use fluxcomp_units::fixed::Q;
use fluxcomp_units::magnetics::{AmperePerMeter, Oersted, Tesla};
use fluxcomp_units::si::{Ampere, Hertz, Ohm, Volt};
use fluxcomp_units::{Degrees, Radians};
use proptest::prelude::*;

proptest! {
    /// Ohm's law round-trips: (V/R)·R == V within float tolerance.
    #[test]
    fn ohms_law_round_trip(v in 0.001f64..100.0, r in 0.1f64..1e7) {
        let volt = Volt::new(v);
        let ohm = Ohm::new(r);
        let back = (volt / ohm) * ohm;
        prop_assert!((back.value() - v).abs() < 1e-9 * v.max(1.0));
    }

    /// Power is commutative and scales bilinearly.
    #[test]
    fn power_bilinear(v in 0.0f64..10.0, i in 0.0f64..1.0, k in 0.1f64..10.0) {
        let p1 = Volt::new(v) * Ampere::new(i);
        let p2 = Ampere::new(i) * Volt::new(v);
        prop_assert_eq!(p1, p2);
        let scaled = Volt::new(v * k) * Ampere::new(i);
        prop_assert!((scaled.value() - k * p1.value()).abs() < 1e-9 * p1.value().max(1e-12) * k.max(1.0));
    }

    /// Period/frequency are inverse bijections on positive reals.
    #[test]
    fn period_frequency_inverse(f in 1e-3f64..1e9) {
        let hz = Hertz::new(f);
        let back = hz.period().frequency();
        prop_assert!((back.value() - f).abs() < 1e-9 * f);
    }

    /// Degrees ↔ radians round-trips.
    #[test]
    fn angle_conversion_round_trip(d in -1e6f64..1e6) {
        let deg = Degrees::new(d);
        let back = deg.to_radians().to_degrees();
        prop_assert!((back.value() - d).abs() < 1e-6 * d.abs().max(1.0));
        let rad = Radians::new(d / 1000.0);
        let back = rad.to_degrees().to_radians();
        prop_assert!((back.value() - d / 1000.0).abs() < 1e-9 * (d / 1000.0).abs().max(1.0));
    }

    /// The triangle inequality holds for angular distance.
    #[test]
    fn angular_triangle_inequality(a in 0.0f64..360.0, b in 0.0f64..360.0, c in 0.0f64..360.0) {
        let (da, db, dc) = (Degrees::new(a), Degrees::new(b), Degrees::new(c));
        let ab = da.angular_distance(db).value();
        let bc = db.angular_distance(dc).value();
        let ac = da.angular_distance(dc).value();
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    /// Oersted ↔ A/m conversion is a linear bijection.
    #[test]
    fn oersted_round_trip(oe in -1e3f64..1e3) {
        let h = Oersted::new(oe).to_ampere_per_meter();
        let back = h.to_oersted();
        prop_assert!((back.value() - oe).abs() < 1e-9 * oe.abs().max(1.0));
        // Linearity.
        let h2 = Oersted::new(2.0 * oe).to_ampere_per_meter();
        prop_assert!((h2.value() - 2.0 * h.value()).abs() < 1e-9 * h.value().abs().max(1.0));
    }

    /// B = µ0·H round-trips through both directions.
    #[test]
    fn b_h_round_trip(h in -1e5f64..1e5) {
        let b = AmperePerMeter::new(h).to_tesla_in_air();
        let back = b.to_ampere_per_meter_in_air();
        prop_assert!((back.value() - h).abs() < 1e-9 * h.abs().max(1.0));
    }

    /// Microtesla helpers are exact inverses.
    #[test]
    fn microtesla_round_trip(ut in -1e3f64..1e3) {
        let b = Tesla::from_microtesla(ut);
        prop_assert!((b.as_microtesla() - ut).abs() < 1e-9 * ut.abs().max(1.0));
    }

    /// Q multiplication matches f64 multiplication within 1 ULP of the
    /// format for in-range values.
    #[test]
    fn q16_multiplication(a in -1000.0f64..1000.0, b in -1000.0f64..1000.0) {
        let qa = Q::<16>::from_f64(a);
        let qb = Q::<16>::from_f64(b);
        let product = (qa * qb).to_f64();
        // Inputs are quantised first; compare against the quantised truth.
        let truth = qa.to_f64() * qb.to_f64();
        prop_assert!((product - truth).abs() <= 1.0 / 65536.0, "{a}*{b}: {product} vs {truth}");
    }

    /// Shifts divide/multiply by powers of two exactly.
    #[test]
    fn q_shift_semantics(bits in -1_000_000i64..1_000_000, k in 0u32..8) {
        let q = Q::<7>::from_bits(bits);
        prop_assert_eq!((q >> k).to_bits(), bits >> k);
        prop_assert_eq!((q << k).to_bits(), bits << k);
    }

    /// Saturating ops never wrap.
    #[test]
    fn q_saturating_is_ordered(a in any::<i64>(), b in any::<i64>()) {
        let qa = Q::<7>::from_bits(a);
        let qb = Q::<7>::from_bits(b);
        let sum = qa.saturating_add(qb);
        if b >= 0 {
            prop_assert!(sum >= qa || sum == Q::<7>::MAX);
        } else {
            prop_assert!(sum <= qa || sum == Q::<7>::MIN);
        }
    }
}
