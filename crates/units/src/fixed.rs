//! Fixed-point arithmetic for the digital datapath models.
//!
//! The paper's CORDIC (Fig. 8) starts with `y_reg := y * 128` — i.e. the
//! hardware works in a fixed-point format with 7 fractional bits. [`Q`]
//! generalises that: a two's-complement integer with a const-generic number
//! of fractional bits, exactly the representation a synthesised datapath
//! would use on the Sea-of-Gates array.
//!
//! Arithmetic is wrapping by default (like real registers); explicit
//! `saturating_*` variants model datapaths with clamping logic.
//!
//! # Example
//!
//! ```
//! use fluxcomp_units::fixed::Q;
//!
//! // The paper's 128× prescale is Q<7>.
//! let x = Q::<7>::from_f64(1.5);
//! let y = Q::<7>::from_f64(0.25);
//! assert_eq!((x + y).to_f64(), 1.75);
//! assert_eq!((x >> 2).to_f64(), 0.375); // arithmetic shift = ÷4
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Shl, Shr, Sub, SubAssign};

/// A two's-complement fixed-point number with `FRAC` fractional bits,
/// stored in an `i64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Q<const FRAC: u32>(i64);

impl<const FRAC: u32> Q<FRAC> {
    /// The value 0.
    pub const ZERO: Self = Self(0);
    /// The value 1.
    pub const ONE: Self = Self(1 << FRAC);
    /// Smallest positive representable step (one LSB).
    pub const EPSILON: Self = Self(1);
    /// Maximum representable value.
    pub const MAX: Self = Self(i64::MAX);
    /// Minimum representable value.
    pub const MIN: Self = Self(i64::MIN);

    /// Constructs directly from raw register bits.
    #[inline]
    pub const fn from_bits(bits: i64) -> Self {
        Self(bits)
    }

    /// The raw register bits.
    #[inline]
    pub const fn to_bits(self) -> i64 {
        self.0
    }

    /// Converts an integer (no fractional part).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `value << FRAC` overflows, like the
    /// synthesis-time width check a hardware flow would perform.
    #[inline]
    pub const fn from_int(value: i64) -> Self {
        Self(value << FRAC)
    }

    /// Rounds a float to the nearest representable fixed-point value
    /// (ties away from zero, matching a hardware round constant).
    #[inline]
    pub fn from_f64(value: f64) -> Self {
        Self((value * (1i64 << FRAC) as f64).round() as i64)
    }

    /// Converts to `f64`. Exact whenever the magnitude fits in the
    /// 53-bit mantissa.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / (1i64 << FRAC) as f64
    }

    /// Truncates to the integer part (rounds toward negative infinity,
    /// which is what an arithmetic right shift does in hardware).
    #[inline]
    pub const fn floor_int(self) -> i64 {
        self.0 >> FRAC
    }

    /// Wrapping addition (models a plain ripple/carry adder register).
    #[inline]
    pub const fn wrapping_add(self, rhs: Self) -> Self {
        Self(self.0.wrapping_add(rhs.0))
    }

    /// Wrapping subtraction.
    #[inline]
    pub const fn wrapping_sub(self, rhs: Self) -> Self {
        Self(self.0.wrapping_sub(rhs.0))
    }

    /// Saturating addition (models an adder with clamp logic).
    #[inline]
    pub const fn saturating_add(self, rhs: Self) -> Self {
        Self(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Self(self.0.saturating_sub(rhs.0))
    }

    /// Fixed-point multiply with rescale, using an `i128` intermediate
    /// (a full-width hardware multiplier followed by a shift).
    #[inline]
    pub const fn mul_full(self, rhs: Self) -> Self {
        Self(((self.0 as i128 * rhs.0 as i128) >> FRAC) as i64)
    }

    /// Absolute value (wrapping at `MIN`, like real two's-complement).
    #[inline]
    pub const fn abs(self) -> Self {
        Self(self.0.wrapping_abs())
    }

    /// The sign: `-1`, `0` or `1`.
    #[inline]
    pub const fn signum(self) -> i64 {
        self.0.signum()
    }

    /// `true` if the value is negative (the register's sign bit).
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Number of bits (including sign) needed to represent this value —
    /// the minimum register width a synthesis tool would allocate.
    #[inline]
    pub fn min_register_width(self) -> u32 {
        if self.0 >= 0 {
            64 - self.0.leading_zeros() + 1
        } else {
            64 - self.0.leading_ones() + 1
        }
    }
}

impl<const FRAC: u32> fmt::Display for Q<FRAC> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}q{}", self.to_f64(), FRAC)
    }
}

impl<const FRAC: u32> Add for Q<FRAC> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        self.wrapping_add(rhs)
    }
}

impl<const FRAC: u32> AddAssign for Q<FRAC> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const FRAC: u32> Sub for Q<FRAC> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.wrapping_sub(rhs)
    }
}

impl<const FRAC: u32> SubAssign for Q<FRAC> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const FRAC: u32> Neg for Q<FRAC> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(self.0.wrapping_neg())
    }
}

impl<const FRAC: u32> Mul for Q<FRAC> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        self.mul_full(rhs)
    }
}

/// Arithmetic right shift — the CORDIC's `x >> i` barrel shifter.
impl<const FRAC: u32> Shr<u32> for Q<FRAC> {
    type Output = Self;
    #[inline]
    fn shr(self, rhs: u32) -> Self {
        Self(self.0 >> rhs)
    }
}

/// Left shift.
impl<const FRAC: u32> Shl<u32> for Q<FRAC> {
    type Output = Self;
    #[inline]
    fn shl(self, rhs: u32) -> Self {
        Self(self.0 << rhs)
    }
}

/// The paper's CORDIC format: 7 fractional bits (the `* 128` prescale of
/// Fig. 8).
pub type Q7 = Q<7>;

/// A wider format used by the higher-precision CORDIC extension.
pub type Q16 = Q<16>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_is_prescale() {
        assert_eq!(Q7::ONE.to_bits(), 128);
        assert_eq!(Q::<16>::ONE.to_bits(), 65536);
    }

    #[test]
    fn f64_round_trip_exact_multiples() {
        for k in -1000..1000 {
            let v = k as f64 / 128.0;
            assert_eq!(Q7::from_f64(v).to_f64(), v);
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 0.004 * 128 = 0.512 → rounds to 1 LSB.
        assert_eq!(Q7::from_f64(0.004).to_bits(), 1);
        // 0.003 * 128 = 0.384 → rounds to 0.
        assert_eq!(Q7::from_f64(0.003).to_bits(), 0);
        // Negative ties away from zero.
        assert_eq!(Q7::from_f64(-0.00390625).to_bits(), -1);
    }

    #[test]
    fn add_sub_neg() {
        let a = Q7::from_f64(1.5);
        let b = Q7::from_f64(0.25);
        assert_eq!((a + b).to_f64(), 1.75);
        assert_eq!((a - b).to_f64(), 1.25);
        assert_eq!((-a).to_f64(), -1.5);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn shift_is_power_of_two_division() {
        let a = Q7::from_f64(1.5);
        assert_eq!((a >> 1).to_f64(), 0.75);
        assert_eq!((a >> 2).to_f64(), 0.375);
        assert_eq!((a << 1).to_f64(), 3.0);
        // Arithmetic shift floors negative values.
        let n = Q7::from_bits(-3);
        assert_eq!((n >> 1).to_bits(), -2);
    }

    #[test]
    fn multiply_with_rescale() {
        let a = Q::<16>::from_f64(1.5);
        let b = Q::<16>::from_f64(-2.0);
        assert_eq!((a * b).to_f64(), -3.0);
        assert_eq!((a * Q::<16>::ONE), a);
        assert_eq!((a * Q::<16>::ZERO), Q::<16>::ZERO);
    }

    #[test]
    fn wrapping_matches_register_semantics() {
        let max = Q7::MAX;
        assert_eq!(max.wrapping_add(Q7::EPSILON), Q7::MIN);
        assert_eq!(Q7::MIN.wrapping_sub(Q7::EPSILON), Q7::MAX);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Q7::MAX.saturating_add(Q7::ONE), Q7::MAX);
        assert_eq!(Q7::MIN.saturating_sub(Q7::ONE), Q7::MIN);
    }

    #[test]
    fn floor_int_truncates_toward_neg_infinity() {
        assert_eq!(Q7::from_f64(2.75).floor_int(), 2);
        assert_eq!(Q7::from_f64(-2.25).floor_int(), -3);
        assert_eq!(Q7::from_f64(0.0).floor_int(), 0);
    }

    #[test]
    fn signs() {
        assert!(Q7::from_f64(-0.5).is_negative());
        assert!(!Q7::from_f64(0.5).is_negative());
        assert_eq!(Q7::from_f64(-0.5).abs().to_f64(), 0.5);
        assert_eq!(Q7::from_f64(3.0).signum(), 1);
        assert_eq!(Q7::ZERO.signum(), 0);
        assert_eq!(Q7::from_f64(-3.0).signum(), -1);
    }

    #[test]
    fn register_width_estimate() {
        // 1.0 in Q7 is 128 = 8 magnitude bits + sign.
        assert_eq!(Q7::ONE.min_register_width(), 9);
        assert_eq!(Q7::ZERO.min_register_width(), 1);
        assert_eq!(Q7::from_bits(-1).min_register_width(), 1);
        assert_eq!(Q7::from_bits(-129).min_register_width(), 9);
    }

    #[test]
    fn ordering_and_hash_derives() {
        let a = Q7::from_f64(1.0);
        let b = Q7::from_f64(2.0);
        assert!(a < b);
        assert_eq!(a.max(a), a);
        use std::collections::HashSet;
        let set: HashSet<Q7> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_format() {
        assert_eq!(Q7::from_f64(1.5).to_string(), "1.5q7");
    }
}
