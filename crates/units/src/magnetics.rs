//! Magnetic quantities: flux density ([`Tesla`]), field strength
//! ([`AmperePerMeter`]) and the CGS [`Oersted`] used throughout the fluxgate
//! literature the paper cites.
//!
//! The paper quotes the \[Kaw95\] sensor's anisotropy/saturation field as
//! `H_K = 1 Oe` and the earth's field as 25–65 µT, so both unit systems
//! appear in the reproduction. The conversions:
//!
//! * `1 Oe = 1000/(4π) A/m ≈ 79.577 A/m`
//! * in vacuum/air, `B = µ₀·H`, so `1 Oe ↔ 0.1 mT = 100 µT` exactly
//!   (the CGS gauss).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Vacuum permeability `µ₀` in H/m (SI 2019 exact-ish value).
pub const MU_0: f64 = 1.256_637_061_27e-6;

macro_rules! mag_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Wraps a raw value in the quantity's unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Raw value in the quantity's unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Larger of the two values.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Smaller of the two values.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Sign of the value: `-1.0`, `0.0` or `1.0`.
            #[inline]
            pub fn signum(self) -> f64 {
                if self.0 == 0.0 { 0.0 } else { self.0.signum() }
            }

            /// `true` when finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self { Self(self.0 + rhs.0) }
        }
        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) { self.0 += rhs.0; }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self { Self(self.0 - rhs.0) }
        }
        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) { self.0 -= rhs.0; }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self { Self(-self.0) }
        }
        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self { Self(self.0 * rhs) }
        }
        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name { $name(self * rhs.0) }
        }
        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self { Self(self.0 / rhs) }
        }
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 { self.0 / rhs.0 }
        }
        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }
    };
}

mag_quantity!(
    /// Magnetic flux density `B` in tesla.
    Tesla,
    "T"
);
mag_quantity!(
    /// Magnetic field strength `H` in ampere per metre.
    AmperePerMeter,
    "A/m"
);
mag_quantity!(
    /// Magnetic field strength in the CGS oersted, the unit the fluxgate
    /// literature (e.g. \[Kaw95\]'s `H_K = 1 Oe`) uses.
    Oersted,
    "Oe"
);

/// `1 Oe` expressed in A/m: `1000/(4π)`.
pub const AMPERE_PER_METER_PER_OERSTED: f64 = 1000.0 / (4.0 * std::f64::consts::PI);

impl Oersted {
    /// Converts to SI field strength.
    #[inline]
    pub fn to_ampere_per_meter(self) -> AmperePerMeter {
        AmperePerMeter::new(self.0 * AMPERE_PER_METER_PER_OERSTED)
    }

    /// Flux density this field produces in vacuum/air (`B = µ₀H`);
    /// numerically `1 Oe → 100 µT`.
    #[inline]
    pub fn to_tesla_in_air(self) -> Tesla {
        self.to_ampere_per_meter().to_tesla_in_air()
    }
}

impl AmperePerMeter {
    /// Converts to the CGS oersted.
    #[inline]
    pub fn to_oersted(self) -> Oersted {
        Oersted::new(self.0 / AMPERE_PER_METER_PER_OERSTED)
    }

    /// Flux density in vacuum/air: `B = µ₀·H`.
    #[inline]
    pub fn to_tesla_in_air(self) -> Tesla {
        Tesla::new(MU_0 * self.0)
    }
}

impl Tesla {
    /// Constructs a flux density from a value in microtesla — the natural
    /// unit for the earth's field (25–65 µT per the paper).
    #[inline]
    pub const fn from_microtesla(ut: f64) -> Self {
        Self(ut * 1e-6)
    }

    /// The value in microtesla.
    #[inline]
    pub const fn as_microtesla(self) -> f64 {
        self.0 * 1e6
    }

    /// Equivalent field strength in vacuum/air: `H = B/µ₀`.
    #[inline]
    pub fn to_ampere_per_meter_in_air(self) -> AmperePerMeter {
        AmperePerMeter::new(self.0 / MU_0)
    }
}

impl From<Oersted> for AmperePerMeter {
    #[inline]
    fn from(oe: Oersted) -> Self {
        oe.to_ampere_per_meter()
    }
}

impl From<AmperePerMeter> for Oersted {
    #[inline]
    fn from(h: AmperePerMeter) -> Self {
        h.to_oersted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oersted_to_si() {
        let h = Oersted::new(1.0).to_ampere_per_meter();
        assert!((h.value() - 79.577_471_545_9).abs() < 1e-6);
    }

    #[test]
    fn oersted_round_trip() {
        let oe = Oersted::new(0.6283);
        let back = oe.to_ampere_per_meter().to_oersted();
        assert!((back.value() - 0.6283).abs() < 1e-12);
    }

    #[test]
    fn one_oersted_is_100_microtesla_in_air() {
        let b = Oersted::new(1.0).to_tesla_in_air();
        assert!((b.as_microtesla() - 100.0).abs() < 0.01);
    }

    #[test]
    fn kaw95_saturation_is_about_15x_earth_field() {
        // The paper: the [Kaw95] sensor saturates at H_K = 1 Oe, about
        // 15× the earth's field. 1 Oe ≈ 100 µT; 15× a mid-latitude earth
        // field of ~6.7 µT horizontal... the paper uses the full-field
        // comparison: 100 µT / 15 ≈ 6.7 µT is unrealistically small for
        // the *total* field but matches the *horizontal component* in NL.
        // We simply check the ratio arithmetic the paper quotes.
        let hk = Oersted::new(1.0).to_tesla_in_air();
        let earth_equiv = hk / 15.0;
        assert!((earth_equiv.as_microtesla() - 6.666_667).abs() < 0.01);
    }

    #[test]
    fn microtesla_helpers() {
        let b = Tesla::from_microtesla(50.0);
        assert!((b.value() - 50e-6).abs() < 1e-18);
        assert!((b.as_microtesla() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn b_h_round_trip_in_air() {
        let h = AmperePerMeter::new(40.0);
        let b = h.to_tesla_in_air();
        let back = b.to_ampere_per_meter_in_air();
        assert!((back.value() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_traits() {
        let h: AmperePerMeter = Oersted::new(2.0).into();
        assert!((h.value() - 159.154_943).abs() < 1e-3);
        let oe: Oersted = AmperePerMeter::new(79.577_471_545_9).into();
        assert!((oe.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let a = Tesla::from_microtesla(30.0);
        let b = Tesla::from_microtesla(20.0);
        assert!(((a + b).as_microtesla() - 50.0).abs() < 1e-9);
        assert!(((a - b).as_microtesla() - 10.0).abs() < 1e-9);
        assert!(((-a).as_microtesla() + 30.0).abs() < 1e-9);
        assert!((a / b - 1.5).abs() < 1e-12);
        assert_eq!(a.signum(), 1.0);
        assert_eq!(Tesla::ZERO.signum(), 0.0);
    }

    #[test]
    fn display() {
        assert_eq!(Tesla::new(5e-5).to_string(), "0.00005 T");
        assert_eq!(Oersted::new(1.0).to_string(), "1 Oe");
        assert_eq!(AmperePerMeter::new(40.0).to_string(), "40 A/m");
    }
}
