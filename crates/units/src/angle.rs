//! Angle types: [`Degrees`] and [`Radians`].
//!
//! The compass's entire purpose is producing an angle, and the paper's
//! accuracy claim ("within one degree") is a statement about *angular
//! distance on a circle*. These types make the wrap-around arithmetic
//! explicit so accuracy evaluations never suffer from the classic
//! `359° vs 1°` bug.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An angle in degrees.
///
/// The raw value is unconstrained; use [`Degrees::normalized`] to map into
/// `[0, 360)` (compass-heading convention) or [`Degrees::wrapped_signed`]
/// for `(-180, 180]`.
///
/// # Example
///
/// ```
/// use fluxcomp_units::angle::Degrees;
///
/// let a = Degrees::new(350.0);
/// let b = Degrees::new(10.0);
/// // Shortest distance across north is 20°, not 340°.
/// assert_eq!(a.angular_distance(b), Degrees::new(20.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Degrees(f64);

/// An angle in radians.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Radians(f64);

impl Degrees {
    /// The zero angle.
    pub const ZERO: Self = Self(0.0);
    /// A full turn.
    pub const FULL_TURN: Self = Self(360.0);

    /// Wraps a raw value in degrees.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Raw value in degrees.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to radians.
    #[inline]
    pub fn to_radians(self) -> Radians {
        Radians(self.0.to_radians())
    }

    /// Maps the angle into the compass-heading range `[0, 360)`.
    #[inline]
    pub fn normalized(self) -> Self {
        Self(self.0.rem_euclid(360.0))
    }

    /// Maps the angle into the signed range `(-180, 180]`.
    #[inline]
    pub fn wrapped_signed(self) -> Self {
        let mut a = self.0.rem_euclid(360.0);
        if a > 180.0 {
            a -= 360.0;
        }
        Self(a)
    }

    /// Unsigned shortest angular distance between two angles, in `[0, 180]`.
    ///
    /// This is the metric used for every accuracy figure in
    /// `EXPERIMENTS.md`: an indicated heading of 359.5° for a true heading
    /// of 0.2° is an error of 0.7°, not 359.3°.
    #[inline]
    pub fn angular_distance(self, other: Self) -> Self {
        (self - other).wrapped_signed().abs()
    }

    /// Signed shortest rotation taking `other` onto `self`, in `(-180, 180]`.
    #[inline]
    pub fn signed_error_from(self, other: Self) -> Self {
        (self - other).wrapped_signed()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// `true` when the value is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Larger of the two angles (by raw value).
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Sine of the angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.0.to_radians().sin()
    }

    /// Cosine of the angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.0.to_radians().cos()
    }

    /// Tangent of the angle.
    #[inline]
    pub fn tan(self) -> f64 {
        self.0.to_radians().tan()
    }

    /// The four-quadrant arctangent `atan2(y, x)` expressed in degrees.
    #[inline]
    pub fn atan2(y: f64, x: f64) -> Self {
        Self(y.atan2(x).to_degrees())
    }
}

impl Radians {
    /// The zero angle.
    pub const ZERO: Self = Self(0.0);

    /// Wraps a raw value in radians.
    #[inline]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Raw value in radians.
    #[inline]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to degrees.
    #[inline]
    pub fn to_degrees(self) -> Degrees {
        Degrees(self.0.to_degrees())
    }

    /// Maps into `[0, 2π)`.
    #[inline]
    pub fn normalized(self) -> Self {
        Self(self.0.rem_euclid(std::f64::consts::TAU))
    }

    /// Sine of the angle.
    #[inline]
    pub fn sin(self) -> f64 {
        self.0.sin()
    }

    /// Cosine of the angle.
    #[inline]
    pub fn cos(self) -> f64 {
        self.0.cos()
    }
}

impl fmt::Display for Degrees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}°", self.0)
    }
}

impl fmt::Display for Radians {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} rad", self.0)
    }
}

impl From<Radians> for Degrees {
    #[inline]
    fn from(r: Radians) -> Self {
        r.to_degrees()
    }
}

impl From<Degrees> for Radians {
    #[inline]
    fn from(d: Degrees) -> Self {
        d.to_radians()
    }
}

macro_rules! angle_ops {
    ($name:ident) => {
        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }
        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }
        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }
        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }
        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }
        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }
        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }
    };
}

angle_ops!(Degrees);
angle_ops!(Radians);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_radian_round_trip() {
        let d = Degrees::new(123.456);
        let back = d.to_radians().to_degrees();
        assert!((back.value() - 123.456).abs() < 1e-12);
    }

    #[test]
    fn normalization_into_heading_range() {
        assert_eq!(Degrees::new(450.0).normalized(), Degrees::new(90.0));
        assert_eq!(Degrees::new(-90.0).normalized(), Degrees::new(270.0));
        assert_eq!(Degrees::new(360.0).normalized(), Degrees::new(0.0));
        assert_eq!(Degrees::new(0.0).normalized(), Degrees::new(0.0));
        assert_eq!(Degrees::new(-720.0).normalized(), Degrees::new(0.0));
    }

    #[test]
    fn wrapped_signed_range() {
        assert_eq!(Degrees::new(270.0).wrapped_signed(), Degrees::new(-90.0));
        assert_eq!(Degrees::new(180.0).wrapped_signed(), Degrees::new(180.0));
        assert_eq!(Degrees::new(-180.0).wrapped_signed(), Degrees::new(180.0));
        assert_eq!(Degrees::new(10.0).wrapped_signed(), Degrees::new(10.0));
    }

    #[test]
    fn angular_distance_across_north() {
        let a = Degrees::new(359.5);
        let b = Degrees::new(0.2);
        assert!((a.angular_distance(b).value() - 0.7).abs() < 1e-12);
        assert!((b.angular_distance(a).value() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn angular_distance_is_at_most_180() {
        for k in 0..720 {
            let a = Degrees::new(k as f64 * 0.77);
            let b = Degrees::new(k as f64 * -1.3);
            let d = a.angular_distance(b).value();
            assert!((0.0..=180.0).contains(&d), "distance {d} out of range");
        }
    }

    #[test]
    fn signed_error_has_direction() {
        // Indicated 5° for true 355°: error is +10° (clockwise).
        let e = Degrees::new(5.0).signed_error_from(Degrees::new(355.0));
        assert!((e.value() - 10.0).abs() < 1e-12);
        let e = Degrees::new(355.0).signed_error_from(Degrees::new(5.0));
        assert!((e.value() + 10.0).abs() < 1e-12);
    }

    #[test]
    fn atan2_quadrants() {
        assert!((Degrees::atan2(1.0, 1.0).value() - 45.0).abs() < 1e-12);
        assert!((Degrees::atan2(1.0, -1.0).value() - 135.0).abs() < 1e-12);
        assert!((Degrees::atan2(-1.0, -1.0).value() + 135.0).abs() < 1e-12);
        assert!((Degrees::atan2(-1.0, 1.0).value() + 45.0).abs() < 1e-12);
    }

    #[test]
    fn trig_matches_std() {
        let d = Degrees::new(30.0);
        assert!((d.sin() - 0.5).abs() < 1e-12);
        assert!((d.cos() - 3f64.sqrt() / 2.0).abs() < 1e-12);
        assert!((Degrees::new(45.0).tan() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn radian_normalization() {
        let r = Radians::new(3.0 * std::f64::consts::PI);
        assert!((r.normalized().value() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn conversion_traits() {
        let d: Degrees = Radians::new(std::f64::consts::PI).into();
        assert!((d.value() - 180.0).abs() < 1e-12);
        let r: Radians = Degrees::new(180.0).into();
        assert!((r.value() - std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Degrees::new(90.0).to_string(), "90°");
        assert_eq!(Radians::new(1.5).to_string(), "1.5 rad");
    }
}
