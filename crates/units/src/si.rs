//! SI circuit quantities as `f64` newtypes with physically meaningful
//! arithmetic.
//!
//! Every quantity supports addition/subtraction with itself, scaling by a
//! bare `f64`, negation and ordering. Cross-quantity operators are provided
//! only where the physics of the compass front-end needs them (Ohm's law,
//! capacitor charge, reactive impedance magnitude, power, period/frequency).
//!
//! The types are deliberately *not* a full dimensional-analysis system:
//! the goal is to catch the unit mix-ups that actually occur when modelling
//! the paper's analogue section, with zero runtime cost.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Generates an `f64` newtype quantity with standard arithmetic.
macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw value expressed in the quantity's SI unit.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Returns the raw value in the quantity's SI unit.
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` when the value is finite (neither NaN nor infinite).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Clamps the value to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` (mirrors [`f64::clamp`]).
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// The sign of the value: `-1.0`, `0.0` or `1.0`.
            #[inline]
            pub fn signum(self) -> f64 {
                if self.0 == 0.0 { 0.0 } else { self.0.signum() }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Ratio of two like quantities is dimensionless.
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl From<$name> for f64 {
            #[inline]
            fn from(q: $name) -> f64 {
                q.0
            }
        }
    };
}

quantity!(
    /// Electric potential in volts.
    Volt,
    "V"
);
quantity!(
    /// Electric current in amperes.
    Ampere,
    "A"
);
quantity!(
    /// Resistance in ohms.
    Ohm,
    "Ω"
);
quantity!(
    /// Capacitance in farads.
    Farad,
    "F"
);
quantity!(
    /// Inductance in henries.
    Henry,
    "H"
);
quantity!(
    /// Frequency in hertz.
    Hertz,
    "Hz"
);
quantity!(
    /// Time in seconds.
    Seconds,
    "s"
);
quantity!(
    /// Power in watts.
    Watt,
    "W"
);
quantity!(
    /// Electric charge in coulombs.
    Coulomb,
    "C"
);
quantity!(
    /// Energy in joules.
    Joule,
    "J"
);

// ---- Cross-quantity physics ------------------------------------------------

/// Ohm's law: `V = I · R`.
impl Mul<Ohm> for Ampere {
    type Output = Volt;
    #[inline]
    fn mul(self, rhs: Ohm) -> Volt {
        Volt::new(self.value() * rhs.value())
    }
}

/// Ohm's law: `V = R · I`.
impl Mul<Ampere> for Ohm {
    type Output = Volt;
    #[inline]
    fn mul(self, rhs: Ampere) -> Volt {
        Volt::new(self.value() * rhs.value())
    }
}

/// Ohm's law: `I = V / R`.
impl Div<Ohm> for Volt {
    type Output = Ampere;
    #[inline]
    fn div(self, rhs: Ohm) -> Ampere {
        Ampere::new(self.value() / rhs.value())
    }
}

/// Ohm's law: `R = V / I`.
impl Div<Ampere> for Volt {
    type Output = Ohm;
    #[inline]
    fn div(self, rhs: Ampere) -> Ohm {
        Ohm::new(self.value() / rhs.value())
    }
}

/// Electrical power: `P = V · I`.
impl Mul<Ampere> for Volt {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: Ampere) -> Watt {
        Watt::new(self.value() * rhs.value())
    }
}

/// Electrical power: `P = I · V`.
impl Mul<Volt> for Ampere {
    type Output = Watt;
    #[inline]
    fn mul(self, rhs: Volt) -> Watt {
        Watt::new(self.value() * rhs.value())
    }
}

/// Capacitor charge: `Q = C · V`.
impl Mul<Volt> for Farad {
    type Output = Coulomb;
    #[inline]
    fn mul(self, rhs: Volt) -> Coulomb {
        Coulomb::new(self.value() * rhs.value())
    }
}

/// Charge delivered by a constant current: `Q = I · t`.
impl Mul<Seconds> for Ampere {
    type Output = Coulomb;
    #[inline]
    fn mul(self, rhs: Seconds) -> Coulomb {
        Coulomb::new(self.value() * rhs.value())
    }
}

/// Capacitor voltage from charge: `V = Q / C`.
impl Div<Farad> for Coulomb {
    type Output = Volt;
    #[inline]
    fn div(self, rhs: Farad) -> Volt {
        Volt::new(self.value() / rhs.value())
    }
}

/// Energy delivered over time: `E = P · t`.
impl Mul<Seconds> for Watt {
    type Output = Joule;
    #[inline]
    fn mul(self, rhs: Seconds) -> Joule {
        Joule::new(self.value() * rhs.value())
    }
}

/// Average power from energy over time: `P = E / t`.
impl Div<Seconds> for Joule {
    type Output = Watt;
    #[inline]
    fn div(self, rhs: Seconds) -> Watt {
        Watt::new(self.value() / rhs.value())
    }
}

impl Hertz {
    /// Period of one cycle: `T = 1 / f`.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero frequency yields an infinite period, which is
    /// the mathematically consistent answer.
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds::new(1.0 / self.value())
    }
}

impl Seconds {
    /// Frequency whose period is this duration: `f = 1 / T`.
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz::new(1.0 / self.value())
    }
}

impl Henry {
    /// Magnitude of the inductive reactance `|Z_L| = 2πfL` at frequency `f`.
    #[inline]
    pub fn reactance_at(self, f: Hertz) -> Ohm {
        Ohm::new(2.0 * std::f64::consts::PI * f.value() * self.value())
    }
}

impl Farad {
    /// Magnitude of the capacitive reactance `|Z_C| = 1/(2πfC)` at `f`.
    #[inline]
    pub fn reactance_at(self, f: Hertz) -> Ohm {
        Ohm::new(1.0 / (2.0 * std::f64::consts::PI * f.value() * self.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_round_trip() {
        let v = Volt::new(5.0);
        let r = Ohm::new(800.0);
        let i = v / r;
        assert!((i.value() - 0.00625).abs() < 1e-15);
        let back = i * r;
        assert!((back.value() - 5.0).abs() < 1e-12);
        assert!(((v / i).value() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn power_is_volt_times_ampere_both_orders() {
        let p1 = Volt::new(5.0) * Ampere::new(0.012);
        let p2 = Ampere::new(0.012) * Volt::new(5.0);
        assert_eq!(p1, p2);
        assert!((p1.value() - 0.06).abs() < 1e-15);
    }

    #[test]
    fn capacitor_charge_and_voltage() {
        // The paper's 10 pF oscillator capacitor charged to 2.5 V.
        let c = Farad::new(10e-12);
        let q = c * Volt::new(2.5);
        assert!((q.value() - 25e-12).abs() < 1e-20);
        let v = q / c;
        assert!((v.value() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn period_frequency_inverse() {
        let f = Hertz::new(8_000.0);
        let t = f.period();
        assert!((t.value() - 125e-6).abs() < 1e-12);
        assert!((t.frequency().value() - 8_000.0).abs() < 1e-6);
    }

    #[test]
    fn counter_clock_period() {
        // The paper's 4.194304 MHz counter clock: period ≈ 238.42 ns.
        let t = Hertz::new(4_194_304.0).period();
        assert!((t.value() - 2.384185791015625e-7).abs() < 1e-20);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Volt::new(1.5);
        let b = Volt::new(0.5);
        assert_eq!(a + b, Volt::new(2.0));
        assert_eq!(a - b, Volt::new(1.0));
        assert_eq!(-a, Volt::new(-1.5));
        assert_eq!(a * 2.0, Volt::new(3.0));
        assert_eq!(2.0 * a, Volt::new(3.0));
        assert_eq!(a / 3.0, Volt::new(0.5));
        assert!((a / b - 3.0).abs() < 1e-15);
    }

    #[test]
    fn assign_ops() {
        let mut v = Volt::new(1.0);
        v += Volt::new(2.0);
        assert_eq!(v, Volt::new(3.0));
        v -= Volt::new(1.0);
        assert_eq!(v, Volt::new(2.0));
        v *= 2.0;
        assert_eq!(v, Volt::new(4.0));
        v /= 4.0;
        assert_eq!(v, Volt::new(1.0));
    }

    #[test]
    fn min_max_clamp_abs_signum() {
        let a = Ampere::new(-0.012);
        assert_eq!(a.abs(), Ampere::new(0.012));
        assert_eq!(a.signum(), -1.0);
        assert_eq!(Ampere::ZERO.signum(), 0.0);
        assert_eq!(a.max(Ampere::ZERO), Ampere::ZERO);
        assert_eq!(a.min(Ampere::ZERO), a);
        assert_eq!(
            Ampere::new(5.0).clamp(Ampere::ZERO, Ampere::new(1.0)),
            Ampere::new(1.0)
        );
    }

    #[test]
    fn sum_of_quantities() {
        let total: Watt = (1..=4).map(|k| Watt::new(k as f64)).sum();
        assert_eq!(total, Watt::new(10.0));
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(Volt::new(5.0).to_string(), "5 V");
        assert_eq!(Hertz::new(8000.0).to_string(), "8000 Hz");
        assert_eq!(Ohm::new(77.0).to_string(), "77 Ω");
    }

    #[test]
    fn reactance_of_pickup_coil() {
        // A 1 mH coil at 8 kHz: |Z| = 2π·8000·1e-3 ≈ 50.27 Ω.
        let z = Henry::new(1e-3).reactance_at(Hertz::new(8_000.0));
        assert!((z.value() - 50.265_482).abs() < 1e-3);
        // 400 pF at 8 kHz is ≈ 49.7 kΩ.
        let zc = Farad::new(400e-12).reactance_at(Hertz::new(8_000.0));
        assert!((zc.value() - 49_735.92).abs() < 1.0);
    }

    #[test]
    fn energy_power_time() {
        let e = Watt::new(0.06) * Seconds::new(10.0);
        assert!((e.value() - 0.6).abs() < 1e-15);
        let p = e / Seconds::new(10.0);
        assert!((p.value() - 0.06).abs() < 1e-15);
    }

    #[test]
    fn zero_constant_and_default_agree() {
        assert_eq!(Volt::ZERO, Volt::default());
        assert_eq!(Volt::ZERO.value(), 0.0);
    }

    #[test]
    fn finiteness() {
        assert!(Volt::new(1.0).is_finite());
        assert!(!Volt::new(f64::NAN).is_finite());
        assert!(!(Hertz::new(0.0).period()).is_finite());
    }
}
