//! Engineering-notation formatting.
//!
//! Reports throughout the workspace quote component values the way a
//! datasheet would: `12.5 MΩ`, `10 pF`, `4.194304 MHz`. [`eng`] formats
//! any value with an SI prefix chosen so the mantissa falls in
//! `[1, 1000)`, with a configurable number of significant digits.

/// SI prefixes from 10⁻¹⁵ to 10¹⁵, and their exponents.
const PREFIXES: [(i32, &str); 11] = [
    (-15, "f"),
    (-12, "p"),
    (-9, "n"),
    (-6, "µ"),
    (-3, "m"),
    (0, ""),
    (3, "k"),
    (6, "M"),
    (9, "G"),
    (12, "T"),
    (15, "P"),
];

/// Formats `value` with an engineering prefix and `sig_digits`
/// significant digits, followed by `unit`.
///
/// Values outside the prefix table fall back to scientific notation.
/// Zero, NaN and infinities format plainly.
///
/// # Examples
///
/// ```
/// use fluxcomp_units::eng::eng;
///
/// assert_eq!(eng(12.5e6, "Ω", 3), "12.5 MΩ");
/// assert_eq!(eng(10e-12, "F", 3), "10.0 pF");
/// assert_eq!(eng(4_194_304.0, "Hz", 7), "4.194304 MHz");
/// assert_eq!(eng(0.0, "V", 3), "0 V");
/// ```
pub fn eng(value: f64, unit: &str, sig_digits: u32) -> String {
    if value == 0.0 {
        return format!("0 {unit}");
    }
    if !value.is_finite() {
        return format!("{value} {unit}");
    }
    let magnitude = value.abs();
    let exponent = magnitude.log10().floor() as i32;
    let eng_exp = (exponent.div_euclid(3)) * 3;
    let prefix = PREFIXES.iter().find(|&&(e, _)| e == eng_exp);
    match prefix {
        Some(&(e, p)) => {
            let mantissa = value / 10f64.powi(e);
            // Digits after the point: sig_digits minus integer digits.
            let int_digits = if mantissa.abs() >= 100.0 {
                3
            } else if mantissa.abs() >= 10.0 {
                2
            } else {
                1
            };
            let decimals = (sig_digits as i32 - int_digits).max(0) as usize;
            format!("{mantissa:.decimals$} {p}{unit}")
        }
        None => format!("{value:e} {unit}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_component_values() {
        assert_eq!(eng(12.5e6, "Ω", 3), "12.5 MΩ");
        assert_eq!(eng(10e-12, "F", 3), "10.0 pF");
        assert_eq!(eng(400e-12, "F", 3), "400 pF");
        assert_eq!(eng(12e-3, "A", 2), "12 mA");
        assert_eq!(eng(8_000.0, "Hz", 2), "8.0 kHz");
        assert_eq!(eng(4_194_304.0, "Hz", 7), "4.194304 MHz");
        assert_eq!(eng(77.0, "Ω", 2), "77 Ω");
    }

    #[test]
    fn negative_values() {
        assert_eq!(eng(-6e-3, "A", 2), "-6.0 mA");
    }

    #[test]
    fn boundaries_pick_the_right_prefix() {
        assert_eq!(eng(999.0, "V", 3), "999 V");
        assert_eq!(eng(1_000.0, "V", 3), "1.00 kV");
        assert_eq!(eng(0.999e-6, "F", 3), "999 nF");
        assert_eq!(eng(1e-6, "F", 3), "1.00 µF");
    }

    #[test]
    fn degenerate_values() {
        assert_eq!(eng(0.0, "V", 3), "0 V");
        assert_eq!(eng(f64::INFINITY, "V", 3), "inf V");
        assert!(eng(f64::NAN, "V", 3).contains("NaN"));
    }

    #[test]
    fn out_of_table_falls_back_to_scientific() {
        let s = eng(1e20, "Hz", 3);
        assert!(s.contains('e'), "{s}");
    }

    #[test]
    fn significant_digits_respected() {
        assert_eq!(eng(1.23456e3, "V", 5), "1.2346 kV");
        assert_eq!(eng(123.456e3, "V", 4), "123.5 kV");
        assert_eq!(eng(123.456e3, "V", 2), "123 kV"); // never below int digits
    }
}
