//! # fluxcomp-units
//!
//! Strongly-typed physical quantities, angle types and fixed-point numbers
//! shared by every crate in the *fluxcomp* workspace.
//!
//! The 1997 integrated-compass paper mixes three numeric worlds:
//!
//! * **Analogue circuit quantities** — volts, amperes, ohms, farads, hertz,
//!   seconds ([`si`]);
//! * **Magnetic quantities** — tesla, ampere-per-metre and the CGS oersted
//!   used by the sensor literature ([`magnetics`]);
//! * **Digital fixed-point arithmetic** — the CORDIC datapath of Fig. 8
//!   works on integers with a 128× prescale ([`fixed`]).
//!
//! Keeping these distinct at the type level prevents the classic
//! mixed-signal modelling bugs (feeding amperes where the model expects
//! ampere-per-metre, or degrees where radians are required).
//!
//! ## Example
//!
//! ```
//! use fluxcomp_units::si::{Volt, Ohm};
//! use fluxcomp_units::angle::Degrees;
//!
//! let v = Volt::new(5.0);
//! let r = Ohm::new(800.0);
//! let i = v / r; // Ampere
//! assert!((i.value() - 6.25e-3).abs() < 1e-12);
//!
//! let heading = Degrees::new(450.0).normalized();
//! assert_eq!(heading, Degrees::new(90.0));
//! ```

pub mod angle;
pub mod eng;
pub mod fixed;
pub mod magnetics;
pub mod si;

pub use angle::{Degrees, Radians};
pub use eng::eng;
pub use fixed::Q;
pub use magnetics::{AmperePerMeter, Oersted, Tesla, MU_0};
pub use si::{Ampere, Farad, Henry, Hertz, Ohm, Seconds, Volt, Watt};
