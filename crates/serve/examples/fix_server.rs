//! Runs a compass fix server on a TCP port.
//!
//! ```text
//! cargo run --release -p fluxcomp-serve --example fix_server [ADDR]
//! ```
//!
//! `ADDR` defaults to `127.0.0.1:0` (ephemeral port). The first stdout
//! line is exactly the bound address, so scripts can capture it:
//!
//! ```text
//! addr=$(cargo run ... --example fix_server & head -n1)
//! ```
//!
//! Configuration comes from the environment (`FLUXCOMP_SERVE_WORKERS`,
//! `FLUXCOMP_SERVE_QUEUE`, `FLUXCOMP_SERVE_BATCH`, `FLUXCOMP_SERVE_CACHE`,
//! `FLUXCOMP_SERVE_CACHE_SHARDS`, and `FLUXCOMP_THREADS` for the auto
//! worker count). Fault injection and degraded mode:
//! `FLUXCOMP_FAULT_PLAN` (e.g. `seed=7;open_pickup@x:0.2`) injects
//! seeded sensor faults into every computed fix,
//! `FLUXCOMP_SERVE_QUARANTINE_AFTER` / `..._QUARANTINE_BACKOFF_MS` tune
//! worker quarantine, and `FLUXCOMP_SERVE_WORKER_FAULT="W:K"` forces a
//! stuck comparator on worker `W`'s first `K` fixes (quarantine smoke
//! tests). `FLUXCOMP_SERVE_RUN_MS` bounds the lifetime: after
//! that many milliseconds the server shuts down gracefully and the
//! process exits 0 — the CI smoke test uses this. Unset, the server
//! runs until killed. Set `FLUXCOMP_OBS=text` (or `json`) to get the
//! `serve.*` counter/histogram profile on shutdown.

use fluxcomp_compass::{CompassConfig, CompassDesign};
use fluxcomp_serve::protocol::Status;
use fluxcomp_serve::{FixServer, ServeConfig};
use std::io::Write;
use std::time::Duration;

fn main() {
    let _obs = fluxcomp_obs::init_from_env();
    let design = match CompassDesign::new(CompassConfig::paper_design()) {
        Ok(design) => design,
        Err(error) => {
            // The wire status a remote client would have seen, plus the
            // typed cause for the operator.
            eprintln!(
                "fix_server: config rejected (wire status: {}): {error}",
                Status::for_build_error(&error)
            );
            std::process::exit(2);
        }
    };
    let mut config = ServeConfig::from_env();
    if let Some(addr) = std::env::args().nth(1) {
        config.addr = addr;
    }
    if let Some(plan) = &config.fault_plan {
        eprintln!(
            "fix_server: fault plan active (seed {:#x}, {} spec(s))",
            plan.seed(),
            plan.specs().len()
        );
    }
    if let Some(wf) = config.worker_fault {
        eprintln!(
            "fix_server: forced fault on worker {} for its first {} fixes",
            wf.worker, wf.fixes
        );
    }
    let mut server = match FixServer::start(design, config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("fix_server: bind failed: {error}");
            std::process::exit(1);
        }
    };
    println!("{}", server.local_addr());
    std::io::stdout().flush().expect("flush bound address");
    eprintln!("fix_server: serving fixes on {}", server.local_addr());

    let run_ms: Option<u64> = std::env::var("FLUXCOMP_SERVE_RUN_MS")
        .ok()
        .and_then(|v| v.parse().ok());
    match run_ms {
        Some(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            eprintln!("fix_server: run window elapsed, draining");
            server.shutdown();
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}
