//! Drives load against a running fix server and prints a latency
//! report.
//!
//! ```text
//! cargo run --release -p fluxcomp-serve --example loadgen -- ADDR \
//!     [--requests N] [--rate HZ] [--connections C] [--deadline-ms MS] \
//!     [--unique U] [--no-cache] [--field-vector] \
//!     [--max-retries R] [--retry-budget B] [--max-invalid-pct P]
//! ```
//!
//! `--max-retries`/`--retry-budget` enable deterministic jittered
//! retry of `Overloaded` responses (per-request cap, run-wide budget).
//! `--max-invalid-pct P` fails the run when more than `P` percent of
//! completed responses were `Unmeasurable` (invalid fixes) — the CI
//! fault smoke test asserts a degraded server still serves ≥ 99%
//! non-invalid fixes.
//!
//! Exits nonzero when no request completed or any protocol error (a
//! malformed or unmatched response, a dropped request) occurred — the
//! CI smoke test relies on that.

use fluxcomp_serve::loadgen;
use fluxcomp_serve::LoadGenConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen ADDR [--requests N] [--rate HZ] [--connections C] \
         [--deadline-ms MS] [--unique U] [--no-cache] [--field-vector] \
         [--max-retries R] [--retry-budget B] [--retry-backoff-ms MS] \
         [--max-invalid-pct P]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else { usage() };
    let mut config = LoadGenConfig {
        addr,
        ..LoadGenConfig::default()
    };
    let mut max_invalid_pct: Option<f64> = None;
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("loadgen: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--requests" => {
                config.requests = value("--requests").parse().unwrap_or_else(|_| usage())
            }
            "--rate" => config.rate_hz = value("--rate").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                config.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                config.deadline_ms = value("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--unique" => {
                config.unique_fixes = value("--unique").parse().unwrap_or_else(|_| usage())
            }
            "--no-cache" => config.no_cache = true,
            "--field-vector" => config.field_vector = true,
            "--max-retries" => {
                config.max_retries = value("--max-retries").parse().unwrap_or_else(|_| usage())
            }
            "--retry-budget" => {
                config.retry_budget = value("--retry-budget").parse().unwrap_or_else(|_| usage())
            }
            "--retry-backoff-ms" => {
                config.retry_backoff = Duration::from_millis(
                    value("--retry-backoff-ms")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--max-invalid-pct" => {
                max_invalid_pct = Some(
                    value("--max-invalid-pct")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            _ => usage(),
        }
    }

    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("loadgen: connect to {} failed: {error}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "sent {} | completed {} | ok {} (cache hits {}) | overloaded {} | \
         deadline-exceeded {} | shutting-down {} | protocol errors {} | lost {}",
        report.sent,
        report.completed,
        report.ok,
        report.cache_hits,
        report.overloaded,
        report.deadline_exceeded,
        report.shutting_down,
        report.protocol_errors,
        report.lost,
    );
    println!(
        "quality: good {} | degraded {} | unmeasurable {} | retries {}",
        report.quality_good, report.quality_degraded, report.unmeasurable, report.retries,
    );
    println!(
        "elapsed {:.3} s | {:.0} fixes/s | latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.elapsed.as_secs_f64(),
        report.fixes_per_s,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
    );
    if report.completed == 0 || report.protocol_errors > 0 || report.lost > 0 {
        eprintln!("loadgen: FAILED (no completions, protocol errors, or lost requests)");
        std::process::exit(1);
    }
    if let Some(pct) = max_invalid_pct {
        let invalid_pct = 100.0 * report.unmeasurable as f64 / report.completed as f64;
        if invalid_pct > pct {
            eprintln!(
                "loadgen: FAILED ({invalid_pct:.2}% unmeasurable fixes exceeds the \
                 {pct:.2}% budget)"
            );
            std::process::exit(1);
        }
    }
}
