//! Drives load against a running fix server and prints a latency
//! report.
//!
//! ```text
//! cargo run --release -p fluxcomp-serve --example loadgen -- ADDR \
//!     [--requests N] [--rate HZ] [--connections C] [--deadline-ms MS] \
//!     [--unique U] [--no-cache] [--field-vector]
//! ```
//!
//! Exits nonzero when no request completed or any protocol error (a
//! malformed or unmatched response, a dropped request) occurred — the
//! CI smoke test relies on that.

use fluxcomp_serve::loadgen;
use fluxcomp_serve::LoadGenConfig;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen ADDR [--requests N] [--rate HZ] [--connections C] \
         [--deadline-ms MS] [--unique U] [--no-cache] [--field-vector]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(addr) = args.next() else { usage() };
    let mut config = LoadGenConfig {
        addr,
        ..LoadGenConfig::default()
    };
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("loadgen: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--requests" => {
                config.requests = value("--requests").parse().unwrap_or_else(|_| usage())
            }
            "--rate" => config.rate_hz = value("--rate").parse().unwrap_or_else(|_| usage()),
            "--connections" => {
                config.connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--deadline-ms" => {
                config.deadline_ms = value("--deadline-ms").parse().unwrap_or_else(|_| usage())
            }
            "--unique" => {
                config.unique_fixes = value("--unique").parse().unwrap_or_else(|_| usage())
            }
            "--no-cache" => config.no_cache = true,
            "--field-vector" => config.field_vector = true,
            _ => usage(),
        }
    }

    let report = match loadgen::run(&config) {
        Ok(report) => report,
        Err(error) => {
            eprintln!("loadgen: connect to {} failed: {error}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "sent {} | completed {} | ok {} (cache hits {}) | overloaded {} | \
         deadline-exceeded {} | shutting-down {} | protocol errors {} | lost {}",
        report.sent,
        report.completed,
        report.ok,
        report.cache_hits,
        report.overloaded,
        report.deadline_exceeded,
        report.shutting_down,
        report.protocol_errors,
        report.lost,
    );
    println!(
        "elapsed {:.3} s | {:.0} fixes/s | latency p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.elapsed.as_secs_f64(),
        report.fixes_per_s,
        report.p50_ms,
        report.p95_ms,
        report.p99_ms,
    );
    if report.completed == 0 || report.protocol_errors > 0 || report.lost > 0 {
        eprintln!("loadgen: FAILED (no completions, protocol errors, or lost requests)");
        std::process::exit(1);
    }
}
