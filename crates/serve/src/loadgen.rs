//! The open-loop load generator.
//!
//! Open-loop means arrivals are scheduled on a wall clock — request `k`
//! is sent at `start + k / rate` regardless of whether earlier
//! responses have come back — so a slow server faces a growing backlog
//! exactly like production traffic, instead of the coordinated-omission
//! trap of closed-loop "send, wait, send" clients whose measured
//! latency politely stops rising the moment the server saturates.
//!
//! Each connection runs a sender (paced writes) and a receiver thread
//! (tallies responses, matches request ids to send timestamps for
//! latency). Percentiles come from [`SortedSamples`] over the `Ok`
//! response latencies.
//!
//! ## Retries
//!
//! `Overloaded` responses can be retried with deterministic jittered
//! exponential backoff: attempt `a` of request `id` waits
//! `retry_backoff · 2^a · (0.5 + unit_f64(derive_seed(id, a)))`, so the
//! retry schedule is a pure function of the request and reproducible
//! run to run. Retries draw from a run-wide `retry_budget` shared by
//! all connections — a saturated server sees at most `budget` extra
//! requests, never a retry storm.

use crate::protocol::{
    read_frame, write_request, FieldSpec, FixRequest, FixResponse, ReadFrame, Status,
};
use fluxcomp_compass::FixQuality;
use fluxcomp_exec::{derive_seed, unit_f64, SortedSamples};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Server address, e.g. `"127.0.0.1:9000"`.
    pub addr: String,
    /// Concurrent connections; requests are split round-robin.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Open-loop arrival rate in fixes/s across all connections;
    /// `0.0` means closed-throttle (send as fast as the sockets take).
    pub rate_hz: f64,
    /// Deadline stamped on every request (milliseconds; 0 = none).
    pub deadline_ms: u32,
    /// Set the no-cache flag on every request.
    pub no_cache: bool,
    /// Send explicit field vectors instead of heading truths.
    pub field_vector: bool,
    /// Distinct `(field, seed)` combinations cycled through; `1` sends
    /// the identical fix every time (maximally cache-friendly), large
    /// values defeat the cache.
    pub unique_fixes: usize,
    /// Base noise seed; per-fix seeds derive from it.
    pub base_seed: u64,
    /// How long receivers keep draining after the last send.
    pub drain_timeout: Duration,
    /// Per-request cap on `Overloaded` retries; `0` disables retrying.
    pub max_retries: u32,
    /// Run-wide retry budget shared across all connections; each retry
    /// send consumes one unit. `0` disables retrying.
    pub retry_budget: u64,
    /// Base backoff before the first retry (doubles per attempt, with
    /// ×[0.5, 1.5) deterministic jitter).
    pub retry_backoff: Duration,
}

impl Default for LoadGenConfig {
    fn default() -> Self {
        Self {
            addr: String::new(),
            connections: 4,
            requests: 1000,
            rate_hz: 0.0,
            deadline_ms: 0,
            no_cache: false,
            field_vector: false,
            unique_fixes: 64,
            base_seed: 0xf1c5,
            drain_timeout: Duration::from_secs(10),
            max_retries: 0,
            retry_budget: 0,
            retry_backoff: Duration::from_millis(2),
        }
    }
}

/// Aggregated results of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests written to the sockets (retries included).
    pub sent: u64,
    /// Responses received (any status).
    pub completed: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `Ok` responses served from the fix cache.
    pub cache_hits: u64,
    /// `Ok` responses flagged [`FixQuality::Good`].
    pub quality_good: u64,
    /// `Ok` responses flagged [`FixQuality::Degraded`].
    pub quality_degraded: u64,
    /// `Unmeasurable` responses (the server held a stale heading;
    /// quality is `Invalid`).
    pub unmeasurable: u64,
    /// `Overloaded` responses.
    pub overloaded: u64,
    /// `DeadlineExceeded` responses.
    pub deadline_exceeded: u64,
    /// `ShuttingDown` responses.
    pub shutting_down: u64,
    /// Retry sends performed after `Overloaded` responses.
    pub retries: u64,
    /// Protocol-level failures: `BadRequest`/`InvalidConfig` responses,
    /// undecodable frames, responses to unknown ids, and socket errors.
    pub protocol_errors: u64,
    /// Requests that never got a response within the drain timeout.
    pub lost: u64,
    /// Wall-clock duration from first send to last response.
    pub elapsed: Duration,
    /// `Ok` responses per second of elapsed time.
    pub fixes_per_s: f64,
    /// Median `Ok` latency, milliseconds (0 when nothing succeeded).
    pub p50_ms: f64,
    /// 95th-percentile `Ok` latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile `Ok` latency, milliseconds.
    pub p99_ms: f64,
}

#[derive(Default)]
struct ConnTally {
    sent: u64,
    completed: u64,
    ok: u64,
    cache_hits: u64,
    quality_good: u64,
    quality_degraded: u64,
    unmeasurable: u64,
    overloaded: u64,
    deadline_exceeded: u64,
    shutting_down: u64,
    retries: u64,
    protocol_errors: u64,
    latencies_ms: Vec<f64>,
}

/// The fix request for global index `k` under `config`'s mix.
fn request_for(config: &LoadGenConfig, k: usize) -> FixRequest {
    let unique = config.unique_fixes.max(1);
    let slot = k % unique;
    let heading = 360.0 * slot as f64 / unique as f64;
    let field = if config.field_vector {
        // A 12 A/m horizontal field rotated to the slot's heading —
        // the same magnitude class the paper's 15 µT environment
        // induces, swept around the circle.
        let rad = heading.to_radians();
        FieldSpec::FieldVector {
            hx: 12.0 * rad.cos(),
            hy: 12.0 * rad.sin(),
        }
    } else {
        FieldSpec::HeadingTruth(heading)
    };
    FixRequest {
        id: k as u64,
        seed: derive_seed(config.base_seed, slot as u64),
        deadline_ms: config.deadline_ms,
        no_cache: config.no_cache,
        field,
    }
}

/// Runs the configured load against the server and reports.
///
/// # Errors
///
/// Only connection establishment errors are returned; socket failures
/// mid-run are tallied as `protocol_errors` in the report.
pub fn run(config: &LoadGenConfig) -> io::Result<LoadReport> {
    let connections = config.connections.max(1);
    let start = Instant::now();
    let budget = Arc::new(AtomicU64::new(config.retry_budget));
    let mut handles = Vec::with_capacity(connections);
    for c in 0..connections {
        let stream = TcpStream::connect(&config.addr)?;
        let config = config.clone();
        let budget = Arc::clone(&budget);
        handles.push(thread::spawn(move || {
            connection_run(&config, c, stream, start, &budget)
        }));
    }
    let mut total = ConnTally::default();
    for handle in handles {
        let tally = handle.join().expect("loadgen connection thread panicked");
        total.sent += tally.sent;
        total.completed += tally.completed;
        total.ok += tally.ok;
        total.cache_hits += tally.cache_hits;
        total.quality_good += tally.quality_good;
        total.quality_degraded += tally.quality_degraded;
        total.unmeasurable += tally.unmeasurable;
        total.overloaded += tally.overloaded;
        total.deadline_exceeded += tally.deadline_exceeded;
        total.shutting_down += tally.shutting_down;
        total.retries += tally.retries;
        total.protocol_errors += tally.protocol_errors;
        total.latencies_ms.extend_from_slice(&tally.latencies_ms);
    }
    let elapsed = start.elapsed();
    let (p50, p95, p99) = if total.latencies_ms.is_empty() {
        (0.0, 0.0, 0.0)
    } else {
        let sorted = SortedSamples::new(&total.latencies_ms);
        (
            sorted.quantile(0.50),
            sorted.quantile(0.95),
            sorted.quantile(0.99),
        )
    };
    Ok(LoadReport {
        sent: total.sent,
        completed: total.completed,
        ok: total.ok,
        cache_hits: total.cache_hits,
        quality_good: total.quality_good,
        quality_degraded: total.quality_degraded,
        unmeasurable: total.unmeasurable,
        overloaded: total.overloaded,
        deadline_exceeded: total.deadline_exceeded,
        shutting_down: total.shutting_down,
        retries: total.retries,
        protocol_errors: total.protocol_errors,
        lost: total.sent.saturating_sub(total.completed),
        elapsed,
        fixes_per_s: if elapsed.as_secs_f64() > 0.0 {
            total.ok as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_ms: p50,
        p95_ms: p95,
        p99_ms: p99,
    })
}

/// The deterministic jittered backoff before retry attempt `attempt`
/// (1-based) of request `id`.
fn retry_delay(config: &LoadGenConfig, id: u64, attempt: u32) -> Duration {
    let jitter = 0.5 + unit_f64(derive_seed(id, u64::from(attempt)));
    let scale = f64::from(1u32 << attempt.min(16)) / 2.0;
    Duration::from_secs_f64(config.retry_backoff.as_secs_f64() * scale * jitter)
}

fn connection_run(
    config: &LoadGenConfig,
    conn_index: usize,
    stream: TcpStream,
    start: Instant,
    budget: &Arc<AtomicU64>,
) -> ConnTally {
    let connections = config.connections.max(1);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let pending: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let sent = Arc::new(AtomicUsize::new(0));
    let sender_done = Arc::new(AtomicBool::new(false));
    // Retries are written by the receiver, so all writes to the socket
    // (paced sends and retries) go through one shared lock.
    let writer = Arc::new(Mutex::new(
        stream.try_clone().expect("clone loadgen socket"),
    ));

    let receiver = {
        let config = config.clone();
        let pending = Arc::clone(&pending);
        let sent = Arc::clone(&sent);
        let sender_done = Arc::clone(&sender_done);
        let writer = Arc::clone(&writer);
        let budget = Arc::clone(budget);
        thread::spawn(move || {
            receive_loop(
                &config,
                stream,
                &pending,
                &sent,
                &sender_done,
                &writer,
                &budget,
            )
        })
    };

    let mut send_errors = 0u64;
    let mut k = conn_index;
    let mut j = 0usize;
    while k < config.requests {
        if config.rate_hz > 0.0 {
            let due = start + Duration::from_secs_f64(k as f64 / config.rate_hz);
            let now = Instant::now();
            if due > now {
                thread::sleep(due - now);
            }
        }
        let request = request_for(config, k);
        // Record the pending send *before* the write so a fast response
        // can never race the bookkeeping.
        pending.lock().unwrap().insert(request.id, Instant::now());
        if write_request(&mut *writer.lock().unwrap(), &request).is_err() {
            pending.lock().unwrap().remove(&request.id);
            send_errors += 1;
            break;
        }
        sent.fetch_add(1, Ordering::SeqCst);
        j += 1;
        k = conn_index + j * connections;
    }
    sender_done.store(true, Ordering::SeqCst);
    let mut tally = receiver.join().expect("loadgen receiver thread panicked");
    tally.sent = sent.load(Ordering::SeqCst) as u64;
    tally.protocol_errors += send_errors;
    tally
}

/// A retry scheduled for `due`; `attempt` is how many times the request
/// has already been sent.
struct PendingRetry {
    due: Instant,
    id: u64,
    attempt: u32,
}

#[allow(clippy::too_many_arguments)]
fn receive_loop(
    config: &LoadGenConfig,
    mut stream: TcpStream,
    pending: &Mutex<HashMap<u64, Instant>>,
    sent: &AtomicUsize,
    sender_done: &AtomicBool,
    writer: &Mutex<TcpStream>,
    budget: &AtomicU64,
) -> ConnTally {
    let mut tally = ConnTally::default();
    let mut buf = Vec::new();
    let mut drain_start: Option<Instant> = None;
    // Attempts already made per request id (first send = attempt 1).
    let mut attempts: HashMap<u64, u32> = HashMap::new();
    let mut retries: Vec<PendingRetry> = Vec::new();
    loop {
        // Fire due retries before checking for completion so a
        // scheduled retry is never abandoned by an early exit.
        let now = Instant::now();
        let mut i = 0;
        while i < retries.len() {
            if retries[i].due <= now {
                let retry = retries.swap_remove(i);
                let request = request_for(config, retry.id as usize);
                pending.lock().unwrap().insert(request.id, Instant::now());
                if write_request(&mut *writer.lock().unwrap(), &request).is_err() {
                    pending.lock().unwrap().remove(&request.id);
                    tally.protocol_errors += 1;
                } else {
                    sent.fetch_add(1, Ordering::SeqCst);
                    tally.retries += 1;
                    attempts.insert(retry.id, retry.attempt + 1);
                }
            } else {
                i += 1;
            }
        }
        let done = sender_done.load(Ordering::SeqCst);
        if done && retries.is_empty() && tally.completed as usize >= sent.load(Ordering::SeqCst) {
            break;
        }
        if done && retries.is_empty() {
            let since = drain_start.get_or_insert_with(Instant::now);
            if since.elapsed() > config.drain_timeout {
                break;
            }
        }
        match read_frame(&mut stream, &mut buf) {
            Ok(ReadFrame::Frame(len)) => match FixResponse::decode_payload(&buf[..len]) {
                Ok(response) => {
                    tally.completed += 1;
                    drain_start = None;
                    let sent_at = pending.lock().unwrap().remove(&response.id);
                    match (response.status, sent_at) {
                        (Status::Ok, Some(at)) => {
                            tally.ok += 1;
                            if response.cache_hit {
                                tally.cache_hits += 1;
                            }
                            match response.quality {
                                FixQuality::Good => tally.quality_good += 1,
                                FixQuality::Degraded => tally.quality_degraded += 1,
                                FixQuality::Invalid => {}
                            }
                            tally.latencies_ms.push(at.elapsed().as_secs_f64() * 1e3);
                        }
                        (Status::Ok, None) => tally.protocol_errors += 1,
                        (Status::Unmeasurable, _) => tally.unmeasurable += 1,
                        (Status::Overloaded, _) => {
                            tally.overloaded += 1;
                            let attempt = *attempts.entry(response.id).or_insert(1);
                            if attempt <= config.max_retries
                                && budget
                                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                                        b.checked_sub(1)
                                    })
                                    .is_ok()
                            {
                                retries.push(PendingRetry {
                                    due: Instant::now() + retry_delay(config, response.id, attempt),
                                    id: response.id,
                                    attempt,
                                });
                            }
                        }
                        (Status::DeadlineExceeded, _) => tally.deadline_exceeded += 1,
                        (Status::ShuttingDown, _) => tally.shutting_down += 1,
                        (_, _) => tally.protocol_errors += 1,
                    }
                }
                Err(_) => {
                    tally.protocol_errors += 1;
                    break;
                }
            },
            Ok(ReadFrame::Eof) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                tally.protocol_errors += 1;
                break;
            }
        }
    }
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_mix_cycles_unique_fixes() {
        let config = LoadGenConfig {
            unique_fixes: 4,
            ..LoadGenConfig::default()
        };
        let a = request_for(&config, 1);
        let b = request_for(&config, 5);
        // Same slot → same field and seed, different id.
        assert_eq!(a.field, b.field);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.id, b.id);
        // Different slot → different fix.
        let c = request_for(&config, 2);
        assert_ne!(a.field, c.field);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn field_vector_mix_stays_on_the_12_am_circle() {
        let config = LoadGenConfig {
            field_vector: true,
            unique_fixes: 8,
            ..LoadGenConfig::default()
        };
        for k in 0..8 {
            match request_for(&config, k).field {
                FieldSpec::FieldVector { hx, hy } => {
                    assert!((hx.hypot(hy) - 12.0).abs() < 1e-9);
                }
                other => panic!("expected a field vector, got {other:?}"),
            }
        }
    }
}
