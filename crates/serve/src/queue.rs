//! A bounded MPMC queue with batch draining — the server's backpressure
//! point.
//!
//! Producers (connection readers) use the non-blocking [`BatchQueue::try_push`]:
//! a full queue is an immediate [`PushError::Full`], which the reader
//! turns into a typed `Overloaded` response instead of buffering
//! unbounded work. Consumers (fix workers) block in
//! [`BatchQueue::pop_batch`], which drains up to `max` items per wakeup
//! so a worker amortises its wakeup (and its scratch-state cache
//! warmth) across a batch under load, while still dispatching single
//! requests immediately when idle.
//!
//! [`BatchQueue::close`] wakes every consumer; `pop_batch` then keeps
//! returning whatever is left (draining) and signals completion by
//! returning `false` only once closed **and** empty — the graceful
//! shutdown contract: accepted work is finished, never dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — the caller should shed the item.
    Full,
    /// The queue is closed — the server is shutting down.
    Closed,
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded multi-producer multi-consumer batch queue.
#[derive(Debug)]
pub struct BatchQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// A queue holding at most `capacity` items (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues without blocking; a full or closed queue rejects the
    /// item immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until items are available (or the queue closes), then
    /// moves up to `max` of them into `out`. Returns `false` once the
    /// queue is closed *and* fully drained — the consumer's signal to
    /// exit. `out` is cleared first.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let max = max.max(1);
        let mut inner = self.inner.lock().unwrap();
        loop {
            if !inner.items.is_empty() {
                while out.len() < max {
                    match inner.items.pop_front() {
                        Some(item) => out.push(item),
                        None => break,
                    }
                }
                if !inner.items.is_empty() {
                    // Leftovers: wake a sibling consumer.
                    self.not_empty.notify_one();
                }
                return true;
            }
            if inner.closed {
                return false;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// consumers drain what remains and then see `false`.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn push_pop_preserves_fifo_order() {
        let q = BatchQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        assert!(q.pop_batch(3, &mut out));
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BatchQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full));
        let mut out = Vec::new();
        assert!(q.pop_batch(16, &mut out));
        assert_eq!(out, vec![1, 2]);
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed));
        let mut out = Vec::new();
        assert!(q.pop_batch(1, &mut out));
        assert_eq!(out, vec![1]);
        assert!(q.pop_batch(1, &mut out));
        assert_eq!(out, vec![2]);
        assert!(!q.pop_batch(1, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BatchQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut out = Vec::new();
                q.pop_batch(4, &mut out)
            })
        };
        thread::sleep(Duration::from_millis(50));
        q.close();
        assert!(!consumer.join().unwrap());
    }

    #[test]
    fn many_producers_one_consumer_sees_everything() {
        let q = Arc::new(BatchQueue::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        loop {
                            if q.try_push(p * 100 + i).is_ok() {
                                break;
                            }
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut seen = Vec::new();
        let mut out = Vec::new();
        while q.pop_batch(7, &mut out) {
            seen.extend_from_slice(&out);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..400).collect::<Vec<_>>());
    }
}
