//! The wire protocol: a small length-prefixed binary framing.
//!
//! Every frame on the wire is a little-endian `u32` payload length
//! followed by exactly that many payload bytes. Payloads are fixed
//! layouts (no varints, no optional fields) so encode/decode are a
//! handful of `to_le_bytes`/`from_le_bytes` calls into stack buffers —
//! the steady-state server writes responses without allocating.
//!
//! ## Request payload (`tag = 0x01`)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 1    | tag (`0x01`) |
//! | 1      | 1    | protocol version (`1` or `2`) |
//! | 2      | 2    | flags (`u16` LE): bit 0 = field-vector, bit 1 = no-cache |
//! | 4      | 8    | request id (`u64` LE, echoed in the response) |
//! | 12     | 8    | noise seed (`u64` LE) |
//! | 20     | 4    | deadline (`u32` LE, milliseconds; 0 = none) |
//! | 24     | 8/16 | heading truth (`f64` LE) **or** `h_x`,`h_y` (`f64` LE ×2) |
//!
//! Unknown flag bits (reserved for future versions) are rejected with a
//! typed [`ProtocolError::BadFlags`] — a v3 client talking to a v2
//! server gets a clean `BadRequest`, never a silently misread request.
//!
//! ## Response payload (`tag = 0x02`)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 1    | tag (`0x02`) |
//! | 1      | 1    | protocol version (echoes the request's) |
//! | 2      | 1    | status (`u8`, see [`Status`]) |
//! | 3      | 1    | flags: bit 0 = cache hit, bit 1 = V-I clipped, bits 2–3 = fix quality (v2+) |
//! | 4      | 8    | request id (`u64` LE) |
//! | 12     | 8    | heading (`f64` LE, degrees in `[0, 360)`) |
//! | 20     | 8    | X duty cycle (`f64` LE) |
//! | 28     | 8    | Y duty cycle (`f64` LE) |
//! | 36     | 8    | X counter output (`i64` LE) |
//! | 44     | 8    | Y counter output (`i64` LE) |
//!
//! Failure responses ([`Status::Overloaded`] and friends) carry zeros in
//! the measurement fields. [`Status::Unmeasurable`] (v2) is the one
//! exception: the fix ran but failed its health checks, and the heading
//! field carries the worker's held last-good heading (duties/counts
//! zero, quality [`FixQuality::Invalid`]).
//!
//! ## Version gating
//!
//! Version 2 added the fix-quality flag bits and `Unmeasurable`. A v1
//! request gets a v1 response: quality bits stay zero and decoders
//! infer `Good`/`Invalid` from the status alone. Status bytes are *not*
//! gated — a v1 client confronted with an `Unmeasurable` fix receives
//! the unknown status byte and fails with a typed
//! [`ProtocolError::BadStatus`] instead of trusting a held heading it
//! cannot know is held.

use fluxcomp_compass::{BuildError, FixQuality};
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

/// Newest protocol version spoken by this crate.
pub const WIRE_VERSION: u8 = 2;

/// Oldest protocol version still accepted.
pub const MIN_WIRE_VERSION: u8 = 1;

/// Request payload tag byte.
pub const REQUEST_TAG: u8 = 0x01;

/// Response payload tag byte.
pub const RESPONSE_TAG: u8 = 0x02;

/// Upper bound on an accepted frame payload, far above any legal frame —
/// a hostile or corrupt length prefix is rejected before any read of
/// that size is attempted.
pub const MAX_FRAME: usize = 1024;

/// Request flag: the payload carries an explicit `(h_x, h_y)` field
/// vector instead of a true heading.
pub const FLAG_FIELD_VECTOR: u16 = 1 << 0;

/// Request flag: bypass the server's fix cache (no lookup, no insert).
pub const FLAG_NO_CACHE: u16 = 1 << 1;

/// Response flag: the fix was served from the cache.
pub const RESP_FLAG_CACHE_HIT: u8 = 1 << 0;

/// Response flag: the V-I converter clipped on at least one axis.
pub const RESP_FLAG_CLIPPED: u8 = 1 << 1;

/// Bit offset of the fix-quality field in the response flags (v2+).
pub const RESP_QUALITY_SHIFT: u8 = 2;

/// Mask of the fix-quality field in the response flags (v2+):
/// `0` = Good, `1` = Degraded, `2` = Invalid.
pub const RESP_QUALITY_MASK: u8 = 0b11 << RESP_QUALITY_SHIFT;

/// Request flag bits this version understands; anything else is
/// [`ProtocolError::BadFlags`].
const REQUEST_FLAGS_KNOWN: u16 = FLAG_FIELD_VECTOR | FLAG_NO_CACHE;

const REQUEST_HEAD: usize = 24;

/// Encoded size of a heading-truth request payload.
pub const REQUEST_LEN_HEADING: usize = REQUEST_HEAD + 8;

/// Encoded size of a field-vector request payload.
pub const REQUEST_LEN_VECTOR: usize = REQUEST_HEAD + 16;

/// Encoded size of a response payload.
pub const RESPONSE_LEN: usize = 52;

/// What the client wants measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldSpec {
    /// A true platform heading in degrees; the server derives the axial
    /// fields from its configured magnetic environment.
    HeadingTruth(f64),
    /// Explicit axial fields in A/m, bypassing the earth-field model.
    FieldVector {
        /// X-axis external field (A/m).
        hx: f64,
        /// Y-axis external field (A/m).
        hy: f64,
    },
}

/// One fix request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixRequest {
    /// Client-chosen id echoed back in the response.
    pub id: u64,
    /// Noise seed for the measurement (same seed → bit-identical fix).
    pub seed: u64,
    /// Response deadline in milliseconds from arrival; 0 disables.
    pub deadline_ms: u32,
    /// Bypass the fix cache.
    pub no_cache: bool,
    /// What to measure.
    pub field: FieldSpec,
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
#[repr(u8)]
pub enum Status {
    /// The fix completed; measurement fields are valid.
    Ok = 0,
    /// The request queue was full; retry with backoff.
    Overloaded = 1,
    /// The request's deadline passed before the fix was computed.
    DeadlineExceeded = 2,
    /// The request frame was malformed.
    BadRequest = 3,
    /// The server is draining; no new requests are accepted.
    ShuttingDown = 4,
    /// The server's compass configuration was rejected.
    InvalidConfig = 5,
    /// The fix was computed but failed its health checks on both axes
    /// (v2): the heading field carries the worker's held last-good
    /// heading with zero confidence. Never cached, never `Ok`-flagged.
    Unmeasurable = 6,
}

impl Status {
    /// Decodes the wire byte.
    pub fn from_wire(byte: u8) -> Result<Self, ProtocolError> {
        Ok(match byte {
            0 => Status::Ok,
            1 => Status::Overloaded,
            2 => Status::DeadlineExceeded,
            3 => Status::BadRequest,
            4 => Status::ShuttingDown,
            5 => Status::InvalidConfig,
            6 => Status::Unmeasurable,
            other => return Err(ProtocolError::BadStatus { got: other }),
        })
    }

    /// The wire status a server should report when its compass
    /// configuration fails to build. Every [`BuildError`] maps to
    /// [`Status::InvalidConfig`]; the typed cause stays server-side.
    pub fn for_build_error(_error: &BuildError) -> Self {
        Status::InvalidConfig
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline-exceeded",
            Status::BadRequest => "bad-request",
            Status::ShuttingDown => "shutting-down",
            Status::InvalidConfig => "invalid-config",
            Status::Unmeasurable => "unmeasurable",
        };
        f.write_str(name)
    }
}

/// One fix response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixResponse {
    /// The request id this answers.
    pub id: u64,
    /// Outcome; measurement fields are zero unless [`Status::Ok`].
    pub status: Status,
    /// Served from the fix cache.
    pub cache_hit: bool,
    /// The V-I converter clipped on at least one axis.
    pub clipped: bool,
    /// Health verdict of the fix (v2 wire field; inferred from the
    /// status when decoding a v1 response).
    pub quality: FixQuality,
    /// Heading in degrees, `[0, 360)`.
    pub heading: f64,
    /// X-axis detector duty cycle.
    pub duty_x: f64,
    /// Y-axis detector duty cycle.
    pub duty_y: f64,
    /// X-axis up/down counter output.
    pub count_x: i64,
    /// Y-axis up/down counter output.
    pub count_y: i64,
}

impl FixResponse {
    /// A non-`Ok` response carrying only the status and echoed id.
    pub fn failure(id: u64, status: Status) -> Self {
        Self {
            id,
            status,
            cache_hit: false,
            clipped: false,
            quality: FixQuality::Invalid,
            heading: 0.0,
            duty_x: 0.0,
            duty_y: 0.0,
            count_x: 0,
            count_y: 0,
        }
    }
}

/// Encodes a quality as its two wire bits (shifted into place).
fn quality_bits(quality: FixQuality) -> u8 {
    let value: u8 = match quality {
        FixQuality::Good => 0,
        FixQuality::Degraded => 1,
        FixQuality::Invalid => 2,
    };
    value << RESP_QUALITY_SHIFT
}

/// Decodes the two quality bits of a v2 response flags byte.
fn quality_from_bits(flags: u8) -> Result<FixQuality, ProtocolError> {
    match (flags & RESP_QUALITY_MASK) >> RESP_QUALITY_SHIFT {
        0 => Ok(FixQuality::Good),
        1 => Ok(FixQuality::Degraded),
        2 => Ok(FixQuality::Invalid),
        _ => Err(ProtocolError::BadFlags {
            got: u16::from(flags),
        }),
    }
}

/// Decode/validation failures. Every variant closes the connection
/// after a [`Status::BadRequest`] response where one can be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// Payload shorter or longer than the fixed layout requires.
    BadLength {
        /// Bytes received.
        got: usize,
    },
    /// Unknown tag byte.
    BadTag {
        /// Byte received.
        got: u8,
    },
    /// Unsupported protocol version.
    BadVersion {
        /// Byte received.
        got: u8,
    },
    /// Unknown status byte in a response.
    BadStatus {
        /// Byte received.
        got: u8,
    },
    /// A request carried a non-finite heading or field component.
    NonFiniteField,
    /// Flag bits this version does not understand (reserved for future
    /// versions), or an invalid quality encoding.
    BadFlags {
        /// Flags received.
        got: u16,
    },
    /// The frame payload exceeds [`MAX_FRAME`] — rejected before any
    /// oversized write (whose `u32` length prefix would otherwise
    /// silently truncate and desync the stream) and before any
    /// oversized read.
    FrameTooLarge {
        /// Payload length seen.
        got: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadLength { got } => write!(f, "bad payload length {got}"),
            ProtocolError::BadTag { got } => write!(f, "bad frame tag {got:#04x}"),
            ProtocolError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            ProtocolError::BadStatus { got } => write!(f, "unknown status byte {got}"),
            ProtocolError::NonFiniteField => f.write_str("non-finite heading or field component"),
            ProtocolError::BadFlags { got } => write!(f, "unknown flag bits {got:#06x}"),
            ProtocolError::FrameTooLarge { got } => {
                write!(f, "frame length {got} exceeds maximum {MAX_FRAME}")
            }
        }
    }
}

impl Error for ProtocolError {}

impl FixRequest {
    /// Encodes the payload into `buf`, returning the payload length.
    /// `buf` must hold at least [`REQUEST_LEN_VECTOR`] bytes.
    pub fn encode_payload(&self, buf: &mut [u8]) -> usize {
        let mut flags: u16 = 0;
        if matches!(self.field, FieldSpec::FieldVector { .. }) {
            flags |= FLAG_FIELD_VECTOR;
        }
        if self.no_cache {
            flags |= FLAG_NO_CACHE;
        }
        buf[0] = REQUEST_TAG;
        buf[1] = WIRE_VERSION;
        buf[2..4].copy_from_slice(&flags.to_le_bytes());
        buf[4..12].copy_from_slice(&self.id.to_le_bytes());
        buf[12..20].copy_from_slice(&self.seed.to_le_bytes());
        buf[20..24].copy_from_slice(&self.deadline_ms.to_le_bytes());
        match self.field {
            FieldSpec::HeadingTruth(deg) => {
                buf[24..32].copy_from_slice(&deg.to_le_bytes());
                REQUEST_LEN_HEADING
            }
            FieldSpec::FieldVector { hx, hy } => {
                buf[24..32].copy_from_slice(&hx.to_le_bytes());
                buf[32..40].copy_from_slice(&hy.to_le_bytes());
                REQUEST_LEN_VECTOR
            }
        }
    }

    /// Decodes a request payload (without the length prefix).
    ///
    /// Non-finite heading/field components are rejected here so they can
    /// never reach the measurement core.
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtocolError> {
        Self::decode_versioned(payload).map(|(request, _)| request)
    }

    /// [`decode_payload`](Self::decode_payload), additionally returning
    /// the protocol version the client spoke — the server answers each
    /// request at the version it arrived in.
    pub fn decode_versioned(payload: &[u8]) -> Result<(Self, u8), ProtocolError> {
        if payload.len() < REQUEST_HEAD {
            return Err(ProtocolError::BadLength { got: payload.len() });
        }
        if payload[0] != REQUEST_TAG {
            return Err(ProtocolError::BadTag { got: payload[0] });
        }
        let version = payload[1];
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(ProtocolError::BadVersion { got: version });
        }
        let flags = u16::from_le_bytes(payload[2..4].try_into().unwrap());
        if flags & !REQUEST_FLAGS_KNOWN != 0 {
            return Err(ProtocolError::BadFlags { got: flags });
        }
        let id = u64::from_le_bytes(payload[4..12].try_into().unwrap());
        let seed = u64::from_le_bytes(payload[12..20].try_into().unwrap());
        let deadline_ms = u32::from_le_bytes(payload[20..24].try_into().unwrap());
        let field = if flags & FLAG_FIELD_VECTOR != 0 {
            if payload.len() != REQUEST_LEN_VECTOR {
                return Err(ProtocolError::BadLength { got: payload.len() });
            }
            FieldSpec::FieldVector {
                hx: f64::from_le_bytes(payload[24..32].try_into().unwrap()),
                hy: f64::from_le_bytes(payload[32..40].try_into().unwrap()),
            }
        } else {
            if payload.len() != REQUEST_LEN_HEADING {
                return Err(ProtocolError::BadLength { got: payload.len() });
            }
            FieldSpec::HeadingTruth(f64::from_le_bytes(payload[24..32].try_into().unwrap()))
        };
        let finite = match field {
            FieldSpec::HeadingTruth(deg) => deg.is_finite(),
            FieldSpec::FieldVector { hx, hy } => hx.is_finite() && hy.is_finite(),
        };
        if !finite {
            return Err(ProtocolError::NonFiniteField);
        }
        Ok((
            Self {
                id,
                seed,
                deadline_ms,
                no_cache: flags & FLAG_NO_CACHE != 0,
                field,
            },
            version,
        ))
    }
}

impl FixResponse {
    /// Encodes the payload at the newest version into `buf`, returning
    /// the payload length. `buf` must hold at least [`RESPONSE_LEN`]
    /// bytes.
    pub fn encode_payload(&self, buf: &mut [u8]) -> usize {
        self.encode_payload_versioned(WIRE_VERSION, buf)
    }

    /// Encodes the payload at `version` (the version the request
    /// arrived in). Version 1 zeroes the quality bits — v1 decoders
    /// treat the flags byte as two booleans and must not see stray
    /// bits.
    pub fn encode_payload_versioned(&self, version: u8, buf: &mut [u8]) -> usize {
        let mut flags: u8 = 0;
        if self.cache_hit {
            flags |= RESP_FLAG_CACHE_HIT;
        }
        if self.clipped {
            flags |= RESP_FLAG_CLIPPED;
        }
        if version >= 2 {
            flags |= quality_bits(self.quality);
        }
        buf[0] = RESPONSE_TAG;
        buf[1] = version;
        buf[2] = self.status as u8;
        buf[3] = flags;
        buf[4..12].copy_from_slice(&self.id.to_le_bytes());
        buf[12..20].copy_from_slice(&self.heading.to_le_bytes());
        buf[20..28].copy_from_slice(&self.duty_x.to_le_bytes());
        buf[28..36].copy_from_slice(&self.duty_y.to_le_bytes());
        buf[36..44].copy_from_slice(&self.count_x.to_le_bytes());
        buf[44..52].copy_from_slice(&self.count_y.to_le_bytes());
        RESPONSE_LEN
    }

    /// Decodes a response payload (without the length prefix).
    ///
    /// Accepts any version in `MIN_WIRE_VERSION..=WIRE_VERSION`. A v1
    /// payload has no quality bits; the quality is inferred from the
    /// status (`Ok` ⇒ `Good`, anything else ⇒ `Invalid`).
    pub fn decode_payload(payload: &[u8]) -> Result<Self, ProtocolError> {
        if payload.len() != RESPONSE_LEN {
            return Err(ProtocolError::BadLength { got: payload.len() });
        }
        if payload[0] != RESPONSE_TAG {
            return Err(ProtocolError::BadTag { got: payload[0] });
        }
        let version = payload[1];
        if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
            return Err(ProtocolError::BadVersion { got: version });
        }
        let status = Status::from_wire(payload[2])?;
        let flags = payload[3];
        let quality = if version >= 2 {
            if flags & !(RESP_FLAG_CACHE_HIT | RESP_FLAG_CLIPPED | RESP_QUALITY_MASK) != 0 {
                return Err(ProtocolError::BadFlags {
                    got: u16::from(flags),
                });
            }
            quality_from_bits(flags)?
        } else {
            if flags & !(RESP_FLAG_CACHE_HIT | RESP_FLAG_CLIPPED) != 0 {
                return Err(ProtocolError::BadFlags {
                    got: u16::from(flags),
                });
            }
            if status == Status::Ok {
                FixQuality::Good
            } else {
                FixQuality::Invalid
            }
        };
        Ok(Self {
            id: u64::from_le_bytes(payload[4..12].try_into().unwrap()),
            status,
            cache_hit: flags & RESP_FLAG_CACHE_HIT != 0,
            clipped: flags & RESP_FLAG_CLIPPED != 0,
            quality,
            heading: f64::from_le_bytes(payload[12..20].try_into().unwrap()),
            duty_x: f64::from_le_bytes(payload[20..28].try_into().unwrap()),
            duty_y: f64::from_le_bytes(payload[28..36].try_into().unwrap()),
            count_x: i64::from_le_bytes(payload[36..44].try_into().unwrap()),
            count_y: i64::from_le_bytes(payload[44..52].try_into().unwrap()),
        })
    }
}

/// Writes one frame: `u32` LE length prefix followed by the payload.
///
/// A payload longer than [`MAX_FRAME`] is rejected with a typed
/// [`ProtocolError::FrameTooLarge`] (as [`io::ErrorKind::InvalidInput`])
/// **before anything is written**: an unchecked `len as u32` cast would
/// truncate the prefix for payloads over 4 GiB and, for anything over
/// `MAX_FRAME`, emit a frame every compliant reader rejects mid-stream
/// — either way desynchronising the connection.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            ProtocolError::FrameTooLarge { got: payload.len() },
        ));
    }
    let mut frame = [0u8; 4 + MAX_FRAME];
    frame[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    frame[4..4 + payload.len()].copy_from_slice(payload);
    w.write_all(&frame[..4 + payload.len()])
}

/// Writes a request as one frame.
pub fn write_request<W: Write>(w: &mut W, request: &FixRequest) -> io::Result<()> {
    let mut buf = [0u8; REQUEST_LEN_VECTOR];
    let len = request.encode_payload(&mut buf);
    write_frame(w, &buf[..len])
}

/// Writes a response as one frame (at the newest version).
pub fn write_response<W: Write>(w: &mut W, response: &FixResponse) -> io::Result<()> {
    write_response_versioned(w, response, WIRE_VERSION)
}

/// Writes a response as one frame at `version`.
pub fn write_response_versioned<W: Write>(
    w: &mut W,
    response: &FixResponse,
    version: u8,
) -> io::Result<()> {
    let mut buf = [0u8; RESPONSE_LEN];
    let len = response.encode_payload_versioned(version, &mut buf);
    write_frame(w, &buf[..len])
}

/// Outcome of reading one frame from a blocking stream.
#[derive(Debug)]
pub enum ReadFrame {
    /// A complete payload of the given length is in the buffer.
    Frame(usize),
    /// The peer closed the stream cleanly (EOF on a frame boundary).
    Eof,
}

/// Reads one length-prefixed frame into `buf`, growing it if needed.
///
/// EOF exactly on a frame boundary yields [`ReadFrame::Eof`]; EOF in the
/// middle of a frame is [`io::ErrorKind::UnexpectedEof`]. A length
/// prefix above [`MAX_FRAME`] is [`io::ErrorKind::InvalidData`].
pub fn read_frame<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> io::Result<ReadFrame> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_bytes[got..])? {
            0 if got == 0 => return Ok(ReadFrame::Eof),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge { got: len },
        ));
    }
    if buf.len() < len {
        buf.resize(len, 0);
    }
    r.read_exact(&mut buf[..len])?;
    Ok(ReadFrame::Frame(len))
}

/// Outcome of a poll-aware frame read (see [`read_frame_poll`]).
#[derive(Debug)]
pub enum PollRead {
    /// A complete payload of the given length is in the buffer.
    Frame(usize),
    /// The peer closed the stream cleanly (EOF on a frame boundary).
    Eof,
    /// `stop()` returned `true` while the read was blocked.
    Stopped,
}

#[derive(PartialEq)]
enum Fill {
    Done,
    Eof,
    Stopped,
}

fn read_full<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    stop: &dyn Fn() -> bool,
    eof_ok_at_start: bool,
) -> io::Result<Fill> {
    let mut pos = 0;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) if pos == 0 && eof_ok_at_start => return Ok(Fill::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame",
                ))
            }
            Ok(n) => pos += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop() {
                    return Ok(Fill::Stopped);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Done)
}

/// [`read_frame`] for a stream with a read timeout: each time the read
/// blocks past the timeout, `stop` is consulted — returning `true`
/// abandons the read (and any partial frame) with [`PollRead::Stopped`].
/// This is how server connection readers stay responsive to shutdown
/// while parked on an idle socket.
pub fn read_frame_poll<R: Read>(
    r: &mut R,
    buf: &mut Vec<u8>,
    stop: &dyn Fn() -> bool,
) -> io::Result<PollRead> {
    let mut len_bytes = [0u8; 4];
    match read_full(r, &mut len_bytes, stop, true)? {
        Fill::Eof => return Ok(PollRead::Eof),
        Fill::Stopped => return Ok(PollRead::Stopped),
        Fill::Done => {}
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge { got: len },
        ));
    }
    if buf.len() < len {
        buf.resize(len, 0);
    }
    match read_full(r, &mut buf[..len], stop, false)? {
        Fill::Done => Ok(PollRead::Frame(len)),
        Fill::Stopped => Ok(PollRead::Stopped),
        Fill::Eof => unreachable!("read_full only yields Eof when eof_ok_at_start"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn request_round_trips_both_shapes() {
        let heading = FixRequest {
            id: 7,
            seed: 42,
            deadline_ms: 250,
            no_cache: false,
            field: FieldSpec::HeadingTruth(123.25),
        };
        let vector = FixRequest {
            id: u64::MAX,
            seed: 0,
            deadline_ms: 0,
            no_cache: true,
            field: FieldSpec::FieldVector { hx: -3.5, hy: 12.0 },
        };
        for req in [heading, vector] {
            let mut buf = [0u8; REQUEST_LEN_VECTOR];
            let len = req.encode_payload(&mut buf);
            assert_eq!(FixRequest::decode_payload(&buf[..len]), Ok(req));
        }
    }

    #[test]
    fn response_round_trips_bitwise() {
        for quality in [FixQuality::Good, FixQuality::Degraded, FixQuality::Invalid] {
            let resp = FixResponse {
                id: 99,
                status: Status::Ok,
                cache_hit: true,
                clipped: true,
                quality,
                heading: 359.999,
                duty_x: 0.4751,
                duty_y: 0.5199,
                count_x: -32767,
                count_y: 32767,
            };
            let mut buf = [0u8; RESPONSE_LEN];
            let len = resp.encode_payload(&mut buf);
            assert_eq!(FixResponse::decode_payload(&buf[..len]), Ok(resp));
        }
    }

    #[test]
    fn v1_response_encoding_zeroes_quality_bits_and_infers_on_decode() {
        let mut resp = FixResponse::failure(4, Status::Overloaded);
        resp.quality = FixQuality::Degraded; // deliberately inconsistent
        let mut buf = [0u8; RESPONSE_LEN];
        let len = resp.encode_payload_versioned(1, &mut buf);
        assert_eq!(buf[1], 1);
        assert_eq!(
            buf[3] & RESP_QUALITY_MASK,
            0,
            "v1 must not leak quality bits"
        );
        let back = FixResponse::decode_payload(&buf[..len]).unwrap();
        // v1 has no quality on the wire: non-Ok status decodes Invalid.
        assert_eq!(back.quality, FixQuality::Invalid);
        assert_eq!(back.status, Status::Overloaded);
        // And an Ok v1 response decodes Good.
        let ok = FixResponse {
            quality: FixQuality::Good,
            status: Status::Ok,
            ..FixResponse::failure(5, Status::Ok)
        };
        let len = ok.encode_payload_versioned(1, &mut buf);
        assert_eq!(
            FixResponse::decode_payload(&buf[..len]).unwrap().quality,
            FixQuality::Good
        );
    }

    #[test]
    fn request_version_1_is_still_accepted_and_reported() {
        let req = FixRequest {
            id: 8,
            seed: 9,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(42.0),
        };
        let mut buf = [0u8; REQUEST_LEN_VECTOR];
        let len = req.encode_payload(&mut buf);
        assert_eq!(buf[1], WIRE_VERSION);
        buf[1] = 1; // downgrade to a v1 client
        assert_eq!(
            FixRequest::decode_versioned(&buf[..len]),
            Ok((req, 1)),
            "v1 requests must decode with their version reported"
        );
    }

    #[test]
    fn unknown_request_flag_bits_are_rejected() {
        let req = FixRequest {
            id: 1,
            seed: 2,
            deadline_ms: 0,
            no_cache: true,
            field: FieldSpec::HeadingTruth(10.0),
        };
        let mut buf = [0u8; REQUEST_LEN_VECTOR];
        let len = req.encode_payload(&mut buf);
        buf[2] |= 1 << 6; // a flag bit from the future
        assert_eq!(
            FixRequest::decode_payload(&buf[..len]),
            Err(ProtocolError::BadFlags {
                got: FLAG_NO_CACHE | 1 << 6
            })
        );
    }

    #[test]
    fn oversized_payload_is_rejected_at_write_time() {
        let payload = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing may reach the wire");
        let inner = err.get_ref().expect("typed source");
        let proto = inner
            .downcast_ref::<ProtocolError>()
            .expect("ProtocolError source");
        assert_eq!(*proto, ProtocolError::FrameTooLarge { got: MAX_FRAME + 1 });
        // At the boundary itself, the frame goes through.
        write_frame(&mut sink, &vec![0u8; MAX_FRAME]).unwrap();
        assert_eq!(sink.len(), 4 + MAX_FRAME);
    }

    #[test]
    fn bad_frames_are_typed_errors() {
        assert_eq!(
            FixRequest::decode_payload(&[0u8; 4]),
            Err(ProtocolError::BadLength { got: 4 })
        );
        let mut buf = [0u8; REQUEST_LEN_HEADING];
        let req = FixRequest {
            id: 1,
            seed: 2,
            deadline_ms: 3,
            no_cache: false,
            field: FieldSpec::HeadingTruth(10.0),
        };
        req.encode_payload(&mut buf);
        let mut bad_tag = buf;
        bad_tag[0] = 0x7f;
        assert_eq!(
            FixRequest::decode_payload(&bad_tag),
            Err(ProtocolError::BadTag { got: 0x7f })
        );
        let mut bad_version = buf;
        bad_version[1] = 99;
        assert_eq!(
            FixRequest::decode_payload(&bad_version),
            Err(ProtocolError::BadVersion { got: 99 })
        );
        let mut nan = buf;
        nan[24..32].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            FixRequest::decode_payload(&nan),
            Err(ProtocolError::NonFiniteField)
        );
        // Vector flag with a heading-sized payload.
        let mut short_vector = buf;
        short_vector[2] = FLAG_FIELD_VECTOR as u8;
        assert_eq!(
            FixRequest::decode_payload(&short_vector),
            Err(ProtocolError::BadLength {
                got: REQUEST_LEN_HEADING
            })
        );
    }

    #[test]
    fn status_wire_bytes_round_trip() {
        for status in [
            Status::Ok,
            Status::Overloaded,
            Status::DeadlineExceeded,
            Status::BadRequest,
            Status::ShuttingDown,
            Status::InvalidConfig,
            Status::Unmeasurable,
        ] {
            assert_eq!(Status::from_wire(status as u8), Ok(status));
        }
        assert_eq!(
            Status::from_wire(200),
            Err(ProtocolError::BadStatus { got: 200 })
        );
    }

    #[test]
    fn frame_io_round_trips_over_a_buffer() {
        let req = FixRequest {
            id: 5,
            seed: 6,
            deadline_ms: 7,
            no_cache: true,
            field: FieldSpec::FieldVector { hx: 1.0, hy: 2.0 },
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf).unwrap() {
            ReadFrame::Frame(len) => {
                assert_eq!(FixRequest::decode_payload(&buf[..len]), Ok(req));
            }
            ReadFrame::Eof => panic!("expected a frame"),
        }
        assert!(matches!(
            read_frame(&mut cursor, &mut buf).unwrap(),
            ReadFrame::Eof
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        wire.extend_from_slice(&[0u8; 8]);
        let mut cursor = &wire[..];
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        #[test]
        fn request_encode_decode_is_identity(
            id in any::<u64>(),
            seed in any::<u64>(),
            deadline_ms in any::<u32>(),
            no_cache in any::<bool>(),
            vector in any::<bool>(),
            a in -1e6f64..1e6,
            b in -1e6f64..1e6,
        ) {
            let field = if vector {
                FieldSpec::FieldVector { hx: a, hy: b }
            } else {
                FieldSpec::HeadingTruth(a)
            };
            let req = FixRequest { id, seed, deadline_ms, no_cache, field };
            let mut buf = [0u8; REQUEST_LEN_VECTOR];
            let len = req.encode_payload(&mut buf);
            prop_assert_eq!(FixRequest::decode_payload(&buf[..len]), Ok(req));
        }

        #[test]
        fn response_encode_decode_is_identity(
            id in any::<u64>(),
            status_byte in 0u8..7,
            cache_hit in any::<bool>(),
            clipped in any::<bool>(),
            quality_idx in 0u8..3,
            heading_bits in any::<u64>(),
            duty_x in 0.0f64..1.0,
            duty_y in 0.0f64..1.0,
            count_x in any::<i64>(),
            count_y in any::<i64>(),
        ) {
            // Headings from raw bit patterns exercise NaN/∞/subnormal
            // payloads: the response layer must carry them bit-exactly.
            let heading = f64::from_bits(heading_bits);
            let quality = [FixQuality::Good, FixQuality::Degraded, FixQuality::Invalid]
                [quality_idx as usize];
            let resp = FixResponse {
                id,
                status: Status::from_wire(status_byte).unwrap(),
                cache_hit,
                clipped,
                quality,
                heading,
                duty_x,
                duty_y,
                count_x,
                count_y,
            };
            let mut buf = [0u8; RESPONSE_LEN];
            let len = resp.encode_payload(&mut buf);
            let back = FixResponse::decode_payload(&buf[..len]).unwrap();
            prop_assert_eq!(back.heading.to_bits(), resp.heading.to_bits());
            prop_assert_eq!(back.id, resp.id);
            prop_assert_eq!(back.status, resp.status);
            prop_assert_eq!(back.cache_hit, resp.cache_hit);
            prop_assert_eq!(back.clipped, resp.clipped);
            prop_assert_eq!(back.quality, resp.quality);
            prop_assert_eq!(back.count_x, resp.count_x);
            prop_assert_eq!(back.count_y, resp.count_y);
        }
    }
}
