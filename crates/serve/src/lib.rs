//! # fluxcomp-serve
//!
//! A **std-only compass fix server**: the serving layer that turns the
//! workspace's measurement core into a network service, the way a
//! deployed smart-sensor hub would expose its compass to many clients.
//!
//! * [`protocol`] — the length-prefixed binary wire format
//!   (`FixRequest` → `FixResponse`, typed [`Status`] bytes);
//! * [`queue`] — the bounded batch queue: backpressure by construction
//!   (a full queue is an immediate typed `Overloaded`, never an
//!   unbounded buffer);
//! * [`cache`] — the sharded LRU fix cache deduplicating identical
//!   `(field, seed)` fixes, keyed on exact float bit patterns;
//! * [`server`] — [`FixServer`]: acceptor thread, per-connection
//!   readers, and a worker pool where each worker owns one
//!   `MeasureScratch` (zero allocation on the steady-state fix path)
//!   and shares the immutable `CompassDesign`;
//! * [`loadgen`] — the open-loop load generator with p50/p95/p99
//!   latency reporting, per-status accounting, and deterministic
//!   jittered retry of `Overloaded` responses under a run-wide budget.
//!
//! ## Fault injection and degraded mode
//!
//! The server measures every fix through the health-checked compass
//! path: `FLUXCOMP_FAULT_PLAN` (see `fluxcomp_faults::FaultPlan`)
//! injects seeded deterministic sensor faults, per-axis health scoring
//! grades each fix `Good`/`Degraded`/`Invalid`, and the wire protocol
//! carries the quality in the response flags (protocol v2; v1 clients
//! still interoperate). `Invalid` fixes are answered as
//! [`Status::Unmeasurable`] with the held last-good heading. Workers
//! that keep producing non-`Good` fixes quarantine themselves and probe
//! for recovery — see [`server`] for the state machine.
//!
//! Everything is `std` — threads, `TcpListener`, `Mutex`/`Condvar` —
//! with no async runtime, matching the workspace's no-external-deps
//! rule. Observability flows through `fluxcomp-obs` (`FLUXCOMP_OBS=json`
//! to see `serve.*` counters, gauges, histograms and spans).
//!
//! ## Guarantees
//!
//! * **Bit-exactness** — a served fix equals a direct
//!   `CompassDesign::measure_heading_scratch` call with the same seed,
//!   bit for bit, cached or not.
//! * **Typed degradation** — overload and deadline misses produce
//!   `Overloaded` / `DeadlineExceeded` responses, never a silent drop
//!   or hang.
//! * **Graceful shutdown** — every request accepted into the queue is
//!   answered before the workers exit.
//!
//! ## Quickstart
//!
//! ```
//! use fluxcomp_compass::{CompassConfig, CompassDesign};
//! use fluxcomp_serve::{FixServer, LoadGenConfig, ServeConfig};
//!
//! let design = CompassDesign::new(CompassConfig::paper_design()).unwrap();
//! let mut server = FixServer::start(design, ServeConfig::default()).unwrap();
//! let report = fluxcomp_serve::loadgen::run(&LoadGenConfig {
//!     addr: server.local_addr().to_string(),
//!     requests: 32,
//!     connections: 2,
//!     ..LoadGenConfig::default()
//! })
//! .unwrap();
//! assert_eq!(report.ok, 32);
//! assert_eq!(report.protocol_errors, 0);
//! server.shutdown();
//! ```

pub mod cache;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod server;

pub use cache::{CachedFix, FixCache, FixKey};
pub use loadgen::{LoadGenConfig, LoadReport};
pub use protocol::{FieldSpec, FixRequest, FixResponse, ProtocolError, Status};
pub use queue::{BatchQueue, PushError};
pub use server::{FixServer, ServeConfig, WorkerFault};
