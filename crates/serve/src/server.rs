//! The fix server: acceptor thread, connection readers, and a fix
//! worker pool around the bounded batch queue.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──spawns──▶ reader (1 per connection)
//!                        │ decode, try_push ──▶ BatchQueue (bounded)
//!                        │   Full → Overloaded response, immediately
//!                        ▼
//!                      worker pool (N fix workers)
//!                        │ pop_batch(≤ batch_max)
//!                        │ deadline check → cache lookup → measure
//!                        ▼
//!                      response written under the connection's write lock
//! ```
//!
//! Each worker owns one [`MeasureScratch`] for the whole server
//! lifetime, so the steady-state fix path performs **zero allocations**:
//! requests decode into reusable buffers, measurement reuses the
//! scratch detector/counter, and responses encode into stack arrays.
//!
//! Workers share the immutable [`CompassDesign`] (`Sync`, pure
//! measurement functions) exactly like the sweep engine's workers do,
//! so a served fix is bit-identical to a direct
//! [`CompassDesign::measure_heading_scratch`] call with the same seed.
//!
//! ## Shutdown
//!
//! [`FixServer::shutdown`] is graceful and drains: the acceptor stops,
//! readers stop picking up new frames (connection readers poll the
//! shutdown flag between reads on a 50 ms socket timeout), the queue
//! closes, and the workers finish every job already accepted — a
//! request that was queued always gets its response.

use crate::cache::{CachedFix, FixCache, FixKey};
use crate::protocol::{
    read_frame_poll, write_response, FieldSpec, FixRequest, FixResponse, PollRead, Status,
};
use crate::queue::{BatchQueue, PushError};
use fluxcomp_compass::{CompassDesign, MeasureScratch, Reading};
use fluxcomp_exec::ExecPolicy;
use fluxcomp_obs as obs;
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::AmperePerMeter;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads and the acceptor re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
const ACCEPT_IDLE: Duration = Duration::from_millis(5);

/// Server tuning knobs. [`ServeConfig::default`] is sized for the
/// integration tests and single-host benches; [`ServeConfig::from_env`]
/// reads the `FLUXCOMP_SERVE_*` environment overrides.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Fix workers; `0` means one per core, following the
    /// `FLUXCOMP_THREADS` override exactly like [`ExecPolicy::auto`].
    pub workers: usize,
    /// Bound on queued fixes; a full queue sheds load with
    /// [`Status::Overloaded`].
    pub queue_capacity: usize,
    /// Most fixes a worker drains per wakeup.
    pub batch_max: usize,
    /// Fix-cache entries across all shards; `0` disables caching.
    pub cache_capacity: usize,
    /// Fix-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Artificial delay inserted before every *uncached* fix — a test
    /// and chaos knob for exercising deadline and overload paths; keep
    /// at zero in production.
    pub fix_delay: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 1024,
            batch_max: 32,
            cache_capacity: 4096,
            cache_shards: 8,
            fix_delay: Duration::ZERO,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the environment:
    ///
    /// | variable | field |
    /// |---|---|
    /// | `FLUXCOMP_SERVE_ADDR` | `addr` |
    /// | `FLUXCOMP_SERVE_WORKERS` | `workers` (0 = auto) |
    /// | `FLUXCOMP_SERVE_QUEUE` | `queue_capacity` |
    /// | `FLUXCOMP_SERVE_BATCH` | `batch_max` |
    /// | `FLUXCOMP_SERVE_CACHE` | `cache_capacity` (0 disables) |
    /// | `FLUXCOMP_SERVE_CACHE_SHARDS` | `cache_shards` |
    ///
    /// Unset or unparsable variables keep the default. The worker
    /// count additionally honours `FLUXCOMP_THREADS` when `workers`
    /// resolves to 0, via [`ExecPolicy::auto`].
    pub fn from_env() -> Self {
        fn num(name: &str, default: usize) -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = Self::default();
        Self {
            addr: std::env::var("FLUXCOMP_SERVE_ADDR").unwrap_or(d.addr),
            workers: num("FLUXCOMP_SERVE_WORKERS", d.workers),
            queue_capacity: num("FLUXCOMP_SERVE_QUEUE", d.queue_capacity).max(1),
            batch_max: num("FLUXCOMP_SERVE_BATCH", d.batch_max).max(1),
            cache_capacity: num("FLUXCOMP_SERVE_CACHE", d.cache_capacity),
            cache_shards: num("FLUXCOMP_SERVE_CACHE_SHARDS", d.cache_shards),
            fix_delay: d.fix_delay,
        }
    }

    fn resolved_workers(&self) -> usize {
        match self.workers {
            0 => ExecPolicy::auto().threads(),
            n => n,
        }
    }
}

/// One connection's write half, shared between its reader (error
/// responses) and every worker holding one of its jobs.
#[derive(Debug)]
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Serialises the response under the write lock so interleaved
    /// workers never corrupt the frame stream. A peer that hung up is
    /// counted, not propagated — the job is complete either way.
    fn send(&self, response: &FixResponse) {
        let mut writer = self.writer.lock().unwrap();
        if write_response(&mut *writer, response).is_err() {
            obs::counter_add("serve.write_errors", 1);
        } else {
            obs::counter_add("serve.responses", 1);
        }
    }
}

/// One accepted fix waiting for a worker.
#[derive(Debug)]
struct Job {
    conn: Arc<Conn>,
    request: FixRequest,
    enqueued: Instant,
}

#[derive(Debug)]
struct Shared {
    design: CompassDesign,
    queue: BatchQueue<Job>,
    cache: FixCache,
    shutting_down: AtomicBool,
    batch_max: usize,
    fix_delay: Duration,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// The running fix server. Dropping it performs a graceful
/// [`shutdown`](FixServer::shutdown).
#[derive(Debug)]
pub struct FixServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FixServer {
    /// Binds, spawns the acceptor and the worker pool, and returns with
    /// the server accepting connections.
    pub fn start(design: CompassDesign, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: FixCache::new(config.cache_capacity, config.cache_shards),
            queue: BatchQueue::new(config.queue_capacity),
            shutting_down: AtomicBool::new(false),
            batch_max: config.batch_max,
            fix_delay: config.fix_delay,
            readers: Mutex::new(Vec::new()),
            design,
        });
        let workers = (0..config.resolved_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("fix-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fix-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the OS-chosen port when the config asked
    /// for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The design being served.
    pub fn design(&self) -> &CompassDesign {
        &self.shared.design
    }

    /// Graceful shutdown: stop accepting, stop reading, drain every
    /// queued fix to its response, then join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().unwrap());
        for reader in readers {
            let _ = reader.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        obs::counter_add("serve.shutdowns", 1);
    }
}

impl Drop for FixServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs::counter_add("serve.connections", 1);
                if spawn_reader(shared, stream).is_err() {
                    obs::counter_add("serve.accept_errors", 1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => {
                obs::counter_add("serve.accept_errors", 1);
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(ACCEPT_IDLE);
            }
        }
    }
}

fn spawn_reader(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    // The read timeout is the reader's shutdown poll interval; accepted
    // sockets are otherwise fully blocking.
    let _ = stream.set_nonblocking(false);
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let reader_stream = stream.try_clone()?;
    let conn = Arc::new(Conn {
        writer: Mutex::new(stream),
    });
    let shared_for_thread = Arc::clone(shared);
    let handle = thread::Builder::new()
        .name("fix-reader".to_string())
        .spawn(move || reader_loop(&shared_for_thread, &conn, reader_stream))?;
    shared.readers.lock().unwrap().push(handle);
    Ok(())
}

fn reader_loop(shared: &Shared, conn: &Arc<Conn>, mut stream: TcpStream) {
    let _span = obs::span("serve.connection");
    let mut buf = Vec::new();
    let stop = || shared.shutting_down.load(Ordering::SeqCst);
    loop {
        match read_frame_poll(&mut stream, &mut buf, &stop) {
            Ok(PollRead::Frame(len)) => match FixRequest::decode_payload(&buf[..len]) {
                Ok(request) => {
                    obs::counter_add("serve.requests", 1);
                    let job = Job {
                        conn: Arc::clone(conn),
                        request,
                        enqueued: Instant::now(),
                    };
                    match shared.queue.try_push(job) {
                        Ok(()) => obs::gauge_set("serve.queue_depth", shared.queue.len() as f64),
                        Err(PushError::Full) => {
                            obs::counter_add("serve.overloaded", 1);
                            conn.send(&FixResponse::failure(request.id, Status::Overloaded));
                        }
                        Err(PushError::Closed) => {
                            conn.send(&FixResponse::failure(request.id, Status::ShuttingDown));
                        }
                    }
                }
                Err(_) => {
                    // Malformed payload: answer and hang up — framing
                    // may be unreliable from here on.
                    obs::counter_add("serve.bad_requests", 1);
                    conn.send(&FixResponse::failure(0, Status::BadRequest));
                    return;
                }
            },
            Ok(PollRead::Eof) | Ok(PollRead::Stopped) => return,
            Err(_) => {
                obs::counter_add("serve.bad_requests", 1);
                conn.send(&FixResponse::failure(0, Status::BadRequest));
                return;
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut scratch = MeasureScratch::for_design(&shared.design);
    let mut batch: Vec<Job> = Vec::with_capacity(shared.batch_max);
    while shared.queue.pop_batch(shared.batch_max, &mut batch) {
        obs::counter_add("serve.batches", 1);
        obs::histogram_record("serve.batch_size", batch.len() as f64);
        for job in batch.drain(..) {
            handle_job(shared, &mut scratch, &job);
        }
    }
}

fn handle_job(shared: &Shared, scratch: &mut MeasureScratch, job: &Job) {
    let span = obs::span("serve.fix");
    let request = &job.request;
    let deadline = Duration::from_millis(u64::from(request.deadline_ms));
    if request.deadline_ms > 0 && job.enqueued.elapsed() >= deadline {
        obs::counter_add("serve.deadline_exceeded", 1);
        job.conn
            .send(&FixResponse::failure(request.id, Status::DeadlineExceeded));
        span.finish();
        return;
    }
    let key = FixKey::for_request(request);
    if !request.no_cache {
        if let Some(hit) = shared.cache.get(&key) {
            obs::counter_add("serve.cache_hits", 1);
            job.conn.send(&response_for(request.id, &hit, true));
            record_latency(job);
            span.finish();
            return;
        }
        obs::counter_add("serve.cache_misses", 1);
    }
    if !shared.fix_delay.is_zero() {
        thread::sleep(shared.fix_delay);
    }
    let reading = match request.field {
        FieldSpec::HeadingTruth(deg) => {
            shared
                .design
                .measure_heading_scratch(Degrees::new(deg), request.seed, scratch)
        }
        FieldSpec::FieldVector { hx, hy } => shared.design.measure_field_scratch(
            AmperePerMeter::new(hx),
            AmperePerMeter::new(hy),
            request.seed,
            scratch,
        ),
    };
    let fix = cached_fix(&reading);
    if !request.no_cache {
        shared.cache.insert(key, fix);
    }
    job.conn.send(&response_for(request.id, &fix, false));
    record_latency(job);
    span.finish();
}

fn cached_fix(reading: &Reading) -> CachedFix {
    CachedFix {
        heading: reading.heading.value(),
        duty_x: reading.x.duty,
        duty_y: reading.y.duty,
        count_x: reading.x.count,
        count_y: reading.y.count,
        clipped: reading.x.clipped || reading.y.clipped,
    }
}

fn response_for(id: u64, fix: &CachedFix, cache_hit: bool) -> FixResponse {
    FixResponse {
        id,
        status: Status::Ok,
        cache_hit,
        clipped: fix.clipped,
        heading: fix.heading,
        duty_x: fix.duty_x,
        duty_y: fix.duty_y,
        count_x: fix.count_x,
        count_y: fix.count_y,
    }
}

fn record_latency(job: &Job) {
    obs::histogram_record(
        "serve.latency_us",
        job.enqueued.elapsed().as_secs_f64() * 1e6,
    );
}
