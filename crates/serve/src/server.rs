//! The fix server: acceptor thread, connection readers, and a fix
//! worker pool around the bounded batch queue.
//!
//! ## Threading model
//!
//! ```text
//! acceptor ──spawns──▶ reader (1 per connection)
//!                        │ decode, try_push ──▶ BatchQueue (bounded)
//!                        │   Full → Overloaded response, immediately
//!                        ▼
//!                      worker pool (N fix workers)
//!                        │ pop_batch(≤ batch_max)
//!                        │ deadline check → cache lookup → measure
//!                        ▼
//!                      response written under the connection's write lock
//! ```
//!
//! Each worker owns one [`MeasureScratch`] for the whole server
//! lifetime, so the steady-state fix path performs **zero allocations**:
//! requests decode into reusable buffers, measurement reuses the
//! scratch detector/counter, and responses encode into stack arrays.
//!
//! Workers share the immutable [`CompassDesign`] (`Sync`, pure
//! measurement functions) exactly like the sweep engine's workers do,
//! so a served fix is bit-identical to a direct
//! [`CompassDesign::measure_heading_scratch`] call with the same seed.
//!
//! ## Faults, fix quality, and quarantine
//!
//! Every computed fix runs through the health-checked compass path:
//! an optional [`FaultPlan`] (from `FLUXCOMP_FAULT_PLAN`) injects
//! seeded, deterministic sensor faults, and each worker's
//! [`DegradedTracker`] grades the result [`FixQuality::Good`],
//! `Degraded` (single-axis fallback) or `Invalid` (held heading,
//! answered as [`Status::Unmeasurable`]). Only `Good` fixes enter the
//! cache — a degraded heading depends on the worker's hold-last state
//! and must not be replayed to other clients as a pure fix.
//!
//! A worker that produces `quarantine_after` consecutive non-`Good`
//! computed fixes quarantines itself: it rebuilds its scratch, resets
//! its tracker, and probes the reference heading off-queue with an
//! exponential backoff until a probe comes back `Good` (recovery) or
//! the probe budget runs out (provisional re-entry, so a globally
//! faulty plant cannot starve the queue). `serve.worker_quarantines` /
//! `serve.worker_recoveries` count the transitions.
//!
//! ## Shutdown
//!
//! [`FixServer::shutdown`] is graceful and drains: the acceptor stops,
//! readers stop picking up new frames (connection readers poll the
//! shutdown flag between reads on a 50 ms socket timeout), the queue
//! closes, and the workers finish every job already accepted — a
//! request that was queued always gets its response.

use crate::cache::{CachedFix, FixCache, FixKey};
use crate::protocol::{
    read_frame_poll, write_response_versioned, FieldSpec, FixRequest, FixResponse, PollRead,
    Status, WIRE_VERSION,
};
use crate::queue::{BatchQueue, PushError};
use fluxcomp_compass::{
    CheckedReading, CompassDesign, DegradedTracker, FixQuality, MeasureScratch,
};
use fluxcomp_exec::{derive_seed, ExecPolicy};
use fluxcomp_faults::{AxisSel, FaultKind, FaultPlan, FaultSpec};
use fluxcomp_obs as obs;
use fluxcomp_units::angle::Degrees;
use fluxcomp_units::magnetics::AmperePerMeter;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How often blocked reads and the acceptor re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);
const ACCEPT_IDLE: Duration = Duration::from_millis(5);
/// Probe attempts per quarantine entry before provisional re-entry.
const QUARANTINE_PROBES: u32 = 5;
/// Seed domain for quarantine probe fixes.
const PROBE_SEED: u64 = 0x5052_4F42;

/// A forced per-worker fault for quarantine/recovery testing: worker
/// `worker` serves its first `fixes` computed fixes with a stuck-low
/// X-axis comparator (rate 1.0), then becomes healthy — so a quarantined
/// worker's probe succeeds and recovery is observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// Index of the afflicted worker.
    pub worker: usize,
    /// Number of initial computed fixes (probes included) that fault.
    pub fixes: u64,
}

impl WorkerFault {
    /// Parses the `FLUXCOMP_SERVE_WORKER_FAULT` grammar `"W:K"`.
    pub fn parse(text: &str) -> Option<Self> {
        let (w, k) = text.trim().split_once(':')?;
        Some(Self {
            worker: w.trim().parse().ok()?,
            fixes: k.trim().parse().ok()?,
        })
    }

    fn plan(&self) -> FaultPlan {
        FaultPlan::new(0x57_464C54).with(FaultSpec {
            kind: FaultKind::StuckComparator { output: false },
            axis: AxisSel::X,
            rate: 1.0,
        })
    }
}

/// Server tuning knobs. [`ServeConfig::default`] is sized for the
/// integration tests and single-host benches; [`ServeConfig::from_env`]
/// reads the `FLUXCOMP_SERVE_*` environment overrides.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `"127.0.0.1:0"` for an ephemeral port.
    pub addr: String,
    /// Fix workers; `0` means one per core, following the
    /// `FLUXCOMP_THREADS` override exactly like [`ExecPolicy::auto`].
    pub workers: usize,
    /// Bound on queued fixes; a full queue sheds load with
    /// [`Status::Overloaded`].
    pub queue_capacity: usize,
    /// Most fixes a worker drains per wakeup.
    pub batch_max: usize,
    /// Fix-cache entries across all shards; `0` disables caching.
    pub cache_capacity: usize,
    /// Fix-cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Artificial delay inserted before every *uncached* fix — a test
    /// and chaos knob for exercising deadline and overload paths; keep
    /// at zero in production.
    pub fix_delay: Duration,
    /// Seeded fault plan injected into every computed fix; `None` (the
    /// default) serves the clean, bit-exact measurement path.
    pub fault_plan: Option<FaultPlan>,
    /// Consecutive non-`Good` computed fixes before a worker
    /// quarantines itself; `0` disables quarantine.
    pub quarantine_after: usize,
    /// Initial quarantine probe backoff (doubles per failed probe).
    pub quarantine_backoff: Duration,
    /// Forced per-worker fault for quarantine/recovery testing.
    pub worker_fault: Option<WorkerFault>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 1024,
            batch_max: 32,
            cache_capacity: 4096,
            cache_shards: 8,
            fix_delay: Duration::ZERO,
            fault_plan: None,
            quarantine_after: 8,
            quarantine_backoff: Duration::from_millis(10),
            worker_fault: None,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the environment:
    ///
    /// | variable | field |
    /// |---|---|
    /// | `FLUXCOMP_SERVE_ADDR` | `addr` |
    /// | `FLUXCOMP_SERVE_WORKERS` | `workers` (0 = auto) |
    /// | `FLUXCOMP_SERVE_QUEUE` | `queue_capacity` |
    /// | `FLUXCOMP_SERVE_BATCH` | `batch_max` |
    /// | `FLUXCOMP_SERVE_CACHE` | `cache_capacity` (0 disables) |
    /// | `FLUXCOMP_SERVE_CACHE_SHARDS` | `cache_shards` |
    /// | `FLUXCOMP_FAULT_PLAN` | `fault_plan` (fault grammar) |
    /// | `FLUXCOMP_SERVE_QUARANTINE_AFTER` | `quarantine_after` (0 disables) |
    /// | `FLUXCOMP_SERVE_QUARANTINE_BACKOFF_MS` | `quarantine_backoff` |
    /// | `FLUXCOMP_SERVE_WORKER_FAULT` | `worker_fault` (`"W:K"`) |
    ///
    /// Unset or unparsable variables keep the default (a malformed
    /// fault plan or worker fault is reported on stderr and ignored —
    /// the server must not start silently faulty). The worker count
    /// additionally honours `FLUXCOMP_THREADS` when `workers` resolves
    /// to 0, via [`ExecPolicy::auto`].
    pub fn from_env() -> Self {
        fn num(name: &str, default: usize) -> usize {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        }
        let d = Self::default();
        let fault_plan = match FaultPlan::from_env() {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("fluxcomp-serve: ignoring FLUXCOMP_FAULT_PLAN: {e}");
                None
            }
        };
        let worker_fault = std::env::var("FLUXCOMP_SERVE_WORKER_FAULT")
            .ok()
            .and_then(|v| {
                let parsed = WorkerFault::parse(&v);
                if parsed.is_none() {
                    eprintln!(
                        "fluxcomp-serve: ignoring FLUXCOMP_SERVE_WORKER_FAULT={v:?} \
                         (expected \"W:K\")"
                    );
                }
                parsed
            });
        Self {
            addr: std::env::var("FLUXCOMP_SERVE_ADDR").unwrap_or(d.addr),
            workers: num("FLUXCOMP_SERVE_WORKERS", d.workers),
            queue_capacity: num("FLUXCOMP_SERVE_QUEUE", d.queue_capacity).max(1),
            batch_max: num("FLUXCOMP_SERVE_BATCH", d.batch_max).max(1),
            cache_capacity: num("FLUXCOMP_SERVE_CACHE", d.cache_capacity),
            cache_shards: num("FLUXCOMP_SERVE_CACHE_SHARDS", d.cache_shards),
            fix_delay: d.fix_delay,
            fault_plan,
            quarantine_after: num("FLUXCOMP_SERVE_QUARANTINE_AFTER", d.quarantine_after),
            quarantine_backoff: Duration::from_millis(num(
                "FLUXCOMP_SERVE_QUARANTINE_BACKOFF_MS",
                d.quarantine_backoff.as_millis() as usize,
            ) as u64),
            worker_fault,
        }
    }

    fn resolved_workers(&self) -> usize {
        match self.workers {
            0 => ExecPolicy::auto().threads(),
            n => n,
        }
    }
}

/// One connection's write half, shared between its reader (error
/// responses) and every worker holding one of its jobs.
#[derive(Debug)]
struct Conn {
    writer: Mutex<TcpStream>,
}

impl Conn {
    /// Serialises the response under the write lock so interleaved
    /// workers never corrupt the frame stream, answering at the
    /// request's wire version. A peer that hung up is counted, not
    /// propagated — the job is complete either way.
    fn send(&self, response: &FixResponse, version: u8) {
        let mut writer = self.writer.lock().unwrap();
        if write_response_versioned(&mut *writer, response, version).is_err() {
            obs::counter_add("serve.write_errors", 1);
        } else {
            obs::counter_add("serve.responses", 1);
        }
    }
}

/// One accepted fix waiting for a worker.
#[derive(Debug)]
struct Job {
    conn: Arc<Conn>,
    request: FixRequest,
    /// Wire version the request arrived at; the response answers at it.
    version: u8,
    enqueued: Instant,
}

#[derive(Debug)]
struct Shared {
    design: CompassDesign,
    queue: BatchQueue<Job>,
    cache: FixCache,
    shutting_down: AtomicBool,
    batch_max: usize,
    fix_delay: Duration,
    fault_plan: Option<FaultPlan>,
    quarantine_after: usize,
    quarantine_backoff: Duration,
    worker_fault: Option<WorkerFault>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// The running fix server. Dropping it performs a graceful
/// [`shutdown`](FixServer::shutdown).
#[derive(Debug)]
pub struct FixServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl FixServer {
    /// Binds, spawns the acceptor and the worker pool, and returns with
    /// the server accepting connections.
    pub fn start(design: CompassDesign, config: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: FixCache::new(config.cache_capacity, config.cache_shards),
            queue: BatchQueue::new(config.queue_capacity),
            shutting_down: AtomicBool::new(false),
            batch_max: config.batch_max,
            fix_delay: config.fix_delay,
            fault_plan: config.fault_plan.clone(),
            quarantine_after: config.quarantine_after,
            quarantine_backoff: config.quarantine_backoff,
            worker_fault: config.worker_fault,
            readers: Mutex::new(Vec::new()),
            design,
        });
        let workers = (0..config.resolved_workers())
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("fix-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let acceptor = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("fix-acceptor".to_string())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the OS-chosen port when the config asked
    /// for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The design being served.
    pub fn design(&self) -> &CompassDesign {
        &self.shared.design
    }

    /// Graceful shutdown: stop accepting, stop reading, drain every
    /// queued fix to its response, then join all threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers = std::mem::take(&mut *self.shared.readers.lock().unwrap());
        for reader in readers {
            let _ = reader.join();
        }
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        obs::counter_add("serve.shutdowns", 1);
    }
}

impl Drop for FixServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                obs::counter_add("serve.connections", 1);
                if spawn_reader(shared, stream).is_err() {
                    obs::counter_add("serve.accept_errors", 1);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(ACCEPT_IDLE);
            }
            Err(_) => {
                obs::counter_add("serve.accept_errors", 1);
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(ACCEPT_IDLE);
            }
        }
    }
}

fn spawn_reader(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    // The read timeout is the reader's shutdown poll interval; accepted
    // sockets are otherwise fully blocking.
    let _ = stream.set_nonblocking(false);
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let reader_stream = stream.try_clone()?;
    let conn = Arc::new(Conn {
        writer: Mutex::new(stream),
    });
    let shared_for_thread = Arc::clone(shared);
    let handle = thread::Builder::new()
        .name("fix-reader".to_string())
        .spawn(move || reader_loop(&shared_for_thread, &conn, reader_stream))?;
    shared.readers.lock().unwrap().push(handle);
    Ok(())
}

fn reader_loop(shared: &Shared, conn: &Arc<Conn>, mut stream: TcpStream) {
    let _span = obs::span("serve.connection");
    let mut buf = Vec::new();
    let stop = || shared.shutting_down.load(Ordering::SeqCst);
    loop {
        match read_frame_poll(&mut stream, &mut buf, &stop) {
            Ok(PollRead::Frame(len)) => match FixRequest::decode_versioned(&buf[..len]) {
                Ok((request, version)) => {
                    obs::counter_add("serve.requests", 1);
                    let job = Job {
                        conn: Arc::clone(conn),
                        request,
                        version,
                        enqueued: Instant::now(),
                    };
                    match shared.queue.try_push(job) {
                        Ok(()) => obs::gauge_set("serve.queue_depth", shared.queue.len() as f64),
                        Err(PushError::Full) => {
                            obs::counter_add("serve.overloaded", 1);
                            conn.send(
                                &FixResponse::failure(request.id, Status::Overloaded),
                                version,
                            );
                        }
                        Err(PushError::Closed) => {
                            conn.send(
                                &FixResponse::failure(request.id, Status::ShuttingDown),
                                version,
                            );
                        }
                    }
                }
                Err(_) => {
                    // Malformed payload: answer and hang up — framing
                    // may be unreliable from here on.
                    obs::counter_add("serve.bad_requests", 1);
                    conn.send(&FixResponse::failure(0, Status::BadRequest), WIRE_VERSION);
                    return;
                }
            },
            Ok(PollRead::Eof) | Ok(PollRead::Stopped) => return,
            Err(_) => {
                obs::counter_add("serve.bad_requests", 1);
                conn.send(&FixResponse::failure(0, Status::BadRequest), WIRE_VERSION);
                return;
            }
        }
    }
}

/// Per-worker mutable state: the reusable scratch, the degraded-mode
/// tracker (hold-last heading, health policy), the computed-fix count
/// driving the forced worker fault, and the quarantine trip counter.
struct WorkerState {
    index: usize,
    scratch: MeasureScratch,
    tracker: DegradedTracker,
    /// Fixes actually measured by this worker (cache hits excluded,
    /// quarantine probes included — the forced fault counts them too).
    computed: u64,
    consecutive_bad: usize,
    forced: Option<(FaultPlan, u64)>,
}

impl WorkerState {
    fn new(shared: &Shared, index: usize) -> Self {
        Self {
            index,
            scratch: MeasureScratch::for_design(&shared.design),
            tracker: DegradedTracker::for_design(&shared.design),
            computed: 0,
            consecutive_bad: 0,
            forced: shared
                .worker_fault
                .filter(|wf| wf.worker == index)
                .map(|wf| (wf.plan(), wf.fixes)),
        }
    }
}

/// The fault plan for the worker's next computed fix: the forced worker
/// fault while it lasts, else the server-wide plan. A free function
/// over the split-out fields so the caller can hold `&mut` borrows of
/// the worker's scratch and tracker at the same time.
fn active_plan<'a>(
    shared: &'a Shared,
    forced: &'a Option<(FaultPlan, u64)>,
    computed: u64,
) -> Option<&'a FaultPlan> {
    match forced {
        Some((plan, fixes)) if computed < *fixes => Some(plan),
        _ => shared.fault_plan.as_ref(),
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut state = WorkerState::new(shared, index);
    let mut batch: Vec<Job> = Vec::with_capacity(shared.batch_max);
    while shared.queue.pop_batch(shared.batch_max, &mut batch) {
        obs::counter_add("serve.batches", 1);
        obs::histogram_record("serve.batch_size", batch.len() as f64);
        for job in batch.drain(..) {
            handle_job(shared, &mut state, &job);
        }
    }
}

fn handle_job(shared: &Shared, state: &mut WorkerState, job: &Job) {
    let span = obs::span("serve.fix");
    let request = &job.request;
    let deadline = Duration::from_millis(u64::from(request.deadline_ms));
    if request.deadline_ms > 0 && job.enqueued.elapsed() >= deadline {
        obs::counter_add("serve.deadline_exceeded", 1);
        job.conn.send(
            &FixResponse::failure(request.id, Status::DeadlineExceeded),
            job.version,
        );
        span.finish();
        return;
    }
    // A request whose field floats are non-finite cannot name a fix:
    // reject it before it reaches the physics (or the cache).
    let Some(key) = FixKey::for_request(request) else {
        obs::counter_add("serve.bad_fields", 1);
        job.conn.send(
            &FixResponse::failure(request.id, Status::BadRequest),
            job.version,
        );
        span.finish();
        return;
    };
    if !request.no_cache {
        if let Some(hit) = shared.cache.get(&key) {
            obs::counter_add("serve.cache_hits", 1);
            // Only Good fixes are ever inserted, so a hit is Good.
            job.conn
                .send(&response_for(request.id, &hit, true), job.version);
            record_latency(job, FixQuality::Good);
            span.finish();
            return;
        }
        obs::counter_add("serve.cache_misses", 1);
    }
    if !shared.fix_delay.is_zero() {
        thread::sleep(shared.fix_delay);
    }
    let checked = measure_checked(shared, state, request);
    state.computed += 1;
    let quality = checked.quality;
    match quality {
        FixQuality::Good => {
            obs::counter_add("serve.fix_good", 1);
            state.consecutive_bad = 0;
            if !request.no_cache {
                // Degraded/Invalid headings depend on this worker's
                // hold-last state; only pure Good fixes are shareable.
                shared.cache.insert(key, cached_fix(&checked));
            }
        }
        FixQuality::Degraded => {
            obs::counter_add("serve.fix_degraded", 1);
            state.consecutive_bad += 1;
        }
        FixQuality::Invalid => {
            obs::counter_add("serve.fix_invalid", 1);
            state.consecutive_bad += 1;
        }
    }
    job.conn
        .send(&checked_response(request.id, &checked), job.version);
    record_latency(job, quality);
    span.finish();
    if shared.quarantine_after > 0 && state.consecutive_bad >= shared.quarantine_after {
        quarantine(shared, state);
    }
}

fn measure_checked(
    shared: &Shared,
    state: &mut WorkerState,
    request: &FixRequest,
) -> CheckedReading {
    let WorkerState {
        scratch,
        tracker,
        computed,
        forced,
        ..
    } = state;
    let plan = active_plan(shared, forced, *computed);
    match request.field {
        FieldSpec::HeadingTruth(deg) => shared.design.measure_heading_checked(
            Degrees::new(deg),
            request.seed,
            scratch,
            plan,
            tracker,
        ),
        FieldSpec::FieldVector { hx, hy } => shared.design.measure_field_checked(
            AmperePerMeter::new(hx),
            AmperePerMeter::new(hy),
            request.seed,
            scratch,
            plan,
            tracker,
        ),
    }
}

/// Pause-and-probe quarantine: rebuild the scratch, reset the tracker,
/// then probe the reference fix off-queue with exponential backoff. A
/// `Good` probe is a recovery; exhausting the probe budget re-enters
/// service provisionally so a plant-wide fault cannot starve the queue.
fn quarantine(shared: &Shared, state: &mut WorkerState) {
    let span = obs::span("serve.quarantine");
    obs::counter_add("serve.worker_quarantines", 1);
    eprintln!(
        "fluxcomp-serve: worker {} quarantined after {} consecutive non-good fixes",
        state.index, state.consecutive_bad
    );
    state.scratch = MeasureScratch::for_design(&shared.design);
    state.tracker.reset();
    let mut backoff = shared.quarantine_backoff.max(Duration::from_millis(1));
    for attempt in 0..QUARANTINE_PROBES {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(backoff);
        backoff = (backoff * 2).min(shared.quarantine_backoff.max(Duration::from_millis(1)) * 8);
        let seed = derive_seed(PROBE_SEED, state.computed.wrapping_add(u64::from(attempt)));
        let WorkerState {
            scratch,
            tracker,
            computed,
            forced,
            ..
        } = &mut *state;
        let plan = active_plan(shared, forced, *computed);
        let probe =
            shared
                .design
                .measure_heading_checked(Degrees::ZERO, seed, scratch, plan, tracker);
        state.computed += 1;
        if probe.quality == FixQuality::Good {
            obs::counter_add("serve.worker_recoveries", 1);
            eprintln!(
                "fluxcomp-serve: worker {} recovered after {} probe(s)",
                state.index,
                attempt + 1
            );
            state.consecutive_bad = 0;
            span.finish();
            return;
        }
        // A failed probe leaves held state in the tracker; start the
        // next probe (and any provisional service) clean.
        state.tracker.reset();
    }
    eprintln!(
        "fluxcomp-serve: worker {} probe budget exhausted, re-entering service provisionally",
        state.index
    );
    state.consecutive_bad = 0;
    span.finish();
}

fn cached_fix(checked: &CheckedReading) -> CachedFix {
    let reading = &checked.reading;
    CachedFix {
        heading: reading.heading.value(),
        duty_x: reading.x.duty,
        duty_y: reading.y.duty,
        count_x: reading.x.count,
        count_y: reading.y.count,
        clipped: reading.x.clipped || reading.y.clipped,
    }
}

fn response_for(id: u64, fix: &CachedFix, cache_hit: bool) -> FixResponse {
    FixResponse {
        id,
        status: Status::Ok,
        quality: FixQuality::Good,
        cache_hit,
        clipped: fix.clipped,
        heading: fix.heading,
        duty_x: fix.duty_x,
        duty_y: fix.duty_y,
        count_x: fix.count_x,
        count_y: fix.count_y,
    }
}

/// The wire response for a freshly computed health-checked fix.
/// `Invalid` fixes answer [`Status::Unmeasurable`] but still carry the
/// held heading and the raw duty/count evidence, so a client can apply
/// its own policy to the stale value.
fn checked_response(id: u64, checked: &CheckedReading) -> FixResponse {
    let reading = &checked.reading;
    FixResponse {
        id,
        status: match checked.quality {
            FixQuality::Invalid => Status::Unmeasurable,
            _ => Status::Ok,
        },
        quality: checked.quality,
        cache_hit: false,
        clipped: reading.x.clipped || reading.y.clipped,
        heading: reading.heading.value(),
        duty_x: reading.x.duty,
        duty_y: reading.y.duty,
        count_x: reading.x.count,
        count_y: reading.y.count,
    }
}

fn record_latency(job: &Job, quality: FixQuality) {
    let us = job.enqueued.elapsed().as_secs_f64() * 1e6;
    obs::histogram_record("serve.latency_us", us);
    obs::histogram_record(
        match quality {
            FixQuality::Good => "serve.latency_us_good",
            FixQuality::Degraded => "serve.latency_us_degraded",
            FixQuality::Invalid => "serve.latency_us_invalid",
        },
        us,
    );
}
