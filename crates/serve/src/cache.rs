//! The sharded LRU fix cache.
//!
//! A compass fix is a pure function of `(field, seed)` for a given
//! design, so identical requests — the common case for a stationary
//! platform polled by many clients — can be deduplicated: the first
//! request computes the fix, every later one is a hash lookup. Keys
//! compare the *bit patterns* of the request floats, matching the
//! bit-exactness contract of the measurement core, with one
//! canonicalisation: `-0.0` is folded onto `0.0` before taking bits.
//! The measurement pipeline is insensitive to the sign of a zero field
//! component (the excitation sweep and counter see the identical
//! waveform), so letting the two bit patterns alias to different slots
//! would silently halve the hit rate for clients that compute `0.0`
//! with a sign. Non-finite fields never get a key — they cannot name a
//! fix, so the server rejects them before measurement and the cache is
//! never touched.
//!
//! The cache is sharded to keep lock hold times short under a worker
//! pool: each shard is an independent `Mutex` around a classic
//! `HashMap` + intrusive-list LRU with O(1) get/insert/evict. The shard
//! index is a hash of the key, so concurrent workers touching different
//! fixes rarely contend.

use crate::protocol::{FieldSpec, FixRequest};
use std::collections::HashMap;
use std::sync::Mutex;

/// Cache key: the fix-relevant request bits, with floats by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixKey {
    kind: u8,
    a: u64,
    b: u64,
    seed: u64,
}

impl FixKey {
    /// The key for a request (its id, deadline and cache flag do not
    /// affect the fix and are excluded). Returns `None` when any field
    /// float is non-finite — such a request cannot be cached.
    ///
    /// `-0.0` is canonicalised to `0.0` (`x + 0.0` maps a negative zero
    /// to positive zero and is the identity on every other finite
    /// value), so the two spellings of a zero field share one cache
    /// slot. The fix itself is bit-identical for both: the field enters
    /// the physics additively, and `h + -0.0 == h + 0.0` bitwise for
    /// every finite `h`.
    pub fn for_request(request: &FixRequest) -> Option<Self> {
        let canon = |x: f64| -> Option<u64> {
            if x.is_finite() {
                Some((x + 0.0).to_bits())
            } else {
                None
            }
        };
        match request.field {
            FieldSpec::HeadingTruth(deg) => Some(Self {
                kind: 0,
                a: canon(deg)?,
                b: 0,
                seed: request.seed,
            }),
            FieldSpec::FieldVector { hx, hy } => Some(Self {
                kind: 1,
                a: canon(hx)?,
                b: canon(hy)?,
                seed: request.seed,
            }),
        }
    }

    /// A well-mixed 64-bit hash (splitmix64 over the fields) used for
    /// shard selection, independent of the `HashMap` hasher.
    fn shard_hash(&self) -> u64 {
        let mut h = self.a ^ self.b.rotate_left(23) ^ self.seed.rotate_left(47) ^ self.kind as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d049bb133111eb);
        h ^ (h >> 31)
    }
}

/// The cached outcome of one fix — everything a response needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedFix {
    /// Heading in degrees.
    pub heading: f64,
    /// X-axis duty cycle.
    pub duty_x: f64,
    /// Y-axis duty cycle.
    pub duty_y: f64,
    /// X-axis counter output.
    pub count_x: i64,
    /// Y-axis counter output.
    pub count_y: i64,
    /// The V-I converter clipped on at least one axis.
    pub clipped: bool,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Node {
    key: FixKey,
    value: CachedFix,
    prev: usize,
    next: usize,
}

/// One shard: a `HashMap` from key to slab index plus a doubly linked
/// recency list threaded through the slab (head = most recent).
#[derive(Debug)]
struct Shard {
    map: HashMap<FixKey, usize>,
    slab: Vec<Node>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slab[h].prev = idx,
        }
        self.head = idx;
    }

    fn get(&mut self, key: &FixKey) -> Option<CachedFix> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(self.slab[idx].value)
    }

    fn insert(&mut self, key: FixKey, value: CachedFix) {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.push_front(idx);
            }
            return;
        }
        let idx = if self.slab.len() < self.capacity {
            self.slab.push(Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            });
            self.slab.len() - 1
        } else {
            // Full: evict the least recently used entry and reuse its slot.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slab[victim].key);
            self.slab[victim] = Node {
                key,
                value,
                prev: NIL,
                next: NIL,
            };
            victim
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }
}

/// The sharded LRU cache. Capacity 0 disables caching entirely (every
/// `get` misses, every `insert` is a no-op).
#[derive(Debug)]
pub struct FixCache {
    shards: Vec<Mutex<Shard>>,
}

impl FixCache {
    /// A cache holding about `capacity` fixes across `shards` shards
    /// (shard count is rounded up to a power of two; capacity is split
    /// evenly with each shard holding at least one entry when the cache
    /// is enabled at all).
    pub fn new(capacity: usize, shards: usize) -> Self {
        if capacity == 0 {
            return Self { shards: Vec::new() };
        }
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.div_ceil(n).max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
        }
    }

    fn shard(&self, key: &FixKey) -> Option<&Mutex<Shard>> {
        if self.shards.is_empty() {
            return None;
        }
        let idx = (key.shard_hash() as usize) & (self.shards.len() - 1);
        Some(&self.shards[idx])
    }

    /// Looks up a fix, refreshing its recency on a hit.
    pub fn get(&self, key: &FixKey) -> Option<CachedFix> {
        self.shard(key)?.lock().unwrap().get(key)
    }

    /// Inserts (or refreshes) a fix, evicting the shard's LRU entry when
    /// the shard is full.
    pub fn insert(&self, key: FixKey, value: CachedFix) {
        if let Some(shard) = self.shard(&key) {
            shard.lock().unwrap().insert(key, value);
        }
    }

    /// Total entries across all shards (locks each shard briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// `true` when no fixes are cached (or the cache is disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> FixKey {
        FixKey::for_request(&FixRequest {
            id: 0,
            seed,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(42.0),
        })
        .unwrap()
    }

    fn fix(heading: f64) -> CachedFix {
        CachedFix {
            heading,
            duty_x: 0.5,
            duty_y: 0.5,
            count_x: 1,
            count_y: 2,
            clipped: false,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = FixCache::new(8, 1);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), fix(10.0));
        assert_eq!(cache.get(&key(1)), Some(fix(10.0)));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = FixCache::new(3, 1);
        cache.insert(key(1), fix(1.0));
        cache.insert(key(2), fix(2.0));
        cache.insert(key(3), fix(3.0));
        // Touch 1 so 2 becomes the LRU, then overflow.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(4), fix(4.0));
        assert_eq!(cache.get(&key(2)), None);
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_value_and_recency() {
        let cache = FixCache::new(2, 1);
        cache.insert(key(1), fix(1.0));
        cache.insert(key(2), fix(2.0));
        cache.insert(key(1), fix(9.0));
        cache.insert(key(3), fix(3.0)); // evicts 2, not the refreshed 1
        assert_eq!(cache.get(&key(1)), Some(fix(9.0)));
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn heading_and_vector_keys_are_distinct() {
        let heading = FixKey::for_request(&FixRequest {
            id: 0,
            seed: 7,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(1.0),
        });
        let vector = FixKey::for_request(&FixRequest {
            id: 0,
            seed: 7,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::FieldVector { hx: 1.0, hy: 0.0 },
        });
        assert_ne!(heading, vector);
    }

    #[test]
    fn negative_zero_hits_the_positive_zero_entry() {
        // Regression: the two bit patterns of zero used to alias to
        // different keys, so a client writing `-0.0` missed a fix cached
        // under `0.0`. The fix is identical for both, so the keys must
        // collapse.
        let pos = FixKey::for_request(&FixRequest {
            id: 0,
            seed: 7,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(0.0),
        })
        .unwrap();
        let neg = FixKey::for_request(&FixRequest {
            id: 0,
            seed: 7,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(-0.0),
        })
        .unwrap();
        assert_eq!(pos, neg);
        let cache = FixCache::new(8, 1);
        cache.insert(pos, fix(0.25));
        assert_eq!(cache.get(&neg), Some(fix(0.25)));

        // Vector requests canonicalise each component independently.
        let v_pos = FixKey::for_request(&FixRequest {
            id: 0,
            seed: 7,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::FieldVector { hx: 12.0, hy: 0.0 },
        })
        .unwrap();
        let v_neg = FixKey::for_request(&FixRequest {
            id: 0,
            seed: 7,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::FieldVector { hx: 12.0, hy: -0.0 },
        })
        .unwrap();
        assert_eq!(v_pos, v_neg);
    }

    #[test]
    fn non_finite_fields_get_no_key() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                FixKey::for_request(&FixRequest {
                    id: 0,
                    seed: 7,
                    deadline_ms: 0,
                    no_cache: false,
                    field: FieldSpec::HeadingTruth(bad),
                }),
                None
            );
            assert_eq!(
                FixKey::for_request(&FixRequest {
                    id: 0,
                    seed: 7,
                    deadline_ms: 0,
                    no_cache: false,
                    field: FieldSpec::FieldVector { hx: 1.0, hy: bad },
                }),
                None
            );
        }
    }

    #[test]
    fn id_deadline_and_cache_flag_do_not_affect_the_key() {
        let base = FixRequest {
            id: 1,
            seed: 7,
            deadline_ms: 100,
            no_cache: false,
            field: FieldSpec::HeadingTruth(1.0),
        };
        let other = FixRequest {
            id: 2,
            deadline_ms: 5,
            no_cache: true,
            ..base
        };
        assert_eq!(FixKey::for_request(&base), FixKey::for_request(&other));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = FixCache::new(0, 8);
        cache.insert(key(1), fix(1.0));
        assert_eq!(cache.get(&key(1)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_cache_holds_roughly_its_capacity() {
        let cache = FixCache::new(64, 4);
        for s in 0..1000 {
            cache.insert(key(s), fix(s as f64));
        }
        // Each of the 4 shards holds ⌈64/4⌉ = 16 entries.
        assert_eq!(cache.len(), 64);
        // Recent keys hash across shards; the very last insert must be
        // present regardless of distribution.
        assert!(cache.get(&key(999)).is_some());
    }
}
