//! End-to-end tests of the fix server over real localhost sockets:
//! bit-exactness against direct measurement, overload shedding,
//! deadline enforcement, malformed-frame handling, and graceful
//! shutdown draining.

use fluxcomp_compass::{CompassConfig, CompassDesign, MeasureScratch};
use fluxcomp_serve::protocol::{
    read_frame, write_request, FieldSpec, FixRequest, FixResponse, ReadFrame, Status,
};
use fluxcomp_serve::{loadgen, FixServer, LoadGenConfig, ServeConfig};
use fluxcomp_units::angle::Degrees;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn design() -> CompassDesign {
    CompassDesign::new(CompassConfig::paper_design()).unwrap()
}

fn test_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

fn connect(server: &FixServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn round_trip(stream: &mut TcpStream, request: &FixRequest) -> FixResponse {
    write_request(stream, request).unwrap();
    read_one(stream)
}

fn read_one(stream: &mut TcpStream) -> FixResponse {
    let mut buf = Vec::new();
    match read_frame(stream, &mut buf).unwrap() {
        ReadFrame::Frame(len) => FixResponse::decode_payload(&buf[..len]).unwrap(),
        ReadFrame::Eof => panic!("server closed the connection without a response"),
    }
}

#[test]
fn served_heading_fix_is_bit_identical_to_direct_measurement() {
    let design = design();
    let mut scratch = MeasureScratch::for_design(&design);
    let mut server = FixServer::start(design.clone(), test_config()).unwrap();
    let mut stream = connect(&server);
    for (i, truth) in [0.0, 33.0, 123.0, 287.25, 359.0].into_iter().enumerate() {
        let seed = 1000 + i as u64;
        let request = FixRequest {
            id: i as u64,
            seed,
            deadline_ms: 0,
            no_cache: false,
            field: FieldSpec::HeadingTruth(truth),
        };
        // First fix computes (miss), second must hit the cache; both
        // match the direct scratch measurement bit for bit.
        let direct = design.measure_heading_scratch(Degrees::new(truth), seed, &mut scratch);
        for expect_hit in [false, true] {
            let response = round_trip(&mut stream, &request);
            assert_eq!(response.status, Status::Ok);
            assert_eq!(response.id, request.id);
            assert_eq!(response.cache_hit, expect_hit, "truth {truth}");
            assert_eq!(response.heading.to_bits(), direct.heading.value().to_bits());
            assert_eq!(response.duty_x.to_bits(), direct.x.duty.to_bits());
            assert_eq!(response.duty_y.to_bits(), direct.y.duty.to_bits());
            assert_eq!(response.count_x, direct.x.count);
            assert_eq!(response.count_y, direct.y.count);
            assert_eq!(response.clipped, direct.x.clipped || direct.y.clipped);
        }
    }
    server.shutdown();
}

#[test]
fn served_field_vector_fix_matches_direct_and_no_cache_recomputes() {
    let design = design();
    let mut scratch = MeasureScratch::for_design(&design);
    let mut server = FixServer::start(design.clone(), test_config()).unwrap();
    let mut stream = connect(&server);
    let (hx, hy) = design.axial_fields(Degrees::new(123.0));
    let direct = design.measure_field_scratch(hx, hy, 7, &mut scratch);
    let request = FixRequest {
        id: 40,
        seed: 7,
        deadline_ms: 0,
        no_cache: true,
        field: FieldSpec::FieldVector {
            hx: hx.value(),
            hy: hy.value(),
        },
    };
    for _ in 0..2 {
        let response = round_trip(&mut stream, &request);
        assert_eq!(response.status, Status::Ok);
        // no_cache never reports a hit and never populates the cache.
        assert!(!response.cache_hit);
        assert_eq!(response.heading.to_bits(), direct.heading.value().to_bits());
        assert_eq!(response.count_x, direct.x.count);
        assert_eq!(response.count_y, direct.y.count);
    }
    // The same fix *with* caching also agrees (field-vector path and
    // heading-truth path share the measurement core).
    let cached = round_trip(
        &mut stream,
        &FixRequest {
            no_cache: false,
            ..request
        },
    );
    assert_eq!(cached.status, Status::Ok);
    assert_eq!(cached.heading.to_bits(), direct.heading.value().to_bits());
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_typed_overloaded() {
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            batch_max: 1,
            cache_capacity: 0,
            // Slow fixes so the queue jams while requests keep arriving.
            fix_delay: Duration::from_millis(300),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    let burst = 16u64;
    for id in 0..burst {
        write_request(
            &mut stream,
            &FixRequest {
                id,
                seed: id,
                deadline_ms: 0,
                no_cache: true,
                field: FieldSpec::HeadingTruth(id as f64),
            },
        )
        .unwrap();
    }
    let mut ok = 0;
    let mut overloaded = 0;
    for _ in 0..burst {
        match read_one(&mut stream).status {
            Status::Ok => ok += 1,
            Status::Overloaded => overloaded += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    // Every request was answered: some computed, the shed ones typed.
    assert!(ok >= 1, "at least the in-flight fix completes");
    assert!(overloaded >= 1, "a 16-deep burst must overflow capacity 2");
    assert_eq!(ok + overloaded, burst);
    server.shutdown();
}

#[test]
fn expired_deadline_yields_deadline_exceeded_not_a_stale_fix() {
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            fix_delay: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    // First request occupies the single worker for 150 ms; the second,
    // with a 10 ms deadline, expires in the queue behind it.
    for (id, deadline_ms) in [(1u64, 0u32), (2, 10)] {
        write_request(
            &mut stream,
            &FixRequest {
                id,
                seed: id,
                deadline_ms,
                no_cache: true,
                field: FieldSpec::HeadingTruth(45.0),
            },
        )
        .unwrap();
    }
    let mut statuses = std::collections::HashMap::new();
    for _ in 0..2 {
        let response = read_one(&mut stream);
        statuses.insert(response.id, response.status);
    }
    assert_eq!(statuses[&1], Status::Ok);
    assert_eq!(statuses[&2], Status::DeadlineExceeded);
    server.shutdown();
}

#[test]
fn malformed_frame_gets_bad_request_then_close() {
    let mut server = FixServer::start(design(), test_config()).unwrap();
    let mut stream = connect(&server);
    // Valid length prefix, garbage payload.
    let garbage = [0xffu8; 24];
    stream
        .write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    stream.write_all(&garbage).unwrap();
    let response = read_one(&mut stream);
    assert_eq!(response.status, Status::BadRequest);
    // The server hangs up after a protocol violation.
    let mut buf = Vec::new();
    assert!(matches!(
        read_frame(&mut stream, &mut buf),
        Ok(ReadFrame::Eof) | Err(_)
    ));
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_every_queued_request() {
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            fix_delay: Duration::from_millis(50),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    let n = 8u64;
    for id in 0..n {
        write_request(
            &mut stream,
            &FixRequest {
                id,
                seed: id,
                deadline_ms: 0,
                no_cache: true,
                field: FieldSpec::HeadingTruth(10.0 * id as f64),
            },
        )
        .unwrap();
    }
    // Give the reader a moment to enqueue the burst, then shut down
    // while most fixes are still pending.
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    // Drain: every accepted request still gets a response.
    let mut answered = 0;
    for _ in 0..n {
        let response = read_one(&mut stream);
        assert_eq!(response.status, Status::Ok);
        answered += 1;
    }
    assert_eq!(answered, n);
    shutdown.join().unwrap();
}

#[test]
fn loadgen_round_trip_with_cache_hits() {
    let mut server = FixServer::start(design(), test_config()).unwrap();
    let report = loadgen::run(&LoadGenConfig {
        addr: server.local_addr().to_string(),
        requests: 200,
        connections: 4,
        unique_fixes: 10,
        ..LoadGenConfig::default()
    })
    .unwrap();
    assert_eq!(report.sent, 200);
    assert_eq!(report.ok, 200);
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.lost, 0);
    // 10 unique fixes: everything beyond the first computation of each
    // is a hit (≥ 200 − 10, modulo races between concurrent misses).
    assert!(
        report.cache_hits >= 150,
        "expected heavy cache hits, got {}",
        report.cache_hits
    );
    assert!(report.p50_ms >= 0.0 && report.p99_ms >= report.p50_ms);
    assert!(report.fixes_per_s > 0.0);
    server.shutdown();
}

#[test]
fn loadgen_open_loop_paced_run_completes() {
    let mut server = FixServer::start(design(), test_config()).unwrap();
    let report = loadgen::run(&LoadGenConfig {
        addr: server.local_addr().to_string(),
        requests: 50,
        connections: 2,
        rate_hz: 500.0,
        field_vector: true,
        no_cache: true,
        unique_fixes: 50,
        ..LoadGenConfig::default()
    })
    .unwrap();
    assert_eq!(report.ok, 50);
    assert_eq!(report.cache_hits, 0, "no_cache must bypass the cache");
    assert_eq!(report.protocol_errors, 0);
    // Open-loop pacing: 50 requests at 500/s take at least ~98 ms.
    assert!(report.elapsed >= Duration::from_millis(90));
    server.shutdown();
}
