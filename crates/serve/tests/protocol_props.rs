//! Property tests driving hostile inputs through the wire protocol:
//! random bytes, truncated frames, oversized length prefixes, future
//! version bytes, and reserved flag bits. The invariant throughout is
//! **no panic, typed error** — a byte stream can make the decoder
//! refuse, never crash or mis-parse.

use fluxcomp_serve::protocol::{
    read_frame, write_frame, FieldSpec, FixRequest, FixResponse, ProtocolError, ReadFrame,
    MAX_FRAME, MIN_WIRE_VERSION, REQUEST_LEN_VECTOR, REQUEST_TAG, WIRE_VERSION,
};
use proptest::prelude::*;
use std::io::Cursor;

/// A syntactically valid request frame (payload only) to mutate.
fn valid_request_payload(heading: f64, version: u8) -> Vec<u8> {
    let request = FixRequest {
        id: 77,
        seed: 5,
        deadline_ms: 250,
        no_cache: true,
        field: FieldSpec::HeadingTruth(heading),
    };
    let mut buf = [0u8; REQUEST_LEN_VECTOR];
    let len = request.encode_payload(&mut buf);
    let mut payload = buf[..len].to_vec();
    payload[1] = version;
    payload
}

proptest! {
    /// Arbitrary bytes through the frame reader: every outcome is a
    /// clean frame, a clean EOF, or a typed io error — never a panic,
    /// and never a frame longer than MAX_FRAME.
    #[test]
    fn frame_reader_never_panics_on_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut cursor = Cursor::new(bytes);
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf) {
            Ok(ReadFrame::Frame(len)) => prop_assert!(len <= MAX_FRAME),
            Ok(ReadFrame::Eof) => {}
            Err(_) => {}
        }
    }

    /// Arbitrary bytes through both payload decoders: no panic; on
    /// success the decoded request re-encodes to the same bytes.
    #[test]
    fn payload_decoders_never_panic_and_accepted_requests_round_trip(
        bytes in prop::collection::vec(any::<u8>(), 0..64)
    ) {
        if let Ok((request, version)) = FixRequest::decode_versioned(&bytes) {
            let mut buf = [0u8; REQUEST_LEN_VECTOR];
            let len = request.encode_payload(&mut buf);
            // Re-encoding writes the current version; splice the
            // original's version byte back before comparing.
            let mut reencoded = buf[..len].to_vec();
            reencoded[1] = version;
            prop_assert_eq!(&reencoded[..], &bytes[..len]);
        }
        let _ = FixResponse::decode_payload(&bytes);
    }

    /// Every truncation of a valid frame fails with UnexpectedEof (or
    /// reports a short payload at decode) — never a panic, never a
    /// bogus accepted fix.
    #[test]
    fn truncated_frames_fail_typed(cut in 0usize..24, heading in 0.0f64..360.0) {
        let payload = valid_request_payload(heading, WIRE_VERSION);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).unwrap();
        prop_assume!(cut < framed.len());
        let mut cursor = Cursor::new(&framed[..cut]);
        let mut buf = Vec::new();
        match read_frame(&mut cursor, &mut buf) {
            Ok(ReadFrame::Eof) => prop_assert_eq!(cut, 0),
            Ok(ReadFrame::Frame(_)) => prop_assert!(false, "truncated frame accepted"),
            Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        }
    }

    /// A length prefix beyond MAX_FRAME is refused before any read of
    /// the (possibly attacker-sized) body: typed InvalidData carrying
    /// ProtocolError::FrameTooLarge.
    #[test]
    fn oversized_length_prefix_is_refused(len in (MAX_FRAME as u32 + 1)..u32::MAX) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut cursor = Cursor::new(bytes);
        let mut buf = Vec::new();
        let err = read_frame(&mut cursor, &mut buf).expect_err("oversized frame accepted");
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let inner = err.into_inner().expect("typed inner error");
        let proto = inner.downcast::<ProtocolError>().expect("ProtocolError");
        prop_assert_eq!(*proto, ProtocolError::FrameTooLarge { got: len as usize });
    }

    /// Future protocol versions are a typed BadVersion, not a guess at
    /// the layout.
    #[test]
    fn future_versions_are_rejected_typed(version in (WIRE_VERSION + 1)..=u8::MAX) {
        let payload = valid_request_payload(123.0, version);
        prop_assert_eq!(
            FixRequest::decode_versioned(&payload),
            Err(ProtocolError::BadVersion { got: version })
        );
    }

    /// Reserved request flag bits (anything beyond FIELD_VECTOR and
    /// NO_CACHE) are a typed BadFlags at every supported version.
    #[test]
    fn reserved_flag_bits_are_rejected_typed(bit in 2u32..16, version in MIN_WIRE_VERSION..=WIRE_VERSION) {
        let mut payload = valid_request_payload(45.0, version);
        let mut flags = u16::from_le_bytes([payload[2], payload[3]]);
        flags |= 1 << bit;
        payload[2..4].copy_from_slice(&flags.to_le_bytes());
        prop_assert_eq!(
            FixRequest::decode_versioned(&payload),
            Err(ProtocolError::BadFlags { got: flags })
        );
    }

    /// A corrupted tag byte is a typed BadTag regardless of the rest of
    /// the payload.
    #[test]
    fn corrupted_tag_is_rejected_typed(tag in any::<u8>(), heading in 0.0f64..360.0) {
        prop_assume!(tag != REQUEST_TAG);
        let mut payload = valid_request_payload(heading, WIRE_VERSION);
        payload[0] = tag;
        prop_assert_eq!(
            FixRequest::decode_versioned(&payload),
            Err(ProtocolError::BadTag { got: tag })
        );
    }
}
