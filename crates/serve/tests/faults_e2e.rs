//! End-to-end fault-injection tests over real localhost sockets: fix
//! quality on the wire, single-axis degraded fixes with bounded
//! heading error, `Unmeasurable` held headings, worker quarantine and
//! recovery, negative-zero cache aliasing, non-finite field rejection,
//! and `Overloaded` retry in the load generator.

use fluxcomp_compass::{CompassConfig, CompassDesign, FixQuality};
use fluxcomp_faults::{AxisSel, FaultKind, FaultPlan, FaultSpec};
use fluxcomp_serve::protocol::{
    read_frame, write_request, FieldSpec, FixRequest, FixResponse, ReadFrame, Status,
};
use fluxcomp_serve::{loadgen, FixServer, LoadGenConfig, ServeConfig, WorkerFault};
use std::net::TcpStream;
use std::time::Duration;

fn design() -> CompassDesign {
    CompassDesign::new(CompassConfig::paper_design()).unwrap()
}

fn connect(server: &FixServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

fn round_trip(stream: &mut TcpStream, request: &FixRequest) -> FixResponse {
    write_request(stream, request).unwrap();
    let mut buf = Vec::new();
    match read_frame(stream, &mut buf).unwrap() {
        ReadFrame::Frame(len) => FixResponse::decode_payload(&buf[..len]).unwrap(),
        ReadFrame::Eof => panic!("server closed the connection without a response"),
    }
}

fn heading_request(id: u64, truth: f64, seed: u64) -> FixRequest {
    FixRequest {
        id,
        seed,
        deadline_ms: 0,
        no_cache: true,
        field: FieldSpec::HeadingTruth(truth),
    }
}

#[test]
fn open_pickup_yields_degraded_fixes_with_bounded_error_never_good_garbage() {
    // A stationary platform (fixed truth) polled repeatedly while the X
    // pickup goes open 40% of the time: Good fixes stay within the 1°
    // spec, Degraded fixes fall back to the Y axis anchored at the last
    // good heading and stay bounded, and a large-error fix is never
    // flagged Good.
    let truth = 77.0;
    let plan = FaultPlan::new(0xE2E1).with(FaultSpec {
        kind: FaultKind::OpenPickup,
        axis: AxisSel::X,
        rate: 0.4,
    });
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            fault_plan: Some(plan),
            quarantine_after: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    let mut degraded = 0;
    let mut good = 0;
    for k in 0..40u64 {
        let response = round_trip(&mut stream, &heading_request(k, truth, 9000 + k));
        let error = {
            let d = (response.heading - truth).abs() % 360.0;
            d.min(360.0 - d)
        };
        match response.quality {
            FixQuality::Good => {
                assert_eq!(response.status, Status::Ok);
                assert!(error <= 1.0, "fix {k}: Good fix with {error:.2}° error");
                good += 1;
            }
            FixQuality::Degraded => {
                assert_eq!(response.status, Status::Ok);
                assert!(
                    error <= 5.0,
                    "fix {k}: Degraded fix error {error:.2}° is unbounded"
                );
                degraded += 1;
            }
            FixQuality::Invalid => {
                assert_eq!(response.status, Status::Unmeasurable);
            }
        }
    }
    assert!(good >= 1, "a 40% fault rate must leave some Good fixes");
    assert!(degraded >= 1, "a 40% fault rate must degrade some fixes");
    server.shutdown();
}

#[test]
fn dual_axis_fault_answers_unmeasurable_with_held_heading() {
    // Both pickups open on every fix: the first fixes have no anchor
    // (held heading 0°); nothing is ever Good, so the cache never
    // serves a hit even though caching is enabled.
    let plan = FaultPlan::new(0xE2E2).with(FaultSpec {
        kind: FaultKind::OpenPickup,
        axis: AxisSel::Both,
        rate: 1.0,
    });
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            fault_plan: Some(plan),
            quarantine_after: 0,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    for k in 0..6u64 {
        let request = FixRequest {
            no_cache: false,
            ..heading_request(k, 120.0, 100 + k)
        };
        let response = round_trip(&mut stream, &request);
        assert_eq!(response.status, Status::Unmeasurable, "fix {k}");
        assert_eq!(response.quality, FixQuality::Invalid, "fix {k}");
        assert!(!response.cache_hit, "fix {k}: Invalid fixes must not cache");
        assert_eq!(
            response.heading.to_bits(),
            0.0f64.to_bits(),
            "fix {k}: with no good anchor the held heading is 0°"
        );
    }
    server.shutdown();
}

#[test]
fn faulty_worker_quarantines_probes_and_recovers() {
    // Worker 0 serves its first 8 computed fixes with a stuck-low X
    // comparator. After 4 consecutive non-Good fixes it quarantines,
    // rebuilds its scratch and probes; the probes burn through the
    // remaining forced-fault fixes, so recovery happens inside the
    // first quarantine and all later fixes are Good.
    let session = fluxcomp_obs::init_for_test();
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            cache_capacity: 0,
            quarantine_after: 4,
            quarantine_backoff: Duration::from_millis(1),
            worker_fault: Some(WorkerFault {
                worker: 0,
                fixes: 8,
            }),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    let mut qualities = Vec::new();
    for k in 0..12u64 {
        let response = round_trip(&mut stream, &heading_request(k, 200.0, 500 + k));
        qualities.push(response.quality);
    }
    server.shutdown();
    let profile = session.profile().expect("recorder installed");
    fluxcomp_obs::uninstall();
    for (k, quality) in qualities.iter().take(4).enumerate() {
        assert_ne!(
            *quality,
            FixQuality::Good,
            "fix {k} was served by the forced-faulty worker"
        );
    }
    assert_eq!(
        qualities.last(),
        Some(&FixQuality::Good),
        "the recovered worker must serve Good fixes again"
    );
    assert!(
        profile.counter("serve.worker_quarantines") >= Some(1),
        "quarantine must have been entered"
    );
    assert!(
        profile.counter("serve.worker_recoveries") >= Some(1),
        "the probe must have recovered the worker"
    );
}

#[test]
fn negative_zero_field_hits_the_positive_zero_cache_entry() {
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut stream = connect(&server);
    let request = |id: u64, hy: f64| FixRequest {
        id,
        seed: 42,
        deadline_ms: 0,
        no_cache: false,
        field: FieldSpec::FieldVector { hx: 11.9, hy },
    };
    let miss = round_trip(&mut stream, &request(1, 0.0));
    assert_eq!(miss.status, Status::Ok);
    assert!(!miss.cache_hit);
    // The sign of a zero field is not part of the fix's identity.
    let hit = round_trip(&mut stream, &request(2, -0.0));
    assert_eq!(hit.status, Status::Ok);
    assert!(hit.cache_hit, "-0.0 must hit the 0.0 cache entry");
    assert_eq!(hit.heading.to_bits(), miss.heading.to_bits());
    assert_eq!(hit.count_x, miss.count_x);
    assert_eq!(hit.count_y, miss.count_y);
    server.shutdown();
}

#[test]
fn non_finite_fields_are_rejected_with_bad_request() {
    // The protocol layer refuses non-finite field floats at decode, so
    // a hostile frame gets a typed BadRequest (and a hang-up, since the
    // stream can no longer be trusted) — never a NaN-poisoned fix or a
    // NaN-keyed cache entry.
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for (hx, hy) in [
        (f64::NAN, 0.0),
        (12.0, f64::INFINITY),
        (f64::NEG_INFINITY, 1.0),
    ] {
        let mut stream = connect(&server);
        let response = round_trip(
            &mut stream,
            &FixRequest {
                id: 9,
                seed: 1,
                deadline_ms: 0,
                no_cache: false,
                field: FieldSpec::FieldVector { hx, hy },
            },
        );
        assert_eq!(response.status, Status::BadRequest);
        assert_eq!(response.quality, FixQuality::Invalid);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut stream, &mut buf),
            Ok(ReadFrame::Eof) | Err(_)
        ));
    }
    // A fresh connection with a clean request still gets its fix.
    let mut stream = connect(&server);
    let ok = round_trip(&mut stream, &heading_request(4, 10.0, 1));
    assert_eq!(ok.status, Status::Ok);
    server.shutdown();
}

#[test]
fn loadgen_retries_overloaded_responses_within_budget() {
    // A deliberately tiny server sheds most of a burst; with retries
    // enabled the load generator wins back shed requests while staying
    // within its run-wide budget.
    let mut server = FixServer::start(
        design(),
        ServeConfig {
            workers: 1,
            queue_capacity: 1,
            batch_max: 1,
            cache_capacity: 0,
            fix_delay: Duration::from_millis(20),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let report = loadgen::run(&LoadGenConfig {
        addr: server.local_addr().to_string(),
        requests: 24,
        connections: 2,
        no_cache: true,
        unique_fixes: 24,
        max_retries: 3,
        retry_budget: 64,
        retry_backoff: Duration::from_millis(30),
        ..LoadGenConfig::default()
    })
    .unwrap();
    server.shutdown();
    assert!(report.overloaded >= 1, "the tiny queue must shed something");
    assert!(report.retries >= 1, "shed requests must be retried");
    assert!(report.retries <= 64, "retries must respect the budget");
    assert_eq!(report.sent, 24 + report.retries);
    assert_eq!(report.lost, 0, "every send (retries included) is answered");
    assert_eq!(report.protocol_errors, 0);
}
