//! The scoped worker pool and the ordered parallel map.
//!
//! Tasks are distributed by **chunked self-scheduling**: a shared atomic
//! cursor hands out contiguous index chunks, so idle workers steal the
//! next chunk the moment they finish — coarse enough to keep contention
//! negligible, fine enough to balance skewed workloads (the expensive
//! transient simulations this workspace runs can vary several-fold in
//! cost across a sweep). Each worker buffers `(index, value)` pairs
//! locally; the caller scatters them back into index order afterwards,
//! which is what makes the map deterministic under any schedule.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep is executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPolicy {
    threads: NonZeroUsize,
    chunk: NonZeroUsize,
}

impl ExecPolicy {
    /// Strictly serial execution on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: NonZeroUsize::MIN,
            chunk: NonZeroUsize::MIN,
        }
    }

    /// One worker per available core (or the `FLUXCOMP_THREADS`
    /// environment override, when set and nonzero).
    #[must_use]
    pub fn auto() -> Self {
        let env = std::env::var("FLUXCOMP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .and_then(NonZeroUsize::new);
        let threads = env
            .unwrap_or_else(|| std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN));
        Self::with_threads(threads.get())
    }

    /// Exactly `threads` workers (clamped to at least one).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads).unwrap_or(NonZeroUsize::MIN),
            chunk: NonZeroUsize::MIN,
        }
    }

    /// Sets the self-scheduling chunk size (tasks handed to a worker per
    /// grab; clamped to at least one). The default of 1 suits this
    /// workspace's task granularity — one task is a whole transient
    /// simulation, milliseconds of work.
    #[must_use]
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = NonZeroUsize::new(chunk).unwrap_or(NonZeroUsize::MIN);
        self
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// The chunk size.
    #[must_use]
    pub fn chunk(&self) -> usize {
        self.chunk.get()
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::auto()
    }
}

/// Maps `f` over `items`, returning results in item order.
///
/// `f` receives `(index, &item)`. With one thread (or one item) this is
/// a plain serial loop; otherwise items are processed by a scoped worker
/// pool. For pure `f` the output is bit-for-bit identical in both cases
/// — see the crate-level determinism contract.
pub fn par_map<T, U, F>(policy: &ExecPolicy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = policy.threads().min(n.max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One indexed-result buffer per worker, tagged by its first index.
    type Bucket<U> = Vec<(usize, U)>;
    let cursor = AtomicUsize::new(0);
    let chunk = policy.chunk();
    let buckets: Mutex<Vec<(usize, Bucket<U>)>> = Mutex::new(Vec::with_capacity(workers));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        let index = start + i;
                        local.push((index, f(index, item)));
                    }
                }
                if !local.is_empty() {
                    let first = local[0].0;
                    buckets
                        .lock()
                        .expect("worker panicked")
                        .push((first, local));
                }
            });
        }
    });

    // Scatter the per-worker buffers back into index order.
    let mut buckets = buckets.into_inner().expect("worker panicked");
    buckets.sort_unstable_by_key(|&(first, _)| first);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (_, bucket) in buckets {
        for (index, value) in bucket {
            debug_assert!(out[index].is_none(), "task {index} produced twice");
            out[index] = Some(value);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every task produces exactly one result"))
        .collect()
}

/// Maps `f` over the index range `0..n`, returning results in order.
///
/// The index-sweep convenience wrapper around [`par_map`] used by the
/// heading sweeps (`k -> heading k·360/n`) and Monte-Carlo trials.
pub fn par_map_range<U, F>(policy: &ExecPolicy, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = policy.threads().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let indices: Vec<usize> = (0..n).collect();
    par_map(policy, &indices, |_, &k| f(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let items: Vec<f64> = (0..997).map(|k| k as f64 * 0.377).collect();
        let f = |i: usize, x: &f64| (x.sin() * (i as f64 + 1.0)).sqrt();
        let serial = par_map(&ExecPolicy::serial(), &items, f);
        for threads in [2, 3, 8, 64] {
            let par = par_map(&ExecPolicy::with_threads(threads), &items, f);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "at {threads} threads");
            }
        }
    }

    #[test]
    fn results_are_in_index_order() {
        let out = par_map_range(&ExecPolicy::with_threads(4), 1000, |k| k * 3);
        for (k, v) in out.iter().enumerate() {
            assert_eq!(*v, k * 3);
        }
    }

    #[test]
    fn chunking_covers_everything_exactly_once() {
        for chunk in [1, 3, 7, 100, 10_000] {
            let policy = ExecPolicy::with_threads(5).with_chunk(chunk);
            let out = par_map_range(&policy, 1234, |k| k);
            assert_eq!(out, (0..1234).collect::<Vec<_>>(), "chunk {chunk}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&ExecPolicy::auto(), &empty, |_, v| *v).is_empty());
        assert_eq!(par_map_range(&ExecPolicy::auto(), 1, |k| k + 9), vec![9]);
    }

    #[test]
    fn policy_constructors() {
        assert_eq!(ExecPolicy::serial().threads(), 1);
        assert_eq!(ExecPolicy::with_threads(0).threads(), 1);
        assert_eq!(ExecPolicy::with_threads(6).threads(), 6);
        assert_eq!(ExecPolicy::with_threads(2).with_chunk(0).chunk(), 1);
        assert!(ExecPolicy::auto().threads() >= 1);
    }

    #[test]
    fn skewed_workloads_balance() {
        // Front-loaded cost: without self-scheduling one worker would do
        // nearly everything. This just asserts correctness, not timing.
        let out = par_map_range(&ExecPolicy::with_threads(4), 200, |k| {
            let spin = if k < 8 { 20_000 } else { 10 };
            let mut acc = k as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (k, acc)
        });
        for (k, (kk, _)) in out.iter().enumerate() {
            assert_eq!(k, *kk);
        }
    }
}
