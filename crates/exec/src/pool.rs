//! The execution policy, the scoped worker pool and the ordered
//! parallel map.
//!
//! Tasks are distributed by **chunked self-scheduling**: a shared atomic
//! cursor hands out contiguous index chunks, so idle workers steal the
//! next chunk the moment they finish — coarse enough to keep contention
//! negligible, fine enough to balance skewed workloads (the expensive
//! transient simulations this workspace runs can vary several-fold in
//! cost across a sweep). Each worker buffers `(index, value)` pairs
//! locally; the caller scatters them back into index order afterwards,
//! which is what makes the map deterministic under any schedule.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a sweep is executed: serially on the calling thread, or on a
/// scoped worker pool. This is the single execution argument the
/// workspace's unified entry points take (`sweep_headings`,
/// `run_monte_carlo`, `worst_tilt_error`, `production_test_batch`, …) —
/// the result is bit-identical either way, so the policy is purely a
/// throughput choice.
///
/// Construct via [`ExecPolicy::serial`], [`ExecPolicy::parallel`],
/// [`ExecPolicy::auto`] or [`ExecPolicy::with_threads`]; the variants
/// themselves are non-exhaustive so invariants (nonzero worker/chunk
/// counts) always hold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ExecPolicy {
    /// Strictly serial execution on the calling thread.
    Serial,
    /// A scoped worker pool.
    #[non_exhaustive]
    Parallel {
        /// Number of worker threads (≥ 2; smaller requests normalise to
        /// [`ExecPolicy::Serial`]).
        workers: NonZeroUsize,
        /// Tasks handed to a worker per self-scheduling grab.
        chunk: NonZeroUsize,
    },
}

impl ExecPolicy {
    /// Strictly serial execution on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self::Serial
    }

    /// A pool of exactly `workers` threads; `workers <= 1` normalises
    /// to [`ExecPolicy::Serial`] so policy equality reflects behaviour.
    #[must_use]
    pub fn parallel(workers: usize) -> Self {
        match NonZeroUsize::new(workers).filter(|w| w.get() > 1) {
            Some(workers) => Self::Parallel {
                workers,
                chunk: NonZeroUsize::MIN,
            },
            None => Self::Serial,
        }
    }

    /// One worker per available core (or the `FLUXCOMP_THREADS`
    /// environment override, when set and nonzero).
    #[must_use]
    pub fn auto() -> Self {
        let env = std::env::var("FLUXCOMP_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .and_then(NonZeroUsize::new);
        let threads = env
            .unwrap_or_else(|| std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN));
        Self::parallel(threads.get())
    }

    /// Exactly `threads` workers (alias of [`ExecPolicy::parallel`],
    /// kept from the original API).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self::parallel(threads)
    }

    /// Sets the self-scheduling chunk size (tasks handed to a worker per
    /// grab; clamped to at least one). The default of 1 suits this
    /// workspace's task granularity — one task is a whole transient
    /// simulation, milliseconds of work. No effect on a serial policy.
    #[must_use]
    pub fn with_chunk(self, chunk: usize) -> Self {
        match self {
            Self::Serial => Self::Serial,
            Self::Parallel { workers, .. } => Self::Parallel {
                workers,
                chunk: NonZeroUsize::new(chunk).unwrap_or(NonZeroUsize::MIN),
            },
        }
    }

    /// The worker count (1 for the serial policy).
    #[must_use]
    pub fn threads(&self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Parallel { workers, .. } => workers.get(),
        }
    }

    /// The chunk size (1 for the serial policy).
    #[must_use]
    pub fn chunk(&self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Parallel { chunk, .. } => chunk.get(),
        }
    }

    /// `true` when this policy runs on the calling thread only.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        matches!(self, Self::Serial)
    }
}

impl Default for ExecPolicy {
    fn default() -> Self {
        Self::auto()
    }
}

/// Maps `f` over `items`, returning results in item order.
///
/// `f` receives `(index, &item)`. With a serial policy (or one item)
/// this is a plain serial loop; otherwise items are processed by a
/// scoped worker pool. For pure `f` the output is bit-for-bit identical
/// in both cases — see the crate-level determinism contract.
pub fn par_map<T, U, F>(policy: &ExecPolicy, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_scratch(policy, items, || (), |_, index, item| f(index, item))
}

/// Like [`par_map`], but with a reusable per-worker scratch value.
///
/// Each execution context — the calling thread under a serial policy,
/// each worker thread otherwise — builds **one** scratch with `init`
/// (lazily, on its first task) and reuses it for every task it runs, so
/// per-task setup that would otherwise be allocated for every item (a
/// detector + counter pair, a solver workspace, …) is paid once per
/// worker instead. `f` receives `(&mut scratch, index, &item)`.
///
/// The determinism contract still holds for any `f` that is a pure
/// function of `(index, item)` *given a freshly initialised scratch it
/// fully resets per task* — which scratch between tasks `f` happens to
/// receive must not leak into the result. The compass measurement
/// scratch resets its detector and counter on every fix for exactly this
/// reason.
pub fn par_map_scratch<S, T, U, I, F>(policy: &ExecPolicy, items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> U + Sync,
{
    let n = items.len();
    let workers = policy.threads().min(n.max(1));
    fluxcomp_obs::counter_add("exec.tasks", n as u64);
    if workers <= 1 {
        fluxcomp_obs::counter_add("exec.serial_maps", 1);
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }
    fluxcomp_obs::counter_add("exec.par_maps", 1);

    // One indexed-result buffer per worker, tagged by its first index.
    type Bucket<U> = Vec<(usize, U)>;
    let cursor = AtomicUsize::new(0);
    let chunk = policy.chunk();
    let buckets: Mutex<Vec<(usize, Bucket<U>)>> = Mutex::new(Vec::with_capacity(workers));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let busy = fluxcomp_obs::span("exec.worker_busy");
                let mut scratch: Option<S> = None;
                let mut local: Vec<(usize, U)> = Vec::new();
                let mut chunks_claimed = 0u64;
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    chunks_claimed += 1;
                    let end = (start + chunk).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        let index = start + i;
                        let scratch = scratch.get_or_insert_with(&init);
                        local.push((index, f(scratch, index, item)));
                    }
                }
                fluxcomp_obs::counter_add("exec.chunks_claimed", chunks_claimed);
                busy.finish();
                if !local.is_empty() {
                    let first = local[0].0;
                    buckets
                        .lock()
                        .expect("worker panicked")
                        .push((first, local));
                }
            });
        }
    });

    // Scatter the per-worker buffers back into index order.
    let mut buckets = buckets.into_inner().expect("worker panicked");
    buckets.sort_unstable_by_key(|&(first, _)| first);
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (_, bucket) in buckets {
        for (index, value) in bucket {
            debug_assert!(out[index].is_none(), "task {index} produced twice");
            out[index] = Some(value);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every task produces exactly one result"))
        .collect()
}

/// Maps `f` over the index range `0..n`, returning results in order.
///
/// The index-sweep convenience wrapper around [`par_map`] used by the
/// heading sweeps (`k -> heading k·360/n`) and Monte-Carlo trials.
pub fn par_map_range<U, F>(policy: &ExecPolicy, n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_range_scratch(policy, n, || (), |_, k| f(k))
}

/// Index-range twin of [`par_map_scratch`]: maps `f(&mut scratch, k)`
/// over `0..n` with one lazily built scratch per execution context.
///
/// This is the engine under the allocation-free sweeps: a serial sweep
/// reuses a single scratch across all `n` fixes, a parallel sweep one
/// per worker thread.
pub fn par_map_range_scratch<S, U, I, F>(policy: &ExecPolicy, n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let workers = policy.threads().min(n.max(1));
    if workers <= 1 {
        fluxcomp_obs::counter_add("exec.tasks", n as u64);
        fluxcomp_obs::counter_add("exec.serial_maps", 1);
        let mut scratch = init();
        return (0..n).map(|k| f(&mut scratch, k)).collect();
    }
    let indices: Vec<usize> = (0..n).collect();
    par_map_scratch(policy, &indices, init, |scratch, _, &k| f(scratch, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let items: Vec<f64> = (0..997).map(|k| k as f64 * 0.377).collect();
        let f = |i: usize, x: &f64| (x.sin() * (i as f64 + 1.0)).sqrt();
        let serial = par_map(&ExecPolicy::serial(), &items, f);
        for threads in [2, 3, 8, 64] {
            let par = par_map(&ExecPolicy::with_threads(threads), &items, f);
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits(), "at {threads} threads");
            }
        }
    }

    #[test]
    fn results_are_in_index_order() {
        let out = par_map_range(&ExecPolicy::with_threads(4), 1000, |k| k * 3);
        for (k, v) in out.iter().enumerate() {
            assert_eq!(*v, k * 3);
        }
    }

    #[test]
    fn chunking_covers_everything_exactly_once() {
        for chunk in [1, 3, 7, 100, 10_000] {
            let policy = ExecPolicy::with_threads(5).with_chunk(chunk);
            let out = par_map_range(&policy, 1234, |k| k);
            assert_eq!(out, (0..1234).collect::<Vec<_>>(), "chunk {chunk}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&ExecPolicy::auto(), &empty, |_, v| *v).is_empty());
        assert_eq!(par_map_range(&ExecPolicy::auto(), 1, |k| k + 9), vec![9]);
    }

    #[test]
    fn policy_constructors() {
        assert_eq!(ExecPolicy::serial().threads(), 1);
        assert_eq!(ExecPolicy::with_threads(0).threads(), 1);
        assert_eq!(ExecPolicy::with_threads(6).threads(), 6);
        assert_eq!(ExecPolicy::with_threads(2).with_chunk(0).chunk(), 1);
        assert!(ExecPolicy::auto().threads() >= 1);
    }

    #[test]
    fn policy_normalises_degenerate_parallelism() {
        // One worker *is* serial; the enum says so, and equality agrees.
        assert_eq!(ExecPolicy::parallel(1), ExecPolicy::Serial);
        assert_eq!(ExecPolicy::parallel(0), ExecPolicy::Serial);
        assert_eq!(ExecPolicy::with_threads(1), ExecPolicy::serial());
        assert!(ExecPolicy::parallel(1).is_serial());
        assert!(!ExecPolicy::parallel(2).is_serial());
        // Chunk adjustment on a serial policy is a no-op.
        assert_eq!(ExecPolicy::serial().with_chunk(64), ExecPolicy::Serial);
        // Matching the enum works for downstream dispatch.
        match ExecPolicy::parallel(4) {
            ExecPolicy::Parallel { workers, .. } => assert_eq!(workers.get(), 4),
            _ => panic!("expected the parallel variant"),
        }
    }

    #[test]
    fn skewed_workloads_balance() {
        // Front-loaded cost: without self-scheduling one worker would do
        // nearly everything. This just asserts correctness, not timing.
        let out = par_map_range(&ExecPolicy::with_threads(4), 200, |k| {
            let spin = if k < 8 { 20_000 } else { 10 };
            let mut acc = k as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (k, acc)
        });
        for (k, (kk, _)) in out.iter().enumerate() {
            assert_eq!(k, *kk);
        }
    }

    #[test]
    fn scratch_is_reused_within_a_context() {
        // Serial: one scratch sees every task in order.
        let out = par_map_range_scratch(
            &ExecPolicy::serial(),
            10,
            || 0u32,
            |calls, k| {
                *calls += 1;
                (*calls, k)
            },
        );
        for (k, &(calls, kk)) in out.iter().enumerate() {
            assert_eq!(kk, k);
            assert_eq!(calls as usize, k + 1, "serial scratch not reused");
        }
        // Parallel: results stay ordered and correct regardless of which
        // worker's scratch computed them.
        let out = par_map_range_scratch(
            &ExecPolicy::with_threads(4),
            100,
            || 0u32,
            |calls, k| {
                *calls += 1;
                k * 2
            },
        );
        assert_eq!(out, (0..100).map(|k| k * 2).collect::<Vec<_>>());
    }

    #[test]
    fn scratch_init_runs_at_most_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = par_map_range_scratch(
            &ExecPolicy::with_threads(4),
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u8
            },
            |_, k| k,
        );
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let count = inits.load(Ordering::Relaxed);
        assert!((1..=4).contains(&count), "scratch built {count} times");
    }

    #[test]
    fn scratch_map_over_items_matches_plain_map() {
        let items: Vec<f64> = (0..513).map(|k| k as f64 * 0.7).collect();
        let plain = par_map(&ExecPolicy::with_threads(3), &items, |i, x| {
            x.sin() + i as f64
        });
        let scratched = par_map_scratch(
            &ExecPolicy::with_threads(3),
            &items,
            || (),
            |_, i, x| x.sin() + i as f64,
        );
        for (a, b) in plain.iter().zip(&scratched) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pool_reports_work_to_the_recorder() {
        let session = fluxcomp_obs::init_for_test();
        let _ = par_map_range(&ExecPolicy::with_threads(4).with_chunk(8), 64, |k| k);
        let profile = session.profile().expect("recorder installed");
        fluxcomp_obs::uninstall();
        assert_eq!(profile.counter("exec.tasks"), Some(64));
        assert_eq!(profile.counter("exec.par_maps"), Some(1));
        // 64 tasks in chunks of 8 → exactly 8 claims, however the
        // workers split them.
        assert_eq!(profile.counter("exec.chunks_claimed"), Some(8));
        let busy = profile.span("exec.worker_busy").expect("worker spans");
        assert_eq!(busy.count, 4);
    }
}
