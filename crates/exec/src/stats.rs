//! The unified streaming statistics accumulator.
//!
//! The accuracy sweeps (`compass::evaluate::AccuracyStats`) and the
//! Monte-Carlo harness (`msim::montecarlo::MonteCarloResult`) previously
//! carried two ad-hoc copies of the same sums. [`StreamStats`] is the
//! single-pass replacement both build on: one `push` per sample
//! accumulates count, signed sum (bias), absolute sum, sum of squares
//! and extrema. [`SortedSamples`] complements it for quantile queries —
//! sort once, answer many.
//!
//! Determinism note: `push` is always driven in task-index order over
//! the ordered output of `exec::par_map`, so the floating-point
//! accumulation order — and every rounded bit of the derived statistics
//! — is identical to a serial loop.

/// Single-pass accumulator for max/mean/rms/bias statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StreamStats {
    count: usize,
    sum: f64,
    sum_abs: f64,
    sum_sq: f64,
    max_abs: f64,
    min: f64,
    max: f64,
}

impl StreamStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            sum_abs: 0.0,
            sum_sq: 0.0,
            max_abs: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Accumulates one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_abs += x.abs();
        self.sum_sq += x * x;
        self.max_abs = self.max_abs.max(x.abs());
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Accumulates every sample of an iterator, in iteration order.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = Self::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Number of samples accumulated.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// `true` when nothing has been accumulated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the signed samples (the systematic bias of an error
    /// series). Zero for an empty accumulator.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Mean of the absolute values.
    #[must_use]
    pub fn mean_abs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_abs / self.count as f64
        }
    }

    /// Root mean square.
    #[must_use]
    pub fn rms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum_sq / self.count as f64).sqrt()
        }
    }

    /// Population standard deviation (σ, not the n−1 sample estimate —
    /// matching the Monte-Carlo harness's historical definition).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.count as f64 - mean * mean)
            .max(0.0)
            .sqrt()
    }

    /// Largest absolute sample.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.max_abs
    }

    /// Smallest sample, `+∞` when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample, `−∞` when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Samples sorted once for repeated quantile queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedSamples {
    sorted: Vec<f64>,
}

impl SortedSamples {
    /// Sorts a copy of `samples` (total order; NaNs sort last).
    #[must_use]
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` when there are no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile by nearest-rank on the sorted samples
    /// (`q = 0.5` is the median; the historical Monte-Carlo rule).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or there are no samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        assert!(!self.sorted.is_empty(), "no samples");
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_reference() {
        let xs: Vec<f64> = (0..1000).map(|k| ((k * 37) % 101) as f64 - 50.0).collect();
        let s = StreamStats::from_samples(xs.iter().copied());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let mean_abs = xs.iter().map(|x| x.abs()).sum::<f64>() / n;
        let rms = (xs.iter().map(|x| x * x).sum::<f64>() / n).sqrt();
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        assert_eq!(s.count(), xs.len());
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.mean_abs() - mean_abs).abs() < 1e-12);
        assert!((s.rms() - rms).abs() < 1e-12);
        assert!((s.std_dev() - var.sqrt()).abs() < 1e-9);
        assert_eq!(s.max_abs(), 50.0);
        assert_eq!(s.min(), -50.0);
        assert_eq!(s.max(), 50.0);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = StreamStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.mean_abs(), 0.0);
        assert_eq!(s.rms(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.max_abs(), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let s = SortedSamples::new(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(s.len(), 5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 3.0);
        assert_eq!(s.quantile(1.0), 5.0);
        assert_eq!(s.quantile(0.9), 5.0); // round(0.9·4) = 4
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_range_checked() {
        let _ = SortedSamples::new(&[1.0]).quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_quantile_rejected() {
        let _ = SortedSamples::new(&[]).quantile(0.5);
    }
}
