//! Per-task seed derivation.
//!
//! Parallel randomised workloads must not share one sequential RNG —
//! draw order would then depend on scheduling. Instead every task
//! derives its own seed from the experiment's base seed and the task
//! index. The serial reference paths use the *same* derivation, which is
//! what makes parallel results bit-identical to serial ones.

/// Derives the seed for task `index` from `base`.
///
/// Two rounds of the splitmix64 finalizer over `base` and the index.
/// The map is bijective in `base` for fixed `index`, and neighbouring
/// indices land in statistically unrelated states, so per-task generators
/// seeded this way are independent for any practical purpose.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    mix(mix(base ^ 0xA076_1D64_78BD_642F).wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// The splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn distinct_across_indices_and_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for idx in 0..1000u64 {
                assert!(
                    seen.insert(derive_seed(base, idx)),
                    "collision at {base}/{idx}"
                );
            }
        }
    }

    #[test]
    fn neighbouring_indices_differ_widely() {
        for idx in 0..100u64 {
            let a = derive_seed(1, idx);
            let b = derive_seed(1, idx + 1);
            // At least a quarter of the bits should flip on average;
            // accept anything above a loose floor.
            assert!((a ^ b).count_ones() > 8, "weak mixing at index {idx}");
        }
    }
}
