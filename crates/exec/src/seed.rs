//! Per-task seed derivation.
//!
//! Parallel randomised workloads must not share one sequential RNG —
//! draw order would then depend on scheduling. Instead every task
//! derives its own seed from the experiment's base seed and the task
//! index. The serial reference paths use the *same* derivation, which is
//! what makes parallel results bit-identical to serial ones.

/// Derives the seed for task `index` from `base`.
///
/// Two rounds of the splitmix64 finalizer over `base` and the index.
/// The map is bijective in `base` for fixed `index`, and neighbouring
/// indices land in statistically unrelated states, so per-task generators
/// seeded this way are independent for any practical purpose.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    mix(mix(base ^ 0xA076_1D64_78BD_642F).wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Maps a seed to a uniform `f64` in `[0, 1)`.
///
/// Uses the top 53 bits of one extra finalizer round, so the result is
/// a pure function of the seed — callers that need a reproducible
/// Bernoulli draw (`unit_f64(seed) < rate`) get the same answer on any
/// worker, in any order, on any platform.
#[must_use]
pub fn unit_f64(seed: u64) -> f64 {
    // 2^-53: the spacing of doubles in [1, 2); 53 random mantissa bits.
    (mix(seed) >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// The splitmix64 finalizer.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn distinct_across_indices_and_bases() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for idx in 0..1000u64 {
                assert!(
                    seen.insert(derive_seed(base, idx)),
                    "collision at {base}/{idx}"
                );
            }
        }
    }

    #[test]
    fn unit_f64_is_in_half_open_unit_interval_and_deterministic() {
        let mut acc = 0.0;
        for seed in 0..10_000u64 {
            let u = unit_f64(seed);
            assert!((0.0..1.0).contains(&u), "out of range at {seed}: {u}");
            assert_eq!(u.to_bits(), unit_f64(seed).to_bits());
            acc += u;
        }
        // Mean of 10k uniform draws: well within [0.45, 0.55].
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.05, "biased mean {mean}");
    }

    #[test]
    fn neighbouring_indices_differ_widely() {
        for idx in 0..100u64 {
            let a = derive_seed(1, idx);
            let b = derive_seed(1, idx + 1);
            // At least a quarter of the bits should flip on average;
            // accept anything above a loose floor.
            assert!((a ^ b).count_ones() > 8, "weak mixing at index {idx}");
        }
    }
}
