//! # fluxcomp-exec
//!
//! The workspace's **deterministic parallel sweep engine**.
//!
//! Every headline experiment of the reproduction — heading sweeps,
//! Monte-Carlo yield, thermal and production studies — evaluates many
//! *independent* scenarios of the same immutable design. This crate
//! turns that shape into throughput without giving up reproducibility:
//!
//! * [`par_map`] / [`par_map_range`] fan tasks out over a scoped
//!   `std::thread` worker pool (no dependencies, no global state) and
//!   collect results **in task order**, so any pure task function
//!   produces output bit-for-bit identical to a serial loop at every
//!   worker count;
//! * [`seed::derive_seed`] gives each task its own statistically
//!   independent RNG seed from a base seed and the task index, so even
//!   randomised workloads (Monte-Carlo, noise studies) stay bit-exact
//!   under parallelism — the *serial* path uses the same derivation;
//! * [`stats::StreamStats`] is the single-pass max/mean/rms/bias
//!   accumulator shared by the accuracy sweeps and the Monte-Carlo
//!   harness, and [`stats::SortedSamples`] answers quantile queries from
//!   one sort.
//!
//! ## The determinism contract
//!
//! For any `f` that is a pure function of `(index, item)`:
//!
//! ```text
//! par_map(policy, items, f) == items.iter().enumerate().map(f)   for every policy
//! ```
//!
//! Randomised tasks keep the contract by seeding from
//! `derive_seed(base, index)` instead of sharing one sequential RNG.
//! Reductions over the returned `Vec` run in index order on the calling
//! thread, so floating-point accumulation order — and therefore every
//! rounded bit — matches the serial reference.

pub mod pool;
pub mod seed;
pub mod stats;

pub use pool::{par_map, par_map_range, par_map_range_scratch, par_map_scratch, ExecPolicy};
pub use seed::{derive_seed, unit_f64};
pub use stats::{SortedSamples, StreamStats};
