//! A successive-approximation ADC — the converter the **second-harmonic
//! baseline** needs and the pulse-position method avoids (paper §3.2:
//! "a complicated AD-converter is not necessary, which would have been
//! the case for methods based on second harmonic measurements").
//!
//! The model is bit-accurate SAR: N decision cycles, one comparator, a
//! binary-weighted DAC, plus the two non-idealities that matter for the
//! E8 comparison — input-referred comparator offset and DAC gain error.
//! A transistor-cost estimate feeds the hardware-cost side of E8.

use fluxcomp_units::si::Volt;

/// A successive-approximation register ADC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SarAdc {
    bits: u32,
    /// Full-scale input range: codes span `[-vref, +vref)`.
    vref: Volt,
    /// Input-referred comparator offset.
    offset: Volt,
    /// Relative DAC gain error (0.0 = ideal).
    gain_error: f64,
}

impl SarAdc {
    /// Creates an ideal N-bit SAR ADC with the given reference.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 24` and `vref > 0`.
    pub fn new(bits: u32, vref: Volt) -> Self {
        assert!((2..=24).contains(&bits), "bits must be in 2..=24");
        assert!(vref.value() > 0.0, "vref must be positive");
        Self {
            bits,
            vref,
            offset: Volt::ZERO,
            gain_error: 0.0,
        }
    }

    /// Adds an input-referred comparator offset.
    pub fn with_offset(self, offset: Volt) -> Self {
        Self { offset, ..self }
    }

    /// Adds a relative DAC gain error.
    pub fn with_gain_error(self, gain_error: f64) -> Self {
        Self { gain_error, ..self }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The LSB size in volts.
    pub fn lsb(&self) -> Volt {
        self.vref * 2.0 / (1u64 << self.bits) as f64
    }

    /// Converts an input voltage to a signed code in
    /// `[-2^(bits-1), 2^(bits-1))`, running the SAR loop bit by bit.
    pub fn convert(&self, input: Volt) -> i64 {
        let vin = input.value() + self.offset.value();
        let full = self.vref.value() * (1.0 + self.gain_error);
        let half_codes = 1i64 << (self.bits - 1);
        // SAR loop over an offset-binary accumulator.
        let mut code: i64 = 0;
        for bit in (0..self.bits).rev() {
            let trial = code | (1i64 << bit);
            // DAC output for offset-binary `trial`: (trial/2^bits)*2V − V.
            let vdac = (trial as f64 / (1u64 << self.bits) as f64) * 2.0 * full - full;
            if vin >= vdac {
                code = trial;
            }
        }
        code - half_codes
    }

    /// The voltage a code maps back to (mid-tread reconstruction).
    pub fn reconstruct(&self, code: i64) -> Volt {
        Volt::new(code as f64 * self.lsb().value() + self.lsb().value() / 2.0)
    }

    /// Conversion cycles per sample (one per bit — the SAR latency).
    pub fn cycles_per_conversion(&self) -> u32 {
        self.bits
    }

    /// Rough transistor cost: comparator (≈40) + SAR logic (≈30/bit) +
    /// binary-weighted cap DAC switches (≈12/bit) + sample/hold (≈20).
    /// Consistent with mid-90s SAR designs on gate arrays; the E8
    /// comparison only relies on this growing linearly with resolution.
    pub fn transistor_estimate(&self) -> u32 {
        40 + 42 * self.bits + 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adc8() -> SarAdc {
        SarAdc::new(8, Volt::new(1.0))
    }

    #[test]
    fn zero_maps_near_zero_code() {
        let code = adc8().convert(Volt::ZERO);
        assert!(code.abs() <= 1, "code = {code}");
    }

    #[test]
    fn full_scale_codes() {
        let adc = adc8();
        assert_eq!(adc.convert(Volt::new(2.0)), 127);
        assert_eq!(adc.convert(Volt::new(-2.0)), -128);
    }

    #[test]
    fn transfer_is_monotonic() {
        let adc = adc8();
        let mut prev = i64::MIN;
        for k in -1000..=1000 {
            let v = Volt::new(k as f64 * 1e-3);
            let code = adc.convert(v);
            assert!(code >= prev, "non-monotonic at {v}");
            prev = code;
        }
    }

    #[test]
    fn quantisation_error_within_one_lsb() {
        let adc = adc8();
        let lsb = adc.lsb().value();
        for k in -500..=500 {
            let v = k as f64 * 1.9e-3;
            let code = adc.convert(Volt::new(v));
            let back = adc.reconstruct(code).value();
            assert!((back - v).abs() <= lsb, "at {v}: {back}");
        }
    }

    #[test]
    fn lsb_size() {
        let adc = adc8();
        assert!((adc.lsb().value() - 2.0 / 256.0).abs() < 1e-15);
        let adc12 = SarAdc::new(12, Volt::new(1.0));
        assert!(adc12.lsb().value() < adc.lsb().value());
    }

    #[test]
    fn offset_shifts_transfer() {
        let ideal = adc8();
        let off = adc8().with_offset(Volt::new(0.1));
        let v = Volt::new(0.25);
        let shift = off.convert(v) - ideal.convert(v);
        // 0.1 V / 7.8 mV LSB ≈ 13 codes.
        assert!((12..=14).contains(&shift), "shift = {shift}");
    }

    #[test]
    fn gain_error_scales_transfer() {
        let ideal = adc8();
        let ge = adc8().with_gain_error(0.05);
        // A +5 % reference makes codes smaller for the same input.
        assert!(ge.convert(Volt::new(0.8)) < ideal.convert(Volt::new(0.8)));
    }

    #[test]
    fn latency_and_cost_scale_with_bits() {
        let a8 = adc8();
        let a12 = SarAdc::new(12, Volt::new(1.0));
        assert_eq!(a8.cycles_per_conversion(), 8);
        assert_eq!(a12.cycles_per_conversion(), 12);
        assert!(a12.transistor_estimate() > a8.transistor_estimate());
        assert_eq!(a8.transistor_estimate(), 40 + 42 * 8 + 20);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn one_bit_rejected() {
        let _ = SarAdc::new(1, Volt::new(1.0));
    }

    #[test]
    #[should_panic(expected = "vref")]
    fn zero_vref_rejected() {
        let _ = SarAdc::new(8, Volt::ZERO);
    }
}
