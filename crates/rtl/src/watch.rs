//! The watch logic (paper §4: "The digital part contains also common
//! watch options as added features").
//!
//! The 4.194304 MHz counter clock is 2²² Hz precisely so that a binary
//! divider chain yields the 32 768 Hz watch tick and, fifteen stages
//! further, a 1 Hz heartbeat — a standard digital watch is a by-product
//! of the compass's clock tree. [`Watch`] keeps hh:mm:ss time from that
//! heartbeat and exposes the set/advance operations a two-button watch
//! would have.

use std::fmt;

/// Time of day kept by the watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeOfDay {
    /// Hours, `0..24`.
    pub hours: u8,
    /// Minutes, `0..60`.
    pub minutes: u8,
    /// Seconds, `0..60`.
    pub seconds: u8,
}

impl TimeOfDay {
    /// Constructs a time of day.
    ///
    /// # Panics
    ///
    /// Panics if any field is out of range.
    pub fn new(hours: u8, minutes: u8, seconds: u8) -> Self {
        assert!(hours < 24, "hours out of range");
        assert!(minutes < 60, "minutes out of range");
        assert!(seconds < 60, "seconds out of range");
        Self {
            hours,
            minutes,
            seconds,
        }
    }

    /// Seconds since midnight.
    pub fn total_seconds(&self) -> u32 {
        self.hours as u32 * 3600 + self.minutes as u32 * 60 + self.seconds as u32
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}:{:02}",
            self.hours, self.minutes, self.seconds
        )
    }
}

/// The watch: a seconds counter with carry chains into minutes and
/// hours, clocked at 1 Hz from the divider chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Watch {
    time: TimeOfDay,
    /// Sub-second phase in 32 768 Hz ticks.
    subsecond_ticks: u16,
}

impl Watch {
    /// A watch at midnight.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time.
    pub fn time(&self) -> TimeOfDay {
        self.time
    }

    /// Sets the time (the watch's "set" buttons).
    pub fn set_time(&mut self, time: TimeOfDay) {
        self.time = time;
        self.subsecond_ticks = 0;
    }

    /// One 32 768 Hz tick; rolls seconds/minutes/hours as needed.
    pub fn tick_32768hz(&mut self) {
        self.subsecond_ticks += 1;
        if self.subsecond_ticks == 32_768 {
            self.subsecond_ticks = 0;
            self.tick_second();
        }
    }

    /// One 1 Hz heartbeat.
    pub fn tick_second(&mut self) {
        let mut s = self.time.seconds + 1;
        let mut m = self.time.minutes;
        let mut h = self.time.hours;
        if s == 60 {
            s = 0;
            m += 1;
            if m == 60 {
                m = 0;
                h += 1;
                if h == 24 {
                    h = 0;
                }
            }
        }
        self.time = TimeOfDay::new(h, m, s);
    }

    /// Advances the watch by `n` seconds (used in tests and the watch
    /// example).
    pub fn advance_seconds(&mut self, n: u32) {
        for _ in 0..n {
            self.tick_second();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_roll_into_minutes_and_hours() {
        let mut w = Watch::new();
        w.set_time(TimeOfDay::new(23, 59, 58));
        w.tick_second();
        assert_eq!(w.time(), TimeOfDay::new(23, 59, 59));
        w.tick_second();
        assert_eq!(w.time(), TimeOfDay::new(0, 0, 0));
    }

    #[test]
    fn tick_32768_makes_one_second() {
        let mut w = Watch::new();
        for _ in 0..32_768 {
            w.tick_32768hz();
        }
        assert_eq!(w.time(), TimeOfDay::new(0, 0, 1));
        // Half way through the next second: still :01.
        for _ in 0..16_384 {
            w.tick_32768hz();
        }
        assert_eq!(w.time(), TimeOfDay::new(0, 0, 1));
    }

    #[test]
    fn advance_accumulates() {
        let mut w = Watch::new();
        w.advance_seconds(3_661);
        assert_eq!(w.time(), TimeOfDay::new(1, 1, 1));
    }

    #[test]
    fn set_time_clears_subsecond_phase() {
        let mut w = Watch::new();
        for _ in 0..20_000 {
            w.tick_32768hz();
        }
        w.set_time(TimeOfDay::new(12, 0, 0));
        for _ in 0..32_767 {
            w.tick_32768hz();
        }
        assert_eq!(w.time(), TimeOfDay::new(12, 0, 0));
        w.tick_32768hz();
        assert_eq!(w.time(), TimeOfDay::new(12, 0, 1));
    }

    #[test]
    fn display_format() {
        assert_eq!(TimeOfDay::new(9, 5, 3).to_string(), "09:05:03");
    }

    #[test]
    fn total_seconds() {
        assert_eq!(TimeOfDay::new(1, 1, 1).total_seconds(), 3_661);
        assert_eq!(TimeOfDay::default().total_seconds(), 0);
    }

    #[test]
    #[should_panic(expected = "minutes")]
    fn invalid_time_rejected() {
        let _ = TimeOfDay::new(0, 60, 0);
    }
}
