//! The CORDIC-like arctangent unit — a faithful transliteration of the
//! paper's Fig. 8 VHDL.
//!
//! The paper's algorithm is a **greedy, unidirectional vectoring CORDIC**
//! (\[Spa76\]): starting from the prescaled registers `y_reg = y·128`,
//! `x_reg = x·128`, iteration `i` performs the micro-rotation
//!
//! ```text
//! if y_reg >= x_reg >> i {
//!     (y_reg, x_reg) = (y_reg - (x_reg >> i), x_reg + (y_reg >> i));
//!     res += atanrom(i);
//! }
//! ```
//!
//! The guard `y_reg ≥ x_reg·2⁻ⁱ` is exactly `remaining angle ≥ atan(2⁻ⁱ)`,
//! so the residual never goes negative and after 8 iterations it is
//! bounded by `atan(2⁻⁷) ≈ 0.45°` — which is how the paper achieves
//! "one degree accuracy … in only 8 cycles".
//!
//! The Fig. 8 kernel covers the first quadrant (`x, y ≥ 0`); the full
//! 0–360° heading is recovered by the standard sign-based quadrant
//! folding, two trivial XOR/mux stages in hardware
//! ([`CordicArctan::heading`]).
//!
//! The paper also notes the method "is insensitive to local variations of
//! the magnitude of the earth's magnetic field" — only the *ratio* `y/x`
//! enters, which experiment E4 verifies end-to-end.

use crate::atan_rom::{AtanRom, ANGLE_SCALE};
use fluxcomp_units::angle::Degrees;
use std::error::Error;
use std::fmt;

/// The Fig. 8 prescale factor (`y_reg := y * 128`).
pub const PRESCALE_SHIFT: u32 = 7;

/// Error computing a heading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComputeHeadingError {
    /// Both inputs are zero: the field vector has no direction. Occurs in
    /// practice only with a fully shielded sensor.
    ZeroVector,
    /// An input magnitude would overflow the prescaled registers.
    Overflow,
}

impl fmt::Display for ComputeHeadingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeHeadingError::ZeroVector => write!(f, "both field components are zero"),
            ComputeHeadingError::Overflow => write!(f, "input exceeds the datapath range"),
        }
    }
}

impl Error for ComputeHeadingError {}

/// Result of one full heading computation, including the hardware-visible
/// timing (the Fig. 8 VHDL drives `dir` after `total_delay` and raises
/// `ready`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadingResult {
    /// The computed heading in `[0, 360)`.
    pub heading: Degrees,
    /// The raw accumulated angle in Q8 degrees.
    pub angle_q8: i64,
    /// Number of clock cycles the computation took (= iterations; the
    /// quadrant fold is combinational).
    pub cycles: u32,
    /// How many micro-rotations were actually performed.
    pub rotations: u32,
}

/// The CORDIC arctangent unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CordicArctan {
    rom: AtanRom,
}

impl CordicArctan {
    /// A unit with the given iteration count (1..=16).
    ///
    /// # Panics
    ///
    /// Panics if `iterations` is out of range (see [`AtanRom::new`]).
    pub fn new(iterations: u32) -> Self {
        Self {
            rom: AtanRom::new(iterations),
        }
    }

    /// The paper's 8-iteration unit.
    pub fn paper() -> Self {
        Self::new(8)
    }

    /// Configured iteration count.
    pub fn iterations(&self) -> u32 {
        self.rom.len() as u32
    }

    /// The ROM in use.
    pub fn rom(&self) -> &AtanRom {
        &self.rom
    }

    /// The Fig. 8 kernel: first-quadrant angle of the vector `(x, y)`
    /// with `x, y ≥ 0`, in Q8 degrees.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either input is negative (the hardware
    /// kernel receives folded magnitudes only).
    pub fn first_quadrant_q8(&self, x: i64, y: i64) -> i64 {
        debug_assert!(x >= 0 && y >= 0, "kernel inputs must be non-negative");
        // Degenerate verticals the iteration cannot reach: x = 0 means
        // exactly 90°.
        if y == 0 {
            return 0;
        }
        if x == 0 {
            return 90 * ANGLE_SCALE;
        }
        let mut x_reg = x << PRESCALE_SHIFT;
        let mut y_reg = y << PRESCALE_SHIFT;
        let mut res: i64 = 0;
        for i in 0..self.iterations() {
            if y_reg >= (x_reg >> i) {
                let x_prev = x_reg;
                let y_prev = y_reg;
                y_reg = y_prev - (x_prev >> i);
                x_reg = x_prev + (y_prev >> i);
                res += self.rom.entry(i);
            }
        }
        res
    }

    /// Full 0–360° heading of the integer field vector `(x, y)` — the
    /// counter outputs of the X and Y channels.
    ///
    /// # Errors
    ///
    /// * [`ComputeHeadingError::ZeroVector`] when `x == y == 0`;
    /// * [`ComputeHeadingError::Overflow`] when `|x|` or `|y|` exceeds
    ///   the prescaled register range (2⁴⁸ — unreachable with realistic
    ///   counter widths, but checked like hardware would at synthesis).
    pub fn heading(&self, x: i64, y: i64) -> Result<HeadingResult, ComputeHeadingError> {
        if x == 0 && y == 0 {
            return Err(ComputeHeadingError::ZeroVector);
        }
        const LIMIT: i64 = 1 << 48;
        if x.abs() >= LIMIT || y.abs() >= LIMIT {
            return Err(ComputeHeadingError::Overflow);
        }
        let q8 = self.first_quadrant_q8(x.abs(), y.abs());
        // Quadrant fold (sign decode + adder in hardware).
        let folded = match (x >= 0, y >= 0) {
            (true, true) => q8,
            (false, true) => 180 * ANGLE_SCALE - q8,
            (false, false) => 180 * ANGLE_SCALE + q8,
            (true, false) => 360 * ANGLE_SCALE - q8,
        };
        let folded = folded.rem_euclid(360 * ANGLE_SCALE);
        let rotations = self.count_rotations(x.abs(), y.abs());
        Ok(HeadingResult {
            heading: Degrees::new(AtanRom::to_degrees(folded)).normalized(),
            angle_q8: folded,
            cycles: self.iterations(),
            rotations,
        })
    }

    /// Worst-case angular error bound of the kernel: the convergence
    /// residual `atan(2^-(n-1))` plus accumulated ROM rounding.
    pub fn error_bound(&self) -> Degrees {
        let n = self.iterations();
        let residual = 2f64.powi(-(n as i32 - 1)).atan().to_degrees();
        let rom_rounding = n as f64 * 0.5 / ANGLE_SCALE as f64;
        Degrees::new(residual + rom_rounding)
    }

    fn count_rotations(&self, x: i64, y: i64) -> u32 {
        if x == 0 || y == 0 {
            return 0;
        }
        let mut x_reg = x << PRESCALE_SHIFT;
        let mut y_reg = y << PRESCALE_SHIFT;
        let mut rot = 0;
        for i in 0..self.iterations() {
            if y_reg >= (x_reg >> i) {
                let x_prev = x_reg;
                let y_prev = y_reg;
                y_reg = y_prev - (x_prev >> i);
                x_reg = x_prev + (y_prev >> i);
                rot += 1;
            }
        }
        rot
    }
}

impl Default for CordicArctan {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_heading(x: f64, y: f64) -> Degrees {
        Degrees::atan2(y, x).normalized()
    }

    #[test]
    fn cardinal_directions_exact() {
        let c = CordicArctan::paper();
        assert_eq!(c.heading(1000, 0).unwrap().heading, Degrees::new(0.0));
        assert_eq!(c.heading(0, 1000).unwrap().heading, Degrees::new(90.0));
        assert_eq!(c.heading(-1000, 0).unwrap().heading, Degrees::new(180.0));
        assert_eq!(c.heading(0, -1000).unwrap().heading, Degrees::new(270.0));
    }

    #[test]
    fn diagonal_is_45_degrees() {
        let c = CordicArctan::paper();
        let r = c.heading(1000, 1000).unwrap();
        assert!(r.heading.angular_distance(Degrees::new(45.0)).value() < 0.5);
    }

    #[test]
    fn paper_claim_one_degree_over_full_circle() {
        // The headline claim (C1/C8): 8 iterations, 1° accuracy, over the
        // full circle at realistic counter magnitudes.
        let c = CordicArctan::paper();
        let radius = 2096.0; // 4 measurement periods of counter output
        let mut worst = 0.0f64;
        for k in 0..1440 {
            let truth = k as f64 * 0.25;
            let x = (radius * Degrees::new(truth).cos()).round() as i64;
            let y = (radius * Degrees::new(truth).sin()).round() as i64;
            if x == 0 && y == 0 {
                continue;
            }
            let got = c.heading(x, y).unwrap().heading;
            let reference = reference_heading(x as f64, y as f64);
            let err = got.angular_distance(reference).value();
            worst = worst.max(err);
        }
        assert!(worst < 1.0, "worst-case CORDIC error {worst}° ≥ 1°");
    }

    #[test]
    fn eight_cycles_reported() {
        let c = CordicArctan::paper();
        let r = c.heading(100, 57).unwrap();
        assert_eq!(r.cycles, 8);
        assert!(r.rotations <= 8);
    }

    #[test]
    fn error_shrinks_with_iterations() {
        let radius = 3000.0;
        let worst_for = |n: u32| {
            let c = CordicArctan::new(n);
            let mut worst = 0.0f64;
            for k in 0..720 {
                let truth = k as f64 * 0.5;
                let x = (radius * Degrees::new(truth).cos()).round() as i64;
                let y = (radius * Degrees::new(truth).sin()).round() as i64;
                if x == 0 && y == 0 {
                    continue;
                }
                let got = c.heading(x, y).unwrap().heading;
                let err = got
                    .angular_distance(reference_heading(x as f64, y as f64))
                    .value();
                worst = worst.max(err);
            }
            worst
        };
        let e4 = worst_for(4);
        let e8 = worst_for(8);
        let e12 = worst_for(12);
        assert!(e4 > e8, "{e4} vs {e8}");
        assert!(e8 > e12, "{e8} vs {e12}");
        assert!(e4 > 1.0, "4 iterations should NOT meet the 1° spec: {e4}");
        assert!(e8 < 1.0);
    }

    #[test]
    fn magnitude_invariance() {
        // C9: only the ratio matters. Same angle at 25 µT-scale and
        // 65 µT-scale counter outputs.
        let c = CordicArctan::paper();
        let a = c.heading(250, 190).unwrap().heading;
        let b = c.heading(650, 494).unwrap().heading;
        assert!(a.angular_distance(b).value() < 0.3, "{a} vs {b}");
    }

    #[test]
    fn residual_is_one_sided() {
        // The greedy kernel never overshoots: computed ≤ true angle.
        let c = CordicArctan::paper();
        for k in 1..90 {
            let truth = k as f64;
            let x = (10_000.0 * Degrees::new(truth).cos()).round() as i64;
            let y = (10_000.0 * Degrees::new(truth).sin()).round() as i64;
            let got = AtanRom::to_degrees(c.first_quadrant_q8(x, y));
            let actual = reference_heading(x as f64, y as f64).value();
            assert!(
                got <= actual + 0.02,
                "kernel overshot at {truth}°: {got} > {actual}"
            );
        }
    }

    #[test]
    fn zero_vector_is_an_error() {
        let c = CordicArctan::paper();
        assert_eq!(c.heading(0, 0), Err(ComputeHeadingError::ZeroVector));
        assert_eq!(
            c.heading(0, 0).unwrap_err().to_string(),
            "both field components are zero"
        );
    }

    #[test]
    fn overflow_is_an_error() {
        let c = CordicArctan::paper();
        assert_eq!(c.heading(1 << 50, 1), Err(ComputeHeadingError::Overflow));
    }

    #[test]
    fn error_bound_is_honest() {
        // The analytic bound must dominate the measured worst case.
        let c = CordicArctan::paper();
        let bound = c.error_bound().value();
        assert!((0.4..1.0).contains(&bound), "bound {bound}");
    }

    #[test]
    fn small_counter_values_still_work() {
        // Near-zero field on one axis: tiny integer inputs.
        let c = CordicArctan::paper();
        let r = c.heading(3, 1).unwrap();
        let reference = reference_heading(3.0, 1.0);
        // Prescale by 128 keeps ~2 fractional bits of ratio resolution
        // even for tiny inputs; accuracy degrades but stays bounded.
        assert!(r.heading.angular_distance(reference).value() < 2.0);
    }

    #[test]
    fn negative_quadrants_mirror_positive() {
        let c = CordicArctan::paper();
        let q1 = c.heading(800, 600).unwrap().heading;
        let q2 = c.heading(-800, 600).unwrap().heading;
        let q3 = c.heading(-800, -600).unwrap().heading;
        let q4 = c.heading(800, -600).unwrap().heading;
        assert!((q2.value() - (180.0 - q1.value())).abs() < 1e-9);
        assert!((q3.value() - (180.0 + q1.value())).abs() < 1e-9);
        assert!((q4.value() - (360.0 - q1.value())).abs() < 1e-9);
    }
}
